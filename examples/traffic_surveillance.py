"""Traffic-surveillance scenario: compare LOVO against a QD-search baseline.

Reproduces, at example scale, the paper's motivating use case: an operator
asks increasingly specific questions about vehicles at an intersection.  The
script runs the same queries through LOVO and through a MIRIS-style
query-dependent search baseline and reports accuracy (AveP) and latency.

Run with:  python examples/traffic_surveillance.py
"""

from __future__ import annotations

import time

from repro import LOVO, LOVOConfig
from repro.baselines import MIRISBaseline
from repro.eval import build_ground_truth, evaluate_results, queries_for_dataset
from repro.video import make_bellevue


def main() -> None:
    dataset = make_bellevue(num_videos=2, frames_per_video=300)
    specs = queries_for_dataset("bellevue")

    lovo = LOVO(LOVOConfig())
    start = time.perf_counter()
    lovo.ingest(dataset)
    lovo_ingest = time.perf_counter() - start

    miris = MIRISBaseline()
    miris.ingest(dataset)

    print(f"{'query':6s} {'system':6s} {'AveP':>6s} {'search (s)':>11s}")
    for spec in specs:
        ground_truth = build_ground_truth(dataset, spec)
        if not ground_truth:
            continue
        for name, system in (("LOVO", lovo), ("MIRIS", miris)):
            response = system.query(spec.text)
            avep = evaluate_results(response.results, ground_truth)
            print(f"{spec.query_id:6s} {name:6s} {avep:6.2f} {response.search_seconds:11.3f}")

    print(
        f"\nLOVO paid {lovo_ingest:.2f}s of one-time processing; every further query "
        "reuses the same index, while the QD-search baseline re-scans the video per query."
    )


if __name__ == "__main__":
    main()
