"""Quickstart: index a synthetic traffic dataset and run complex object queries.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import LOVO, LOVOConfig, QueryOptions, QueryRequest
from repro.video import make_bellevue


def main() -> None:
    # 1. Build a (synthetic) video dataset — the stand-in for the Bellevue
    #    Traffic surveillance footage used in the paper.
    dataset = make_bellevue(num_videos=2, frames_per_video=300)
    print(f"Dataset: {dataset.name}, {dataset.num_videos} videos, {dataset.num_frames} frames")

    # 2. One-time ingestion: key-frame extraction, patch encoding, and
    #    index construction in the vector database.  This is query-agnostic —
    #    it happens once regardless of how many queries follow.
    system = LOVO(LOVOConfig())
    summary = system.ingest(dataset)
    print(
        f"Ingested {summary.num_keyframes} key frames "
        f"({summary.num_entities} patch vectors) "
        f"in {system.timer.total('processing', 'indexing'):.2f}s"
    )

    # 3. Complex object queries in natural language.  Neither query maps to a
    #    fixed detector class: the first one adds a colour and a spatial
    #    constraint, the second uses an unseen class name ("SUV").
    queries = [
        "A red car driving in the center of the road.",
        "A red car side by side with another car, both positioned in the center of the road.",
        "A black SUV driving in the intersection of the road.",
    ]
    for text in queries:
        response = system.query(QueryRequest(text, QueryOptions(top_n=5)))
        print(f"\nQuery: {text}")
        print(f"  fast search: {response.timings['fast_search'] * 1000:.1f} ms, "
              f"rerank: {response.timings['rerank'] * 1000:.1f} ms")
        for rank, result in enumerate(response.top(3), start=1):
            x, y, w, h = result.box.to_array()
            print(f"  #{rank} frame={result.frame_id} score={result.score:.3f} "
                  f"box=({x:.2f}, {y:.2f}, {w:.2f}, {h:.2f})")


if __name__ == "__main__":
    main()
