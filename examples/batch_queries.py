"""Batched multi-query search: answer a whole queue of queries in one pass.

Run with:  python examples/batch_queries.py

Simulates the production setting the paper targets — many users querying one
ingested video collection — and compares a sequential ``query()`` loop with
the batched engine's ``query_batch()``, which amortises text encoding, ANN
probes, and candidate-frame re-encoding across the batch.
"""

from __future__ import annotations

import time

from repro import LOVO, LOVOConfig
from repro.video import make_bellevue


def main() -> None:
    dataset = make_bellevue(num_videos=2, frames_per_video=300)
    system = LOVO(LOVOConfig())
    system.ingest(dataset)
    print(f"Ingested {system.num_keyframes} key frames, {system.num_entities} patch vectors")

    # A realistic request queue: a handful of distinct queries, many repeats.
    distinct = [
        "A red car driving in the center of the road.",
        "A red car side by side with another car, both positioned in the center of the road.",
        "A black SUV driving in the intersection of the road.",
        "A white truck on the road.",
    ]
    queue = (distinct * 8)[:32]

    start = time.perf_counter()
    sequential = [system.query(text) for text in queue]
    sequential_seconds = time.perf_counter() - start

    start = time.perf_counter()
    batch = system.query_batch(queue)
    batch_seconds = time.perf_counter() - start

    assert all(
        [r.frame_id for r in a.results] == [r.frame_id for r in b.results]
        for a, b in zip(sequential, batch)
    ), "batched results must match sequential results"

    print(f"\nBatch of {batch.batch_size} queries "
          f"({batch.metadata['num_unique_queries']} unique, "
          f"{batch.metadata['num_unique_candidate_frames']} candidate frames re-encoded once)")
    print(f"  sequential loop: {sequential_seconds:.2f}s "
          f"({len(queue) / sequential_seconds:.0f} queries/s)")
    print(f"  query_batch:     {batch_seconds:.2f}s "
          f"({len(queue) / batch_seconds:.0f} queries/s, "
          f"{sequential_seconds / batch_seconds:.1f}x)")

    best = batch[0].top(1)[0]
    print(f"\nTop hit for {queue[0]!r}: frame={best.frame_id} score={best.score:.3f}")


if __name__ == "__main__":
    main()
