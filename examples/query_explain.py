"""The quality layer end to end: EXPLAIN, shadow recall, history, SLOs.

Walks the answer-quality observability surface on a sharded system:

1. serve a query with ``options.explain=true`` and print its EXPLAIN report
   — per-stage costs, the search parameters the pass actually used,
   candidates contributed per shard, score margins, and provenance;
2. fetch the same report back from ``GET /v1/explain/<trace_id>``;
3. shadow-sample every served query (``shadow_sample_rate=1.0`` here, 1-5%
   in production) and read the online recall@k / score-margin estimates the
   background exact re-scorer produces;
4. look at ``GET /v1/metrics/history`` — the bounded ring of windowed
   metric snapshots — filtered to the recall series;
5. evaluate the latency / availability / recall SLOs with multi-window
   burn rates via ``GET /v1/slo`` and the ``/v1/healthz`` summary.

Run with:  python examples/query_explain.py
"""

from __future__ import annotations

import json
import threading
import urllib.request

from repro import LOVO, LOVOConfig, ObsConfig, ShardConfig
from repro.obs import parse_exposition
from repro.serve import ServingEngine
from repro.serve.http import make_server
from repro.video import make_bellevue

QUERIES = [
    "A red car driving in the center of the road",
    "a person walking",
    "a bus near a person",
]


def http_json(base: str, method: str, path: str, body: dict | None = None):
    data = json.dumps(body).encode("utf-8") if body is not None else None
    request = urllib.request.Request(base + path, data=data, method=method)
    with urllib.request.urlopen(request) as response:
        return json.loads(response.read())


def print_explain(report: dict) -> None:
    total_ms = sum(stage["total_ms"] for stage in report["stages"].values())
    print(f"  query {report['query']!r}  trace {report['trace_id'][:12]}…")
    print(f"  params: {report['params']}")
    print("  stages:")
    for name, stage in sorted(
        report["stages"].items(), key=lambda item: -item[1]["total_ms"]
    ):
        share = 100.0 * stage["total_ms"] / total_ms if total_ms else 0.0
        print(f"    {name:<14} {stage['total_ms']:8.2f} ms "
              f"({share:4.1f}%, {stage['calls']:.0f} call(s))")
    for shard in report["candidates"].get("per_shard", ()):
        print(f"  shard {shard['shard']}: {shard.get('candidates', '?')} "
              f"candidates in {shard['duration_ms']:.2f} ms "
              f"({shard['replica']}, {shard['outcome']})")
    print(f"  score margins: {report['score_margins']}")
    print(f"  provenance: {report['provenance']}")


def main() -> None:
    # Sharded, with every served query shadow-sampled (rate 1.0) and a fast
    # history tick so this short example accumulates a few snapshots.
    config = LOVOConfig(
        shard=ShardConfig(num_shards=2),
        obs=ObsConfig(shadow_sample_rate=1.0, history_interval_seconds=0.2),
    )
    system = LOVO(config)
    system.ingest(make_bellevue(num_videos=1, frames_per_video=150))

    engine = ServingEngine(system).start()
    server = make_server(engine, host="127.0.0.1", port=0)
    threading.Thread(target=server.serve_forever, daemon=True).start()
    host, port = server.server_address[:2]
    base = f"http://{host}:{port}"
    print(f"Serving on {base}")

    try:
        # 1. EXPLAIN rides inline on the response when requested.
        payloads = [
            http_json(base, "POST", "/v1/query",
                      {"query": text, "options": {"explain": True}})
            for text in QUERIES
        ]
        print("\nEXPLAIN of the first request:")
        print_explain(payloads[0]["explain"])

        # 2. Reports are retained, keyed by trace id.
        retained = http_json(
            base, "GET", f"/v1/explain/{payloads[0]['trace_id']}"
        )
        assert retained["trace_id"] == payloads[0]["trace_id"]
        print(f"\nRetained reports: "
              f"{http_json(base, 'GET', '/v1/stats')['explain']['stored']}")

        # 3. The shadow sampler re-ran every query through an exact flat
        #    scan on its background worker; flush, then read the estimates.
        assert engine.quality is not None
        engine.quality.flush(timeout=30.0)
        quality = http_json(base, "GET", "/v1/stats")["quality"]
        for family, estimate in quality["families"].items():
            print(f"\nShadow recall ({family}, k={quality['recall_k']}): "
                  f"recall@k {estimate['recall_at_k']:.3f}, "
                  f"top-1 margin {estimate['score_margin']:.4f}, "
                  f"rank displacement {estimate['rank_displacement']:.2f} "
                  f"over {estimate['samples']} sample(s)")
        scrape = parse_exposition(
            urllib.request.urlopen(base + "/v1/metrics").read().decode()
        )
        for sample in scrape["lovo_recall_shard_at_k"]["samples"]:
            print(f"  shard {sample['labels']['shard']}: "
                  f"recall@k {sample['value']:.3f}")

        # 4. Metrics history: windowed snapshots of every series.
        engine.history.tick()  # take one snapshot now (ticker runs at 0.2s)
        history = http_json(
            base, "GET", "/v1/metrics/history?prefix=lovo_recall_at_k"
        )
        last = history["points"][-1]["values"] if history["points"] else {}
        print(f"\n/v1/metrics/history: {history['num_points']} point(s), "
              f"latest recall series: {last}")

        # 5. SLO burn rates: fast + slow windows against the error budget.
        slo = http_json(base, "GET", "/v1/slo")
        print(f"\nSLO status: {slo['status']}")
        for entry in slo["slos"]:
            print(f"  {entry['name']:<12} {entry['status']:<9} "
                  f"objective {entry['objective']:.3f}  "
                  f"fast burn {entry['fast']['burn_rate']:.2f}  "
                  f"slow burn {entry['slow']['burn_rate']:.2f}")
        healthz = http_json(base, "GET", "/v1/healthz")
        print(f"/v1/healthz: {healthz['status']}, "
              f"slo summary {healthz['slo']['status']}")
    finally:
        server.shutdown()
        server.server_close()
        engine.stop()


if __name__ == "__main__":
    main()
