"""Observability end to end: request traces, the slow-query log, /v1/metrics.

Walks the full observability surface on a sharded, replicated system:

1. serve a few queries over the ``/v1`` HTTP API with an ``X-Request-ID``,
   and read each response's ``trace_id`` (body + ``X-Trace-Id`` header);
2. fetch one request's full trace from ``GET /v1/traces/<id>`` and print its
   span tree — queue wait, encoding, the per-shard fan-out (which replica
   answered), the global merge, and the rerank;
3. show the slow-query log at ``GET /v1/traces/slow``;
4. scrape ``GET /v1/metrics`` (Prometheus text exposition) and print a few
   service- and shard-level series.

Run with:  python examples/observability.py
"""

from __future__ import annotations

import json
import threading
import urllib.request

from repro import LOVO, LOVOConfig, ObsConfig, ShardConfig
from repro.obs import parse_exposition
from repro.serve import ServingEngine
from repro.serve.http import make_server
from repro.video import make_bellevue

QUERIES = [
    "A red car driving in the center of the road",
    "a person walking",
    "a bus near a person",
]


def http_json(base: str, method: str, path: str, body: dict | None = None,
              headers: dict | None = None):
    data = json.dumps(body).encode("utf-8") if body is not None else None
    request = urllib.request.Request(
        base + path, data=data, method=method, headers=headers or {}
    )
    with urllib.request.urlopen(request) as response:
        return dict(response.headers), response.read()


def print_span_tree(trace: dict) -> None:
    spans = trace["spans"]
    children: dict = {}
    for span in spans:
        children.setdefault(span["parent_id"], []).append(span)

    def walk(parent_id, depth):
        for span in children.get(parent_id, ()):
            attrs = span["attributes"]
            detail = f" ({attrs['replica']})" if "replica" in attrs else ""
            print(f"    {'  ' * depth}{span['name']:<14} "
                  f"{span['duration_ms']:7.2f} ms{detail}")
            walk(span["span_id"], depth + 1)

    print(f"  trace {trace['trace_id']}  total {trace['duration_ms']:.2f} ms  "
          f"attributes {trace['attributes']}")
    walk(None, 0)


def main() -> None:
    # A sharded + replicated system with an aggressive slow-query threshold,
    # so the example's queries land in the slow log.
    config = LOVOConfig(
        shard=ShardConfig(num_shards=2, num_replicas=2),
        obs=ObsConfig(slow_query_ms=1.0),
    )
    system = LOVO(config)
    system.ingest(make_bellevue(num_videos=1, frames_per_video=150))

    engine = ServingEngine(system).start()
    server = make_server(engine, host="127.0.0.1", port=0)
    threading.Thread(target=server.serve_forever, daemon=True).start()
    host, port = server.server_address[:2]
    base = f"http://{host}:{port}"
    print(f"Serving on {base}")

    try:
        # 1. Queries carry a trace id; X-Request-ID ties them to client logs.
        trace_ids = []
        for index, text in enumerate(QUERIES):
            headers, body = http_json(
                base, "POST", "/v1/query", {"query": text},
                {"X-Request-ID": f"example-{index}"},
            )
            payload = json.loads(body)
            assert headers["X-Trace-Id"] == payload["trace_id"]
            trace_ids.append(payload["trace_id"])
            print(f"  {text!r}: {payload['num_results']} results, "
                  f"trace {payload['trace_id'][:12]}…")

        # 2. One request's full story, across every thread it touched.
        print("\nSpan tree of the first request:")
        _, body = http_json(base, "GET", f"/v1/traces/{trace_ids[0]}")
        print_span_tree(json.loads(body))

        # 3. The slow-query log (threshold 1 ms, so everything qualifies).
        _, body = http_json(base, "GET", "/v1/traces/slow")
        slow = json.loads(body)
        print(f"\nSlow-query log: {slow['num_traces']} trace(s) above "
              f"{slow['slow_threshold_ms']} ms")

        # 4. Prometheus metrics: one scrape covers the serving engine, the
        #    result cache, and every shard replica.
        _, body = http_json(base, "GET", "/v1/metrics")
        metrics = parse_exposition(body.decode("utf-8"))
        completed = metrics["lovo_requests_completed_total"]["samples"][0]["value"]
        print(f"\n/v1/metrics: {len(metrics)} metric families")
        print(f"  completed requests: {completed:.0f}")
        for sample in metrics["lovo_shard_healthy_replicas"]["samples"]:
            print(f"  shard {sample['labels']['shard']}: "
                  f"{sample['value']:.0f} healthy replica(s)")
        p95 = next(
            sample["value"]
            for sample in metrics["lovo_request_latency_seconds"]["samples"]
            if sample["labels"].get("quantile") == "0.95"
        )
        print(f"  p95 latency: {p95 * 1000.0:.1f} ms")
    finally:
        server.shutdown()
        server.server_close()
        engine.stop()


if __name__ == "__main__":
    main()
