"""Streaming ingest end to end: live appends, standing queries, delta snapshots.

Walks the full streaming surface:

1. serve a base corpus, then stream new video segments into the live indexes
   through the background encode→index pipeline — queries keep working
   throughout, and streamed ingest is bit-exact with offline ingest;
2. register a standing query over ``POST /v1/subscriptions`` and long-poll
   ``GET /v1/subscriptions/<id>/events`` to receive matches pushed from the
   live segments as they are indexed;
3. record every streamed segment as a delta snapshot, warm-start a second
   system from base + deltas (bit-exact with the live one), then ``compact()``
   the deltas into a new base.

Run with:  python examples/streaming_ingest.py
"""

from __future__ import annotations

import json
import tempfile
import threading
import urllib.request
from pathlib import Path

from repro import LOVO, LOVOConfig
from repro.persist import DeltaSnapshotStore
from repro.serve import ServingEngine
from repro.serve.http import make_server
from repro.stream import StreamingIngestor
from repro.video import make_bellevue

QUERY = "A red car driving in the center of the road"


def http_json(base: str, method: str, path: str, body: dict | None = None):
    data = json.dumps(body).encode("utf-8") if body is not None else None
    request = urllib.request.Request(base + path, data=data, method=method)
    with urllib.request.urlopen(request) as response:
        return json.loads(response.read())


def main() -> None:
    system = LOVO(LOVOConfig())
    system.ingest(make_bellevue(num_videos=1, frames_per_video=150))

    # Every streamed segment will be appended to this store as a delta on
    # top of the base snapshot taken here.
    snapshot_dir = Path(tempfile.mkdtemp(prefix="lovo-stream-")) / "snapshot"
    store = DeltaSnapshotStore(snapshot_dir)
    store.initialize(system)

    engine = ServingEngine(system).start()
    ingestor = engine.attach_streaming(
        StreamingIngestor(system, delta_store=store).start()
    )
    server = make_server(engine, host="127.0.0.1", port=0)
    threading.Thread(target=server.serve_forever, daemon=True).start()
    host, port = server.server_address[:2]
    base = f"http://{host}:{port}"
    print(f"Serving on {base}")

    try:
        before = http_json(base, "POST", "/v1/query", {"query": QUERY})
        print(f"Before streaming: {before['num_results']} results "
              f"(epoch {engine.stats()['data_epoch']})")

        # 2. A standing query: matches above the threshold are pushed to the
        #    subscriber as each live segment is indexed.
        subscription = http_json(
            base, "POST", "/v1/subscriptions",
            {"query": QUERY, "threshold": 0.2},
        )
        print(f"Registered standing query {subscription['id']!r}")

        # 1. Stream two fresh segments; tickets resolve when queryable.
        #    (Distinct seeds keep the segments' video ids unique.)
        tickets = [
            ingestor.submit(make_bellevue(num_videos=1, frames_per_video=60,
                                          seed=seed))
            for seed in (11, 12)
        ]
        for ticket in tickets:
            summary = ticket.result(timeout=300)
            print(f"  segment {ticket.sequence} indexed: "
                  f"{len(summary.encodings)} patch vectors")

        events = http_json(
            base, "GET",
            f"/v1/subscriptions/{subscription['id']}/events?timeout=5",
        )
        print(f"Standing query delivered {events['num_events']} event(s); "
              f"first: {json.dumps(events['events'][0], indent=None)[:100]}…"
              if events["num_events"] else "Standing query delivered 0 events")

        after = http_json(base, "POST", "/v1/query", {"query": QUERY})
        print(f"After streaming:  {after['num_results']} results "
              f"(epoch {engine.stats()['data_epoch']})")

        stats = engine.stats()["streaming"]
        print(f"Pipeline stats: {stats['indexed']} segments, "
              f"{stats['entities']} vectors, {stats['deltas']} delta(s)")

        # 3. Warm start: base + deltas replayed → bit-exact with the live
        #    system; compaction folds the deltas into a new base.
        warm = store.load_system()
        live = system.query(QUERY)
        replayed = warm.query(QUERY)
        match = [(r.frame_id, r.score) for r in live.results] == \
                [(r.frame_id, r.score) for r in replayed.results]
        print(f"Warm start from base + {len(store.deltas())} deltas: "
              f"bit-exact with live system: {match}")
        store.compact()
        print(f"After compact(): {len(store.deltas())} deltas remain")
    finally:
        server.shutdown()
        server.server_close()
        engine.stop()


if __name__ == "__main__":
    main()
