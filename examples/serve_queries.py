"""Serve concurrent queries through the micro-batching engine.

Builds a small system, wraps it in a :class:`~repro.serve.ServingEngine`,
and drives it with a pool of client threads — the shape of a production
deployment, where many independent callers hit one warm system at once.
Watch the stats at the end: the batch-size histogram shows the micro-batcher
coalescing single-query submissions into batched engine passes, and the
cache counters show repeated queries being answered for free.

Run with:
    python examples/serve_queries.py

For serving over HTTP from a persisted snapshot, see:
    python -m repro.serve --snapshot <dir> --port 8080
"""

from __future__ import annotations

import json
from concurrent.futures import ThreadPoolExecutor

from repro import LOVO, ServeConfig
from repro.serve import ServingEngine
from repro.video import make_bellevue

NUM_CLIENTS = 16
ROUNDS_PER_CLIENT = 4

QUERIES = [
    "A red car driving in the center of the road",
    "A woman in a black dress",
    "A white truck on the road",
    "A person riding a bicycle",
]


def main() -> None:
    print("Ingesting a small Bellevue-style dataset (one-time)...")
    system = LOVO()
    system.ingest(make_bellevue(num_videos=1, frames_per_video=150))

    config = ServeConfig(
        num_workers=2,
        max_batch_size=16,
        max_wait_ms=3.0,
        cache_size=256,
        cache_ttl_seconds=60.0,
    )

    def client(client_index: int) -> int:
        # Each client rotates through the query list so concurrent clients
        # overlap on hot queries, like real traffic.
        answered = 0
        for round_index in range(ROUNDS_PER_CLIENT):
            text = QUERIES[(client_index + round_index) % len(QUERIES)]
            response = engine.query(text)
            answered += len(response.results)
        return answered

    with ServingEngine(system, config) as engine:
        print(f"Serving with {config.num_workers} workers, "
              f"{NUM_CLIENTS} concurrent clients...")
        with ThreadPoolExecutor(max_workers=NUM_CLIENTS) as pool:
            totals = list(pool.map(client, range(NUM_CLIENTS)))
        print(f"Answered {NUM_CLIENTS * ROUNDS_PER_CLIENT} queries "
              f"({sum(totals)} results in total)\n")
        print("Service stats:")
        print(json.dumps(engine.stats(), indent=2))


if __name__ == "__main__":
    main()
