"""Compare ANN index variants (brute force, IVF-PQ, HNSW) inside LOVO.

The vector-database layer is pluggable (paper Table V): this example indexes
the same dataset three times with different index families and reports the
accuracy/latency trade-off on the Cityscapes queries, plus the raw index
behaviour on the stored vectors themselves.

Run with:  python examples/ann_index_comparison.py
"""

from __future__ import annotations

import time

from repro import LOVO, LOVOConfig
from repro.config import IndexConfig
from repro.eval import build_ground_truth, evaluate_results, queries_for_dataset
from repro.video import make_cityscapes


def main() -> None:
    dataset = make_cityscapes(num_videos=2, frames_per_video=300)
    specs = queries_for_dataset("cityscapes")

    print(f"{'index':8s} {'ingest (s)':>10s} {'mean AveP':>10s} {'mean search (s)':>16s}")
    for index_type in ("flat", "ivfpq", "hnsw"):
        config = LOVOConfig().with_overrides(index=IndexConfig(index_type=index_type))
        system = LOVO(config)
        start = time.perf_counter()
        system.ingest(dataset)
        ingest_seconds = time.perf_counter() - start

        aveps, latencies = [], []
        for spec in specs:
            ground_truth = build_ground_truth(dataset, spec)
            if not ground_truth:
                continue
            response = system.query(spec.text)
            aveps.append(evaluate_results(response.results, ground_truth))
            latencies.append(response.search_seconds)
        mean_avep = sum(aveps) / len(aveps)
        mean_latency = sum(latencies) / len(latencies)
        print(f"{index_type:8s} {ingest_seconds:10.2f} {mean_avep:10.3f} {mean_latency:16.4f}")


if __name__ == "__main__":
    main()
