"""Open-vocabulary search: queries beyond any detector's label set.

QA-index systems can only answer queries about the classes their detector was
trained on.  LOVO indexes visual embeddings instead of class labels, so
queries about unseen class names ("SUV", "lady", "pickup") and detailed
descriptions still work.  This example runs such queries against both LOVO
and a VOCAL-style scene-graph index and shows which ones each system can
answer at all.

Run with:  python examples/open_vocabulary_search.py
"""

from __future__ import annotations

from repro import LOVO, LOVOConfig, QueryOptions, QueryRequest
from repro.baselines import VOCALBaseline
from repro.errors import UnsupportedQueryError
from repro.video import make_qvhighlights


QUERIES = [
    "A dog inside a car.",
    "A red-hair woman with white dress sitting inside a car.",
    "A lady sitting inside a car next to a white puppy.",
    "A person talking in the room.",
]


def main() -> None:
    dataset = make_qvhighlights(num_videos=2, frames_per_video=300)

    lovo = LOVO(LOVOConfig())
    lovo.ingest(dataset)
    vocal = VOCALBaseline()
    vocal.ingest(dataset)

    for text in QUERIES:
        print(f"\nQuery: {text}")
        response = lovo.query(QueryRequest(text, QueryOptions(top_n=3)))
        top = response.top(1)
        print(f"  LOVO : {len(response.results)} results, best frame {top[0].frame_id if top else 'n/a'} "
              f"(search {response.search_seconds * 1000:.0f} ms)")
        try:
            vocal_response = vocal.query(text, top_n=3)
            print(f"  VOCAL: {len(vocal_response.results)} results from the pre-built class index")
        except UnsupportedQueryError as error:
            print(f"  VOCAL: unsupported — {error}")


if __name__ == "__main__":
    main()
