"""Persisting a system: ingest once, snapshot, serve from a fresh process.

Demonstrates the snapshot persistence subsystem: a dataset is summarised and
indexed once, the whole built system is saved to disk, and a "fresh process"
(simulated here by ``LOVO.load`` into a brand-new object) answers the same
queries bit-identically — without re-running any of the ingest pipeline.

Run with:  python examples/save_load.py
"""

from __future__ import annotations

import tempfile
import time
from pathlib import Path

from repro import LOVO, LOVOConfig, QueryOptions, QueryRequest
from repro.video import make_bellevue


def main() -> None:
    # 1. One-time ingest: the expensive, query-agnostic phase.
    dataset = make_bellevue(num_videos=1, frames_per_video=300)
    start = time.perf_counter()
    system = LOVO(LOVOConfig())
    system.ingest(dataset)
    ingest_seconds = time.perf_counter() - start
    print(
        f"Ingested {dataset.num_frames} frames -> {system.num_keyframes} key frames, "
        f"{system.num_entities} patch vectors in {ingest_seconds:.2f}s"
    )

    # 2. Snapshot the entire built system: indexes, metadata, key frames,
    #    and configuration, under a versioned, checksummed manifest.
    snapshot_dir = Path(tempfile.mkdtemp()) / "lovo-snapshot"
    manifest = system.save(snapshot_dir)
    total_bytes = sum(path.stat().st_size for path in snapshot_dir.rglob("*") if path.is_file())
    print(
        f"Saved snapshot (schema v{manifest.schema_version}, repro "
        f"{manifest.repro_version}, {len(manifest.artifacts)} artifacts, "
        f"{total_bytes / 1e6:.1f} MB) to {snapshot_dir}"
    )

    # 3. Warm start: what a fresh serving process does at boot.  No video is
    #    touched; the manifest is validated, checksums are verified, and the
    #    built indexes are restored as-is.
    start = time.perf_counter()
    served = LOVO.load(snapshot_dir)
    load_seconds = time.perf_counter() - start
    print(
        f"Warm-started in {load_seconds:.3f}s "
        f"({ingest_seconds / load_seconds:.0f}x faster than re-ingesting)"
    )

    # 4. The warm-started system answers queries exactly like the original.
    query = QueryRequest(
        "A red car driving in the center of the road", QueryOptions(top_n=5)
    )
    original = [(r.frame_id, round(r.score, 6)) for r in system.query(query).results]
    restored = [(r.frame_id, round(r.score, 6)) for r in served.query(query).results]
    assert original == restored, "snapshot round trip changed query results!"
    print(f"\nQuery: {query.text}")
    for rank, (frame_id, score) in enumerate(restored, start=1):
        print(f"  #{rank} frame={frame_id} score={score:.3f}")
    print("\nOriginal and warm-started systems returned identical results.")


if __name__ == "__main__":
    main()
