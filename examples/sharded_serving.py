"""Scaling out: a sharded LOVO system, snapshotted and served over /v1 HTTP.

Demonstrates the scatter-gather sharding subsystem end to end:

1. the same dataset is ingested into an unsharded and a 3-shard system, and
   the answers are shown to be bit-identical;
2. the sharded system is snapshotted (one manifest, one directory per shard)
   and warm-started back;
3. a replica is knocked out to show round-robin failover keeping every
   query answered;
4. the restored system is served over the versioned ``/v1`` HTTP API using
   the canonical ``QueryRequest`` wire shape.

Run with:  python examples/sharded_serving.py
"""

from __future__ import annotations

import json
import tempfile
import threading
import urllib.request
from pathlib import Path

from repro import LOVO, LOVOConfig, QueryOptions, QueryRequest, ShardConfig
from repro.serve import ServingEngine
from repro.serve.http import make_server
from repro.video import make_bellevue

QUERY = "A red car driving in the center of the road"


def main() -> None:
    dataset = make_bellevue(num_videos=2, frames_per_video=120)

    # 1. Same data, two topologies.  Sharding is purely a config decision;
    #    the query API on top is identical.
    plain = LOVO(LOVOConfig())
    plain.ingest(dataset)
    sharded = LOVO(LOVOConfig(shard=ShardConfig(num_shards=3, partitioner="hash")))
    sharded.ingest(dataset)

    status = sharded.storage.backend_status()
    sizes = [shard["entities"] for shard in status["shards"]]
    print(f"Sharded backend: {status['num_shards']} shards, sizes {sizes}")

    request = QueryRequest(QUERY, QueryOptions(top_n=5))
    plain_hits = [(r.frame_id, r.score) for r in plain.query(request).results]
    sharded_hits = [(r.frame_id, r.score) for r in sharded.query(request).results]
    assert plain_hits == sharded_hits, "sharding changed the answers!"
    print(f"Sharded and unsharded answers are bit-identical ({len(plain_hits)} hits)")

    # 2. Snapshot the sharded system: one manifest, one directory per shard,
    #    restored with the per-shard reads fanned out in parallel.
    snapshot_dir = Path(tempfile.mkdtemp()) / "sharded-snapshot"
    sharded.save(snapshot_dir)
    restored = LOVO.load(snapshot_dir)
    restored_hits = [(r.frame_id, r.score) for r in restored.query(request).results]
    assert restored_hits == sharded_hits, "snapshot round trip changed the answers!"
    print(f"Snapshot round trip preserved the answers ({snapshot_dir})")

    # 3. Replica failover: mark shard 0's only replica unhealthy and back.
    #    With num_replicas > 1 (or add_replica) the router rotates round-robin
    #    and fails over automatically when a replica throws.
    database = restored.storage.database
    group = database.replica_groups[0]
    replica = group.replicas[0]
    group.mark_unhealthy(replica)
    print(f"Replica topology after outage: {json.dumps(group.status())}")
    group.mark_healthy(replica)
    assert [
        (r.frame_id, r.score) for r in restored.query(request).results
    ] == sharded_hits, "failover bookkeeping changed the answers!"

    # 4. Serve the restored sharded system over the versioned HTTP API.
    with ServingEngine(restored) as engine:
        server = make_server(engine, host="127.0.0.1", port=0)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        host, port = server.server_address[:2]
        try:
            http_request = urllib.request.Request(
                f"http://{host}:{port}/v1/query",
                data=json.dumps(request.to_dict()).encode("utf-8"),
                headers={"Content-Type": "application/json"},
            )
            with urllib.request.urlopen(http_request, timeout=30) as response:
                payload = json.load(response)
            http_hits = [(r["frame_id"], r["score"]) for r in payload["results"]]
            assert http_hits == sharded_hits, "HTTP round trip changed the answers!"
            print(f"\nPOST /v1/query -> {payload['num_results']} results")
            for rank, (frame_id, score) in enumerate(http_hits[:5], start=1):
                print(f"  #{rank} frame={frame_id} score={score:.3f}")

            with urllib.request.urlopen(
                f"http://{host}:{port}/v1/healthz", timeout=30
            ) as response:
                health = json.load(response)
            backend = health["backend"]
            print(
                f"\nGET /v1/healthz -> status={health['status']} "
                f"api={health['api_version']} shards={backend['num_shards']}"
            )
        finally:
            server.shutdown()
            server.server_close()
    print("\nSharded build -> snapshot -> warm start -> /v1 serving: all bit-identical.")


if __name__ == "__main__":
    main()
