"""Tests for the vector collection, database facade, and metadata store."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import IndexConfig
from repro.errors import (
    CollectionExistsError,
    CollectionNotFoundError,
    MetadataError,
    VectorDatabaseError,
)
from repro.utils.geometry import BoundingBox
from repro.vectordb.collection import VectorCollection
from repro.vectordb.database import VectorDatabase
from repro.vectordb.metadata import FrameRecord, MetadataStore, PatchRecord


def unit_vectors(n, dim, seed=0):
    rng = np.random.default_rng(seed)
    vectors = rng.normal(size=(n, dim))
    return vectors / np.linalg.norm(vectors, axis=1, keepdims=True)


class TestVectorCollection:
    def make(self, index_type="flat") -> VectorCollection:
        config = IndexConfig(index_type=index_type, num_subspaces=4, num_centroids=8,
                             num_coarse_clusters=4, nprobe=2)
        return VectorCollection("patches", dim=16, config=config)

    def test_insert_and_search(self):
        collection = self.make()
        vectors = unit_vectors(20, 16)
        collection.insert([f"p{i}" for i in range(20)], vectors, [{"frame": i} for i in range(20)])
        hits = collection.search(vectors[3], 5)
        assert hits[0].id == "p3"
        assert hits[0].metadata["frame"] == 3

    def test_duplicate_ids_rejected(self):
        collection = self.make()
        collection.insert(["a"], unit_vectors(1, 16))
        with pytest.raises(VectorDatabaseError):
            collection.insert(["a"], unit_vectors(1, 16))

    def test_dimension_mismatch_rejected(self):
        collection = self.make()
        with pytest.raises(VectorDatabaseError):
            collection.insert(["a"], unit_vectors(1, 8))

    def test_metadata_length_checked(self):
        collection = self.make()
        with pytest.raises(VectorDatabaseError):
            collection.insert(["a", "b"], unit_vectors(2, 16), metadata=[{}])

    def test_empty_collection_search(self):
        assert self.make().search(np.ones(16), 3) == []

    def test_exhaustive_search_matches_flat(self):
        collection = self.make(index_type="ivfpq")
        vectors = unit_vectors(64, 16)
        collection.insert([f"p{i}" for i in range(64)], vectors)
        exhaustive = collection.search_exhaustive(vectors[5], 1)
        assert exhaustive[0].id == "p5"

    def test_get_vector_and_metadata(self):
        collection = self.make()
        vectors = unit_vectors(3, 16)
        collection.insert(["a", "b", "c"], vectors, [{"k": 1}, {"k": 2}, {"k": 3}])
        np.testing.assert_allclose(collection.get_vector("b"), vectors[1])
        assert collection.get_metadata("c")["k"] == 3
        with pytest.raises(VectorDatabaseError):
            collection.get_vector("missing")

    def test_ids_and_counts(self):
        collection = self.make()
        collection.insert(["a", "b"], unit_vectors(2, 16))
        assert collection.ids() == ["a", "b"]
        assert collection.num_entities == 2
        assert collection.storage_bytes() == 2 * 16 * 8

    def test_invalid_construction(self):
        with pytest.raises(VectorDatabaseError):
            VectorCollection("", dim=8)
        with pytest.raises(VectorDatabaseError):
            VectorCollection("x", dim=0)

    @pytest.mark.parametrize("index_type", ["flat", "ivfpq", "hnsw"])
    def test_all_index_types_work(self, index_type):
        collection = self.make(index_type=index_type)
        vectors = unit_vectors(80, 16, seed=2)
        collection.insert([f"p{i}" for i in range(80)], vectors)
        collection.flush()
        hits = collection.search(vectors[10], 5)
        assert len(hits) == 5
        assert any(hit.id == "p10" for hit in hits)


class TestVectorDatabase:
    def test_create_get_drop(self):
        database = VectorDatabase()
        collection = database.create_collection("a", dim=8)
        assert database.get_collection("a") is collection
        assert database.has_collection("a")
        assert database.list_collections() == ["a"]
        database.drop_collection("a")
        assert not database.has_collection("a")

    def test_duplicate_create_rejected(self):
        database = VectorDatabase()
        database.create_collection("a", dim=8)
        with pytest.raises(CollectionExistsError):
            database.create_collection("a", dim=8)

    def test_missing_collection_errors(self):
        database = VectorDatabase()
        with pytest.raises(CollectionNotFoundError):
            database.get_collection("nope")
        with pytest.raises(CollectionNotFoundError):
            database.drop_collection("nope")

    def test_total_entities(self):
        database = VectorDatabase()
        collection = database.create_collection("a", dim=8, config=IndexConfig(index_type="flat"))
        collection.insert(["x"], unit_vectors(1, 8))
        assert database.total_entities() == 1


class TestMetadataStore:
    def patch(self, patch_id="f0/p0", frame_id="f0") -> PatchRecord:
        return PatchRecord(
            patch_id=patch_id,
            frame_id=frame_id,
            video_id="v0",
            patch_index=0,
            box=BoundingBox(0.1, 0.2, 0.3, 0.4),
            objectness=0.5,
        )

    def test_round_trip_patch(self):
        store = MetadataStore()
        store.add_patches([self.patch()])
        record = store.get_patch("f0/p0")
        assert record.frame_id == "f0"
        assert record.box.w == pytest.approx(0.3)

    def test_missing_patch_raises(self):
        with pytest.raises(MetadataError):
            MetadataStore().get_patch("nope")

    def test_patches_for_frame_ordered(self):
        store = MetadataStore()
        records = [
            PatchRecord(f"f0/p{i}", "f0", "v0", i, BoundingBox(0, 0, 0.1, 0.1), 0.1)
            for i in reversed(range(5))
        ]
        store.add_patches(records)
        fetched = store.patches_for_frame("f0")
        assert [record.patch_index for record in fetched] == list(range(5))

    def test_frames_round_trip(self):
        store = MetadataStore()
        store.add_frames([FrameRecord("f0", "v0", 0, 0.0), FrameRecord("f1", "v0", 1, 0.033)])
        assert store.count_frames() == 2
        assert store.get_frame("f1").frame_index == 1
        assert store.get_frame("missing") is None
        assert [record.frame_id for record in store.list_frames()] == ["f0", "f1"]

    def test_counts(self):
        store = MetadataStore()
        store.add_patches([self.patch(), self.patch("f0/p1")])
        assert store.count_patches() == 2

    def test_get_patches_preserves_order(self):
        store = MetadataStore()
        store.add_patches([self.patch("a"), self.patch("b")])
        records = store.get_patches(["b", "a"])
        assert [record.patch_id for record in records] == ["b", "a"]

    def test_context_manager_closes(self, tmp_path):
        with MetadataStore(tmp_path / "meta.db") as store:
            store.add_patches([self.patch()])
            assert store.count_patches() == 1
