"""Tests for query parsing and the decoupled text encoder."""

from __future__ import annotations

import numpy as np
import pytest

from repro.encoders.concepts import ConceptSpace
from repro.encoders.text import QueryParser, TextEncoder
from repro.encoders.vocabulary import default_vocabulary
from repro.errors import QueryError
from repro.eval.workloads import all_queries


@pytest.fixture(scope="module")
def parser():
    return QueryParser(default_vocabulary())


@pytest.fixture(scope="module")
def encoder():
    space = ConceptSpace(dim=64, seed=7)
    return TextEncoder(space, class_embedding_dim=32)


class TestParser:
    def test_simple_category_query(self, parser):
        parsed = parser.parse("car")
        assert parsed.object_tokens == ("car",)
        assert parsed.complexity == "simple"

    def test_attribute_query(self, parser):
        parsed = parser.parse("A red car driving on the road.")
        assert set(parsed.object_tokens) >= {"red", "car", "driving", "road"}
        assert parsed.complexity == "normal"

    def test_relation_query_q22(self, parser):
        parsed = parser.parse(
            "A red car side by side with another car, both positioned in the center of the road."
        )
        assert "side by side" in parsed.relation_tokens
        assert "center" in parsed.relation_tokens
        assert "car" in parsed.companion_tokens
        assert "red" in parsed.object_tokens
        assert parsed.complexity == "complex"

    def test_companion_query_q34(self, parser):
        parsed = parser.parse("A white dog inside a car, next to a woman wearing black clothes.")
        assert "dog" in parsed.object_tokens
        assert "next to" in parsed.relation_tokens
        assert "woman" in parsed.companion_tokens
        assert "dog" not in parsed.companion_tokens

    def test_suv_synonym_expansion(self, parser):
        parsed = parser.parse("A black SUV driving in the intersection of the road.")
        assert "car" in parsed.object_tokens
        assert "large" in parsed.object_tokens
        assert "intersection" in parsed.relation_tokens

    def test_unknown_words_collected(self, parser):
        parsed = parser.parse("a quantum zeppelin on the road")
        assert "zeppelin" in parsed.unknown_words
        assert "quantum" in parsed.unknown_words

    def test_stop_words_ignored(self, parser):
        parsed = parser.parse("a the car of an")
        assert parsed.object_tokens == ("car",)
        assert parsed.unknown_words == ()

    def test_empty_query_rejected(self, parser):
        with pytest.raises(QueryError):
            parser.parse("   ")

    def test_all_paper_queries_parse_with_object_tokens(self, parser):
        for spec in all_queries():
            parsed = parser.parse(spec.text)
            assert parsed.object_tokens, f"{spec.query_id} produced no object tokens"

    def test_complex_paper_queries_have_relations(self, parser):
        by_id = {spec.query_id: spec for spec in all_queries()}
        assert parser.parse(by_id["Q2.2"].text).complexity == "complex"
        assert parser.parse(by_id["Q3.4"].text).complexity == "complex"


class TestTextEncoder:
    def test_encode_unit_norm(self, encoder):
        vector = encoder.encode("A red car on the road")
        assert vector.shape == (32,)
        assert np.linalg.norm(vector) == pytest.approx(1.0)

    def test_encode_accepts_parsed_query(self, encoder):
        parsed = encoder.parse("A red car on the road")
        np.testing.assert_allclose(encoder.encode(parsed), encoder.encode("A red car on the road"))

    def test_relations_do_not_change_fast_embedding(self, encoder):
        without_relation = encoder.encode("A red car on the road")
        with_relation = encoder.encode("A red car on the road in the center")
        # "center" is a relation token: dropped by the fast-search encoder.
        np.testing.assert_allclose(without_relation, with_relation)

    def test_full_encoding_differs_when_relations_present(self, encoder):
        fast = encoder.encode("A red car in the center of the road")
        full = encoder.encode_full("A red car in the center of the road")
        assert not np.allclose(fast, full)

    def test_query_similarity_matches_intuition(self, encoder):
        red_car = encoder.encode("a red car")
        red_car_again = encoder.encode("a red car driving")
        white_dog = encoder.encode("a white dog")
        assert float(red_car @ red_car_again) > float(red_car @ white_dog)

    def test_token_vectors_shape(self, encoder):
        matrix = encoder.token_vectors(["car", "red"])
        assert matrix.shape == (2, 64)
