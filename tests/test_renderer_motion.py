"""Tests for the frame rasteriser and block-matching motion estimation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.utils.geometry import BoundingBox
from repro.video.model import Frame, ObjectAnnotation
from repro.video.motion import MotionField, estimate_motion, motion_statistics
from repro.video.renderer import FrameRenderer, RenderConfig


def frame_with_car(index: int = 0, x: float = 0.3) -> Frame:
    annotation = ObjectAnnotation(
        object_id="car-1",
        category="car",
        attributes={"color": "red"},
        box=BoundingBox(x, 0.4, 0.25, 0.2),
    )
    return Frame(
        frame_id=f"v0/frame{index:06d}",
        video_id="v0",
        index=index,
        timestamp=index / 30.0,
        objects=(annotation,),
    )


class TestRenderer:
    def test_output_shape_and_range(self):
        renderer = FrameRenderer(config=RenderConfig(height=32, width=40))
        image = renderer.render(frame_with_car())
        assert image.shape == (32, 40, 3)
        assert image.min() >= 0.0 and image.max() <= 1.0

    def test_object_changes_pixels(self):
        renderer = FrameRenderer(config=RenderConfig(noise_scale=0.0))
        empty = Frame(frame_id="v0/frame000000", video_id="v0", index=0, timestamp=0.0)
        with_car = frame_with_car()
        assert not np.allclose(renderer.render(empty), renderer.render(with_car))

    def test_red_car_is_reddish(self):
        renderer = FrameRenderer(config=RenderConfig(noise_scale=0.0))
        image = renderer.render(frame_with_car())
        height, width, _ = image.shape
        # Sample the centre of the car's box.
        y = int(0.5 * height)
        x = int(0.42 * width)
        assert image[y, x, 0] > image[y, x, 1]

    def test_roof_attribute_rendered(self):
        annotation = ObjectAnnotation(
            object_id="bus-1",
            category="bus",
            attributes={"color": "green", "roof": "white roof"},
            box=BoundingBox(0.2, 0.2, 0.4, 0.4),
        )
        frame = Frame(frame_id="v0/frame000000", video_id="v0", index=0, timestamp=0.0,
                      objects=(annotation,))
        image = FrameRenderer(config=RenderConfig(noise_scale=0.0)).render(frame)
        top_row = image[int(0.22 * image.shape[0]), int(0.4 * image.shape[1])]
        bottom_row = image[int(0.5 * image.shape[0]), int(0.4 * image.shape[1])]
        assert top_row.mean() > bottom_row.mean()

    def test_grayscale_shape(self):
        renderer = FrameRenderer()
        luminance = renderer.render_grayscale(frame_with_car())
        assert luminance.shape == (renderer.config.height, renderer.config.width)

    def test_noise_is_deterministic_per_frame(self):
        renderer = FrameRenderer()
        first = renderer.render(frame_with_car())
        second = renderer.render(frame_with_car())
        np.testing.assert_allclose(first, second)


class TestMotionEstimation:
    def test_static_frames_give_zero_motion(self):
        image = np.random.default_rng(0).random((32, 32))
        field = estimate_motion(image, image, block_size=8, search_radius=2)
        assert field.mean_magnitude == pytest.approx(0.0)

    def test_translation_recovered(self):
        rng = np.random.default_rng(1)
        previous = rng.random((40, 40))
        current = np.roll(previous, shift=2, axis=1)
        field = estimate_motion(previous, current, block_size=8, search_radius=3)
        # Interior blocks should report a dominant horizontal shift of ~2 px
        # (the sign follows the backward block-matching convention).
        assert abs(np.median(field.dx[1:-1, 1:-1])) == pytest.approx(2.0)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            estimate_motion(np.zeros((10, 10)), np.zeros((12, 12)))

    def test_motion_statistics_keys(self):
        field = MotionField(dx=np.ones((2, 2)), dy=np.zeros((2, 2)))
        stats = motion_statistics(field)
        assert set(stats) == {"mean", "max", "active_fraction"}
        assert stats["mean"] == pytest.approx(1.0)
        assert stats["active_fraction"] == pytest.approx(1.0)

    def test_empty_field_statistics(self):
        field = MotionField(dx=np.zeros((0, 0)), dy=np.zeros((0, 0)))
        assert motion_statistics(field)["mean"] == 0.0
        assert field.active_fraction == 0.0

    def test_rendered_motion_detects_moving_object(self):
        renderer = FrameRenderer(config=RenderConfig(noise_scale=0.0))
        previous = renderer.render_grayscale(frame_with_car(index=0, x=0.30))
        current = renderer.render_grayscale(frame_with_car(index=1, x=0.36))
        field = estimate_motion(previous, current, block_size=8, search_radius=3)
        assert field.mean_magnitude > 0.0
