"""Validation tests for the configuration dataclasses."""

from __future__ import annotations

import pytest

from repro.config import (
    EncoderConfig,
    IndexConfig,
    KeyframeConfig,
    LOVOConfig,
    QueryConfig,
)
from repro.errors import ConfigurationError


class TestEncoderConfig:
    def test_defaults_valid(self):
        config = EncoderConfig()
        assert config.embedding_dim > config.class_embedding_dim

    def test_rejects_nonpositive_dims(self):
        with pytest.raises(ConfigurationError):
            EncoderConfig(embedding_dim=0)
        with pytest.raises(ConfigurationError):
            EncoderConfig(class_embedding_dim=0)

    def test_rejects_class_dim_larger_than_embedding(self):
        with pytest.raises(ConfigurationError):
            EncoderConfig(embedding_dim=32, class_embedding_dim=64)

    def test_rejects_bad_grid_and_noise(self):
        with pytest.raises(ConfigurationError):
            EncoderConfig(patch_grid=0)
        with pytest.raises(ConfigurationError):
            EncoderConfig(noise_scale=-0.1)


class TestKeyframeConfig:
    def test_valid_strategies(self):
        for strategy in ("mvmed", "uniform", "content", "all"):
            assert KeyframeConfig(strategy=strategy).strategy == strategy

    def test_unknown_strategy_rejected(self):
        with pytest.raises(ConfigurationError):
            KeyframeConfig(strategy="magic")

    def test_bad_stride_rejected(self):
        with pytest.raises(ConfigurationError):
            KeyframeConfig(uniform_stride=0)


class TestIndexConfig:
    def test_defaults(self):
        config = IndexConfig()
        assert config.index_type == "ivfpq"

    def test_unknown_index_type(self):
        with pytest.raises(ConfigurationError):
            IndexConfig(index_type="faiss")

    def test_nprobe_bounds(self):
        with pytest.raises(ConfigurationError):
            IndexConfig(num_coarse_clusters=4, nprobe=8)

    def test_bad_quantization_params(self):
        with pytest.raises(ConfigurationError):
            IndexConfig(num_subspaces=0)
        with pytest.raises(ConfigurationError):
            IndexConfig(num_centroids=1)


class TestQueryConfig:
    def test_defaults(self):
        config = QueryConfig()
        assert config.rerank_enabled and config.ann_enabled

    def test_bad_depths(self):
        with pytest.raises(ConfigurationError):
            QueryConfig(fast_search_k=0)
        with pytest.raises(ConfigurationError):
            QueryConfig(rerank_n=0)
        with pytest.raises(ConfigurationError):
            QueryConfig(max_candidate_frames=0)

    def test_bad_iou_threshold(self):
        with pytest.raises(ConfigurationError):
            QueryConfig(iou_threshold=0.0)
        with pytest.raises(ConfigurationError):
            QueryConfig(iou_threshold=1.0)


class TestLOVOConfig:
    def test_with_overrides_replaces_only_given_parts(self):
        base = LOVOConfig()
        updated = base.with_overrides(query=QueryConfig(rerank_enabled=False))
        assert updated.query.rerank_enabled is False
        assert updated.encoder is base.encoder
        assert updated.index is base.index

    def test_default_composition(self):
        config = LOVOConfig()
        assert config.index.index_type == "ivfpq"
        assert config.keyframes.strategy == "mvmed"
