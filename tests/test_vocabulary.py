"""Tests for the concept vocabulary and synonym handling."""

from __future__ import annotations

from repro.encoders.vocabulary import (
    default_vocabulary,
    split_object_and_relation_tokens,
)


class TestVocabulary:
    def setup_method(self):
        self.vocabulary = default_vocabulary()

    def test_known_concepts_present(self):
        known = set(self.vocabulary.known_concepts())
        for concept in ["car", "bus", "person", "woman", "red", "road", "side by side"]:
            assert concept in known

    def test_canonicalize_direct_concept(self):
        assert self.vocabulary.canonicalize("car") == ("car",)

    def test_canonicalize_synonym_suv(self):
        assert set(self.vocabulary.canonicalize("SUV")) == {"car", "large"}

    def test_canonicalize_phrase_synonym(self):
        assert "car_interior" in self.vocabulary.canonicalize("inside a car")

    def test_canonicalize_unknown(self):
        assert self.vocabulary.canonicalize("zeppelin") == ()

    def test_parents_hierarchy(self):
        assert "person" in self.vocabulary.parents("woman")
        assert "vehicle" in self.vocabulary.parents("car")
        assert self.vocabulary.parents("red") == ()

    def test_relation_concepts(self):
        assert self.vocabulary.is_relation("side by side")
        assert self.vocabulary.is_relation("center")
        assert not self.vocabulary.is_relation("car")

    def test_phrases_sorted_longest_first(self):
        phrases = self.vocabulary.phrases()
        lengths = [len(phrase.split()) for phrase in phrases]
        assert lengths == sorted(lengths, reverse=True)

    def test_split_object_and_relation_tokens(self):
        objects, relations = split_object_and_relation_tokens(
            self.vocabulary, ["car", "red", "side by side", "center"]
        )
        assert objects == ["car", "red"]
        assert relations == ["side by side", "center"]

    def test_case_insensitive_canonicalization(self):
        assert self.vocabulary.canonicalize("Red") == ("red",)
