"""Tests for the Kalman filter and ByteTrack-style tracker."""

from __future__ import annotations


from repro.tracking import ByteTracker, ConstantVelocityKalman, Detection
from repro.utils.geometry import BoundingBox, iou


class TestKalman:
    def test_initial_state_matches_box(self):
        box = BoundingBox.from_center(0.4, 0.5, 0.2, 0.1)
        kalman = ConstantVelocityKalman(box)
        estimate = kalman.current_box()
        assert iou(estimate, box) > 0.99

    def test_update_moves_toward_measurement(self):
        kalman = ConstantVelocityKalman(BoundingBox.from_center(0.2, 0.5, 0.1, 0.1))
        kalman.predict()
        corrected = kalman.update(BoundingBox.from_center(0.3, 0.5, 0.1, 0.1))
        assert 0.2 < corrected.center[0] <= 0.31

    def test_learns_constant_velocity(self):
        kalman = ConstantVelocityKalman(BoundingBox.from_center(0.1, 0.5, 0.1, 0.1))
        for step in range(1, 10):
            kalman.predict()
            kalman.update(BoundingBox.from_center(0.1 + 0.02 * step, 0.5, 0.1, 0.1))
        predicted = kalman.predict()
        assert predicted.center[0] > 0.27

    def test_box_sizes_stay_positive(self):
        kalman = ConstantVelocityKalman(BoundingBox.from_center(0.5, 0.5, 0.01, 0.01))
        for _ in range(20):
            kalman.predict()
        box = kalman.current_box()
        assert box.w > 0 and box.h > 0


class TestByteTracker:
    def make_detection(self, x: float, score: float = 0.9, category: str = "car") -> Detection:
        return Detection(box=BoundingBox.from_center(x, 0.5, 0.1, 0.1), score=score, category=category)

    def test_single_object_keeps_one_track(self):
        tracker = ByteTracker()
        for step in range(10):
            tracker.step(f"f{step}", [self.make_detection(0.2 + 0.01 * step)])
        tracks = tracker.finish()
        assert len(tracks) == 1
        assert tracks[0].length == 10

    def test_two_objects_two_tracks(self):
        tracker = ByteTracker()
        for step in range(8):
            tracker.step(
                f"f{step}",
                [self.make_detection(0.2 + 0.01 * step), self.make_detection(0.7 - 0.01 * step)],
            )
        assert len(tracker.finish()) == 2

    def test_low_confidence_rescues_track(self):
        tracker = ByteTracker(high_threshold=0.5)
        tracker.step("f0", [self.make_detection(0.3, score=0.9)])
        tracker.step("f1", [self.make_detection(0.31, score=0.3)])
        tracks = tracker.finish()
        assert len(tracks) == 1
        assert tracks[0].length == 2

    def test_category_mismatch_spawns_new_track(self):
        tracker = ByteTracker()
        tracker.step("f0", [self.make_detection(0.3, category="car")])
        tracker.step("f1", [self.make_detection(0.31, category="bus")])
        assert len(tracker.finish()) == 2

    def test_stale_tracks_are_retired(self):
        tracker = ByteTracker(max_misses=2)
        tracker.step("f0", [self.make_detection(0.3)])
        for step in range(1, 6):
            tracker.step(f"f{step}", [])
        tracks = tracker.finish()
        assert len(tracks) == 1
        assert tracks[0].length == 1

    def test_track_boxes_follow_object(self):
        tracker = ByteTracker()
        for step in range(12):
            tracker.step(f"f{step}", [self.make_detection(0.2 + 0.02 * step)])
        track = tracker.finish()[0]
        last_box = track.boxes["f11"]
        assert last_box.center[0] > 0.35
