"""Tests for the simulated detection model zoo."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.detectors import (
    MSCOCO_CLASSES,
    DetectionModel,
    burn_model_compute,
    detections_to_annotations,
    model_zoo,
)
from repro.encoders.concepts import ConceptSpace
from repro.utils.geometry import BoundingBox, iou
from repro.video.model import Frame, ObjectAnnotation


@pytest.fixture(scope="module")
def space():
    return ConceptSpace(dim=64, seed=7)


def frame_with(objects, frame_id="v0/frame000000") -> Frame:
    return Frame(frame_id=frame_id, video_id="v0", index=0, timestamp=0.0, objects=tuple(objects))


def annotation(category, color="red", object_id="o1", box=None) -> ObjectAnnotation:
    return ObjectAnnotation(
        object_id=object_id, category=category, attributes={"color": color},
        context=("road",), activity=("driving",),
        box=box or BoundingBox(0.3, 0.3, 0.2, 0.2),
    )


class TestDetectionModel:
    def test_detects_known_classes(self, space):
        model = DetectionModel(name="test", miss_rate=0.0, localization_noise=0.0)
        detections = model.detect(frame_with([annotation("car")]), space)
        assert len(detections) == 1
        assert detections[0].category == "car"
        assert iou(detections[0].box, annotation("car").box) > 0.95

    def test_ignores_unknown_classes(self, space):
        model = DetectionModel(name="test", miss_rate=0.0)
        detections = model.detect(frame_with([annotation("cart", object_id="cart-1")]), space)
        # "cart" falls back to "car" (nearest predefined class).
        assert detections and detections[0].category == "car"
        none_class = ObjectAnnotation("x", "statue", box=BoundingBox(0.1, 0.1, 0.2, 0.2))
        assert model.detect(frame_with([none_class]), space) == []

    def test_woman_maps_to_person(self, space):
        model = DetectionModel(name="test", miss_rate=0.0)
        detections = model.detect(frame_with([annotation("woman", object_id="w1")]), space)
        assert detections[0].category == "person"

    def test_miss_rate_drops_detections(self, space):
        always_miss = DetectionModel(name="blind", miss_rate=1.0)
        assert always_miss.detect(frame_with([annotation("car")]), space) == []

    def test_domain_bias_increases_misses(self, space):
        biased = DetectionModel(name="biased", miss_rate=0.0, domain_bias={"car": 1.0})
        assert biased.detect(frame_with([annotation("car")]), space) == []
        unbiased_class = annotation("person", object_id="p1")
        assert biased.detect(frame_with([unbiased_class]), space)

    def test_appearance_is_unit_norm_and_semantic(self, space):
        model = DetectionModel(name="test", miss_rate=0.0)
        detection = model.detect(frame_with([annotation("car", color="red")]), space)[0]
        assert np.linalg.norm(detection.appearance) == pytest.approx(1.0)
        red_query = space.encode(["red", "car"])
        dog_query = space.encode(["white", "dog"])
        assert float(detection.appearance @ red_query) > float(detection.appearance @ dog_query)

    def test_detection_deterministic_per_frame(self, space):
        model = DetectionModel(name="test", miss_rate=0.3)
        first = model.detect(frame_with([annotation("car")]), space)
        second = model.detect(frame_with([annotation("car")]), space)
        assert len(first) == len(second)

    def test_supports_class(self):
        model = DetectionModel(name="test")
        assert model.supports_class("car")
        assert not model.supports_class("woman")


class TestZooAndHelpers:
    def test_model_zoo_profiles(self):
        zoo = model_zoo()
        assert set(zoo) == {"tiny", "base", "large"}
        assert zoo["tiny"].miss_rate > zoo["large"].miss_rate
        assert zoo["tiny"].compute_units < zoo["large"].compute_units

    def test_mscoco_classes_closed_set(self):
        assert "car" in MSCOCO_CLASSES
        assert "woman" not in MSCOCO_CLASSES

    def test_burn_model_compute_accepts_zero(self):
        burn_model_compute(0)
        burn_model_compute(16, repeats=2)

    def test_detections_to_annotations(self, space):
        model = DetectionModel(name="test", miss_rate=0.0)
        detections = model.detect(frame_with([annotation("car")]), space)
        annotations = detections_to_annotations(detections)
        assert annotations[0].category == "car"
