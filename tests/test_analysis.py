"""Tests for the LOVO concurrency lint pass and the runtime lockdep sanitizer.

Covers, per ISSUE 10:

* each LOVO rule with a firing fixture AND a clean counterexample,
* suppression-comment handling (same line, comment-above, def-level),
* the text/JSON reporters and the ``python -m repro.analysis`` entry point
  running clean on this repository,
* the lockdep runtime: a deterministic ABBA deadlock raising
  :class:`LockOrderViolation` *before* the deadlock, re-entrancy, Condition
  integration, hold budgets, and the zero-overhead disabled path,
* regression tests for the genuine findings the pass surfaced (engine
  KeyboardInterrupt forwarding, ingestor SystemExit unwinding, the
  double-build flush race, the attach_streaming race).
"""

from __future__ import annotations

import json
import textwrap
import threading
import time
from types import SimpleNamespace
from typing import List, Optional, Sequence

import numpy as np
import pytest

from repro import LOVOConfig, ServeConfig
from repro.analysis import (
    RULES,
    analyze_source,
    parse_suppressions,
    render_json,
    render_text,
)
from repro.analysis.__main__ import main as analysis_main
from repro.analysis.engine import Analyzer, analyze_paths
from repro.config import IndexConfig
from repro.core.results import BatchQueryResponse, QueryResponse
from repro.core.summary import SummaryOutput
from repro.serve import PendingQuery, ServingEngine
from repro.stream.ingestor import StreamingIngestor
from repro.utils.locking import (
    LockHeldTooLong,
    LockOrderViolation,
    OrderedLock,
    OrderedRLock,
    create_condition,
    create_lock,
    create_rlock,
    instrument_locks,
    lockdep,
    lockdep_enabled,
)
from repro.vectordb.collection import VectorCollection


def codes(source: str, *, include_suppressed: bool = False) -> List[str]:
    """Unsuppressed rule codes for an inline module, in report order."""
    findings = analyze_source(textwrap.dedent(source))
    return [
        finding.code
        for finding in findings
        if include_suppressed or not finding.suppressed
    ]


# --------------------------------------------------------------------------
# LOVO001 — unguarded mutation from a thread-entry callable
# --------------------------------------------------------------------------


class TestLOVO001:
    def test_fires_on_unguarded_worker_mutation(self):
        assert "LOVO001" in codes(
            """
            import threading

            class Worker:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._count = 0

                def start(self):
                    threading.Thread(target=self._run, daemon=True).start()

                def add(self):
                    with self._lock:
                        self._count += 1

                def _run(self):
                    self._count += 1
            """
        )

    def test_clean_when_worker_takes_the_lock(self):
        assert "LOVO001" not in codes(
            """
            import threading

            class Worker:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._count = 0

                def start(self):
                    threading.Thread(target=self._run, daemon=True).start()

                def add(self):
                    with self._lock:
                        self._count += 1

                def _run(self):
                    with self._lock:
                        self._count += 1
            """
        )

    def test_clean_for_non_thread_methods_and_init(self):
        # Unlocked mutation from a plain (caller-context) method is not the
        # worker-thread hazard this rule encodes.
        assert "LOVO001" not in codes(
            """
            import threading

            class Holder:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._value = 0

                def locked_set(self, v):
                    with self._lock:
                        self._value = v

                def unlocked_set(self, v):
                    self._value = v
            """
        )


# --------------------------------------------------------------------------
# LOVO002 — static lock-order inversion
# --------------------------------------------------------------------------


class TestLOVO002:
    def test_fires_on_inverted_nesting(self):
        found = codes(
            """
            import threading

            class TwoLocks:
                def __init__(self):
                    self._a = threading.Lock()
                    self._b = threading.Lock()

                def forward(self):
                    with self._a:
                        with self._b:
                            pass

                def backward(self):
                    with self._b:
                        with self._a:
                            pass
            """
        )
        assert "LOVO002" in found

    def test_clean_on_consistent_order(self):
        assert "LOVO002" not in codes(
            """
            import threading

            class TwoLocks:
                def __init__(self):
                    self._a = threading.Lock()
                    self._b = threading.Lock()

                def one(self):
                    with self._a:
                        with self._b:
                            pass

                def two(self):
                    with self._a:
                        with self._b:
                            pass
            """
        )

    def test_cycle_detected_across_files(self):
        analyzer = Analyzer()
        analyzer.add_source(
            textwrap.dedent(
                """
                import threading

                class Pair:
                    def __init__(self):
                        self._a = threading.Lock()
                        self._b = threading.Lock()

                    def forward(self):
                        with self._a:
                            with self._b:
                                pass
                """
            ),
            "first.py",
        )
        analyzer.add_source(
            textwrap.dedent(
                """
                import threading

                class Pair:
                    def __init__(self):
                        self._a = threading.Lock()
                        self._b = threading.Lock()

                    def backward(self):
                        with self._b:
                            with self._a:
                                pass
                """
            ),
            "second.py",
        )
        findings = analyzer.finalize()
        paths = {f.path for f in findings if f.code == "LOVO002"}
        assert paths == {"first.py", "second.py"}


# --------------------------------------------------------------------------
# LOVO003 — blocking call under a held lock
# --------------------------------------------------------------------------


class TestLOVO003:
    def test_fires_on_sleep_under_lock(self):
        assert "LOVO003" in codes(
            """
            import threading
            import time

            class Sleepy:
                def __init__(self):
                    self._lock = threading.Lock()

                def work(self):
                    with self._lock:
                        time.sleep(1.0)
            """
        )

    def test_fires_on_queue_get_under_lock(self):
        assert "LOVO003" in codes(
            """
            import queue
            import threading

            class Consumer:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._queue = queue.Queue()

                def take(self):
                    with self._lock:
                        return self._queue.get()
            """
        )

    def test_clean_when_blocking_happens_outside_lock(self):
        assert "LOVO003" not in codes(
            """
            import threading
            import time

            class Sleepy:
                def __init__(self):
                    self._lock = threading.Lock()

                def work(self):
                    with self._lock:
                        pass
                    time.sleep(1.0)
            """
        )

    def test_condition_wait_on_held_lock_is_exempt(self):
        # Condition.wait releases the lock it waits on; that is the one
        # blocking call that is *correct* inside its own with block.
        assert "LOVO003" not in codes(
            """
            import threading

            class Waiter:
                def __init__(self):
                    self._state = threading.Condition()

                def wait_done(self):
                    with self._state:
                        self._state.wait(1.0)
            """
        )

    def test_dict_get_is_not_a_queue_get(self):
        assert "LOVO003" not in codes(
            """
            import threading

            class Lookup:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._table = {}

                def fetch(self, key):
                    with self._lock:
                        return self._table.get(key)
            """
        )


# --------------------------------------------------------------------------
# LOVO004 — time.time() for durations
# --------------------------------------------------------------------------


class TestLOVO004:
    def test_fires_on_time_time(self):
        assert "LOVO004" in codes(
            """
            import time

            def measure():
                start = time.time()
                return time.time() - start
            """
        )

    def test_fires_on_bare_from_import(self):
        assert "LOVO004" in codes(
            """
            from time import time

            def stamp():
                return time()
            """
        )

    def test_clean_on_perf_counter(self):
        assert "LOVO004" not in codes(
            """
            import time

            def measure():
                start = time.perf_counter()
                return time.perf_counter() - start
            """
        )


# --------------------------------------------------------------------------
# LOVO005 — unbounded growth in concurrent classes
# --------------------------------------------------------------------------


class TestLOVO005:
    def test_fires_on_unbounded_append(self):
        assert "LOVO005" in codes(
            """
            import threading

            class Service:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._log = []

                def handle(self, item):
                    with self._lock:
                        self._log.append(item)
            """
        )

    def test_clean_with_eviction(self):
        assert "LOVO005" not in codes(
            """
            import threading

            class Service:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._log = []

                def handle(self, item):
                    with self._lock:
                        self._log.append(item)
                        if len(self._log) > 100:
                            self._log.pop(0)
            """
        )

    def test_clean_with_bounded_deque(self):
        assert "LOVO005" not in codes(
            """
            import threading
            from collections import deque

            class Service:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._log = deque(maxlen=100)

                def handle(self, item):
                    with self._lock:
                        self._log.append(item)
            """
        )

    def test_plain_data_classes_are_out_of_scope(self):
        # No lock, no threads: not a long-running concurrent structure.
        assert "LOVO005" not in codes(
            """
            class Bag:
                def __init__(self):
                    self._items = []

                def add(self, item):
                    self._items.append(item)
            """
        )


# --------------------------------------------------------------------------
# LOVO006 — overbroad except
# --------------------------------------------------------------------------


class TestLOVO006:
    def test_fires_on_bare_except(self):
        assert "LOVO006" in codes(
            """
            def run(task):
                try:
                    task()
                except:
                    pass
            """
        )

    def test_fires_on_swallowed_base_exception(self):
        assert "LOVO006" in codes(
            """
            def run(task):
                try:
                    task()
                except BaseException:
                    return None
            """
        )

    def test_clean_when_reraised(self):
        assert "LOVO006" not in codes(
            """
            def run(task):
                try:
                    task()
                except BaseException as error:
                    log(error)
                    raise
            """
        )

    def test_clean_on_plain_exception(self):
        # ``except Exception`` already lets KeyboardInterrupt/SystemExit fly.
        assert "LOVO006" not in codes(
            """
            def run(task):
                try:
                    task()
                except Exception:
                    pass
            """
        )


# --------------------------------------------------------------------------
# Suppressions
# --------------------------------------------------------------------------


class TestSuppressions:
    SOURCE = """
    import time

    def stamp():
        return time.time()  # lovo: ignore[LOVO004] wall-clock export timestamp
    """

    def test_trailing_comment_suppresses_with_justification(self):
        findings = analyze_source(textwrap.dedent(self.SOURCE))
        assert [f.code for f in findings] == ["LOVO004"]
        assert findings[0].suppressed
        assert findings[0].justification == "wall-clock export timestamp"

    def test_comment_above_suppresses_next_line(self):
        findings = analyze_source(
            textwrap.dedent(
                """
                import time

                def stamp():
                    # lovo: ignore[LOVO004] epoch timestamps for the API payload
                    return time.time()
                """
            )
        )
        assert findings[0].suppressed

    def test_def_level_suppression_covers_whole_function(self):
        findings = analyze_source(
            textwrap.dedent(
                """
                import time

                def stamps():  # lovo: ignore[LOVO004] wall-clock by design
                    first = time.time()
                    second = time.time()
                    return first, second
                """
            )
        )
        assert len(findings) == 2
        assert all(f.suppressed for f in findings)

    def test_mismatched_code_does_not_suppress(self):
        findings = analyze_source(
            textwrap.dedent(
                """
                import time

                def stamp():
                    return time.time()  # lovo: ignore[LOVO003] wrong code
                """
            )
        )
        assert not findings[0].suppressed

    def test_bare_ignore_suppresses_all_codes(self):
        findings = analyze_source(
            textwrap.dedent(
                """
                import time

                def stamp():
                    return time.time()  # lovo: ignore
                """
            )
        )
        assert findings[0].suppressed

    def test_parse_suppressions_reads_codes_and_justification(self):
        parsed = parse_suppressions(
            "x = 1  # lovo: ignore[LOVO001, LOVO004] two reasons here\n"
        )
        assert parsed[0].line == 1
        assert parsed[0].codes == {"LOVO001", "LOVO004"}
        assert parsed[0].justification == "two reasons here"


# --------------------------------------------------------------------------
# Reporters, CLI, and the repo itself
# --------------------------------------------------------------------------


class TestReporting:
    def _analyzer(self) -> Analyzer:
        analyzer = Analyzer()
        analyzer.add_source(
            textwrap.dedent(
                """
                import time

                def a():
                    return time.time()

                def b():
                    return time.time()  # lovo: ignore[LOVO004] by design
                """
            ),
            "sample.py",
        )
        analyzer.finalize()
        return analyzer

    def test_text_report_has_location_and_summary(self):
        text = render_text(self._analyzer())
        assert "sample.py:5" in text
        assert "LOVO004" in text
        assert "1 finding(s), 1 suppressed" in text

    def test_json_report_round_trips(self):
        payload = json.loads(render_json(self._analyzer(), show_suppressed=True))
        assert payload["counts"] == {"unsuppressed": 1, "suppressed": 1}
        assert payload["checked_files"] == 1
        assert {f["code"] for f in payload["findings"]} == {"LOVO004"}
        assert set(payload["rules"]) == set(RULES)

    def test_syntax_error_is_reported_not_crashed(self):
        analyzer = Analyzer()
        analyzer.add_source("def broken(:\n", "bad.py")
        analyzer.finalize()
        assert analyzer.errors and "bad.py" in analyzer.errors[0]

    def test_repo_is_clean(self, capsys):
        # The merge gate: zero unsuppressed findings on the shipped package.
        assert analysis_main(["--format=json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["counts"]["unsuppressed"] == 0

    def test_cli_exits_nonzero_on_findings(self, tmp_path, capsys):
        bad = tmp_path / "bad_module.py"
        bad.write_text("import time\n\ndef f():\n    return time.time()\n")
        assert analysis_main([str(bad)]) == 1
        assert "LOVO004" in capsys.readouterr().out

    def test_analyze_paths_walks_directories(self, tmp_path):
        (tmp_path / "pkg").mkdir()
        (tmp_path / "pkg" / "mod.py").write_text(
            "import time\n\ndef f():\n    return time.time()\n"
        )
        analyzer = analyze_paths([tmp_path])
        assert [f.code for f in analyzer.unsuppressed] == ["LOVO004"]


# --------------------------------------------------------------------------
# Lockdep runtime
# --------------------------------------------------------------------------


@pytest.fixture
def lockdep_on():
    instrument_locks(True)
    lockdep.reset()
    yield lockdep
    lockdep.reset()
    instrument_locks(None)


class TestLockdep:
    def test_abba_raises_deterministically_across_threads(self, lockdep_on):
        lock_a = OrderedLock("abba.A")
        lock_b = OrderedLock("abba.B")

        def establish_ab() -> None:
            with lock_a:
                with lock_b:
                    pass

        first = threading.Thread(target=establish_ab)
        first.start()
        first.join(timeout=5.0)
        assert not first.is_alive()

        caught: List[BaseException] = []

        def invert_ba() -> None:
            try:
                with lock_b:
                    with lock_a:  # pragma: no cover - never reached
                        pass
            except LockOrderViolation as error:
                caught.append(error)

        second = threading.Thread(target=invert_ba)
        second.start()
        # The violation is raised *before* blocking on lock_a, so this join
        # always returns: the test never deadlocks even on regression it
        # would fail by timeout, not hang the suite forever.
        second.join(timeout=5.0)
        assert not second.is_alive()
        assert len(caught) == 1
        message = str(caught[0])
        assert "abba.A" in message and "abba.B" in message

    def test_edge_graph_records_order_with_sites(self, lockdep_on):
        lock_a = OrderedLock("graph.A")
        lock_b = OrderedLock("graph.B")
        with lock_a:
            with lock_b:
                pass
        edges = lockdep.edges()
        assert "graph.B" in edges["graph.A"]
        assert "test_analysis.py" in edges["graph.A"]["graph.B"]

    def test_rlock_reentrancy_is_not_a_violation(self, lockdep_on):
        rlock = OrderedRLock("reent.R")
        with rlock:
            with rlock:
                assert lockdep.held_names() == ["reent.R"]
        assert lockdep.held_names() == []

    def test_plain_lock_self_deadlock_raises(self, lockdep_on):
        lock = OrderedLock("self.L")
        lock.acquire()
        try:
            with pytest.raises(LockOrderViolation, match="Self-deadlock"):
                lock.acquire()
        finally:
            lock.release()

    def test_same_name_instances_do_not_edge(self, lockdep_on):
        # Per-instance locks of the same lock class (e.g. two Trace._lock
        # instances) follow the kernel-lockdep nesting convention: no edge,
        # in either order.
        first = OrderedLock("shared.name")
        second = OrderedLock("shared.name")
        with first:
            with second:
                pass
        with second:
            with first:
                pass
        assert "shared.name" not in lockdep.edges()

    def test_condition_wait_suspends_held_record(self, lockdep_on):
        condition = create_condition("cond.state")
        done: List[bool] = []

        def waiter() -> None:
            with condition:
                condition.wait(timeout=5.0)
                done.append(True)

        thread = threading.Thread(target=waiter)
        thread.start()
        time.sleep(0.05)
        with condition:
            condition.notify_all()
        thread.join(timeout=5.0)
        assert done == [True]
        assert lockdep.held_names() == []

    def test_hold_budget_violation_recorded(self, lockdep_on):
        previous = lockdep.budget_seconds
        lockdep.budget_seconds = 0.01
        try:
            lock = OrderedLock("budget.L")
            with pytest.warns(LockHeldTooLong):
                with lock:
                    time.sleep(0.05)
            assert any(
                violation["name"] == "budget.L"
                for violation in lockdep.hold_violations
            )
        finally:
            lockdep.budget_seconds = previous

    def test_factories_return_plain_primitives_when_disabled(self):
        instrument_locks(False)
        try:
            assert not lockdep_enabled()
            assert not isinstance(create_lock("x"), OrderedLock)
            assert not isinstance(create_rlock("x"), OrderedLock)
            assert not isinstance(
                create_condition("x")._lock, OrderedLock  # noqa: SLF001
            )
        finally:
            instrument_locks(None)

    def test_factories_return_tracked_locks_when_enabled(self, lockdep_on):
        assert lockdep_enabled()
        assert isinstance(create_lock("x"), OrderedLock)
        assert isinstance(create_rlock("x"), OrderedRLock)


# --------------------------------------------------------------------------
# Regression tests for the findings the pass surfaced
# --------------------------------------------------------------------------


class _EngineStub:
    """Duck-typed system for ServingEngine whose query path raises on demand."""

    def __init__(self, error: Optional[BaseException] = None) -> None:
        self.config = LOVOConfig()
        self.error = error

    def query_batch(self, texts: Sequence[str], top_n=None, *, options=None):
        if self.error is not None:
            raise self.error
        responses = [
            QueryResponse(query=text, results=[], timings={}) for text in texts
        ]
        return BatchQueryResponse(queries=list(texts), responses=responses)


def _pending(text: str = "a red car") -> PendingQuery:
    return PendingQuery(
        text=text, top_n=3, enqueued_at=time.perf_counter(), options=None, trace=None
    )


class TestEngineControlFlowRegression:
    def _engine(self, error: Optional[BaseException]) -> ServingEngine:
        config = ServeConfig(num_workers=1, queue_size=4, cache_size=0)
        return ServingEngine(_EngineStub(error), config)

    def test_keyboard_interrupt_reaches_future_and_unwinds(self):
        engine = self._engine(KeyboardInterrupt())
        pending = _pending()
        # The fix: the future is failed AND the interrupt still propagates
        # (pre-fix it was swallowed, leaving a worker that ignored Ctrl-C).
        with pytest.raises(KeyboardInterrupt):
            engine._process_group(pending.effective_options(), [pending])
        assert isinstance(pending.future.exception(), KeyboardInterrupt)

    def test_plain_exception_is_contained(self):
        engine = self._engine(ValueError("boom"))
        pending = _pending()
        engine._process_group(pending.effective_options(), [pending])
        assert isinstance(pending.future.exception(), ValueError)

    def test_attach_streaming_race_returns_single_ingestor(self):
        engine = self._engine(None)

        class FakeIngestor:
            def __init__(self) -> None:
                self.starts = 0

            def start(self):
                self.starts += 1
                return self

            def stop(self, drain=True, timeout=None):
                pass

        fakes = [FakeIngestor() for _ in range(2)]
        barrier = threading.Barrier(2)
        attached: List[object] = []

        def attach(fake: FakeIngestor) -> None:
            barrier.wait()
            attached.append(engine.attach_streaming(fake))

        threads = [threading.Thread(target=attach, args=(fake,)) for fake in fakes]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=5.0)
        assert len(attached) == 2
        assert attached[0] is attached[1]
        assert sum(fake.starts for fake in fakes) == 1

    def test_stop_joins_workers_outside_lifecycle_lock(self):
        # stop() must not hold the lifecycle lock across worker joins: a
        # stats() caller (which never touches the lock) plus a concurrent
        # stop() must both complete promptly while a slow batch drains.
        engine = self._engine(None)
        engine.start()
        future = engine.submit("a red car")
        future.result(timeout=10.0)
        engine.stop(timeout=5.0)
        assert not engine.running


class _StreamStub:
    """Duck-typed system for StreamingIngestor with a scriptable summarizer."""

    def __init__(self) -> None:
        self.config = LOVOConfig()
        self.errors: List[BaseException] = []
        self.ingested: List[str] = []
        self.data_version = 0
        self.text_encoder = SimpleNamespace(
            encode=lambda text: np.zeros(8, dtype=np.float64)
        )
        self.tracer = SimpleNamespace(
            start=lambda **kwargs: None, finish=lambda trace, **kwargs: None
        )
        self.summarizer = SimpleNamespace(summarize=self._summarize)

    def _summarize(self, dataset, timer=None) -> SummaryOutput:
        if self.errors:
            raise self.errors.pop(0)
        return SummaryOutput()

    def ingest_summary(self, dataset_name: str, summary: SummaryOutput) -> None:
        self.ingested.append(dataset_name)
        self.data_version += 1


class TestIngestorControlFlowRegression:
    def test_value_error_resolves_ticket_and_keeps_pipeline_alive(self):
        system = _StreamStub()
        system.errors.append(ValueError("encode failed"))
        ingestor = StreamingIngestor(system).start()
        try:
            bad = ingestor.submit(SimpleNamespace(name="seg-bad"))
            with pytest.raises(ValueError):
                bad.result(timeout=10.0)
            # The stage survived the plain exception: a follow-up succeeds.
            good = ingestor.submit(SimpleNamespace(name="seg-good"))
            good.result(timeout=10.0)
            assert system.ingested == ["seg-good"]
        finally:
            ingestor.stop(timeout=10.0)

    # The stage unwinding with SystemExit is exactly the asserted behavior;
    # pytest's thread-excepthook warning about it is expected noise here.
    @pytest.mark.filterwarnings(
        "ignore::pytest.PytestUnhandledThreadExceptionWarning"
    )
    def test_system_exit_resolves_ticket_then_kills_stage(self):
        system = _StreamStub()
        system.errors.append(SystemExit(3))
        ingestor = StreamingIngestor(system).start()
        ticket = ingestor.submit(SimpleNamespace(name="seg-exit"))
        with pytest.raises(SystemExit):
            ticket.result(timeout=10.0)
        # The fix: SystemExit unwinds the encode stage (pre-fix the thread
        # swallowed it and kept consuming), and the index stage is told to
        # stop so shutdown cannot hang.
        ingestor._encode_thread.join(timeout=10.0)
        assert not ingestor._encode_thread.is_alive()
        ingestor._index_thread.join(timeout=10.0)
        assert not ingestor._index_thread.is_alive()


class TestCollectionFlushRegression:
    def test_concurrent_first_searches_build_once(self):
        collection = VectorCollection("c", 4, IndexConfig(index_type="flat"))
        rng = np.random.default_rng(7)
        vectors = rng.normal(size=(8, 4))
        vectors /= np.linalg.norm(vectors, axis=1, keepdims=True)
        collection.insert([f"id-{i}" for i in range(8)], vectors)

        build_calls: List[int] = []
        original_build = collection._index.build

        def slow_build() -> None:
            build_calls.append(1)
            time.sleep(0.05)
            original_build()

        collection._index.build = slow_build
        barrier = threading.Barrier(2)
        errors: List[BaseException] = []

        def first_search() -> None:
            try:
                barrier.wait(timeout=5.0)
                collection.search(vectors[0], 1)
            except BaseException as error:  # noqa: BLE001 - collected for assert
                errors.append(error)

        threads = [threading.Thread(target=first_search) for _ in range(2)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=10.0)
        assert not errors
        # Pre-fix both racing first-searches ran build(); now the flush is
        # serialised and the second caller sees _built already set.
        assert len(build_calls) == 1
