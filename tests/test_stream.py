"""Tests for the streaming ingest subsystem (:mod:`repro.stream`).

The load-bearing assertion is **bit-exact parity**: streaming N segments
through the background encode→index pipeline produces a system whose query
results are identical — frame ids, patch ids, scores, boxes — to ingesting
the same segments offline in the same order, for every index family, sharded
and unsharded.  On top of that: delta snapshots (warm start + compaction),
standing queries end-to-end over HTTP, the stale-cache-after-ingest
regression, concurrent insert-while-search safety, and the empty-system
snapshot round trip.
"""

from __future__ import annotations

import json
import threading
import time
import urllib.error
import urllib.request
from typing import List

import numpy as np
import pytest

from repro import LOVO, LOVOConfig, ServeConfig, StreamConfig
from repro.config import (
    EncoderConfig,
    IndexConfig,
    KeyframeConfig,
    QueryConfig,
    ShardConfig,
)
from repro.core.query import QueryOptions
from repro.core.results import QueryResponse
from repro.errors import (
    ConfigurationError,
    StreamBackpressureError,
    StreamClosedError,
    StreamError,
    SubscriptionNotFoundError,
    SystemNotReadyError,
    VectorDatabaseError,
)
from repro.persist import DeltaSnapshotStore
from repro.serve import ServingEngine
from repro.serve.cache import ResultCache
from repro.serve.http import make_server
from repro.stream import StreamingIngestor, SubscriptionManager
from repro.vectordb.hnsw import HNSWIndex
from repro.video.datasets import make_bellevue

QUERY = "A red car driving in the center of the road"


def stream_config(
    index_type: str = "ivfpq", num_shards: int = 1, **stream_overrides
) -> LOVOConfig:
    """A fast test configuration with a selectable index family / sharding."""
    return LOVOConfig(
        encoder=EncoderConfig(embedding_dim=64, class_embedding_dim=32, patch_grid=6),
        keyframes=KeyframeConfig(strategy="uniform", uniform_stride=10),
        index=IndexConfig(
            index_type=index_type,
            num_subspaces=4,
            num_centroids=16,
            num_coarse_clusters=8,
            nprobe=3,
        ),
        query=QueryConfig(fast_search_k=128, rerank_n=20, max_candidate_frames=30),
        shard=ShardConfig(num_shards=num_shards),
        stream=StreamConfig(**stream_overrides),
    )


def result_key(response: QueryResponse) -> List[tuple]:
    """Bit-exact identity of a response's ranked results."""
    return [
        (r.frame_id, r.patch_id, r.score, r.box.to_array().tobytes())
        for r in response.results
    ]


@pytest.fixture(scope="module")
def segments():
    """Three distinct small segments (seed-separated so ids never clash)."""
    return [make_bellevue(num_videos=1, frames_per_video=20, seed=s) for s in (1, 2, 3)]


def stream_segments(system: LOVO, segments, **ingestor_kwargs) -> StreamingIngestor:
    """Push every segment through a fresh pipeline and wait for each ticket."""
    ingestor = StreamingIngestor(system, **ingestor_kwargs).start()
    for ticket in [ingestor.submit(segment) for segment in segments]:
        ticket.result(timeout=120)
    return ingestor


class TestStreamingParity:
    """Streamed ingest is bit-exact with offline ingest — the tentpole."""

    @pytest.mark.parametrize("index_type", ["flat", "hnsw", "ivfpq"])
    @pytest.mark.parametrize("num_shards", [1, 2])
    def test_streamed_matches_offline_bit_exact(self, segments, index_type, num_shards):
        config = stream_config(index_type, num_shards)
        offline = LOVO(config)
        for segment in segments:
            offline.ingest(segment)

        streamed = LOVO(config)
        ingestor = stream_segments(streamed, segments)
        try:
            assert streamed.num_entities == offline.num_entities
            assert streamed.data_version == offline.data_version == len(segments)
            for text in (QUERY, "a person walking on the sidewalk"):
                assert result_key(streamed.query(text)) == result_key(
                    offline.query(text)
                )
            batch_streamed = streamed.query_batch([QUERY, QUERY])
            batch_offline = offline.query_batch([QUERY, QUERY])
            for left, right in zip(batch_streamed.responses, batch_offline.responses):
                assert result_key(left) == result_key(right)
        finally:
            ingestor.stop()

    @pytest.mark.parametrize("num_shards", [1, 2])
    def test_queries_stay_consistent_during_live_ingest(self, segments, num_shards):
        """Concurrent queries under ingest never crash or see torn state.

        The sharded variant exercises the scatter-gather merge racing live
        appends: global tie-break positions are published before the shards
        see the vectors, and the global IVF-PQ train is write-locked.
        """
        config = stream_config("flat", num_shards)
        system = LOVO(config)
        system.ingest(segments[0])
        ingestor = StreamingIngestor(system).start()
        errors: List[BaseException] = []
        stop = threading.Event()

        def query_loop() -> None:
            try:
                while not stop.is_set():
                    response = system.query(QUERY, options=QueryOptions(top_n=5))
                    for hit in response.results:
                        assert hit.frame_id
            except BaseException as error:  # noqa: BLE001 - collected for assert
                errors.append(error)

        threads = [threading.Thread(target=query_loop) for _ in range(4)]
        for thread in threads:
            thread.start()
        try:
            for ticket in [ingestor.submit(segment) for segment in segments[1:]]:
                ticket.result(timeout=120)
        finally:
            stop.set()
            for thread in threads:
                thread.join(timeout=30)
            ingestor.stop()
        assert not errors
        assert system.data_version == len(segments)

    def test_ticket_reports_pipeline_failure(self, segments):
        system = LOVO(stream_config("flat"))
        ingestor = StreamingIngestor(system).start()
        try:
            ticket = ingestor.submit(segments[0])
            assert ticket.result(timeout=120) is not None
            duplicate = ingestor.submit(segments[0])  # same ids → indexing fails
            with pytest.raises(VectorDatabaseError):
                duplicate.result(timeout=120)
            assert ingestor.stats()["failed"] == 1
            # The pipeline survives a failed segment.
            ok = ingestor.submit(segments[1])
            assert ok.result(timeout=120) is not None
        finally:
            ingestor.stop()

    def test_stats_report_embedding_drift(self, segments):
        system = LOVO(stream_config("flat"))
        ingestor = StreamingIngestor(system).start()
        try:
            ingestor.submit(segments[0]).result(timeout=120)
            drift = ingestor.stats()["drift"]
            assert drift["signal"] == "embedding_norm"
            assert drift["observations"] > 0
            assert drift["last_value"] > 0.0
            assert drift["alerts"] == 0  # one healthy segment cannot drift
        finally:
            ingestor.stop()

    def test_reject_backpressure_and_closed_errors(self, segments):
        system = LOVO(
            stream_config("flat", encode_queue_size=1, backpressure="reject")
        )
        ingestor = StreamingIngestor(system)
        with pytest.raises(StreamError):
            ingestor.submit(segments[0])  # not started yet
        ingestor.start()
        tickets = []
        with pytest.raises(StreamBackpressureError):
            for _ in range(64):  # far beyond queue+in-flight capacity
                tickets.append(ingestor.submit(segments[0]))
        ingestor.stop(drain=False, timeout=30)
        with pytest.raises(StreamClosedError):
            ingestor.submit(segments[1])
        assert ingestor.stats()["closed"] is True

    def test_stream_config_validation(self):
        with pytest.raises(ConfigurationError):
            StreamConfig(encode_queue_size=0)
        with pytest.raises(ConfigurationError):
            StreamConfig(backpressure="drop")
        with pytest.raises(ConfigurationError):
            StreamConfig(default_poll_seconds=60.0, max_poll_seconds=30.0)
        with pytest.raises(ConfigurationError):
            StreamConfig(max_duty_cycle=0.0)
        with pytest.raises(ConfigurationError):
            StreamConfig(max_duty_cycle=1.5)
        assert StreamConfig(max_duty_cycle=0.25).max_duty_cycle == 0.25

    def test_duty_cycle_pacer_bounds_busy_fraction(self):
        from repro.stream.ingestor import _DutyCyclePacer

        pacer = _DutyCyclePacer(0.5)
        pacer.throttle()  # first unit runs immediately
        pacer.charge(0.05)
        start = time.monotonic()
        pacer.throttle()  # must sleep until busy/elapsed <= 0.5
        waited = time.monotonic() - start
        pacer.charge(0.0)
        assert waited >= 0.04  # 0.05 busy / 0.5 duty = 0.1 elapsed minimum

    def test_paced_streaming_stays_bit_exact(self, segments):
        offline = LOVO(stream_config("flat"))
        for segment in segments[:2]:
            offline.ingest(segment)

        streamed = LOVO(stream_config("flat"))
        ingestor = StreamingIngestor(
            streamed, config=StreamConfig(max_duty_cycle=0.5)
        ).start()
        try:
            for segment in segments[:2]:
                ingestor.submit(segment)
            assert ingestor.drain(timeout=120)
        finally:
            ingestor.stop()
        assert ingestor.stats()["max_duty_cycle"] == 0.5

        text = "A red car driving in the center of the road"
        assert result_key(streamed.query(text)) == result_key(offline.query(text))


class TestDeltaSnapshots:
    def test_warm_start_replays_deltas_bit_exact(self, segments, tmp_path):
        config = stream_config("ivfpq")
        system = LOVO(config)
        system.ensure_storage()
        store = DeltaSnapshotStore(tmp_path / "stream-snap")
        store.initialize(system)
        ingestor = stream_segments(system, segments, delta_store=store)
        ingestor.stop()
        assert len(store.deltas()) == len(segments)

        warm = store.load_system()
        assert warm.num_entities == system.num_entities
        assert result_key(warm.query(QUERY)) == result_key(system.query(QUERY))

    def test_compaction_folds_deltas_into_new_base(self, segments, tmp_path):
        config = stream_config("flat")
        system = LOVO(config)
        system.ensure_storage()
        store = DeltaSnapshotStore(tmp_path / "stream-snap")
        store.initialize(system)
        ingestor = stream_segments(system, segments[:2], delta_store=store)
        ingestor.stop()
        reference = result_key(system.query(QUERY))

        compacted = store.compact()
        assert store.deltas() == []
        assert result_key(compacted.query(QUERY)) == reference
        # A fresh load after compaction replays nothing and still matches.
        assert result_key(store.load_system().query(QUERY)) == reference
        # The store keeps accepting deltas after compaction.
        follow_on = StreamingIngestor(compacted, delta_store=store).start()
        follow_on.submit(segments[2]).result(timeout=120)
        follow_on.stop()
        assert len(store.deltas()) == 1
        assert result_key(store.load_system().query(QUERY)) == result_key(
            compacted.query(QUERY)
        )

    def test_corrupted_delta_fails_checksum(self, segments, tmp_path):
        system = LOVO(stream_config("flat"))
        system.ensure_storage()
        store = DeltaSnapshotStore(tmp_path / "stream-snap")
        store.initialize(system)
        ingestor = stream_segments(system, segments[:1], delta_store=store)
        ingestor.stop()
        target = store.root / "deltas" / "delta-000001" / "frames.json"
        target.write_text(target.read_text() + " ", encoding="utf-8")
        from repro.errors import SnapshotCorruptionError

        with pytest.raises(SnapshotCorruptionError):
            store.load_system()

    def test_empty_system_snapshot_round_trips(self, segments, tmp_path):
        """Satellite: zero-dataset system (empty active tail) persists cleanly."""
        config = stream_config("ivfpq")
        cold = LOVO(config)
        cold.ensure_storage()
        cold.save(tmp_path / "empty-snap")

        restored = LOVO.load(tmp_path / "empty-snap")
        assert restored.num_entities == 0
        with pytest.raises(SystemNotReadyError):
            _ = LOVO(config).storage  # untouched systems still raise
        # The restored empty system accepts ingest and then answers queries.
        restored.ingest(segments[0])
        reference = LOVO(config)
        reference.ingest(segments[0])
        assert result_key(restored.query(QUERY)) == result_key(reference.query(QUERY))

        store = DeltaSnapshotStore(tmp_path / "empty-delta")
        empty = LOVO(config)
        empty.ensure_storage()
        store.initialize(empty)
        assert store.deltas() == []
        warm = store.load_system()
        assert warm.num_entities == 0


class TestStandingQueries:
    def test_matches_pushed_from_live_ingest(self, segments):
        system = LOVO(stream_config("flat"))
        ingestor = StreamingIngestor(system).start()
        try:
            subscription = ingestor.subscriptions.register(
                "a car on the road", threshold=-10.0
            )
            ingestor.submit(segments[0]).result(timeout=120)
            events = ingestor.subscriptions.poll(
                subscription.id, timeout=5.0, max_events=8
            )
            assert events
            assert all(event.subscription_id == subscription.id for event in events)
            assert all(event.data_version == 1 for event in events)
            sequences = [event.sequence for event in events]
            assert sequences == sorted(sequences)
        finally:
            ingestor.stop()

    def test_threshold_filters_and_caps_matches(self, segments):
        system = LOVO(stream_config("flat", max_matches_per_segment=3))
        ingestor = StreamingIngestor(system).start()
        try:
            never = ingestor.subscriptions.register("a car", threshold=1e9)
            always = ingestor.subscriptions.register("a car", threshold=-1e9)
            ingestor.submit(segments[0]).result(timeout=120)
            assert ingestor.subscriptions.poll(never.id, timeout=0.1) == []
            events = ingestor.subscriptions.poll(always.id, timeout=5.0, max_events=64)
            assert len(events) == 3  # capped per segment
            scores = [event.score for event in events]
            assert scores == sorted(scores, reverse=True)
        finally:
            ingestor.stop()

    def test_bounded_buffer_drops_oldest_and_counts(self):
        manager = SubscriptionManager(
            encode=lambda text: np.ones(4) / 2.0,
            config=StreamConfig(subscription_buffer_size=2, max_matches_per_segment=32),
        )
        subscription = manager.register("anything", threshold=-1e9)

        class FakeEncoding:
            def __init__(self, index: int) -> None:
                self.patch_id = f"p{index}"
                self.frame_id = f"f{index}"
                self.video_id = "v0"
                self.class_embedding = np.ones(4)

        manager.score_batch([FakeEncoding(i) for i in range(5)], data_version=1)
        events = manager.poll(subscription.id, timeout=0.1, max_events=10)
        assert len(events) == 2  # buffer bound
        assert subscription.dropped_total == 3
        assert manager.stats()["dropped_total"] == 3

    def test_unknown_subscription_raises(self):
        manager = SubscriptionManager(encode=lambda text: np.ones(4))
        with pytest.raises(SubscriptionNotFoundError):
            manager.poll("sub-999999", timeout=0.0)
        with pytest.raises(SubscriptionNotFoundError):
            manager.unregister("sub-999999")
        subscription = manager.register("a car", threshold=0.5)
        manager.unregister(subscription.id)
        with pytest.raises(SubscriptionNotFoundError):
            manager.get(subscription.id)


class TestStandingQueriesHTTP:
    @pytest.fixture()
    def streaming_service(self, segments):
        config = stream_config("flat")
        system = LOVO(config)
        system.ingest(segments[0])
        engine = ServingEngine(
            system, ServeConfig(num_workers=1, max_wait_ms=1.0, cache_size=8)
        ).start()
        ingestor = engine.attach_streaming()
        server = make_server(engine, host="127.0.0.1", port=0)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        host, port = server.server_address[:2]
        try:
            yield f"http://{host}:{port}", engine, ingestor
        finally:
            server.shutdown()
            server.server_close()
            engine.stop()

    @staticmethod
    def _post(base: str, path: str, payload: dict) -> dict:
        request = urllib.request.Request(
            base + path,
            data=json.dumps(payload).encode("utf-8"),
            headers={"Content-Type": "application/json"},
        )
        with urllib.request.urlopen(request, timeout=30) as response:
            return json.load(response)

    @staticmethod
    def _get(base: str, path: str) -> dict:
        with urllib.request.urlopen(base + path, timeout=60) as response:
            return json.load(response)

    def test_subscription_receives_match_from_live_ingest(
        self, streaming_service, segments
    ):
        base, engine, ingestor = streaming_service
        created = self._post(
            base, "/v1/subscriptions", {"query": "a car on the road", "threshold": -10.0}
        )
        assert created["id"].startswith("sub-")

        listed = self._get(base, "/v1/subscriptions")
        assert [entry["id"] for entry in listed["subscriptions"]] == [created["id"]]

        # Long-poll in the background, then push a segment through live ingest.
        results: dict = {}

        def poll() -> None:
            results["events"] = self._get(
                base, f"/v1/subscriptions/{created['id']}/events?timeout=20&max=4"
            )

        poller = threading.Thread(target=poll)
        poller.start()
        ingestor.submit(segments[1]).result(timeout=120)
        poller.join(timeout=60)
        payload = results["events"]
        assert payload["num_events"] >= 1
        event = payload["events"][0]
        assert event["subscription_id"] == created["id"]
        assert event["frame_id"]
        assert event["data_version"] == engine.system.data_version

        fetched = self._get(base, f"/v1/subscriptions/{created['id']}")
        assert fetched["matches_total"] >= payload["num_events"]

        stats = engine.stats()
        assert stats["streaming"]["indexed"] == 1
        assert stats["streaming"]["standing_queries"]["subscriptions"] == 1

        delete = urllib.request.Request(
            base + f"/v1/subscriptions/{created['id']}", method="DELETE"
        )
        with urllib.request.urlopen(delete, timeout=30) as response:
            assert json.load(response)["deleted"] == created["id"]
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            self._get(base, f"/v1/subscriptions/{created['id']}")
        assert excinfo.value.code == 404

    def test_unknown_subscription_maps_to_404(self, streaming_service):
        base, _, _ = streaming_service
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            self._get(base, "/v1/subscriptions/sub-999999/events?timeout=0")
        assert excinfo.value.code == 404
        assert json.load(excinfo.value)["error"]["code"] == "subscription_not_found"

    def test_subscriptions_unavailable_without_streaming(self, segments):
        system = LOVO(stream_config("flat"))
        system.ingest(segments[0])
        engine = ServingEngine(
            system, ServeConfig(num_workers=1, max_wait_ms=1.0)
        ).start()
        server = make_server(engine, host="127.0.0.1", port=0)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        host, port = server.server_address[:2]
        try:
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                self._post(
                    f"http://{host}:{port}", "/v1/subscriptions", {"query": "a car"}
                )
            assert excinfo.value.code == 503
        finally:
            server.shutdown()
            server.server_close()
            engine.stop()


class TestCacheEpochSatellite:
    """Regression: a cached result must never be served after an ingest."""

    def test_cache_key_includes_epoch(self):
        cache = ResultCache(maxsize=8, ttl_seconds=3600.0)
        response = QueryResponse(query="a car", results=[], timings={})
        cache.put("a car", 128, 10, response, epoch=0)
        hit = cache.get("a car", 128, 10, epoch=0)
        assert hit is not None and hit.metadata["cache_hit"] is True
        assert cache.get("a car", 128, 10, epoch=1) is None
        assert cache.get("a car", 128, 10) is not None  # epoch defaults to 0

    def test_engine_does_not_serve_stale_results_after_ingest(self, segments):
        config = stream_config("flat")
        system = LOVO(config)
        system.ingest(segments[0])
        engine = ServingEngine(
            system,
            ServeConfig(num_workers=1, max_wait_ms=1.0, cache_size=32,
                        cache_ttl_seconds=3600.0),
        ).start()
        try:
            first = engine.query(QUERY, timeout=60.0)
            hit = engine.query(QUERY, timeout=60.0)
            assert hit.metadata["cache_hit"] is True
            assert result_key(hit) == result_key(first)

            system.ingest(segments[1])  # epoch bump → cached entry is dead

            fresh = engine.query(QUERY, timeout=60.0)
            assert fresh.metadata.get("cache_hit", False) is False
            assert result_key(fresh) == result_key(system.query(QUERY))
            # The post-ingest result caches under the new epoch.
            rehit = engine.query(QUERY, timeout=60.0)
            assert rehit.metadata["cache_hit"] is True
            assert result_key(rehit) == result_key(fresh)
        finally:
            engine.stop()


class TestConcurrentIndexSatellite:
    """Satellite: HNSW stays searchable while inserts are in flight."""

    def test_hnsw_insert_while_search(self):
        rng = np.random.default_rng(7)
        dim = 16

        def unit_rows(count: int) -> np.ndarray:
            rows = rng.standard_normal((count, dim))
            return rows / np.linalg.norm(rows, axis=1, keepdims=True)

        index = HNSWIndex(dim, IndexConfig(index_type="hnsw"))
        base = unit_rows(200)
        index.add(list(range(200)), base)
        index.build()

        extra = unit_rows(200)
        queries = unit_rows(16)
        errors: List[BaseException] = []
        stop = threading.Event()

        def search_loop() -> None:
            try:
                while not stop.is_set():
                    for query in queries:
                        hits = index.search(query, 10)
                        assert len(hits) <= 10
                        for hit in hits:
                            assert 0 <= hit.id < 400
            except BaseException as error:  # noqa: BLE001 - collected for assert
                errors.append(error)

        searchers = [threading.Thread(target=search_loop) for _ in range(4)]
        for thread in searchers:
            thread.start()
        try:
            for start in range(0, 200, 20):
                index.add(
                    list(range(200 + start, 200 + start + 20)),
                    extra[start : start + 20],
                )
        finally:
            stop.set()
            for thread in searchers:
                thread.join(timeout=30)
        assert not errors
        assert index.ntotal == 400

        # Post-quiescence recall against the exact ranking stays reasonable.
        matrix = np.vstack([base, extra])
        recalls = []
        for query in queries:
            exact = set(np.argsort(-(matrix @ query))[:10].tolist())
            approx = {hit.id for hit in index.search(query, 10)}
            recalls.append(len(exact & approx) / 10.0)
        assert sum(recalls) / len(recalls) >= 0.6
