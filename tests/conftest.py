"""Shared fixtures: small synthetic datasets and pre-ingested systems.

The fixtures are session-scoped where the object is expensive to build and
safe to share (datasets, an ingested LOVO system used read-only), which keeps
the full suite fast while still exercising the real end-to-end pipeline.
"""

from __future__ import annotations

import pytest

from repro import LOVO, LOVOConfig
from repro.config import EncoderConfig, IndexConfig, KeyframeConfig, QueryConfig
from repro.encoders.concepts import ConceptSpace
from repro.video.datasets import make_bellevue, make_cityscapes, make_qvhighlights


def small_config() -> LOVOConfig:
    """A LOVO configuration sized for fast tests."""
    return LOVOConfig(
        encoder=EncoderConfig(embedding_dim=64, class_embedding_dim=32, patch_grid=6),
        keyframes=KeyframeConfig(strategy="uniform", uniform_stride=10),
        index=IndexConfig(num_subspaces=4, num_centroids=16, num_coarse_clusters=8, nprobe=3),
        query=QueryConfig(fast_search_k=128, rerank_n=20, max_candidate_frames=30),
    )


@pytest.fixture(scope="session")
def tiny_config() -> LOVOConfig:
    """Session-wide small configuration."""
    return small_config()


@pytest.fixture(scope="session")
def bellevue_small():
    """A small Bellevue-like dataset (1 video, 150 frames)."""
    return make_bellevue(num_videos=1, frames_per_video=150)


@pytest.fixture(scope="session")
def cityscapes_small():
    """A small Cityscapes-like dataset (moving camera)."""
    return make_cityscapes(num_videos=1, frames_per_video=120)


@pytest.fixture(scope="session")
def qvhighlights_small():
    """A small QVHighlights-like dataset (indoor / car-interior objects)."""
    return make_qvhighlights(num_videos=1, frames_per_video=120)


@pytest.fixture(scope="session")
def concept_space() -> ConceptSpace:
    """A shared 64-dimensional concept space."""
    return ConceptSpace(dim=64, seed=7)


@pytest.fixture(scope="session")
def lovo_system(bellevue_small) -> LOVO:
    """A LOVO system with the small Bellevue dataset already ingested.

    Tests that use this fixture must treat it as read-only (queries only).
    """
    system = LOVO(small_config())
    system.ingest(bellevue_small)
    return system
