"""Tests for the NumPy transformer primitives."""

from __future__ import annotations

import numpy as np

from repro.encoders.attention import (
    CrossAttention,
    CrossModalLayer,
    FeedForward,
    layer_norm,
    orthonormal_matrix,
    softmax,
)


class TestPrimitives:
    def test_softmax_rows_sum_to_one(self):
        logits = np.random.default_rng(0).normal(size=(5, 7))
        probabilities = softmax(logits)
        np.testing.assert_allclose(probabilities.sum(axis=-1), np.ones(5))
        assert (probabilities >= 0).all()

    def test_softmax_handles_large_logits(self):
        probabilities = softmax(np.array([[1000.0, 1000.0]]))
        np.testing.assert_allclose(probabilities, [[0.5, 0.5]])

    def test_layer_norm_statistics(self):
        x = np.random.default_rng(1).normal(loc=3.0, scale=2.0, size=(4, 16))
        normalised = layer_norm(x)
        np.testing.assert_allclose(normalised.mean(axis=-1), np.zeros(4), atol=1e-8)
        np.testing.assert_allclose(normalised.std(axis=-1), np.ones(4), atol=1e-3)

    def test_orthonormal_matrix_properties(self):
        matrix = orthonormal_matrix(16, "test")
        np.testing.assert_allclose(matrix @ matrix.T, np.eye(16), atol=1e-8)
        np.testing.assert_allclose(matrix, orthonormal_matrix(16, "test"))
        assert not np.allclose(matrix, orthonormal_matrix(16, "other"))


class TestCrossAttention:
    def test_output_shape(self):
        attention = CrossAttention(dim=16, name="t")
        queries = np.random.default_rng(0).normal(size=(3, 16))
        keys = np.random.default_rng(1).normal(size=(5, 16))
        assert attention.attend(queries, keys).shape == (3, 16)

    def test_empty_keys_returns_queries(self):
        attention = CrossAttention(dim=8, name="t")
        queries = np.random.default_rng(0).normal(size=(2, 8))
        np.testing.assert_allclose(attention.attend(queries, np.zeros((0, 8))), queries)

    def test_attention_weights_focus_on_similar_key(self):
        attention = CrossAttention(dim=8, name="t", temperature=0.1)
        query = np.zeros((1, 8)); query[0, 0] = 1.0
        matching = np.zeros(8); matching[0] = 1.0
        distractor = np.zeros(8); distractor[1] = 1.0
        weights = attention.attention_weights(query, np.stack([matching, distractor]))
        assert weights.shape == (1, 2)
        assert weights[0, 0] > weights[0, 1]

    def test_attended_output_moves_toward_values(self):
        attention = CrossAttention(dim=8, name="t", temperature=0.05)
        query = np.zeros((1, 8)); query[0, 0] = 1.0
        value = np.zeros((1, 8)); value[0, 0] = 1.0
        attended = attention.attend(query, value)
        assert float((attended @ value[0])[0]) > 0.9


class TestLayers:
    def test_feed_forward_shape_and_determinism(self):
        ffn = FeedForward(dim=16, hidden_dim=32, name="f")
        x = np.random.default_rng(0).normal(size=(4, 16))
        out = ffn.apply(x)
        assert out.shape == (4, 16)
        np.testing.assert_allclose(out, FeedForward(16, 32, "f").apply(x))

    def test_cross_modal_layer_shapes(self):
        layer = CrossModalLayer(dim=16, hidden_dim=32, name="layer0")
        image = np.random.default_rng(0).normal(size=(6, 16))
        text = np.random.default_rng(1).normal(size=(3, 16))
        new_image, new_text = layer.apply(image, text)
        assert new_image.shape == image.shape
        assert new_text.shape == text.shape

    def test_cross_modal_layer_changes_representations(self):
        layer = CrossModalLayer(dim=16, hidden_dim=32, name="layer0")
        image = np.random.default_rng(0).normal(size=(6, 16))
        text = np.random.default_rng(1).normal(size=(3, 16))
        new_image, _new_text = layer.apply(image, text)
        assert not np.allclose(new_image, image)
