"""Tests for the Flat, IVF-PQ, and HNSW ANN indexes."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import IndexConfig
from repro.errors import DimensionMismatchError, IndexNotBuiltError, VectorDatabaseError
from repro.vectordb.flat import FlatIndex
from repro.vectordb.hnsw import HNSWIndex
from repro.vectordb.ivfpq import IVFPQIndex


def unit_vectors(n=400, dim=32, seed=0):
    rng = np.random.default_rng(seed)
    vectors = rng.normal(size=(n, dim))
    return vectors / np.linalg.norm(vectors, axis=1, keepdims=True)


def recall_against_exact(index, vectors, k=10, num_queries=20) -> float:
    """Fraction of exact top-k neighbours an index recovers."""
    exact = FlatIndex(vectors.shape[1])
    exact.add(list(range(len(vectors))), vectors)
    hits = 0
    for q in range(num_queries):
        query = vectors[q]
        truth = {hit.id for hit in exact.search(query, k)}
        found = {hit.id for hit in index.search(query, k)}
        hits += len(truth & found)
    return hits / (k * num_queries)


class TestFlatIndex:
    def test_exact_top1_is_self(self):
        vectors = unit_vectors()
        index = FlatIndex(32)
        index.add(list(range(len(vectors))), vectors)
        index.build()
        for q in range(5):
            hits = index.search(vectors[q], 1)
            assert hits[0].id == q
            assert hits[0].score == pytest.approx(1.0)

    def test_scores_descending(self):
        vectors = unit_vectors()
        index = FlatIndex(32)
        index.add(list(range(len(vectors))), vectors)
        scores = [hit.score for hit in index.search(vectors[0], 15)]
        assert scores == sorted(scores, reverse=True)

    def test_empty_index_returns_nothing(self):
        index = FlatIndex(8)
        index.build()
        assert index.search(np.ones(8), 5) == []

    def test_mismatched_ids_rejected(self):
        index = FlatIndex(8)
        with pytest.raises(VectorDatabaseError):
            index.add([1, 2], np.ones((3, 8)))

    def test_dimension_checked(self):
        index = FlatIndex(8)
        with pytest.raises(DimensionMismatchError):
            index.add([0], np.ones((1, 4)))
        index.add([0], np.ones((1, 8)))
        with pytest.raises(DimensionMismatchError):
            index.search(np.ones(4), 1)

    def test_ntotal(self):
        index = FlatIndex(8)
        index.add([0, 1], unit_vectors(2, 8))
        assert index.ntotal == 2


class TestIVFPQIndex:
    def config(self) -> IndexConfig:
        return IndexConfig(num_subspaces=4, num_centroids=16, num_coarse_clusters=8, nprobe=4)

    def test_build_requires_vectors(self):
        index = IVFPQIndex(32, self.config())
        with pytest.raises(IndexNotBuiltError):
            index.build()

    def test_dimension_must_divide_subspaces(self):
        with pytest.raises(VectorDatabaseError):
            IVFPQIndex(30, self.config())

    def test_recall_reasonable_on_uniform_vectors(self):
        # Uniform random unit vectors are the worst case for an inverted
        # index (the coarse clusters carry little information); recall just
        # needs to be clearly better than the nprobe/nlist random baseline.
        vectors = unit_vectors()
        index = IVFPQIndex(32, self.config())
        index.add(list(range(len(vectors))), vectors)
        index.build()
        assert recall_against_exact(index, vectors, k=10) > 0.3

    def test_clustered_vectors_retrieve_same_cluster(self):
        # Semantic embeddings (the LOVO case) are strongly clustered.  Within
        # a tight cluster product quantization cannot resolve the exact
        # neighbour order, but nearly everything it returns should come from
        # the query's own cluster — that is the recall LOVO's fast search
        # relies on.
        rng = np.random.default_rng(0)
        centers = rng.normal(size=(8, 32))
        centers /= np.linalg.norm(centers, axis=1, keepdims=True)
        vectors = np.repeat(centers, 50, axis=0) + rng.normal(scale=0.05, size=(400, 32))
        vectors /= np.linalg.norm(vectors, axis=1, keepdims=True)
        index = IVFPQIndex(32, self.config())
        index.add(list(range(len(vectors))), vectors)
        index.build()
        same_cluster = 0
        total = 0
        for query_id in range(0, 400, 40):
            for hit in index.search(vectors[query_id], 10):
                total += 1
                same_cluster += int(hit.id // 50 == query_id // 50)
        assert same_cluster / total > 0.8

    def test_higher_nprobe_improves_recall(self):
        vectors = unit_vectors(seed=3)
        narrow = IVFPQIndex(32, IndexConfig(num_subspaces=4, num_centroids=16,
                                            num_coarse_clusters=16, nprobe=1))
        wide = IVFPQIndex(32, IndexConfig(num_subspaces=4, num_centroids=16,
                                          num_coarse_clusters=16, nprobe=8))
        for index in (narrow, wide):
            index.add(list(range(len(vectors))), vectors)
            index.build()
        assert recall_against_exact(wide, vectors) >= recall_against_exact(narrow, vectors)

    def test_list_sizes_sum_to_total(self):
        vectors = unit_vectors()
        index = IVFPQIndex(32, self.config())
        index.add(list(range(len(vectors))), vectors)
        index.build()
        assert sum(index.list_sizes().values()) == len(vectors)

    def test_incremental_insert_after_build(self):
        vectors = unit_vectors()
        index = IVFPQIndex(32, self.config())
        index.add(list(range(300)), vectors[:300])
        index.build()
        index.add(list(range(300, 400)), vectors[300:])
        assert index.ntotal == 400
        hits = index.search(vectors[350], 5)
        assert hits

    def test_memory_accounting_positive(self):
        vectors = unit_vectors()
        index = IVFPQIndex(32, self.config())
        index.add(list(range(len(vectors))), vectors)
        index.build()
        assert index.memory_bytes() > 0

    def test_search_builds_lazily(self):
        vectors = unit_vectors(100)
        index = IVFPQIndex(32, self.config())
        index.add(list(range(100)), vectors)
        hits = index.search(vectors[0], 3)
        assert len(hits) == 3


class TestHNSWIndex:
    def config(self) -> IndexConfig:
        return IndexConfig(hnsw_m=8, hnsw_ef_construction=48, hnsw_ef_search=48)

    def test_recall_close_to_exact(self):
        vectors = unit_vectors(seed=2)
        index = HNSWIndex(32, self.config())
        index.add(list(range(len(vectors))), vectors)
        assert recall_against_exact(index, vectors, k=10) > 0.7

    def test_top1_usually_self(self):
        vectors = unit_vectors(200)
        index = HNSWIndex(32, self.config())
        index.add(list(range(200)), vectors)
        matches = sum(1 for q in range(30) if index.search(vectors[q], 1)[0].id == q)
        assert matches >= 25

    def test_empty_index(self):
        index = HNSWIndex(16, self.config())
        assert index.search(np.ones(16), 3) == []

    def test_degree_statistics_bounded(self):
        vectors = unit_vectors(300)
        config = self.config()
        index = HNSWIndex(32, config)
        index.add(list(range(300)), vectors)
        stats = index.degree_statistics()
        assert stats["max"] <= config.hnsw_m * 2

    def test_mismatched_ids_rejected(self):
        index = HNSWIndex(8, self.config())
        with pytest.raises(VectorDatabaseError):
            index.add([1], np.ones((2, 8)))

    def test_external_ids_preserved(self):
        vectors = unit_vectors(50)
        external = [1000 + i for i in range(50)]
        index = HNSWIndex(32, self.config())
        index.add(external, vectors)
        hit = index.search(vectors[7], 1)[0]
        assert hit.id == 1007
