"""Tests for the observability stack (:mod:`repro.obs`).

Covers the pieces (ceil-based percentile, trace/span model, bounded trace
store with slow-query log, metrics registry under concurrent writers,
Prometheus text exposition round-trip) and the assembled system: traces that
cross the HTTP handler → micro-batcher → engine worker → shard fan-out
thread handoffs, the ``/v1/metrics`` and ``/v1/traces`` endpoints, request-id
correlation, and degraded/unavailable health reporting.
"""

from __future__ import annotations

import json
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro import LOVO, LOVOConfig, ObsConfig
from repro.config import (
    EncoderConfig,
    IndexConfig,
    KeyframeConfig,
    QueryConfig,
    ServeConfig,
    ShardConfig,
)
from repro.errors import ConfigurationError
from repro.obs.exposition import (
    CONTENT_TYPE,
    escape_label_value,
    parse_exposition,
    render,
    service_families,
)
from repro.obs.registry import (
    Counter,
    MetricsRegistry,
    format_float,
    percentile,
)
from repro.obs.trace import (
    Trace,
    TraceStore,
    Tracer,
    activate,
    active_traces,
    record_span,
    span,
    tracing_active,
)
from repro.serve import ServingEngine
from repro.serve.http import make_server
from repro.video.datasets import make_bellevue


def sharded_obs_config(**obs_overrides: object) -> LOVOConfig:
    """A small sharded configuration for observability tests."""
    return LOVOConfig(
        encoder=EncoderConfig(embedding_dim=64, class_embedding_dim=32, patch_grid=6),
        keyframes=KeyframeConfig(strategy="uniform", uniform_stride=10),
        index=IndexConfig(
            num_subspaces=4, num_centroids=16, num_coarse_clusters=8, nprobe=3
        ),
        query=QueryConfig(fast_search_k=128, rerank_n=20, max_candidate_frames=30),
        shard=ShardConfig(num_shards=2, num_replicas=2),
        obs=ObsConfig(**obs_overrides),
    )


@pytest.fixture(scope="module")
def sharded_system() -> LOVO:
    """A sharded, replicated LOVO system with a small dataset ingested."""
    system = LOVO(sharded_obs_config())
    system.ingest(make_bellevue(num_videos=1, frames_per_video=120))
    return system


# ---------------------------------------------------------------------------
# percentile (shared nearest-rank implementation)
# ---------------------------------------------------------------------------


class TestPercentile:
    def test_ceil_nearest_rank_on_1_to_100(self):
        values = sorted(float(v) for v in range(1, 101))
        assert percentile(values, 0.50) == 50.0
        assert percentile(values, 0.95) == 95.0
        assert percentile(values, 0.99) == 99.0

    def test_half_rank_rounds_up_not_to_even(self):
        # ceil(0.5 * 5) = 3 — the old banker's-rounding implementation
        # rounded 2.5 down to rank 2.
        assert percentile([10.0, 20.0, 30.0, 40.0, 50.0], 0.5) == 30.0
        # ceil(0.5 * 4) = 2 (exact, no rounding involved).
        assert percentile([10.0, 20.0, 30.0, 40.0], 0.5) == 20.0

    def test_extremes_clamp_to_ends(self):
        values = [1.0, 2.0, 3.0]
        assert percentile(values, 0.0) == 1.0
        assert percentile(values, 1.0) == 3.0

    def test_singleton(self):
        assert percentile([7.5], 0.99) == 7.5

    def test_serve_metrics_reexports_same_function(self):
        from repro.serve.metrics import percentile as serve_percentile

        assert serve_percentile is percentile


# ---------------------------------------------------------------------------
# trace / span model
# ---------------------------------------------------------------------------


class TestTraceModel:
    def test_span_nesting_and_attributes(self):
        trace = Trace()
        with activate([trace]):
            assert tracing_active()
            with span("outer", stage="fast"):
                with span("inner") as handle:
                    handle.set("replica", "shard-0/replica-1")
        assert not tracing_active()
        spans = trace.spans()
        outer, inner = spans
        assert outer.name == "outer" and outer.parent_id is None
        assert outer.attributes == {"stage": "fast"}
        assert inner.parent_id == outer.span_id
        assert inner.attributes == {"replica": "shard-0/replica-1"}
        assert inner.duration_s <= outer.duration_s

    def test_fanout_records_into_every_active_trace(self):
        traces = [Trace(), Trace(), Trace()]
        with activate(traces):
            assert active_traces() == tuple(traces)
            with span("shared_work"):
                pass
        for trace in traces:
            assert trace.span_names() == ["shared_work"]

    def test_record_span_parents_under_current_span(self):
        trace = Trace()
        with activate([trace]):
            with span("scatter"):
                start = time.perf_counter()
                record_span("shard_search", start, start + 0.001, shard=1)
        scatter, shard = trace.spans()
        assert shard.parent_id == scatter.span_id
        assert shard.attributes["shard"] == 1
        assert shard.duration_s == pytest.approx(0.001)

    def test_no_active_trace_is_a_noop(self):
        with span("untraced") as handle:
            handle.set("ignored", True)  # must not raise
        start = time.perf_counter()
        record_span("untraced", start, start)  # must not raise

    def test_span_budget_drops_and_counts(self):
        trace = Trace(max_spans=2)
        with activate([trace]):
            for index in range(5):
                with span(f"s{index}"):
                    pass
        assert len(trace.spans()) == 2
        assert trace.dropped_spans == 3

    def test_finish_is_idempotent(self):
        trace = Trace()
        assert trace.finish(outcome="ok") is True
        first_duration = trace.duration_s
        assert trace.finish(outcome="late") is False
        assert trace.duration_s == first_duration
        assert trace.attributes == {"outcome": "ok"}

    def test_as_dict_is_json_serialisable(self):
        trace = Trace()
        with activate([trace]):
            with span("work", k=5):
                pass
        trace.finish()
        payload = json.loads(json.dumps(trace.as_dict()))
        assert payload["finished"] is True
        assert payload["spans"][0]["name"] == "work"
        assert payload["spans"][0]["attributes"] == {"k": 5}


class TestTraceStore:
    def test_fifo_eviction(self):
        store = TraceStore(capacity=2)
        traces = [Trace() for _ in range(3)]
        for trace in traces:
            trace.finish()
            store.put(trace)
        assert store.get(traces[0].trace_id) is None
        assert store.get(traces[1].trace_id) is traces[1]
        assert store.get(traces[2].trace_id) is traces[2]
        assert len(store) == 2

    def test_slow_traces_survive_main_ring_eviction(self):
        store = TraceStore(capacity=1, slow_threshold_ms=0.0)
        slow_trace = Trace()
        slow_trace.finish()
        store.put(slow_trace)
        filler = Trace()
        filler.finish()
        store.put(filler)
        # Evicted from the ring, still pinned in the slow log.
        assert store.get(slow_trace.trace_id) is slow_trace
        assert slow_trace in store.slow()

    def test_fast_traces_stay_out_of_slow_log(self):
        store = TraceStore(capacity=8, slow_threshold_ms=10_000.0)
        trace = Trace()
        trace.finish()
        store.put(trace)
        assert store.slow() == []

    def test_annotate(self):
        store = TraceStore()
        trace = Trace()
        trace.finish()
        store.put(trace)
        assert store.annotate(trace.trace_id, request_id="abc") is True
        assert trace.attributes["request_id"] == "abc"
        assert store.annotate("missing", request_id="abc") is False

    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError):
            TraceStore(capacity=0)

    def test_slow_log_ordering_under_concurrent_inserts(self):
        """Concurrent puts keep the slow log consistent and ordered.

        Each thread inserts its traces in sequence; the log must retain the
        most recent ``slow_capacity`` puts with each thread's inserts still
        in per-thread order (most recent first), no duplicates, and no
        torn/partial entries.
        """
        num_threads, per_thread, slow_capacity = 4, 32, 48
        store = TraceStore(
            capacity=num_threads * per_thread,
            slow_threshold_ms=0.0,  # everything is "slow"
            slow_capacity=slow_capacity,
        )
        barrier = threading.Barrier(num_threads)

        def insert(thread_index: int) -> None:
            barrier.wait()
            for seq in range(per_thread):
                trace = Trace(trace_id=f"t{thread_index}-{seq:03d}")
                trace.finish()
                store.put(trace)

        threads = [
            threading.Thread(target=insert, args=(i,)) for i in range(num_threads)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        slow = store.slow()
        slow_ids = [trace.trace_id for trace in slow]
        assert len(slow) == slow_capacity
        assert len(set(slow_ids)) == len(slow_ids)  # no duplicates
        # slow() is most-recent-first: within each thread, later sequence
        # numbers must appear before earlier ones.
        for thread_index in range(num_threads):
            prefix = f"t{thread_index}-"
            sequence = [
                int(trace_id[len(prefix):])
                for trace_id in slow_ids
                if trace_id.startswith(prefix)
            ]
            assert sequence == sorted(sequence, reverse=True)
        # Every retained entry is a fully formed, finished trace.
        assert all(trace.duration_s is not None for trace in slow)


class TestTracer:
    def test_disabled_tracer_creates_nothing(self):
        tracer = Tracer(ObsConfig(enabled=False))
        assert tracer.enabled is False
        assert tracer.start(query="q") is None
        assert tracer.finish(None) is None

    def test_finish_stores_once(self):
        tracer = Tracer(ObsConfig())
        trace = tracer.start(query="q")
        assert trace is not None
        first = tracer.finish(trace)
        second = tracer.finish(trace)
        assert first == second == trace.trace_id
        assert tracer.store.get(trace.trace_id) is trace
        assert len(tracer.store) == 1


# ---------------------------------------------------------------------------
# metrics registry
# ---------------------------------------------------------------------------


class TestMetricsRegistry:
    def test_counter_gauge_histogram_basics(self):
        registry = MetricsRegistry()
        counter = registry.counter("c_total", "count", ("kind",))
        counter.inc(kind="a")
        counter.inc(2.5, kind="a")
        assert counter.value(kind="a") == 3.5

        gauge = registry.gauge("g", "gauge")
        gauge.set(4.0)
        gauge.inc(-1.5)
        assert gauge.value() == 2.5

        histogram = registry.histogram("h_seconds", "hist", buckets=(0.1, 1.0))
        histogram.observe(0.05)
        histogram.observe(5.0)
        family = histogram.collect()
        by_name = {
            (sample.name, sample.labels.get("le")): sample.value
            for sample in family.samples
        }
        assert by_name[("h_seconds_bucket", "0.1")] == 1
        assert by_name[("h_seconds_bucket", "1")] == 1
        assert by_name[("h_seconds_bucket", "+Inf")] == 2
        assert by_name[("h_seconds_count", None)] == 2
        assert by_name[("h_seconds_sum", None)] == pytest.approx(5.05)

    def test_get_or_create_returns_same_instrument(self):
        registry = MetricsRegistry()
        first = registry.counter("requests_total", "count")
        second = registry.counter("requests_total", "count")
        assert first is second

    def test_kind_and_label_mismatches_raise(self):
        registry = MetricsRegistry()
        registry.counter("thing_total", "count", ("a",))
        with pytest.raises(ValueError):
            registry.gauge("thing_total", "count", ("a",))
        with pytest.raises(ValueError):
            registry.counter("thing_total", "count", ("b",))

    def test_invalid_names_and_labels_rejected(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError):
            registry.counter("bad-name", "x")
        with pytest.raises(ValueError):
            registry.counter("ok_total", "x", ("bad-label",))
        counter = registry.counter("labelled_total", "x", ("kind",))
        with pytest.raises(ValueError):
            counter.inc(other="nope")

    def test_counter_rejects_negative_increment(self):
        counter = Counter("n_total", "count")
        with pytest.raises(ValueError):
            counter.inc(-1.0)

    def test_concurrent_writers_lose_no_updates(self):
        registry = MetricsRegistry()
        counter = registry.counter("stress_total", "count", ("worker",))
        histogram = registry.histogram("stress_seconds", "hist")
        threads = 8
        increments = 500
        barrier = threading.Barrier(threads)

        def hammer(worker: int) -> None:
            barrier.wait()
            for _ in range(increments):
                counter.inc(worker=str(worker))
                histogram.observe(0.001)

        pool = [
            threading.Thread(target=hammer, args=(worker,))
            for worker in range(threads)
        ]
        for thread in pool:
            thread.start()
        for thread in pool:
            thread.join()

        for worker in range(threads):
            assert counter.value(worker=str(worker)) == increments
        family = histogram.collect()
        count = next(
            sample.value
            for sample in family.samples
            if sample.name == "stress_seconds_count"
        )
        total = next(
            sample.value
            for sample in family.samples
            if sample.name == "stress_seconds_sum"
        )
        assert count == threads * increments
        assert total == pytest.approx(threads * increments * 0.001)

    def test_collectors_contribute_families(self):
        registry = MetricsRegistry()

        def extra():
            counter = Counter("extra_total", "from a collector")
            counter.inc(7)
            return [counter.collect()]

        registry.register_collector(extra)
        names = [family.name for family in registry.collect()]
        assert "extra_total" in names
        registry.unregister_collector(extra)
        assert "extra_total" not in [family.name for family in registry.collect()]


# ---------------------------------------------------------------------------
# exposition
# ---------------------------------------------------------------------------


class TestExposition:
    def test_format_float(self):
        assert format_float(3.0) == "3"
        assert format_float(0.25) == "0.25"
        assert format_float(float("inf")) == "+Inf"

    def test_label_escaping_round_trip(self):
        raw = 'tricky "value"\\with\nnewline'
        escaped = escape_label_value(raw)
        assert "\n" not in escaped
        registry = MetricsRegistry()
        registry.counter("escaped_total", "count", ("text",)).inc(text=raw)
        parsed = parse_exposition(render(registry.collect()))
        sample = parsed["escaped_total"]["samples"][0]
        assert sample["labels"]["text"] == raw

    @pytest.mark.parametrize(
        "raw",
        [
            "back\\slash",
            "new\nline",
            'quo"te',
            "trailing backslash\\",
            '\\"',  # backslash immediately before a quote
            "literal \\n is not a newline",
            'all \\ of "them"\nat once',
            "",
        ],
        ids=[
            "backslash",
            "newline",
            "quote",
            "trailing-backslash",
            "backslash-quote",
            "literal-backslash-n",
            "combined",
            "empty",
        ],
    )
    def test_escaped_label_values_round_trip(self, raw):
        registry = MetricsRegistry()
        registry.counter("escape_cases_total", "count", ("text",)).inc(text=raw)
        rendered = render(registry.collect())
        # Escaping keeps the sample on one exposition line.
        (sample_line,) = [
            line for line in rendered.splitlines() if not line.startswith("#")
        ]
        assert "\n" not in sample_line
        parsed = parse_exposition(rendered)
        sample = parsed["escape_cases_total"]["samples"][0]
        assert sample["labels"]["text"] == raw
        assert sample["value"] == 1.0

    def test_render_parse_round_trip(self):
        registry = MetricsRegistry()
        registry.counter("rt_requests_total", "requests", ("route",)).inc(
            5, route="/v1/query"
        )
        registry.gauge("rt_depth", "queue depth").set(3)
        histogram = registry.histogram("rt_seconds", "latency", buckets=(0.1, 1.0))
        histogram.observe(0.05)
        histogram.observe(0.5)
        text = render(registry.collect())
        parsed = parse_exposition(text)

        assert parsed["rt_requests_total"]["type"] == "counter"
        assert parsed["rt_requests_total"]["samples"][0] == {
            "name": "rt_requests_total",
            "labels": {"route": "/v1/query"},
            "value": 5.0,
        }
        assert parsed["rt_depth"]["samples"][0]["value"] == 3.0
        histogram_samples = {
            (sample["name"], sample["labels"].get("le")): sample["value"]
            for sample in parsed["rt_seconds"]["samples"]
        }
        assert histogram_samples[("rt_seconds_bucket", "0.1")] == 1.0
        assert histogram_samples[("rt_seconds_bucket", "1")] == 2.0
        assert histogram_samples[("rt_seconds_bucket", "+Inf")] == 2.0
        assert histogram_samples[("rt_seconds_count", None)] == 2.0

    def test_service_families_shapes(self):
        stats = {
            "requests_total": 10,
            "completed_total": 8,
            "rejected_total": 1,
            "errors_total": 1,
            "uptime_seconds": 12.5,
            "qps": 0.64,
            "queue_depth": 2,
            "queue_capacity": 64,
            "num_workers": 4,
            "latency_ms": {"p50": 10.0, "p95": 20.0, "p99": 30.0},
            "latency_seconds_sum": 0.5,
            "batches": {"executed": 6, "mean_size": 2.0,
                        "histogram": {"1": 4, "4": 2}},
            "cache": {"enabled": False},
        }
        families = {family.name: family for family in service_families(stats)}
        assert families["lovo_requests_total"].samples[0].value == 10
        assert families["lovo_request_latency_seconds"].kind == "summary"
        quantiles = {
            sample.labels["quantile"]: sample.value
            for sample in families["lovo_request_latency_seconds"].samples
            if "quantile" in sample.labels
        }
        assert quantiles["0.5"] == pytest.approx(0.010)
        batch = {
            sample.labels["le"]: sample.value
            for sample in families["lovo_microbatch_size"].samples
            if sample.name == "lovo_microbatch_size_bucket"
        }
        assert batch["1"] == 4 and batch["4"] == 6 and batch["+Inf"] == 6


# ---------------------------------------------------------------------------
# obs config
# ---------------------------------------------------------------------------


class TestObsConfig:
    def test_defaults_enabled(self):
        config = LOVOConfig()
        assert config.obs.enabled is True
        assert config.obs.trace_store_size > 0

    def test_round_trip_through_dict(self):
        config = LOVOConfig(
            obs=ObsConfig(enabled=False, slow_query_ms=99.0, trace_store_size=17)
        )
        restored = LOVOConfig.from_dict(config.to_dict())
        assert restored.obs == config.obs

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ObsConfig(trace_store_size=0)
        with pytest.raises(ConfigurationError):
            ObsConfig(slow_query_ms=-1.0)
        with pytest.raises(ConfigurationError):
            ObsConfig(max_spans_per_trace=0)


# ---------------------------------------------------------------------------
# engine integration: traces across thread handoffs
# ---------------------------------------------------------------------------


class TestEngineTracing:
    REQUIRED_SPANS = {"queue_wait", "encode", "fast_search", "shard_search",
                      "merge", "rerank"}

    def test_trace_crosses_batcher_and_shard_fanout(self, sharded_system):
        config = ServeConfig(num_workers=2, max_wait_ms=1.0, cache_size=0)
        with ServingEngine(sharded_system, config) as engine:
            response = engine.query("person", timeout=30.0)
        trace_id = response.metadata["trace_id"]
        trace = engine.tracer.store.get(trace_id)
        assert trace is not None and trace.finished
        names = set(trace.span_names())
        assert self.REQUIRED_SPANS <= names

        spans = trace.spans()
        # Every shard answered (2 shards → ≥2 shard_search spans), each
        # annotated with the serving replica.
        shard_spans = [s for s in spans if s.name == "shard_search"]
        assert len(shard_spans) >= 2
        assert all("replica" in s.attributes for s in shard_spans)
        assert all(s.attributes["outcome"] == "ok" for s in shard_spans)

        # Root-level children partition the request: their summed time
        # cannot exceed the end-to-end duration (parallel shard work is
        # nested under fast_search, not root-level).
        assert trace.duration_s is not None
        root_total = sum(s.duration_s for s in spans if s.parent_id is None)
        assert root_total <= trace.duration_s + 1e-6

    def test_batched_queries_each_get_their_own_trace(self, sharded_system):
        config = ServeConfig(num_workers=1, max_wait_ms=20.0, max_batch_size=8,
                             cache_size=0)
        with ServingEngine(sharded_system, config) as engine:
            futures = [
                engine.submit(text)
                for text in ("person", "car", "person walking")
            ]
            responses = [future.result(timeout=30.0) for future in futures]
        trace_ids = [response.metadata["trace_id"] for response in responses]
        assert len(set(trace_ids)) == len(trace_ids)
        for trace_id in trace_ids:
            trace = engine.tracer.store.get(trace_id)
            assert trace is not None
            assert self.REQUIRED_SPANS <= set(trace.span_names())

    def test_cache_hit_gets_fresh_trace(self, sharded_system):
        config = ServeConfig(num_workers=1, cache_size=8)
        with ServingEngine(sharded_system, config) as engine:
            miss = engine.query("person", timeout=30.0)
            hit = engine.query("person", timeout=30.0)
        assert hit.metadata["cache_hit"] is True
        assert hit.metadata["trace_id"] != miss.metadata["trace_id"]
        hit_trace = engine.tracer.store.get(hit.metadata["trace_id"])
        assert hit_trace is not None
        assert "cache_lookup" in hit_trace.span_names()

    def test_stats_reports_health_and_trace_occupancy(self, sharded_system):
        with ServingEngine(sharded_system, ServeConfig(num_workers=1)) as engine:
            engine.query("person", timeout=30.0)
            stats = engine.stats()
        assert stats["health"] == "ok"
        assert stats["traces"]["stored"] >= 1
        assert stats["traces"]["slow_threshold_ms"] == pytest.approx(250.0)

    def test_disabled_obs_produces_no_traces(self):
        system = LOVO(sharded_obs_config(enabled=False))
        system.ingest(make_bellevue(num_videos=1, frames_per_video=60))
        with ServingEngine(system, ServeConfig(num_workers=1)) as engine:
            response = engine.query("person", timeout=30.0)
            stats = engine.stats()
        assert "trace_id" not in response.metadata
        assert "traces" not in stats
        assert len(engine.tracer.store) == 0


# ---------------------------------------------------------------------------
# HTTP surface
# ---------------------------------------------------------------------------


class TestHTTPObservability:
    @pytest.fixture()
    def http_service(self, sharded_system):
        config = ServeConfig(num_workers=2, max_wait_ms=1.0, cache_size=16)
        engine = ServingEngine(sharded_system, config).start()
        server = make_server(engine, host="127.0.0.1", port=0)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        host, port = server.server_address[:2]
        try:
            yield f"http://{host}:{port}", engine
        finally:
            server.shutdown()
            server.server_close()
            engine.stop()

    @staticmethod
    def _request(base, method, path, body=None, headers=None):
        data = json.dumps(body).encode("utf-8") if body is not None else None
        request = urllib.request.Request(
            base + path, data=data, method=method, headers=headers or {}
        )
        try:
            with urllib.request.urlopen(request) as response:
                return response.status, dict(response.headers), response.read()
        except urllib.error.HTTPError as error:
            return error.code, dict(error.headers), error.read()

    def test_query_carries_trace_id_in_body_and_header(self, http_service):
        base, engine = http_service
        status, headers, body = self._request(
            base, "POST", "/v1/query", {"query": "person"},
            {"X-Request-ID": "corr-1"},
        )
        assert status == 200
        payload = json.loads(body)
        assert payload["trace_id"]
        assert headers["X-Trace-Id"] == payload["trace_id"]
        assert headers["X-Request-ID"] == "corr-1"

        trace = engine.tracer.store.get(payload["trace_id"])
        assert trace is not None
        assert trace.attributes["request_id"] == "corr-1"
        assert trace.attributes["endpoint"] == "/v1/query"

    def test_batch_responses_each_carry_trace_ids(self, http_service):
        base, engine = http_service
        status, _, body = self._request(
            base, "POST", "/v1/query_batch",
            {"queries": ["person", "car near person"]},
        )
        assert status == 200
        payload = json.loads(body)
        trace_ids = [item["trace_id"] for item in payload["responses"]]
        assert all(trace_ids) and len(set(trace_ids)) == 2
        for trace_id in trace_ids:
            stored = engine.tracer.store.get(trace_id)
            assert stored is not None
            assert stored.attributes["endpoint"] == "/v1/query_batch"

    def test_trace_endpoint_round_trip(self, http_service):
        base, _ = http_service
        _, _, body = self._request(base, "POST", "/v1/query", {"query": "person"})
        trace_id = json.loads(body)["trace_id"]
        status, _, body = self._request(base, "GET", f"/v1/traces/{trace_id}")
        assert status == 200
        trace = json.loads(body)
        names = {span["name"] for span in trace["spans"]}
        assert {"queue_wait", "encode", "fast_search", "shard_search",
                "merge", "rerank"} <= names

    def test_missing_trace_is_404_with_request_id(self, http_service):
        base, _ = http_service
        status, headers, body = self._request(
            base, "GET", "/v1/traces/deadbeef", headers={"X-Request-ID": "corr-2"}
        )
        assert status == 404
        envelope = json.loads(body)["error"]
        assert envelope["code"] == "trace_not_found"
        assert envelope["request_id"] == "corr-2"
        assert headers["X-Request-ID"] == "corr-2"

    def test_slow_trace_log_endpoint(self, sharded_system):
        # Threshold 0 → every request lands in the slow log.
        config = ServeConfig(num_workers=1)
        engine = ServingEngine(sharded_system, config)
        engine._tracer = Tracer(ObsConfig(slow_query_ms=0.0))
        engine.start()
        server = make_server(engine, host="127.0.0.1", port=0)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        host, port = server.server_address[:2]
        base = f"http://{host}:{port}"
        try:
            self._request(base, "POST", "/v1/query", {"query": "person"})
            status, _, body = self._request(base, "GET", "/v1/traces/slow")
        finally:
            server.shutdown()
            server.server_close()
            engine.stop()
        assert status == 200
        payload = json.loads(body)
        assert payload["slow_threshold_ms"] == 0.0
        assert payload["num_traces"] >= 1
        assert payload["traces"][0]["spans"]

    def test_metrics_exposition(self, http_service):
        base, _ = http_service
        self._request(base, "POST", "/v1/query", {"query": "person"})
        status, headers, body = self._request(base, "GET", "/v1/metrics")
        assert status == 200
        assert headers["Content-Type"] == CONTENT_TYPE
        parsed = parse_exposition(body.decode("utf-8"))
        assert parsed["lovo_requests_total"]["type"] == "counter"
        assert parsed["lovo_requests_total"]["samples"][0]["value"] >= 1
        assert parsed["lovo_request_latency_seconds"]["type"] == "summary"
        assert parsed["lovo_shard_call_seconds"]["type"] == "histogram"
        healthy = {
            sample["labels"]["shard"]: sample["value"]
            for sample in parsed["lovo_shard_healthy_replicas"]["samples"]
        }
        assert healthy == {"0": 2.0, "1": 2.0}
        assert "lovo_phase_seconds_total" in parsed

    def test_request_id_generated_when_absent(self, http_service):
        base, _ = http_service
        status, headers, _ = self._request(base, "GET", "/v1/healthz")
        assert status == 200
        assert len(headers["X-Request-ID"]) == 32

    def test_request_id_echoed_on_errors(self, http_service):
        base, _ = http_service
        status, headers, body = self._request(
            base, "POST", "/v1/query", {"nope": 1}, {"X-Request-ID": "err-1"}
        )
        assert status == 400
        assert headers["X-Request-ID"] == "err-1"
        assert json.loads(body)["error"]["request_id"] == "err-1"

    def test_unprintable_request_id_replaced(self, http_service):
        base, _ = http_service
        status, headers, _ = self._request(
            base, "GET", "/v1/healthz", headers={"X-Request-ID": "x" * 500}
        )
        assert status == 200
        assert headers["X-Request-ID"] != "x" * 500

    def test_healthz_degraded_and_unavailable(self, http_service, sharded_system):
        base, _ = http_service
        group = sharded_system.storage.database.router.groups[0]
        replicas = group.replicas
        try:
            group.mark_unhealthy(replicas[0])
            status, _, body = self._request(base, "GET", "/v1/healthz")
            assert status == 200
            assert json.loads(body)["status"] == "degraded"

            for replica in replicas:
                group.mark_unhealthy(replica)
            status, _, body = self._request(base, "GET", "/v1/healthz")
            assert status == 503
            assert json.loads(body)["status"] == "unavailable"
        finally:
            for replica in replicas:
                group.mark_healthy(replica)
        status, _, body = self._request(base, "GET", "/v1/healthz")
        assert status == 200 and json.loads(body)["status"] == "ok"
