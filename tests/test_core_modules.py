"""Tests for the LOVO core modules: summary, storage, query strategy, system."""

from __future__ import annotations

import pytest

from repro import LOVO
from repro.config import QueryConfig
from repro.core.results import ObjectQueryResult, QueryResponse, merge_timings
from repro.core.storage import LOVOStorage
from repro.core.summary import VideoSummarizer
from repro.errors import QueryError, VectorDatabaseError
from repro.utils.geometry import BoundingBox
from repro.utils.timing import PhaseTimer
from tests.conftest import small_config


class TestResults:
    def test_query_response_search_seconds_excludes_processing(self):
        response = QueryResponse(
            query="q",
            timings={"processing": 5.0, "fast_search": 0.1, "rerank": 0.4},
        )
        assert response.search_seconds == pytest.approx(0.5)

    def test_top_and_frames_ordering(self):
        results = [
            ObjectQueryResult("f1", "v", BoundingBox(0, 0, 0.1, 0.1), score=0.2),
            ObjectQueryResult("f2", "v", BoundingBox(0, 0, 0.1, 0.1), score=0.9),
            ObjectQueryResult("f2", "v", BoundingBox(0, 0, 0.1, 0.1), score=0.5),
        ]
        response = QueryResponse(query="q", results=results)
        assert response.top(1)[0].frame_id == "f2"
        assert response.frames() == ["f2", "f1"]

    def test_result_as_dict(self):
        result = ObjectQueryResult("f", "v", BoundingBox(0, 0, 0.1, 0.1), 0.5, "p", "lovo")
        payload = result.as_dict()
        assert payload["frame_id"] == "f"
        assert len(payload["box"]) == 4

    def test_merge_timings(self):
        merged = merge_timings({"a": 1.0}, {"a": 0.5, "b": 2.0})
        assert merged == {"a": 1.5, "b": 2.0}


class TestVideoSummarizer:
    def test_summary_counts(self, bellevue_small, tiny_config):
        summarizer = VideoSummarizer(tiny_config)
        timer = PhaseTimer()
        output = summarizer.summarize(bellevue_small, timer=timer)
        assert output.total_frames == bellevue_small.num_frames
        assert 0 < output.num_keyframes < bellevue_small.num_frames
        patches_per_frame = tiny_config.encoder.patch_grid ** 2
        assert output.num_entities == output.num_keyframes * patches_per_frame
        assert set(output.frame_scene.values()) == {"bellevue"}
        assert timer.totals["keyframes"] >= 0
        assert timer.totals["encoding"] > 0

    def test_keyframes_subset_of_dataset(self, bellevue_small, tiny_config):
        output = VideoSummarizer(tiny_config).summarize(bellevue_small)
        all_ids = {frame.frame_id for frame in bellevue_small.iter_frames()}
        assert {frame.frame_id for frame in output.keyframes} <= all_ids

    def test_encode_single_frame(self, bellevue_small, tiny_config):
        summarizer = VideoSummarizer(tiny_config)
        frame = bellevue_small.videos[0].frames[0]
        encodings = summarizer.encode_single_frame(frame, scene="bellevue")
        assert len(encodings) == tiny_config.encoder.patch_grid ** 2


class TestStorage:
    def build_storage(self, bellevue_small, tiny_config):
        summarizer = VideoSummarizer(tiny_config)
        output = summarizer.summarize(bellevue_small)
        storage = LOVOStorage(dim=tiny_config.encoder.class_embedding_dim,
                              index_config=tiny_config.index)
        storage.ingest(output.keyframes, output.encodings)
        return storage, output

    def test_ingest_and_search(self, bellevue_small, tiny_config):
        storage, output = self.build_storage(bellevue_small, tiny_config)
        assert storage.num_entities == output.num_entities
        probe = max(output.encodings, key=lambda encoding: encoding.objectness)
        hits = storage.search(probe.class_embedding, 10)
        assert len(hits) == 10
        assert any(hit.id == probe.patch_id for hit in hits)

    def test_exhaustive_search_flag(self, bellevue_small, tiny_config):
        storage, output = self.build_storage(bellevue_small, tiny_config)
        query = output.encodings[10].class_embedding
        exact = storage.search(query, 1, use_ann=False)
        assert exact[0].id == output.encodings[10].patch_id

    def test_patches_for_frame(self, bellevue_small, tiny_config):
        storage, output = self.build_storage(bellevue_small, tiny_config)
        frame_id = output.keyframes[0].frame_id
        patches = storage.patches_for_frame(frame_id)
        assert len(patches) == tiny_config.encoder.patch_grid ** 2

    def test_storage_report(self, bellevue_small, tiny_config):
        storage, _ = self.build_storage(bellevue_small, tiny_config)
        report = storage.storage_report()
        assert report["num_entities"] == storage.num_entities
        assert report["index_type"] == "ivfpq"

    def test_empty_ingest_rejected(self, tiny_config):
        storage = LOVOStorage(dim=tiny_config.encoder.class_embedding_dim)
        with pytest.raises(VectorDatabaseError):
            storage.ingest([], [])


class TestLOVOSystem:
    def test_query_before_ingest_raises(self):
        with pytest.raises(QueryError):
            LOVO(small_config()).query("a red car")

    def test_end_to_end_query(self, lovo_system):
        response = lovo_system.query("A red car driving in the center of the road.")
        assert response.results
        assert "fast_search" in response.timings
        assert "rerank" in response.timings
        assert response.metadata["rerank_enabled"] is True
        for result in response.results:
            assert result.frame_id
            assert 0.0 <= result.box.clipped().x <= 1.0

    def test_results_sorted_by_score(self, lovo_system):
        response = lovo_system.query("A bus driving on the road.")
        scores = [result.score for result in sorted(response.results, key=lambda r: -r.score)]
        assert scores == sorted(scores, reverse=True)

    def test_rerank_disabled_path(self, bellevue_small):
        config = small_config().with_overrides(query=QueryConfig(rerank_enabled=False))
        system = LOVO(config)
        system.ingest(bellevue_small)
        response = system.query("A red car driving in the center of the road.")
        assert response.results
        assert "rerank" not in response.timings
        assert all(result.source == "lovo-fast" for result in response.results)

    def test_ann_disabled_path(self, bellevue_small):
        config = small_config().with_overrides(query=QueryConfig(ann_enabled=False))
        system = LOVO(config)
        system.ingest(bellevue_small)
        response = system.query("A bus driving on the road.")
        assert response.results
        assert response.metadata["ann_enabled"] is False

    def test_time_distribution_keys(self, lovo_system):
        distribution = lovo_system.time_distribution()
        assert set(distribution) == {"processing", "rerank", "indexing_fast_search"}
        assert distribution["processing"] > 0

    def test_storage_report_and_counts(self, lovo_system, bellevue_small, tiny_config):
        report = lovo_system.storage_report()
        assert report["num_entities"] == lovo_system.num_entities
        assert lovo_system.num_keyframes > 0
        assert lovo_system.ingested_datasets == [bellevue_small.name]

    def test_incremental_ingest_grows_index(self, tiny_config):
        from repro.video.datasets import make_bellevue

        system = LOVO(small_config())
        system.ingest(make_bellevue(num_videos=1, frames_per_video=60))
        first_count = system.num_entities
        system.ingest(make_bellevue(num_videos=1, frames_per_video=60, seed=1))
        assert system.num_entities > first_count
        response = system.query("A red car driving on the road.")
        assert response.results
