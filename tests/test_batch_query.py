"""End-to-end parity of ``LOVO.query_batch`` with sequential ``query`` calls.

The batched engine must be a pure throughput optimisation: for every query in
the batch — including duplicates — the returned frames, patches, and scores
must match what a sequential ``query()`` call produces, for all three index
families and for both ablation paths (w/o rerank, w/o ANNS).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import LOVO, LOVOConfig
from repro.config import EncoderConfig, IndexConfig, KeyframeConfig, QueryConfig
from repro.core.results import BatchQueryResponse
from repro.errors import QueryError
from repro.eval.runner import run_queries
from repro.eval.workloads import queries_for_dataset
from repro.utils.cache import LRUCache

BELLEVUE_TEXTS = [spec.text for spec in queries_for_dataset("bellevue")]


def batch_config(index_type: str = "ivfpq", **query_overrides) -> LOVOConfig:
    defaults = dict(fast_search_k=96, rerank_n=15, max_candidate_frames=20)
    defaults.update(query_overrides)
    return LOVOConfig(
        encoder=EncoderConfig(embedding_dim=64, class_embedding_dim=32, patch_grid=6),
        keyframes=KeyframeConfig(strategy="uniform", uniform_stride=12),
        index=IndexConfig(
            index_type=index_type,
            num_subspaces=4,
            num_centroids=16,
            num_coarse_clusters=8,
            nprobe=3,
        ),
        query=QueryConfig(**defaults),
    )


@pytest.fixture(scope="module")
def bellevue_dataset(bellevue_small):
    """The shared small Bellevue dataset (150 frames, session-scoped)."""
    return bellevue_small


def ingested(dataset, index_type: str = "ivfpq", **query_overrides) -> LOVO:
    system = LOVO(batch_config(index_type, **query_overrides))
    system.ingest(dataset)
    return system


def assert_response_parity(sequential, batched):
    assert [(r.frame_id, r.patch_id) for r in sequential.results] == [
        (r.frame_id, r.patch_id) for r in batched.results
    ]
    np.testing.assert_allclose(
        [r.score for r in sequential.results],
        [r.score for r in batched.results],
        rtol=1e-9,
        atol=1e-12,
    )


@pytest.mark.parametrize("index_type", ["flat", "hnsw", "ivfpq"])
def test_batch_matches_sequential_per_index(bellevue_dataset, index_type):
    system = ingested(bellevue_dataset, index_type)
    texts = BELLEVUE_TEXTS + [BELLEVUE_TEXTS[0], BELLEVUE_TEXTS[2]]  # with duplicates
    sequential = [system.query(text) for text in texts]
    batch = system.query_batch(texts)
    assert isinstance(batch, BatchQueryResponse)
    assert batch.batch_size == len(texts)
    for seq_response, batch_response in zip(sequential, batch):
        assert_response_parity(seq_response, batch_response)


def test_batch_first_then_sequential_agree(bellevue_dataset):
    """Parity holds regardless of which path populates the caches first."""
    system = ingested(bellevue_dataset, "flat")
    batch = system.query_batch(BELLEVUE_TEXTS)
    for text, batch_response in zip(BELLEVUE_TEXTS, batch):
        assert_response_parity(system.query(text), batch_response)


def test_duplicate_queries_answered_once(bellevue_dataset):
    system = ingested(bellevue_dataset, "flat")
    texts = [BELLEVUE_TEXTS[0]] * 6
    batch = system.query_batch(texts)
    assert batch.metadata["num_unique_queries"] == 1
    reference = [(r.frame_id, r.patch_id, r.score) for r in batch[0].results]
    for response in batch:
        assert [(r.frame_id, r.patch_id, r.score) for r in response.results] == reference


def test_without_rerank_ablation_parity(bellevue_dataset):
    system = ingested(bellevue_dataset, "flat", rerank_enabled=False)
    sequential = [system.query(text) for text in BELLEVUE_TEXTS]
    batch = system.query_batch(BELLEVUE_TEXTS)
    assert batch.metadata["rerank_enabled"] is False
    for seq_response, batch_response in zip(sequential, batch):
        assert_response_parity(seq_response, batch_response)


def test_without_anns_ablation_parity(bellevue_dataset):
    system = ingested(bellevue_dataset, "flat", ann_enabled=False)
    sequential = [system.query(text) for text in BELLEVUE_TEXTS[:2]]
    batch = system.query_batch(BELLEVUE_TEXTS[:2])
    for seq_response, batch_response in zip(sequential, batch):
        assert_response_parity(seq_response, batch_response)


def test_empty_batch(bellevue_dataset):
    system = ingested(bellevue_dataset, "flat")
    batch = system.query_batch([])
    assert len(batch) == 0
    assert batch.batch_size == 0


def test_empty_query_string_raises_like_sequential(bellevue_dataset):
    system = ingested(bellevue_dataset, "flat")
    with pytest.raises(QueryError):
        system.query("   ")
    with pytest.raises(QueryError):
        system.query_batch(["a red car", "   "])


def test_query_batch_requires_ingest():
    system = LOVO(batch_config())
    with pytest.raises(QueryError):
        system.query_batch(["a red car"])


def test_batch_timings_amortised(bellevue_dataset):
    system = ingested(bellevue_dataset, "flat")
    batch = system.query_batch(BELLEVUE_TEXTS)
    for phase, total in batch.timings.items():
        per_query = sum(response.timings[phase] for response in batch)
        assert per_query == pytest.approx(total)
    assert batch.search_seconds >= 0.0


def test_run_queries_batch_and_sequential_same_quality(bellevue_dataset):
    system = ingested(bellevue_dataset, "flat")
    specs = queries_for_dataset("bellevue")[:2]
    batched = run_queries(system, "LOVO", bellevue_dataset, specs, batch=True)
    sequential = run_queries(system, "LOVO", bellevue_dataset, specs, batch=False)
    assert [r.average_precision for r in batched] == pytest.approx(
        [r.average_precision for r in sequential]
    )
    assert all(record.supported for record in batched)


def test_run_queries_auto_detects_batch_support(bellevue_dataset, monkeypatch):
    system = ingested(bellevue_dataset, "flat")
    calls = {"batch": 0}
    original = system.query_batch

    def counting_batch(texts, top_n=None):
        calls["batch"] += 1
        return original(texts, top_n=top_n)

    monkeypatch.setattr(system, "query_batch", counting_batch)
    specs = queries_for_dataset("bellevue")[:2]
    run_queries(system, "LOVO", bellevue_dataset, specs)
    assert calls["batch"] == 1


class TestTextEncoderBatch:
    def test_encode_batch_matches_encode(self, bellevue_dataset):
        system = ingested(bellevue_dataset, "flat")
        encoder = system.text_encoder
        matrix = encoder.encode_batch(BELLEVUE_TEXTS)
        assert matrix.shape == (len(BELLEVUE_TEXTS), encoder.class_embedding_dim)
        for row, text in zip(matrix, BELLEVUE_TEXTS):
            np.testing.assert_allclose(row, encoder.encode(text), rtol=1e-9)
            assert np.linalg.norm(row) == pytest.approx(1.0)

    def test_encode_batch_empty(self, bellevue_dataset):
        system = ingested(bellevue_dataset, "flat")
        assert system.text_encoder.encode_batch([]).shape == (0, 32)

    def test_repeated_strings_hit_cache(self, bellevue_dataset):
        system = ingested(bellevue_dataset, "flat")
        encoder = system.text_encoder
        encoder.encode_batch(["a red car", "a red car", "a white dog"])
        before = encoder.cache_info()
        encoder.encode_batch(["a red car", "a white dog"])
        after = encoder.cache_info()
        assert after["embed_hits"] > before["embed_hits"]
        assert after["embed_misses"] == before["embed_misses"]


class TestLRUCache:
    def test_put_get_and_counters(self):
        cache = LRUCache(maxsize=2)
        assert cache.get("a") is None
        cache.put("a", 1)
        assert cache.get("a") == 1
        assert cache.hits == 1 and cache.misses == 1

    def test_eviction_order(self):
        cache = LRUCache(maxsize=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")  # refresh "a"; "b" becomes least recent
        cache.put("c", 3)
        assert "a" in cache and "c" in cache and "b" not in cache
        assert len(cache) == 2

    def test_clear(self):
        cache = LRUCache(maxsize=4)
        cache.put("a", 1)
        cache.get("a")
        cache.clear()
        assert len(cache) == 0 and cache.hits == 0 and cache.misses == 0

    def test_invalid_size_rejected(self):
        with pytest.raises(ValueError):
            LRUCache(maxsize=0)
