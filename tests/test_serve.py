"""Tests for the concurrent query-serving subsystem (:mod:`repro.serve`).

Covers the pieces individually (TTL+LRU cache, micro-batcher, metrics) and
the assembled engine: bit-exact parity between concurrent served queries and
serial ``LOVO.query`` calls, backpressure, cache short-circuiting, graceful
shutdown draining, and an HTTP round trip over an ephemeral port.
"""

from __future__ import annotations

import json
import threading
import time
import urllib.error
import urllib.request
from typing import List, Optional, Sequence

import pytest

from repro import LOVO, LOVOConfig, ServeConfig
from repro.core.query import QueryOptions, QueryRequest
from repro.core.results import BatchQueryResponse, QueryResponse
from repro.errors import (
    ConfigurationError,
    QueryError,
    ServiceOverloadedError,
    ServingError,
    SystemNotReadyError,
)
from repro.eval.workloads import queries_for_dataset
from repro.serve import MicroBatcher, PendingQuery, ResultCache, ServingEngine, TTLLRUCache
from repro.serve.cache import normalize_query_text
from repro.serve.http import make_server
from repro.serve.metrics import ServiceMetrics, percentile
from repro.utils.cache import LRUCache
from repro.utils.timing import PhaseTimer

BELLEVUE_QUERIES = [spec.text for spec in queries_for_dataset("bellevue")]


def result_key(response: QueryResponse) -> List[tuple]:
    """Bit-exact identity of a response's ranked results."""
    return [(r.frame_id, r.patch_id, r.score, r.box.to_array().tobytes())
            for r in response.results]


class FakeClock:
    """A manually advanced monotonic clock for TTL tests."""

    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class StubSystem:
    """Engine-compatible stand-in recording every ``query_batch`` call.

    ``block`` makes batch execution wait on an external release event so
    tests can deterministically fill the admission queue.
    """

    def __init__(self, delay: float = 0.0, block: bool = False) -> None:
        self.config = LOVOConfig()
        self.calls: List[List[str]] = []
        self.delay = delay
        self.started = threading.Event()
        self.release = threading.Event()
        self.block = block
        self._lock = threading.Lock()

    def query_batch(self, texts: Sequence[str], top_n: Optional[int] = None,
                    *, options=None):
        with self._lock:
            self.calls.append(list(texts))
        self.started.set()
        if self.block:
            assert self.release.wait(timeout=10.0)
        if self.delay:
            time.sleep(self.delay)
        responses = [
            QueryResponse(query=text, results=[], timings={"fast_search": 0.0})
            for text in texts
        ]
        return BatchQueryResponse(queries=list(texts), responses=responses)


def stub_engine(stub: StubSystem, **overrides) -> ServingEngine:
    defaults = dict(num_workers=1, max_batch_size=4, max_wait_ms=1.0,
                    queue_size=8, cache_size=0)
    defaults.update(overrides)
    return ServingEngine(stub, ServeConfig(**defaults))


class TestThreadSafetySatellites:
    def test_lru_cache_survives_concurrent_hammering(self):
        cache: LRUCache[int, int] = LRUCache(maxsize=32)
        errors: List[BaseException] = []

        def hammer(seed: int) -> None:
            try:
                for i in range(2000):
                    key = (seed * 31 + i) % 100
                    cache.put(key, key)
                    cache.get((key + 1) % 100)
                    if i % 100 == 0:
                        len(cache)
            except BaseException as error:  # noqa: BLE001 - collected for assert
                errors.append(error)

        threads = [threading.Thread(target=hammer, args=(s,)) for s in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        assert len(cache) <= 32

    def test_lru_cache_pop(self):
        cache: LRUCache[str, int] = LRUCache(maxsize=4)
        cache.put("a", 1)
        assert cache.pop("a") == 1
        assert cache.pop("a", 42) == 42
        assert "a" not in cache

    def test_phase_timer_concurrent_adds_lose_nothing(self):
        timer = PhaseTimer()
        per_thread, num_threads = 500, 8

        def add_many() -> None:
            for _ in range(per_thread):
                timer.add("phase", 1.0)

        threads = [threading.Thread(target=add_many) for _ in range(num_threads)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        # Increments of exactly 1.0 are float-exact, so any lost update would
        # show as a smaller total.
        assert timer.totals["phase"] == float(per_thread * num_threads)
        assert timer.counts["phase"] == per_thread * num_threads


class TestTTLLRUCache:
    def test_expires_after_ttl(self):
        clock = FakeClock()
        cache: TTLLRUCache[str, str] = TTLLRUCache(maxsize=4, ttl_seconds=10.0, clock=clock)
        cache.put("k", "v")
        assert cache.get("k") == "v"
        clock.advance(9.9)
        assert cache.get("k") == "v"
        clock.advance(0.2)
        assert cache.get("k") is None
        assert cache.expirations == 1
        assert "k" not in cache

    def test_put_restarts_ttl(self):
        clock = FakeClock()
        cache: TTLLRUCache[str, str] = TTLLRUCache(maxsize=4, ttl_seconds=10.0, clock=clock)
        cache.put("k", "v1")
        clock.advance(8.0)
        cache.put("k", "v2")
        clock.advance(8.0)
        assert cache.get("k") == "v2"

    def test_lru_eviction_still_applies(self):
        clock = FakeClock()
        cache: TTLLRUCache[int, int] = TTLLRUCache(maxsize=2, ttl_seconds=100.0, clock=clock)
        cache.put(1, 1)
        cache.put(2, 2)
        cache.put(3, 3)
        assert cache.get(1) is None
        assert cache.get(2) == 2 and cache.get(3) == 3

    def test_hit_miss_accounting_counts_expiry_as_miss(self):
        clock = FakeClock()
        cache: TTLLRUCache[str, str] = TTLLRUCache(maxsize=4, ttl_seconds=1.0, clock=clock)
        cache.put("k", "v")
        cache.get("k")
        clock.advance(2.0)
        cache.get("k")
        assert cache.hits == 1
        assert cache.misses == 1

    def test_rejects_bad_ttl(self):
        with pytest.raises(ValueError):
            TTLLRUCache(maxsize=4, ttl_seconds=0.0)


class TestResultCache:
    def test_normalization_shares_entries(self):
        clock = FakeClock()
        cache = ResultCache(maxsize=8, ttl_seconds=10.0, clock=clock)
        response = QueryResponse(query="a red car", timings={"fast_search": 1.0})
        cache.put("a red car", 128, 40, response)
        hit = cache.get("  A  RED   Car ", 128, 40)
        assert hit is not None
        assert hit.query == "  A  RED   Car "
        assert hit.metadata["cache_hit"] is True
        assert normalize_query_text("  A  RED   Car ") == "a red car"

    def test_depths_are_part_of_the_key(self):
        cache = ResultCache(maxsize=8, ttl_seconds=10.0)
        cache.put("q", 128, 40, QueryResponse(query="q"))
        assert cache.get("q", 128, 20) is None
        assert cache.get("q", 64, 40) is None
        assert cache.get("q", 128, 40) is not None

    def test_hit_is_isolated_copy(self):
        cache = ResultCache(maxsize=8, ttl_seconds=10.0)
        cache.put("q", 128, 40, QueryResponse(query="q", timings={"x": 1.0}))
        first = cache.get("q", 128, 40)
        first.timings["x"] = 999.0
        first.metadata["poison"] = True
        second = cache.get("q", 128, 40)
        assert second.timings["x"] == 1.0
        assert "poison" not in second.metadata

    def test_stored_entry_is_isolated_from_the_producer(self):
        # The miss path hands its response object to the caller after putting
        # it in the cache; mutating it must not corrupt later hits.
        cache = ResultCache(maxsize=8, ttl_seconds=10.0)
        produced = QueryResponse(query="q", timings={"x": 1.0})
        cache.put("q", 128, 40, produced)
        produced.timings.clear()
        produced.results.append("garbage")
        hit = cache.get("q", 128, 40)
        assert hit.timings == {"x": 1.0}
        assert hit.results == []


class TestMicroBatcher:
    def test_coalesces_up_to_max_batch_size(self):
        batcher = MicroBatcher(max_batch_size=3, max_wait_ms=50.0, queue_size=8)
        for i in range(5):
            batcher.submit(PendingQuery(text=f"q{i}"))
        first = batcher.next_batch()
        second = batcher.next_batch()
        assert [p.text for p in first] == ["q0", "q1", "q2"]
        assert [p.text for p in second] == ["q3", "q4"]

    def test_backpressure_raises_when_full(self):
        batcher = MicroBatcher(max_batch_size=4, max_wait_ms=1.0, queue_size=2)
        batcher.submit(PendingQuery(text="a"))
        batcher.submit(PendingQuery(text="b"))
        with pytest.raises(ServiceOverloadedError):
            batcher.submit(PendingQuery(text="c"))
        assert batcher.depth == 2

    def test_close_drains_then_signals_exhaustion(self):
        batcher = MicroBatcher(max_batch_size=8, max_wait_ms=1.0, queue_size=8)
        batcher.submit(PendingQuery(text="a"))
        batcher.close()
        with pytest.raises(ServingError):
            batcher.submit(PendingQuery(text="late"))
        batch = batcher.next_batch()
        assert [p.text for p in batch] == ["a"]
        assert batcher.next_batch() is None


class TestServiceMetrics:
    def test_percentile_nearest_rank(self):
        values = sorted(float(v) for v in range(1, 101))
        assert percentile(values, 0.50) == pytest.approx(51.0, abs=1.0)
        assert percentile(values, 0.99) == pytest.approx(99.0, abs=1.0)
        assert percentile([], 0.5) == 0.0

    def test_snapshot_shape_and_rates(self):
        metrics = ServiceMetrics(latency_window=16)
        for _ in range(4):
            metrics.record_request()
        metrics.record_rejection()
        metrics.record_batch(3)
        for latency in (0.010, 0.020, 0.030):
            metrics.record_completion(latency)
        snapshot = metrics.snapshot(queue_depth=2)
        assert snapshot["requests_total"] == 4
        assert snapshot["completed_total"] == 3
        assert snapshot["rejected_total"] == 1
        assert snapshot["queue_depth"] == 2
        assert snapshot["batches"]["histogram"] == {"3": 1}
        assert snapshot["batches"]["mean_size"] == pytest.approx(3.0)
        assert snapshot["latency_ms"]["p50"] == pytest.approx(20.0)
        assert snapshot["qps"] > 0
        json.dumps(snapshot)  # must be JSON-serialisable for /stats


class TestServeConfig:
    def test_defaults_valid_and_round_trip(self):
        config = LOVOConfig()
        rebuilt = LOVOConfig.from_dict(config.to_dict())
        assert rebuilt.serve == config.serve
        assert rebuilt == config

    def test_pre_serve_snapshots_get_defaults(self):
        payload = LOVOConfig().to_dict()
        del payload["serve"]
        rebuilt = LOVOConfig.from_dict(payload)
        assert rebuilt.serve == ServeConfig()

    def test_validation(self):
        for bad in (
            dict(num_workers=0),
            dict(max_batch_size=0),
            dict(max_wait_ms=-1.0),
            dict(queue_size=0),
            dict(cache_size=-1),
            dict(cache_ttl_seconds=0.0),
            dict(request_timeout_seconds=0.0),
            dict(metrics_window=0),
            dict(port=70000),
        ):
            with pytest.raises(ConfigurationError):
                ServeConfig(**bad)

    def test_with_overrides_replaces_serve(self):
        base = LOVOConfig()
        updated = base.with_overrides(serve=ServeConfig(num_workers=7))
        assert updated.serve.num_workers == 7
        assert updated.query is base.query


class TestSystemNotReady:
    def test_query_before_ingest(self):
        system = LOVO()
        with pytest.raises(SystemNotReadyError):
            system.query("a car")
        with pytest.raises(SystemNotReadyError):
            system.query_batch(["a car"])
        with pytest.raises(SystemNotReadyError):
            system.storage

    def test_is_a_query_error(self):
        assert issubclass(SystemNotReadyError, QueryError)


class TestServingEngineWithStub:
    def test_requires_start(self):
        engine = stub_engine(StubSystem())
        with pytest.raises(ServingError):
            engine.submit("q")

    def test_rejects_empty_query_without_poisoning_batches(self):
        stub = StubSystem()
        with stub_engine(stub) as engine:
            with pytest.raises(QueryError):
                engine.submit("   ")
        assert stub.calls == []

    def test_coalesces_queued_queries_into_one_batch(self):
        stub = StubSystem(block=True)
        with stub_engine(stub, max_batch_size=8, max_wait_ms=50.0) as engine:
            first = engine.submit("warm")
            assert stub.started.wait(timeout=5.0)
            futures = [engine.submit(f"q{i}") for i in range(5)]
            stub.release.set()
            first.result(timeout=5.0)
            for future in futures:
                future.result(timeout=5.0)
        assert stub.calls[0] == ["warm"]
        assert stub.calls[1] == [f"q{i}" for i in range(5)]

    def test_backpressure_end_to_end(self):
        stub = StubSystem(block=True)
        with stub_engine(stub, max_batch_size=1, queue_size=2) as engine:
            in_flight = engine.submit("held")
            assert stub.started.wait(timeout=5.0)
            engine.submit("queued-1")
            engine.submit("queued-2")
            with pytest.raises(ServiceOverloadedError):
                engine.submit("rejected")
            stats = engine.stats()
            assert stats["rejected_total"] == 1
            stub.release.set()
            in_flight.result(timeout=5.0)
        assert engine.stats()["completed_total"] == 3

    def test_cache_hit_never_touches_the_engine(self):
        stub = StubSystem()
        with stub_engine(stub, cache_size=16) as engine:
            engine.query("hot query", timeout=5.0)
            assert len(stub.calls) == 1
            hit = engine.query("  HOT   query ", timeout=5.0)
            assert hit.metadata["cache_hit"] is True
            assert len(stub.calls) == 1
            stats = engine.stats()
            assert stats["cache"]["hits"] == 1

    def test_graceful_stop_drains_admitted_requests(self):
        stub = StubSystem(delay=0.02)
        engine = stub_engine(stub, max_batch_size=4, queue_size=32).start()
        futures = [engine.submit(f"q{i}") for i in range(12)]
        engine.stop()  # graceful: drain everything already admitted
        for future in futures:
            assert future.done() and not future.cancelled()
            future.result(timeout=0)
        assert engine.stats()["completed_total"] == 12
        with pytest.raises(ServingError):
            engine.submit("after-stop")

    def test_non_draining_stop_cancels_queued_requests(self):
        stub = StubSystem(block=True)
        engine = stub_engine(stub, max_batch_size=1, queue_size=8).start()
        held = engine.submit("held")
        assert stub.started.wait(timeout=5.0)
        queued = [engine.submit(f"q{i}") for i in range(3)]
        # stop() joins the (blocked) worker, so run it in a thread: the
        # queued-but-unclaimed futures must be cancelled immediately, while
        # the batch already executing still finishes.
        stopper = threading.Thread(target=lambda: engine.stop(drain=False))
        stopper.start()
        deadline = time.monotonic() + 5.0
        while not all(f.cancelled() for f in queued) and time.monotonic() < deadline:
            time.sleep(0.005)
        assert all(future.cancelled() for future in queued)
        stub.release.set()
        stopper.join(timeout=5.0)
        assert not stopper.is_alive()
        assert held.result(timeout=5.0) is not None

    def test_query_many_rejection_cancels_admitted_prefix(self):
        stub = StubSystem(block=True)
        with stub_engine(stub, max_batch_size=1, queue_size=2) as engine:
            held = engine.submit("held")
            assert stub.started.wait(timeout=5.0)
            # Queue capacity 2: the third admission inside query_many must
            # fail, and the two it already admitted must be cancelled rather
            # than left to burn worker capacity.
            with pytest.raises(ServiceOverloadedError):
                engine.query_many(["a", "b", "c"], timeout=5.0)
            assert engine.queue_depth == 2  # cancelled entries still queued...
            stub.release.set()
            held.result(timeout=5.0)
        # ...but the workers skipped them: only the held query ever executed.
        assert [call for call in stub.calls] == [["held"]]

    def test_query_many_validates_all_texts_before_admitting_any(self):
        stub = StubSystem()
        with stub_engine(stub) as engine:
            with pytest.raises(QueryError):
                engine.query_many(["fine", "   "], timeout=5.0)
        assert stub.calls == []

    def test_no_future_stranded_when_submit_races_stop(self):
        stub = StubSystem()
        engine = stub_engine(stub, max_batch_size=4, queue_size=256).start()
        futures: List = []
        futures_lock = threading.Lock()

        def submitter() -> None:
            for i in range(100):
                try:
                    future = engine.submit(f"q{i}")
                except ServingError:
                    return
                with futures_lock:
                    futures.append(future)

        threads = [threading.Thread(target=submitter) for _ in range(4)]
        for thread in threads:
            thread.start()
        engine.stop()  # races the submitters; close+drain must strand nothing
        for thread in threads:
            thread.join()
        # Every submission that was *accepted* must have been answered: the
        # batcher's close() is atomic with submit(), and stop() sweeps any
        # queries that landed after the workers exited.
        for future in futures:
            assert future.result(timeout=5.0) is not None

    def test_engine_error_propagates_to_every_future_in_group(self):
        class ExplodingSystem(StubSystem):
            def query_batch(self, texts, top_n=None, *, options=None):
                raise RuntimeError("index melted")

        with stub_engine(ExplodingSystem(), max_batch_size=4, max_wait_ms=20.0) as engine:
            futures = [engine.submit(f"q{i}") for i in range(3)]
            for future in futures:
                with pytest.raises(RuntimeError, match="index melted"):
                    future.result(timeout=5.0)
            assert engine.stats()["errors_total"] == 3


class TestServingEngineParity:
    """N threads x M queries through the engine == serial LOVO.query."""

    def test_concurrent_results_bit_identical_to_serial(self, lovo_system):
        serial = {text: lovo_system.query(text) for text in BELLEVUE_QUERIES}
        config = ServeConfig(
            num_workers=3, max_batch_size=8, max_wait_ms=2.0,
            queue_size=256, cache_size=0,
        )
        collected: dict = {}
        errors: List[BaseException] = []

        def client(thread_index: int) -> None:
            try:
                rotation = (
                    BELLEVUE_QUERIES[thread_index % len(BELLEVUE_QUERIES):]
                    + BELLEVUE_QUERIES[:thread_index % len(BELLEVUE_QUERIES)]
                )
                for text in rotation * 2:
                    response = engine.query(text, timeout=30.0)
                    previous = collected.setdefault(text, result_key(response))
                    assert previous == result_key(response)
            except BaseException as error:  # noqa: BLE001 - collected for assert
                errors.append(error)

        with ServingEngine(lovo_system, config) as engine:
            threads = [threading.Thread(target=client, args=(i,)) for i in range(6)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            stats = engine.stats()
        assert not errors
        for text in BELLEVUE_QUERIES:
            assert collected[text] == result_key(serial[text]), text
        assert stats["completed_total"] == 6 * 2 * len(BELLEVUE_QUERIES)

    def test_cached_responses_also_match_serial(self, lovo_system):
        text = BELLEVUE_QUERIES[0]
        serial = lovo_system.query(text)
        config = ServeConfig(num_workers=2, cache_size=32, max_wait_ms=1.0)
        with ServingEngine(lovo_system, config) as engine:
            miss = engine.query(text, timeout=30.0)
            hit = engine.query(text, timeout=30.0)
        assert result_key(miss) == result_key(serial)
        assert result_key(hit) == result_key(serial)
        assert hit.metadata["cache_hit"] is True


class TestHTTPFrontend:
    @pytest.fixture()
    def http_service(self, lovo_system):
        config = ServeConfig(num_workers=2, max_wait_ms=1.0, cache_size=32)
        engine = ServingEngine(lovo_system, config).start()
        server = make_server(engine, host="127.0.0.1", port=0)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        host, port = server.server_address[:2]
        try:
            yield f"http://{host}:{port}", engine
        finally:
            server.shutdown()
            server.server_close()
            engine.stop()

    @staticmethod
    def _post(base: str, path: str, payload: dict) -> dict:
        request = urllib.request.Request(
            base + path,
            data=json.dumps(payload).encode("utf-8"),
            headers={"Content-Type": "application/json"},
        )
        with urllib.request.urlopen(request, timeout=30) as response:
            return json.load(response)

    @staticmethod
    def _get(base: str, path: str) -> dict:
        with urllib.request.urlopen(base + path, timeout=30) as response:
            return json.load(response)

    def test_query_round_trip_matches_direct_call(self, http_service, lovo_system):
        base, _ = http_service
        text = BELLEVUE_QUERIES[0]
        payload = self._post(base, "/v1/query", {"query": text, "options": {"top_n": 5}})
        direct = lovo_system.query(QueryRequest(text, QueryOptions(top_n=5)))
        assert payload["query"] == text
        assert payload["num_results"] == len(direct.results)
        assert [r["frame_id"] for r in payload["results"]] == [
            r.frame_id for r in direct.results
        ]
        assert [r["score"] for r in payload["results"]] == [
            r.score for r in direct.results
        ]

    def test_query_batch_endpoint(self, http_service):
        base, _ = http_service
        texts = BELLEVUE_QUERIES[:3]
        payload = self._post(base, "/v1/query_batch", {"queries": texts})
        assert payload["batch_size"] == 3
        assert [entry["query"] for entry in payload["responses"]] == texts

    def test_legacy_top_n_still_accepted(self, http_service, lovo_system):
        base, _ = http_service
        text = BELLEVUE_QUERIES[0]
        payload = self._post(base, "/v1/query", {"query": text, "top_n": 5})
        direct = lovo_system.query(QueryRequest(text, QueryOptions(top_n=5)))
        assert [r["frame_id"] for r in payload["results"]] == [
            r.frame_id for r in direct.results
        ]

    def test_healthz_and_stats(self, http_service):
        base, _ = http_service
        health = self._get(base, "/v1/healthz")
        assert health["status"] == "ok"
        assert health["api_version"] == "v1"
        assert health["num_entities"] > 0
        assert health["backend"]["sharded"] is False
        self._post(base, "/v1/query", {"query": BELLEVUE_QUERIES[0]})
        stats = self._get(base, "/v1/stats")
        assert stats["completed_total"] >= 1
        assert stats["running"] is True
        assert stats["backend"]["ready"] is True

    @pytest.mark.parametrize("method", ["GET", "POST"])
    @pytest.mark.parametrize(
        "path", ["/query", "/query_batch", "/healthz", "/stats"]
    )
    def test_unversioned_paths_redirect_to_v1(self, http_service, method, path):
        base, _ = http_service
        body = b'{"query": "a car"}' if method == "POST" else b""
        raw = self._raw_request(
            base,
            (
                f"{method} {path} HTTP/1.1\r\nHost: test\r\n"
                f"Content-Length: {len(body)}\r\n\r\n"
            ).encode("ascii") + body,
        )
        head, _, payload = raw.partition(b"\r\n\r\n")
        assert b"308" in head.split(b"\r\n", 1)[0]
        assert f"Location: /v1{path}".encode("ascii") in head
        assert json.loads(payload)["redirect"] == f"/v1{path}"

    @pytest.mark.parametrize(
        "path,payload,expected_status,expected_code",
        [
            ("/v1/query", {"nope": 1}, 400, "invalid_query"),
            ("/v1/query", {"query": 42}, 400, "invalid_query"),
            ("/v1/query", {"query": "car", "top_n": 0}, 400, "invalid_query"),
            ("/v1/query", {"query": "   "}, 400, "invalid_query"),
            ("/v1/query", {"query": "car", "options": {"depth": 3}}, 400, "invalid_query"),
            ("/v1/query", {"query": "car", "options": {"top_n": 3}, "top_n": 9},
             400, "invalid_query"),
            ("/v1/query_batch", {"queries": "not a list"}, 400, "bad_request"),
            ("/v1/unknown", {"query": "car"}, 404, "not_found"),
        ],
    )
    def test_bad_requests_use_error_envelope(
        self, http_service, path, payload, expected_status, expected_code
    ):
        base, _ = http_service
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            self._post(base, path, payload)
        assert excinfo.value.code == expected_status
        envelope = json.load(excinfo.value)["error"]
        assert envelope["code"] == expected_code
        assert envelope["retryable"] is False
        assert envelope["message"]

    @staticmethod
    def _raw_request(base: str, request_bytes: bytes) -> bytes:
        import socket
        from urllib.parse import urlsplit

        parts = urlsplit(base)
        with socket.create_connection((parts.hostname, parts.port), timeout=10) as sock:
            sock.sendall(request_bytes)
            sock.settimeout(10)
            data = b""
            while True:
                try:
                    chunk = sock.recv(4096)
                except TimeoutError:
                    break
                if not chunk:
                    break
                data += chunk
        return data

    def test_oversized_body_gets_400_and_connection_close(self, http_service):
        base, _ = http_service
        # Claim a huge body but never send it: the server must reject it and
        # close the connection (an unread body would desync keep-alive).
        raw = self._raw_request(
            base,
            b"POST /v1/query HTTP/1.1\r\nHost: test\r\nContent-Length: 100000\r\n\r\n",
        )
        status_line = raw.split(b"\r\n", 1)[0]
        assert b"400" in status_line
        assert b"connection: close" in raw.lower()

    def test_non_numeric_content_length_gets_400(self, http_service):
        base, _ = http_service
        raw = self._raw_request(
            base,
            b"POST /v1/query HTTP/1.1\r\nHost: test\r\nContent-Length: abc\r\n\r\n",
        )
        status_line = raw.split(b"\r\n", 1)[0]
        assert b"400" in status_line

    def test_malformed_json_is_400(self, http_service):
        base, _ = http_service
        request = urllib.request.Request(
            base + "/v1/query", data=b"{not json", headers={"Content-Type": "application/json"}
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=30)
        assert excinfo.value.code == 400

    def test_stopped_engine_maps_to_503(self, lovo_system):
        engine = ServingEngine(lovo_system, ServeConfig(num_workers=1, cache_size=0))
        engine.start()
        engine.stop()
        server = make_server(engine, host="127.0.0.1", port=0)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        host, port = server.server_address[:2]
        try:
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                self._post(f"http://{host}:{port}", "/v1/query", {"query": "a car"})
            assert excinfo.value.code == 503
        finally:
            server.shutdown()
            server.server_close()

    def test_not_ready_system_maps_to_503(self):
        engine = ServingEngine(LOVO(), ServeConfig(num_workers=1, cache_size=0)).start()
        server = make_server(engine, host="127.0.0.1", port=0)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        host, port = server.server_address[:2]
        base = f"http://{host}:{port}"
        try:
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                self._post(base, "/v1/query", {"query": "a car"})
            assert excinfo.value.code == 503
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                self._get(base, "/v1/healthz")
            assert excinfo.value.code == 503
        finally:
            server.shutdown()
            server.server_close()
            engine.stop()
