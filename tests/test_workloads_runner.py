"""Tests for the query workloads, experiment runner, and report formatting."""

from __future__ import annotations

import pytest

from repro.errors import EvaluationError
from repro.eval.metrics import GroundTruthInstance
from repro.eval.reporting import format_series, format_table, speedup_factors
from repro.eval.runner import (
    mean_average_precision,
    mean_search_seconds,
    run_queries,
)
from repro.eval.workloads import (
    all_queries,
    build_ground_truth,
    motivation_queries,
    queries_for_dataset,
    query_by_id,
)


class TestWorkloads:
    def test_all_queries_cover_tables(self):
        ids = {spec.query_id for spec in all_queries()}
        expected = {f"Q{i}.{j}" for i in range(1, 5) for j in range(1, 5)} | {
            "EQ1", "EQ2", "EQ3", "EQ4"
        }
        assert ids == expected

    def test_query_by_id(self):
        spec = query_by_id("Q2.2")
        assert "side by side" in spec.text
        assert spec.dataset == "bellevue"
        assert spec.complexity == "complex"

    def test_query_by_id_unknown(self):
        with pytest.raises(EvaluationError):
            query_by_id("Q9.9")

    def test_queries_for_dataset(self):
        assert len(queries_for_dataset("beach")) == 4
        assert all(spec.dataset == "beach" for spec in queries_for_dataset("beach"))

    def test_ground_truth_grouped_by_instance(self, bellevue_small):
        spec = query_by_id("Q2.1")
        instances = build_ground_truth(bellevue_small, spec)
        ids = [instance.object_id for instance in instances]
        assert len(ids) == len(set(ids))
        for instance in instances:
            assert instance.num_frames >= 1

    def test_restrict_to_frames(self, bellevue_small):
        spec = query_by_id("Q2.1")
        all_instances = build_ground_truth(bellevue_small, spec)
        some_frame = next(iter(all_instances[0].boxes))
        restricted = build_ground_truth(bellevue_small, spec, restrict_to_frames=[some_frame])
        assert restricted
        for instance in restricted:
            assert set(instance.boxes) <= {some_frame}

    def test_motivation_queries_levels(self):
        levels = motivation_queries()
        assert set(levels) == {"simple", "normal", "complex"}
        assert all(levels.values())


class TestRunner:
    def test_run_queries_against_lovo(self, lovo_system, bellevue_small):
        specs = queries_for_dataset("bellevue")[:2]
        records = run_queries(lovo_system, "LOVO", bellevue_small, specs, ingest_seconds=1.0)
        assert len(records) == 2
        for record in records:
            assert record.supported
            assert 0.0 <= record.average_precision <= 1.0
            assert record.total_seconds >= 1.0
            assert record.search_seconds >= 0.0
            assert record.num_ground_truth > 0
            assert record.as_row()[0] == "LOVO"

    def test_run_queries_marks_unsupported(self, bellevue_small):
        from repro.baselines import VOCALBaseline

        baseline = VOCALBaseline()
        baseline.ingest(bellevue_small)
        specs = [query_by_id("Q2.1")]
        records = run_queries(baseline, "VOCAL", bellevue_small, specs)
        assert records[0].supported is False
        assert records[0].average_precision == 0.0
        assert records[0].as_row()[2] == "unsupported"

    def test_dataset_mismatch_rejected(self, lovo_system, bellevue_small):
        with pytest.raises(EvaluationError):
            run_queries(lovo_system, "LOVO", bellevue_small, [query_by_id("Q1.1")])

    def test_ground_truth_cache_reused(self, lovo_system, bellevue_small):
        cache: dict = {}
        specs = [query_by_id("Q2.1")]
        run_queries(lovo_system, "LOVO", bellevue_small, specs, ground_truth_cache=cache)
        assert "Q2.1" in cache
        # Second run must not rebuild (poison the cache to detect rebuilds).
        cache["Q2.1"] = [GroundTruthInstance("fake", {"missing-frame": None})] if False else cache["Q2.1"]
        records = run_queries(lovo_system, "LOVO", bellevue_small, specs, ground_truth_cache=cache)
        assert records[0].num_ground_truth == len(cache["Q2.1"])

    def test_mean_helpers(self):
        assert mean_average_precision([]) == 0.0
        assert mean_search_seconds([]) == 0.0


class TestReporting:
    def test_format_table_contains_cells(self):
        table = format_table(["a", "bb"], [["x", 1], ["yy", 22]], title="T")
        assert "T" in table
        assert "yy" in table and "22" in table
        lines = table.splitlines()
        assert len(lines) == 5

    def test_format_series(self):
        text = format_series("latency", {"a": 1.0, "b": 2.5}, unit="s")
        assert "latency:" in text and "2.5000 s" in text

    def test_speedup_factors(self):
        factors = speedup_factors({"slow": 10.0, "fast": 1.0})
        assert factors["slow"] == pytest.approx(1.0)
        assert factors["fast"] == pytest.approx(10.0)

    def test_speedup_factors_empty(self):
        assert speedup_factors({}) == {}
