"""Tests for the Average Precision metric and IoU-based matching."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.results import ObjectQueryResult
from repro.errors import EvaluationError
from repro.eval.metrics import (
    GroundTruthInstance,
    average_precision,
    evaluate_results,
    match_results,
    precision_recall_points,
    recall_at_k,
)
from repro.utils.geometry import BoundingBox


def result(frame_id: str, box: BoundingBox, score: float) -> ObjectQueryResult:
    return ObjectQueryResult(frame_id=frame_id, video_id="v", box=box, score=score)


def instance(object_id: str, frame_boxes: dict) -> GroundTruthInstance:
    return GroundTruthInstance(object_id=object_id, boxes=frame_boxes)


BOX = BoundingBox(0.4, 0.4, 0.2, 0.2)
OTHER_BOX = BoundingBox(0.05, 0.05, 0.1, 0.1)


class TestAveragePrecision:
    def test_perfect_ranking(self):
        assert average_precision([True, True], num_positives=2) == pytest.approx(1.0)

    def test_all_misses(self):
        assert average_precision([False, False, False], num_positives=2) == 0.0

    def test_known_mixed_case(self):
        # Hits at ranks 1 and 3 with 2 positives: (1/1 + 2/3) / 2.
        value = average_precision([True, False, True], num_positives=2)
        assert value == pytest.approx((1.0 + 2.0 / 3.0) / 2.0)

    def test_duplicates_skipped(self):
        with_duplicate = average_precision([True, None, True], num_positives=2)
        without = average_precision([True, True], num_positives=2)
        assert with_duplicate == pytest.approx(without)

    def test_requires_positive_count(self):
        with pytest.raises(EvaluationError):
            average_precision([True], num_positives=0)

    @given(st.lists(st.booleans(), min_size=1, max_size=30), st.integers(1, 10))
    @settings(max_examples=100, deadline=None)
    def test_bounded_between_zero_and_one_when_positives_cover_hits(self, relevances, extra):
        num_positives = max(sum(relevances), 1) + extra - 1
        value = average_precision(relevances, num_positives=num_positives)
        assert 0.0 <= value <= 1.0 + 1e-9

    @given(st.lists(st.booleans(), min_size=1, max_size=20))
    @settings(max_examples=50, deadline=None)
    def test_appending_a_hit_never_decreases_ap(self, relevances):
        num_positives = sum(relevances) + 1
        before = average_precision(relevances, num_positives)
        after = average_precision(list(relevances) + [True], num_positives)
        assert after >= before - 1e-12


class TestMatching:
    def test_match_by_iou_in_same_frame(self):
        ground_truth = [instance("o1", {"f1": BOX})]
        results = [result("f1", BOX, 0.9), result("f2", BOX, 0.8)]
        assert match_results(results, ground_truth) == [True, False]

    def test_low_iou_is_false_positive(self):
        ground_truth = [instance("o1", {"f1": BOX})]
        results = [result("f1", OTHER_BOX, 0.9)]
        assert match_results(results, ground_truth) == [False]

    def test_duplicate_matches_collapse_to_none(self):
        ground_truth = [instance("o1", {"f1": BOX, "f2": BOX})]
        results = [result("f1", BOX, 0.9), result("f2", BOX, 0.8)]
        assert match_results(results, ground_truth) == [True, None]

    def test_two_instances_same_frame(self):
        ground_truth = [
            instance("o1", {"f1": BOX}),
            instance("o2", {"f1": OTHER_BOX}),
        ]
        results = [result("f1", BOX, 0.9), result("f1", OTHER_BOX, 0.8)]
        assert match_results(results, ground_truth) == [True, True]

    def test_matching_is_score_ordered(self):
        ground_truth = [instance("o1", {"f1": BOX})]
        results = [result("f1", BOX, 0.1), result("f1", OTHER_BOX, 0.9)]
        # The higher-scoring wrong box is processed first and misses.
        assert match_results(results, ground_truth) == [False, True]

    def test_invalid_threshold(self):
        with pytest.raises(EvaluationError):
            match_results([], [], iou_threshold=1.5)


class TestEvaluate:
    def test_requires_ground_truth(self):
        with pytest.raises(EvaluationError):
            evaluate_results([result("f1", BOX, 0.5)], [])

    def test_empty_results_scores_zero(self):
        assert evaluate_results([], [instance("o1", {"f1": BOX})]) == 0.0

    def test_perfect_single_query(self):
        ground_truth = [instance("o1", {"f1": BOX})]
        assert evaluate_results([result("f1", BOX, 0.9)], ground_truth) == pytest.approx(1.0)

    def test_top_multiplier_limits_considered_results(self):
        ground_truth = [instance("o1", {"f1": BOX})]
        # 10 junk results above the correct one with multiplier 10 -> correct
        # result at rank 11 is cut off entirely.
        results = [result("f2", BOX, 1.0 - i * 0.01) for i in range(10)]
        results.append(result("f1", BOX, 0.1))
        assert evaluate_results(results, ground_truth, top_multiplier=10) == 0.0
        assert evaluate_results(results, ground_truth, top_multiplier=11) > 0.0

    def test_recall_at_k(self):
        ground_truth = [instance("o1", {"f1": BOX}), instance("o2", {"f2": BOX})]
        results = [result("f1", BOX, 0.9), result("f3", BOX, 0.8)]
        assert recall_at_k(results, ground_truth, k=2) == pytest.approx(0.5)
        assert recall_at_k(results, ground_truth, k=0) == 0.0

    def test_precision_recall_points(self):
        points = precision_recall_points([True, False, True], num_positives=2)
        assert points[0] == (pytest.approx(0.5), pytest.approx(1.0))
        assert points[-1] == (pytest.approx(1.0), pytest.approx(2.0 / 3.0))


class TestGroundTruthInstance:
    def test_box_lookup(self):
        target = instance("o1", {"f1": BOX})
        assert target.box_in("f1") == BOX
        assert target.box_in("f2") is None
        assert target.num_frames == 1
