"""Tests for the key-frame extraction strategies."""

from __future__ import annotations

import pytest

from repro.config import KeyframeConfig
from repro.keyframes import (
    AllFramesExtractor,
    ContentDiffKeyframeExtractor,
    MVMedKeyframeExtractor,
    UniformKeyframeExtractor,
    make_extractor,
)
from repro.video.datasets import make_bellevue


@pytest.fixture(scope="module")
def video():
    return make_bellevue(num_videos=1, frames_per_video=90).videos[0]


class TestUniform:
    def test_stride_selection(self, video):
        frames = UniformKeyframeExtractor(stride=10).extract(video)
        assert [frame.index for frame in frames] == list(range(0, 90, 10))

    def test_invalid_stride(self):
        with pytest.raises(ValueError):
            UniformKeyframeExtractor(stride=0)

    def test_all_frames(self, video):
        assert len(AllFramesExtractor().extract(video)) == video.num_frames


class TestContentDiff:
    def test_returns_subset_including_first(self, video):
        frames = ContentDiffKeyframeExtractor(threshold=0.02).extract(video)
        assert frames
        assert frames[0].index == 0
        assert len(frames) <= video.num_frames

    def test_higher_threshold_fewer_keyframes(self, video):
        low = ContentDiffKeyframeExtractor(threshold=0.01).extract(video)
        high = ContentDiffKeyframeExtractor(threshold=0.2).extract(video)
        assert len(high) <= len(low)

    def test_invalid_threshold(self):
        with pytest.raises(ValueError):
            ContentDiffKeyframeExtractor(threshold=0.0)

    def test_empty_video(self):
        from repro.video.model import Video
        empty = Video(video_id="v", frames=[])
        assert ContentDiffKeyframeExtractor().extract(empty) == []


class TestMVMed:
    def test_returns_subset_in_order(self, video):
        frames = MVMedKeyframeExtractor(fallback_stride=15).extract(video)
        indices = [frame.index for frame in frames]
        assert indices == sorted(indices)
        assert indices[0] == 0
        assert len(frames) < video.num_frames

    def test_min_gap_respected(self, video):
        frames = MVMedKeyframeExtractor(min_gap=5, fallback_stride=15).extract(video)
        indices = [frame.index for frame in frames]
        gaps = [b - a for a, b in zip(indices, indices[1:])]
        assert all(gap >= 5 for gap in gaps)

    def test_fallback_prevents_starvation(self, video):
        frames = MVMedKeyframeExtractor(motion_threshold=100.0, fallback_stride=20).extract(video)
        indices = [frame.index for frame in frames]
        assert max(b - a for a, b in zip(indices, indices[1:])) <= 25

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            MVMedKeyframeExtractor(motion_threshold=0.0)
        with pytest.raises(ValueError):
            MVMedKeyframeExtractor(fallback_stride=0)


class TestFactory:
    def test_factory_dispatch(self):
        assert isinstance(make_extractor(KeyframeConfig(strategy="uniform")), UniformKeyframeExtractor)
        assert isinstance(make_extractor(KeyframeConfig(strategy="content")), ContentDiffKeyframeExtractor)
        assert isinstance(make_extractor(KeyframeConfig(strategy="mvmed")), MVMedKeyframeExtractor)
        assert isinstance(make_extractor(KeyframeConfig(strategy="all")), AllFramesExtractor)

    def test_extract_many_concatenates(self, video):
        extractor = UniformKeyframeExtractor(stride=30)
        frames = extractor.extract_many([video, video])
        assert len(frames) == 2 * len(extractor.extract(video))

    def test_name_property(self):
        assert "Uniform" in UniformKeyframeExtractor().name
