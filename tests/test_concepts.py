"""Tests for the shared concept vector space."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.encoders.concepts import ConceptSpace
from repro.errors import EncodingError

concept_names = st.sampled_from(
    ["car", "bus", "person", "woman", "red", "green", "road", "driving", "dog"]
)


class TestConceptVectors:
    def setup_method(self):
        self.space = ConceptSpace(dim=64, seed=7)

    def test_vectors_unit_norm(self):
        for concept in ["car", "red", "road", "unknown-token"]:
            assert np.linalg.norm(self.space.vector(concept)) == pytest.approx(1.0)

    def test_vectors_deterministic_across_instances(self):
        other = ConceptSpace(dim=64, seed=7)
        np.testing.assert_allclose(self.space.vector("car"), other.vector("car"))

    def test_seed_changes_vectors(self):
        other = ConceptSpace(dim=64, seed=8)
        assert not np.allclose(self.space.vector("car"), other.vector("car"))

    def test_child_closer_to_parent_than_unrelated(self):
        woman_person = float(self.space.vector("woman") @ self.space.vector("person"))
        woman_road = float(self.space.vector("woman") @ self.space.vector("road"))
        assert woman_person > woman_road + 0.2

    def test_siblings_share_parent_similarity(self):
        car_bus = float(self.space.vector("car") @ self.space.vector("bus"))
        car_red = float(self.space.vector("car") @ self.space.vector("red"))
        assert car_bus > car_red

    def test_invalid_dim(self):
        with pytest.raises(EncodingError):
            ConceptSpace(dim=0)


class TestEncoding:
    def setup_method(self):
        self.space = ConceptSpace(dim=64, seed=7)

    def test_encode_empty_is_zero(self):
        assert np.linalg.norm(self.space.encode([])) == 0.0

    def test_encode_normalised(self):
        vector = self.space.encode(["car", "red", "road"])
        assert np.linalg.norm(vector) == pytest.approx(1.0)

    def test_encode_unnormalised(self):
        vector = self.space.encode(["car", "red"], normalize=False)
        assert np.linalg.norm(vector) > 1.0

    def test_weights_change_mixture(self):
        plain = self.space.encode(["car", "red"])
        weighted = self.space.encode(["car", "red"], weights={"car": 3.0})
        assert float(weighted @ self.space.vector("car")) > float(plain @ self.space.vector("car"))

    def test_similarity_reflects_shared_concepts(self):
        same = self.space.similarity(["red", "car"], ["red", "car"])
        related = self.space.similarity(["red", "car"], ["grey", "car"])
        unrelated = self.space.similarity(["red", "car"], ["dog", "room"])
        assert same == pytest.approx(1.0)
        assert same > related > unrelated

    @given(tokens=st.lists(concept_names, min_size=1, max_size=5))
    @settings(max_examples=50, deadline=None)
    def test_encode_always_unit_norm(self, tokens):
        vector = ConceptSpace(dim=32, seed=3).encode(tokens)
        assert np.linalg.norm(vector) == pytest.approx(1.0)

    def test_batch_vectors_shape(self):
        matrix = self.space.batch_vectors(["car", "bus", "dog"])
        assert matrix.shape == (3, 64)

    def test_batch_vectors_empty(self):
        assert self.space.batch_vectors([]).shape == (0, 64)


class TestProjection:
    def setup_method(self):
        self.space = ConceptSpace(dim=64, seed=7)

    def test_projection_shape(self):
        matrix = self.space.projection_matrix(32)
        assert matrix.shape == (32, 64)

    def test_projection_rows_orthonormal(self):
        matrix = self.space.projection_matrix(16)
        gram = matrix @ matrix.T
        np.testing.assert_allclose(gram, np.eye(16), atol=1e-8)

    def test_projection_preserves_similarity_ordering(self):
        projection = self.space.projection_matrix(32)
        red_car = projection @ self.space.encode(["red", "car"])
        query = projection @ self.space.encode(["red", "car", "road"])
        grey_dog = projection @ self.space.encode(["grey", "dog"])
        assert float(query @ red_car) > float(query @ grey_dog)

    def test_projection_invalid_dim(self):
        with pytest.raises(EncodingError):
            self.space.projection_matrix(0)
        with pytest.raises(EncodingError):
            self.space.projection_matrix(128)
