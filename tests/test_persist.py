"""Snapshot persistence: round-trip parity, error paths, and the manifest.

Covers the acceptance criteria of the persistence subsystem: a
saved-then-loaded system returns bit-identical ``query()`` /
``query_batch()`` results for all three index families, corrupted or
version-skewed snapshots fail with the typed :class:`PersistenceError`
hierarchy (never bare ``IOError``/``ValueError``), and
:class:`MetadataStore` records survive the columnar round trip for
arbitrary values (hypothesis property test).
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro
from repro import LOVO, LOVOConfig
from repro.config import (
    EncoderConfig,
    IndexConfig,
    KeyframeConfig,
    QueryConfig,
    ServeConfig,
)
from repro.core.storage import LOVOStorage
from repro.errors import (
    PersistenceError,
    ReproError,
    SnapshotCorruptionError,
    SnapshotVersionError,
)
from repro.persist import SNAPSHOT_SCHEMA_VERSION, read_manifest
from repro.persist.manifest import config_payload_hash, sha256_file
from repro.utils.geometry import BoundingBox
from repro.vectordb.collection import VectorCollection
from repro.vectordb.database import VectorDatabase
from repro.vectordb.metadata import FrameRecord, MetadataStore, PatchRecord
from repro.video.datasets import make_bellevue, make_cityscapes

QUERIES = [
    "A red car driving in the center of the road",
    "A woman in a black dress",
    "A red car side by side with another car",
]


def persist_config(index_type: str) -> LOVOConfig:
    """A small configuration exercising the given index family."""
    return LOVOConfig(
        encoder=EncoderConfig(embedding_dim=64, class_embedding_dim=32, patch_grid=6),
        keyframes=KeyframeConfig(strategy="uniform", uniform_stride=10),
        index=IndexConfig(
            index_type=index_type,
            num_subspaces=4,
            num_centroids=16,
            num_coarse_clusters=8,
            nprobe=3,
        ),
        query=QueryConfig(fast_search_k=64, rerank_n=10, max_candidate_frames=20),
    )


def ingested_system(index_type: str) -> LOVO:
    system = LOVO(persist_config(index_type))
    system.ingest(make_bellevue(num_videos=1, frames_per_video=80))
    return system


def result_tuples(response):
    return [(r.frame_id, r.patch_id, r.score, r.box) for r in response.results]


@pytest.fixture(scope="module", params=["flat", "hnsw", "ivfpq"])
def saved_system(request, tmp_path_factory):
    """One ingested-and-saved system per index family (module-scoped)."""
    system = ingested_system(request.param)
    root = tmp_path_factory.mktemp(f"snapshot_{request.param}")
    manifest = system.save(root)
    return request.param, system, root, manifest


class TestRoundTripParity:
    def test_query_results_bit_identical(self, saved_system):
        _, system, root, _ = saved_system
        loaded = LOVO.load(root)
        for text in QUERIES:
            assert result_tuples(loaded.query(text)) == result_tuples(system.query(text))

    def test_query_batch_bit_identical(self, saved_system):
        _, system, root, _ = saved_system
        loaded = LOVO.load(root)
        before = system.query_batch(QUERIES)
        after = loaded.query_batch(QUERIES)
        for response_before, response_after in zip(before.responses, after.responses):
            assert result_tuples(response_after) == result_tuples(response_before)

    def test_counters_and_reports_survive(self, saved_system):
        index_type, system, root, manifest = saved_system
        loaded = LOVO.load(root)
        assert loaded.num_entities == system.num_entities
        assert loaded.num_keyframes == system.num_keyframes
        assert loaded.ingested_datasets == system.ingested_datasets
        report = loaded.storage_report()
        assert report["index_type"] == index_type
        assert report["num_entities"] == system.num_entities
        assert manifest.info["index_type"] == index_type

    def test_loaded_system_supports_further_ingest(self, saved_system):
        _, _, root, _ = saved_system
        loaded = LOVO.load(root)
        before_entities = loaded.num_entities
        loaded.ingest(make_cityscapes(num_videos=1, frames_per_video=40))
        assert loaded.num_entities > before_entities
        assert loaded.query(QUERIES[0]).results

    def test_custom_reranker_config_survives(self, tmp_path):
        from repro.encoders.cross_modal import RerankerConfig

        custom = RerankerConfig(relation_bonus=0.9, relation_penalty=0.5, seed=99)
        system = LOVO(persist_config("flat"), custom)
        system.ingest(make_bellevue(num_videos=1, frames_per_video=60))
        system.save(tmp_path / "snap")
        loaded = LOVO.load(tmp_path / "snap")
        assert loaded._reranker.config == custom
        for text in QUERIES[:2]:
            assert result_tuples(loaded.query(text)) == result_tuples(system.query(text))

    def test_ablation_paths_survive(self, tmp_path):
        config = persist_config("flat").with_overrides(
            query=QueryConfig(
                fast_search_k=64, rerank_n=10, max_candidate_frames=20,
                rerank_enabled=False, ann_enabled=False,
            )
        )
        system = LOVO(config)
        system.ingest(make_bellevue(num_videos=1, frames_per_video=60))
        system.save(tmp_path / "snap")
        loaded = LOVO.load(tmp_path / "snap")
        assert loaded.config.query.rerank_enabled is False
        for text in QUERIES[:2]:
            assert result_tuples(loaded.query(text)) == result_tuples(system.query(text))


class TestManifest:
    def test_manifest_contents(self, saved_system):
        _, system, root, manifest = saved_system
        reread = read_manifest(root)
        assert reread.schema_version == SNAPSHOT_SCHEMA_VERSION
        assert reread.repro_version == repro.__version__
        assert reread.config_hash == manifest.config_hash
        assert reread.artifacts  # every non-manifest file is checksummed
        listed = {Path(name) for name in reread.artifacts}
        on_disk = {
            path.relative_to(root)
            for path in root.rglob("*")
            if path.is_file() and path.name != "manifest.json"
        }
        assert listed == on_disk

    def test_save_requires_ingest(self, tmp_path):
        with pytest.raises(PersistenceError):
            LOVO(persist_config("flat")).save(tmp_path / "empty")

    def test_load_missing_directory(self, tmp_path):
        with pytest.raises(PersistenceError):
            LOVO.load(tmp_path / "nowhere")

    def test_version_skew_rejected(self, tmp_path):
        system = ingested_system("flat")
        root = tmp_path / "snap"
        system.save(root)
        manifest_path = root / "manifest.json"
        document = json.loads(manifest_path.read_text())
        document["schema_version"] = SNAPSHOT_SCHEMA_VERSION + 1
        manifest_path.write_text(json.dumps(document))
        with pytest.raises(SnapshotVersionError):
            LOVO.load(root)

    def test_corrupted_artifact_rejected(self, tmp_path):
        system = ingested_system("flat")
        root = tmp_path / "snap"
        system.save(root)
        payload = root / "storage" / "metadata.npz"
        payload.write_bytes(b"\x00" + payload.read_bytes()[1:])
        with pytest.raises(SnapshotCorruptionError):
            LOVO.load(root)

    def test_missing_artifact_rejected(self, tmp_path):
        system = ingested_system("flat")
        root = tmp_path / "snap"
        system.save(root)
        (root / "frames.json").unlink()
        with pytest.raises(PersistenceError):
            LOVO.load(root)

    def test_non_numeric_schema_version_rejected(self, tmp_path):
        system = ingested_system("flat")
        root = tmp_path / "snap"
        system.save(root)
        manifest_path = root / "manifest.json"
        document = json.loads(manifest_path.read_text())
        document["schema_version"] = "garbage"
        manifest_path.write_text(json.dumps(document))
        with pytest.raises(SnapshotCorruptionError):
            LOVO.load(root)

    def test_tampered_config_rejected(self, tmp_path):
        system = ingested_system("flat")
        root = tmp_path / "snap"
        system.save(root)
        config_path = root / "config.json"
        document = json.loads(config_path.read_text())
        document["query"]["rerank_n"] = 999
        config_path.write_text(json.dumps(document))
        # Keep the artifact checksum consistent so the *config hash* check is
        # what trips (simulates a manifest/config pair from different saves).
        manifest_path = root / "manifest.json"
        manifest_doc = json.loads(manifest_path.read_text())
        manifest_doc["artifacts"]["config.json"] = sha256_file(config_path)
        manifest_path.write_text(json.dumps(manifest_doc))
        with pytest.raises(SnapshotCorruptionError):
            LOVO.load(root)

    def test_pre_serve_snapshot_without_serve_section_loads(self, tmp_path):
        """Snapshots written before ServeConfig existed must keep loading.

        Their ``config.json`` has no ``serve`` section and their manifest's
        config hash was computed over that smaller payload; loading must fill
        in serving defaults rather than reporting corruption.
        """
        system = ingested_system("flat")
        root = tmp_path / "snap"
        system.save(root)
        config_path = root / "config.json"
        document = json.loads(config_path.read_text())
        del document["serve"]
        config_path.write_text(json.dumps(document))
        manifest_path = root / "manifest.json"
        manifest_doc = json.loads(manifest_path.read_text())
        manifest_doc["config_hash"] = config_payload_hash(document)
        manifest_doc["artifacts"]["config.json"] = sha256_file(config_path)
        manifest_path.write_text(json.dumps(manifest_doc))

        loaded = LOVO.load(root)
        assert loaded.config.serve == ServeConfig()
        assert result_tuples(loaded.query(QUERIES[0])) == result_tuples(
            system.query(QUERIES[0])
        )

    def test_resave_removes_stale_manifest_first(self, tmp_path):
        system = ingested_system("flat")
        root = tmp_path / "snap"
        system.save(root)
        system.save(root)  # overwrite in place
        loaded = LOVO.load(root)
        assert loaded.num_entities == system.num_entities

    def test_layer_level_loads_raise_typed_errors(self, tmp_path):
        with pytest.raises(PersistenceError):
            VectorCollection.load(tmp_path / "missing")
        with pytest.raises(PersistenceError):
            VectorDatabase.load(tmp_path / "missing")
        with pytest.raises(PersistenceError):
            LOVOStorage.load(tmp_path / "missing")
        with pytest.raises(PersistenceError):
            MetadataStore.load(tmp_path / "missing.npz")

    def test_unparsable_manifest_rejected(self, tmp_path):
        system = ingested_system("flat")
        root = tmp_path / "snap"
        system.save(root)
        (root / "manifest.json").write_text("{not json")
        with pytest.raises(SnapshotCorruptionError):
            LOVO.load(root)

    def test_errors_are_repro_errors(self):
        assert issubclass(PersistenceError, ReproError)
        assert issubclass(SnapshotVersionError, PersistenceError)
        assert issubclass(SnapshotCorruptionError, PersistenceError)


class TestVectorLayers:
    def test_collection_round_trip_and_post_load_insert(self, tmp_path):
        rng = np.random.default_rng(3)
        vectors = rng.normal(size=(40, 16))
        vectors /= np.linalg.norm(vectors, axis=1, keepdims=True)
        collection = VectorCollection("patches", 16, IndexConfig(index_type="flat"))
        ids = [f"p{i:03d}" for i in range(40)]
        collection.insert(ids, vectors, [{"frame_id": f"f{i % 5}"} for i in range(40)])
        collection.save(tmp_path / "col")
        loaded = VectorCollection.load(tmp_path / "col")
        query = vectors[7]
        assert [(h.id, h.score) for h in loaded.search(query, 5)] == [
            (h.id, h.score) for h in collection.search(query, 5)
        ]
        assert loaded.get_metadata("p003") == collection.get_metadata("p003")
        # Inserting after a load must extend, not clobber, the restored state.
        extra = rng.normal(size=(4, 16))
        extra /= np.linalg.norm(extra, axis=1, keepdims=True)
        loaded.insert([f"q{i}" for i in range(4)], extra)
        assert loaded.num_entities == 44
        assert loaded.search(extra[0], 1)[0].id == "q0"
        assert "p007" in [h.id for h in loaded.search(query, 3)]

    def test_flat_and_hnsw_snapshots_store_vectors_once(self, tmp_path):
        rng = np.random.default_rng(9)
        vectors = rng.normal(size=(30, 16))
        vectors /= np.linalg.norm(vectors, axis=1, keepdims=True)
        for index_type in ("flat", "hnsw"):
            collection = VectorCollection("c", 16, IndexConfig(index_type=index_type))
            collection.insert([f"{index_type}{i}" for i in range(30)], vectors)
            collection.save(tmp_path / index_type)
            entities = np.load(tmp_path / index_type / "entities.npz")
            assert "vectors" not in entities.files  # carried by the index state
            loaded = VectorCollection.load(tmp_path / index_type)
            assert np.array_equal(loaded.get_vector(f"{index_type}3"), vectors[3])

    def test_empty_collection_round_trip(self, tmp_path):
        collection = VectorCollection("empty", 8, IndexConfig(index_type="flat"))
        collection.save(tmp_path / "col")
        loaded = VectorCollection.load(tmp_path / "col")
        assert loaded.num_entities == 0
        assert loaded.search(np.zeros(8), 3) == []

    def test_database_round_trip(self, tmp_path):
        database = VectorDatabase()
        rng = np.random.default_rng(5)
        for name in ("alpha", "beta"):
            collection = database.create_collection(name, 8, IndexConfig(index_type="flat"))
            collection.insert([f"{name}{i}" for i in range(6)], rng.normal(size=(6, 8)))
        database.save(tmp_path / "db")
        loaded = VectorDatabase.load(tmp_path / "db")
        assert loaded.list_collections() == ["alpha", "beta"]
        assert loaded.total_entities() == database.total_entities()

    def test_storage_round_trip(self, tmp_path):
        system = ingested_system("ivfpq")
        storage = system.storage
        storage.save(tmp_path / "storage")
        loaded = LOVOStorage.load(tmp_path / "storage")
        assert loaded.num_entities == storage.num_entities
        assert loaded.index_type == "ivfpq"
        assert loaded.metadata.count_frames() == storage.metadata.count_frames()
        assert loaded.metadata.count_patches() == storage.metadata.count_patches()
        some_patch = storage.metadata.list_patches()[0]
        assert loaded.patch_record(some_patch.patch_id) == some_patch


identifiers = st.text(
    alphabet=st.characters(whitelist_categories=("L", "N"), max_codepoint=0x2FF),
    min_size=1,
    max_size=12,
)
finite = st.floats(allow_nan=False, allow_infinity=False, width=32)
sizes = st.floats(min_value=0.0, max_value=8.0, allow_nan=False)

frame_records = st.builds(
    FrameRecord,
    frame_id=identifiers,
    video_id=identifiers,
    frame_index=st.integers(min_value=0, max_value=10**6),
    timestamp=finite,
)
patch_records = st.builds(
    PatchRecord,
    patch_id=identifiers,
    frame_id=identifiers,
    video_id=identifiers,
    patch_index=st.integers(min_value=0, max_value=10**4),
    box=st.builds(BoundingBox, x=finite, y=finite, w=sizes, h=sizes),
    objectness=st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
)


class TestMetadataRoundTrip:
    @settings(max_examples=30, deadline=None)
    @given(
        frames=st.lists(frame_records, max_size=8, unique_by=lambda r: r.frame_id),
        patches=st.lists(patch_records, max_size=8, unique_by=lambda r: r.patch_id),
    )
    def test_records_survive_columnar_round_trip(self, frames, patches):
        store = MetadataStore()
        store.add_frames(frames)
        store.add_patches(patches)
        loaded = MetadataStore.from_arrays(store.to_arrays())
        assert sorted(loaded.list_frames(), key=lambda r: r.frame_id) == sorted(
            store.list_frames(), key=lambda r: r.frame_id
        )
        assert sorted(loaded.list_patches(), key=lambda r: r.patch_id) == sorted(
            store.list_patches(), key=lambda r: r.patch_id
        )

    def test_save_load_file(self, tmp_path):
        store = MetadataStore()
        store.add_frames([FrameRecord("f0", "v0", 0, 0.5)])
        store.add_patches(
            [PatchRecord("p0", "f0", "v0", 3, BoundingBox(0.1, 0.2, 0.3, 0.4), 0.9)]
        )
        store.save(tmp_path / "meta.npz")
        loaded = MetadataStore.load(tmp_path / "meta.npz")
        assert loaded.get_patch("p0") == store.get_patch("p0")
        assert loaded.get_frame("f0") == store.get_frame("f0")

    def test_missing_column_rejected(self):
        store = MetadataStore()
        arrays = store.to_arrays()
        del arrays["patch_boxes"]
        with pytest.raises(SnapshotCorruptionError):
            MetadataStore.from_arrays(arrays)


class TestVersionSingleSourcing:
    def test_version_matches_pyproject(self):
        pyproject = Path(repro.__file__).resolve().parents[2] / "pyproject.toml"
        assert f'version = "{repro.__version__}"' in pyproject.read_text()

    def test_version_stamped_into_manifest(self, saved_system):
        _, _, _, manifest = saved_system
        assert manifest.repro_version == repro.__version__
