"""Unit and property tests for bounding-box geometry."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.utils.geometry import (
    BoundingBox,
    box_in_center_region,
    box_inside,
    box_next_to,
    boxes_side_by_side,
    clip_unit,
    iou,
    iou_matrix,
    merge_boxes,
    pairwise_center_distance,
)

boxes = st.builds(
    BoundingBox,
    x=st.floats(-0.5, 1.5),
    y=st.floats(-0.5, 1.5),
    w=st.floats(0.0, 1.0),
    h=st.floats(0.0, 1.0),
)


class TestBoundingBox:
    def test_basic_properties(self):
        box = BoundingBox(0.1, 0.2, 0.3, 0.4)
        assert box.x2 == pytest.approx(0.4)
        assert box.y2 == pytest.approx(0.6)
        assert box.area == pytest.approx(0.12)
        assert box.center == (pytest.approx(0.25), pytest.approx(0.4))

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            BoundingBox(0, 0, -0.1, 0.1)
        with pytest.raises(ValueError):
            BoundingBox(0, 0, 0.1, -0.1)

    def test_from_center_round_trip(self):
        box = BoundingBox.from_center(0.5, 0.5, 0.2, 0.1)
        assert box.center == (pytest.approx(0.5), pytest.approx(0.5))
        assert box.w == pytest.approx(0.2)

    def test_from_array_and_to_array(self):
        box = BoundingBox.from_array([0.1, 0.2, 0.3, 0.4])
        np.testing.assert_allclose(box.to_array(), [0.1, 0.2, 0.3, 0.4])

    def test_from_array_wrong_length(self):
        with pytest.raises(ValueError):
            BoundingBox.from_array([0.1, 0.2, 0.3])

    def test_clipped_stays_in_unit_square(self):
        box = BoundingBox(-0.2, 0.9, 0.5, 0.5)
        clipped = box.clipped()
        assert clipped.x >= 0.0 and clipped.y >= 0.0
        assert clipped.x2 <= 1.0 and clipped.y2 <= 1.0

    def test_shifted_and_scaled(self):
        box = BoundingBox(0.2, 0.2, 0.2, 0.2)
        shifted = box.shifted(0.1, -0.1)
        assert shifted.x == pytest.approx(0.3)
        assert shifted.y == pytest.approx(0.1)
        scaled = box.scaled(2.0)
        assert scaled.w == pytest.approx(0.4)
        assert scaled.center == (pytest.approx(0.3), pytest.approx(0.3))

    def test_contains_point(self):
        box = BoundingBox(0.2, 0.2, 0.2, 0.2)
        assert box.contains_point(0.3, 0.3)
        assert not box.contains_point(0.5, 0.5)

    def test_overlap_fraction(self):
        outer = BoundingBox(0.0, 0.0, 1.0, 1.0)
        inner = BoundingBox(0.0, 0.0, 0.5, 0.5)
        assert inner.overlap_fraction(outer) == pytest.approx(1.0)
        assert outer.overlap_fraction(inner) == pytest.approx(0.25)


class TestIoU:
    def test_identical_boxes(self):
        box = BoundingBox(0.1, 0.1, 0.2, 0.2)
        assert iou(box, box) == pytest.approx(1.0)

    def test_disjoint_boxes(self):
        a = BoundingBox(0.0, 0.0, 0.1, 0.1)
        b = BoundingBox(0.5, 0.5, 0.1, 0.1)
        assert iou(a, b) == 0.0

    def test_half_overlap(self):
        a = BoundingBox(0.0, 0.0, 0.2, 0.2)
        b = BoundingBox(0.1, 0.0, 0.2, 0.2)
        assert iou(a, b) == pytest.approx(1.0 / 3.0)

    def test_degenerate_boxes(self):
        a = BoundingBox(0.0, 0.0, 0.0, 0.0)
        b = BoundingBox(0.0, 0.0, 0.1, 0.1)
        assert iou(a, b) == 0.0

    def test_iou_matrix_shape_and_values(self):
        a = [BoundingBox(0, 0, 0.2, 0.2), BoundingBox(0.5, 0.5, 0.2, 0.2)]
        b = [BoundingBox(0, 0, 0.2, 0.2)]
        matrix = iou_matrix(a, b)
        assert matrix.shape == (2, 1)
        assert matrix[0, 0] == pytest.approx(1.0)
        assert matrix[1, 0] == 0.0

    @given(a=boxes, b=boxes)
    @settings(max_examples=100, deadline=None)
    def test_iou_symmetric_and_bounded(self, a, b):
        forward = iou(a, b)
        backward = iou(b, a)
        assert forward == pytest.approx(backward)
        assert 0.0 <= forward <= 1.0 + 1e-9

    @given(box=boxes)
    @settings(max_examples=100, deadline=None)
    def test_self_iou_is_one_for_positive_area(self, box):
        if box.w > 1e-6 and box.h > 1e-6:
            assert iou(box, box) == pytest.approx(1.0)

    @given(box=boxes)
    @settings(max_examples=100, deadline=None)
    def test_clipped_is_inside_unit_square(self, box):
        clipped = box.clipped()
        assert -1e-9 <= clipped.x <= 1.0 + 1e-9
        assert -1e-9 <= clipped.y <= 1.0 + 1e-9
        assert clipped.x2 <= 1.0 + 1e-9
        assert clipped.y2 <= 1.0 + 1e-9


class TestSpatialRelations:
    def test_side_by_side_true(self):
        a = BoundingBox.from_center(0.4, 0.5, 0.1, 0.08)
        b = BoundingBox.from_center(0.55, 0.5, 0.1, 0.08)
        assert boxes_side_by_side(a, b)

    def test_side_by_side_false_when_far(self):
        a = BoundingBox.from_center(0.1, 0.5, 0.1, 0.08)
        b = BoundingBox.from_center(0.9, 0.5, 0.1, 0.08)
        assert not boxes_side_by_side(a, b)

    def test_side_by_side_false_when_vertically_offset(self):
        a = BoundingBox.from_center(0.4, 0.2, 0.1, 0.08)
        b = BoundingBox.from_center(0.5, 0.7, 0.1, 0.08)
        assert not boxes_side_by_side(a, b)

    def test_center_region(self):
        assert box_in_center_region(BoundingBox.from_center(0.5, 0.5, 0.1, 0.1))
        assert not box_in_center_region(BoundingBox.from_center(0.05, 0.05, 0.1, 0.1))

    def test_next_to(self):
        a = BoundingBox.from_center(0.4, 0.5, 0.1, 0.1)
        b = BoundingBox.from_center(0.5, 0.5, 0.1, 0.1)
        assert box_next_to(a, b)
        far = BoundingBox.from_center(0.95, 0.1, 0.05, 0.05)
        assert not box_next_to(a, far)

    def test_inside(self):
        outer = BoundingBox(0.2, 0.2, 0.6, 0.6)
        inner = BoundingBox(0.3, 0.3, 0.1, 0.1)
        assert box_inside(inner, outer)
        assert not box_inside(outer, inner)


class TestHelpers:
    def test_clip_unit(self):
        assert clip_unit(-0.5) == 0.0
        assert clip_unit(0.25) == 0.25
        assert clip_unit(1.5) == 1.0

    def test_merge_boxes(self):
        merged = merge_boxes([BoundingBox(0, 0, 0.2, 0.2), BoundingBox(0.5, 0.5, 0.2, 0.2)])
        assert merged.x == 0.0 and merged.y == 0.0
        assert merged.x2 == pytest.approx(0.7)
        assert merged.y2 == pytest.approx(0.7)

    def test_merge_empty_raises(self):
        with pytest.raises(ValueError):
            merge_boxes([])

    def test_pairwise_center_distance(self):
        distances = pairwise_center_distance(
            [BoundingBox.from_center(0, 0, 0.1, 0.1), BoundingBox.from_center(1, 0, 0.1, 0.1)]
        )
        assert distances.shape == (2, 2)
        assert distances[0, 1] == pytest.approx(1.0)
        assert distances[0, 0] == 0.0

    def test_pairwise_center_distance_empty(self):
        assert pairwise_center_distance([]).shape == (0, 0)
