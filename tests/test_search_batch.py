"""Batch/sequential parity and edge-case contract of the ANN indexes.

Every index must answer ``search_batch(queries, k)`` with exactly the hits a
sequential ``search`` loop would produce, and all indexes share one edge-case
contract: ``k <= 0`` and an empty index yield empty results, ``k > ntotal``
returns at most ``ntotal`` hits, and malformed query shapes raise.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import IndexConfig
from repro.errors import DimensionMismatchError
from repro.vectordb.base import VectorIndex
from repro.vectordb.collection import VectorCollection
from repro.vectordb.flat import FlatIndex
from repro.vectordb.hnsw import HNSWIndex
from repro.vectordb.ivfpq import IVFPQIndex

DIM = 32


def unit_vectors(n=300, dim=DIM, seed=0):
    rng = np.random.default_rng(seed)
    vectors = rng.normal(size=(n, dim))
    return vectors / np.linalg.norm(vectors, axis=1, keepdims=True)


def make_index(index_type: str, dim: int = DIM) -> VectorIndex:
    if index_type == "flat":
        return FlatIndex(dim)
    if index_type == "hnsw":
        return HNSWIndex(dim, IndexConfig(hnsw_m=8, hnsw_ef_construction=48, hnsw_ef_search=48))
    return IVFPQIndex(
        dim,
        IndexConfig(num_subspaces=4, num_centroids=16, num_coarse_clusters=8, nprobe=4),
    )


def populated_index(index_type: str, vectors: np.ndarray) -> VectorIndex:
    index = make_index(index_type, vectors.shape[1])
    index.add(list(range(len(vectors))), vectors)
    index.build()
    return index


def assert_hits_match(sequential, batched):
    assert [hit.id for hit in sequential] == [hit.id for hit in batched]
    np.testing.assert_allclose(
        [hit.score for hit in sequential],
        [hit.score for hit in batched],
        rtol=1e-9,
        atol=1e-12,
    )


INDEX_TYPES = ["flat", "hnsw", "ivfpq"]


@pytest.mark.parametrize("index_type", INDEX_TYPES)
class TestBatchSequentialParity:
    def test_batch_matches_sequential(self, index_type):
        vectors = unit_vectors()
        index = populated_index(index_type, vectors)
        queries = unit_vectors(16, seed=5)
        batched = index.search_batch(queries, 10)
        assert len(batched) == 16
        for row, hits in zip(queries, batched):
            assert_hits_match(index.search(row, 10), hits)

    def test_duplicate_query_rows_agree(self, index_type):
        vectors = unit_vectors()
        index = populated_index(index_type, vectors)
        query = vectors[3]
        batched = index.search_batch(np.stack([query, query, query]), 5)
        first = [(hit.id, hit.score) for hit in batched[0]]
        for hits in batched[1:]:
            assert [(hit.id, hit.score) for hit in hits] == first

    def test_single_vector_accepted_as_batch_of_one(self, index_type):
        vectors = unit_vectors()
        index = populated_index(index_type, vectors)
        batched = index.search_batch(vectors[0], 5)
        assert len(batched) == 1
        assert_hits_match(index.search(vectors[0], 5), batched[0])


@pytest.mark.parametrize("index_type", INDEX_TYPES)
class TestEdgeCaseContract:
    def test_k_zero_and_negative(self, index_type):
        vectors = unit_vectors(50)
        index = populated_index(index_type, vectors)
        queries = unit_vectors(3, seed=1)
        for k in (0, -2):
            assert index.search(queries[0], k) == []
            assert index.search_batch(queries, k) == [[], [], []]

    def test_empty_index(self, index_type):
        index = make_index(index_type)
        queries = unit_vectors(2, seed=2)
        assert index.search(queries[0], 5) == []
        assert index.search_batch(queries, 5) == [[], []]

    def test_k_exceeding_ntotal_capped(self, index_type):
        vectors = unit_vectors(20)
        index = populated_index(index_type, vectors)
        hits = index.search(vectors[0], 500)
        assert 0 < len(hits) <= 20
        for row_hits in index.search_batch(vectors[:3], 500):
            assert 0 < len(row_hits) <= 20

    def test_bad_query_shape_rejected(self, index_type):
        vectors = unit_vectors(30)
        index = populated_index(index_type, vectors)
        with pytest.raises(DimensionMismatchError):
            index.search_batch(np.ones((2, DIM + 1)), 3)


class TestDefaultSearchBatch:
    """The base-class fallback loops ``search`` with the shared contract."""

    class LoopingIndex(VectorIndex):
        def __init__(self, dim):
            super().__init__(dim)
            self._flat = FlatIndex(dim)

        @property
        def ntotal(self):
            return self._flat.ntotal

        def add(self, ids, vectors):
            self._flat.add(ids, vectors)

        def build(self):
            self._flat.build()

        def search(self, query, k):
            return self._flat.search(query, k)

    def test_fallback_matches_sequential(self):
        vectors = unit_vectors(60)
        index = self.LoopingIndex(DIM)
        index.add(list(range(60)), vectors)
        index.build()
        queries = unit_vectors(4, seed=9)
        for row, hits in zip(queries, index.search_batch(queries, 7)):
            assert_hits_match(index.search(row, 7), hits)

    def test_fallback_edge_cases(self):
        empty = self.LoopingIndex(DIM)
        assert empty.search_batch(unit_vectors(2, seed=3), 5) == [[], []]
        populated = self.LoopingIndex(DIM)
        populated.add([0], unit_vectors(1))
        assert populated.search_batch(unit_vectors(2, seed=3), 0) == [[], []]


class TestFlatBatchProperty:
    """Property-style check: parity holds for arbitrary shapes and k."""

    @settings(max_examples=25, deadline=None)
    @given(
        num_vectors=st.integers(min_value=1, max_value=80),
        num_queries=st.integers(min_value=1, max_value=12),
        k=st.integers(min_value=-2, max_value=100),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    def test_parity(self, num_vectors, num_queries, k, seed):
        rng = np.random.default_rng(seed)
        vectors = rng.normal(size=(num_vectors, 8))
        vectors /= np.maximum(np.linalg.norm(vectors, axis=1, keepdims=True), 1e-12)
        queries = rng.normal(size=(num_queries, 8))
        index = FlatIndex(8)
        index.add(list(range(num_vectors)), vectors)
        index.build()
        batched = index.search_batch(queries, k)
        assert len(batched) == num_queries
        for row, hits in zip(queries, batched):
            assert_hits_match(index.search(row, k), hits)


class TestCollectionBatch:
    def test_collection_search_batch_parity(self):
        vectors = unit_vectors(120)
        collection = VectorCollection("c", DIM, IndexConfig(index_type="flat"))
        collection.insert([f"p{i}" for i in range(120)], vectors, [{"i": i} for i in range(120)])
        queries = unit_vectors(5, seed=4)
        batched = collection.search_batch(queries, 6)
        assert len(batched) == 5
        for row, hits in zip(queries, batched):
            sequential = collection.search(row, 6)
            assert [hit.id for hit in sequential] == [hit.id for hit in hits]
            np.testing.assert_allclose(
                [hit.score for hit in sequential],
                [hit.score for hit in hits],
                rtol=1e-9,
            )
            assert all(hit.metadata for hit in hits)

    def test_collection_exhaustive_batch_parity(self):
        vectors = unit_vectors(90)
        collection = VectorCollection("c", DIM, IndexConfig())
        collection.insert([f"p{i}" for i in range(90)], vectors)
        queries = unit_vectors(4, seed=6)
        batched = collection.search_exhaustive_batch(queries, 8)
        for row, hits in zip(queries, batched):
            sequential = collection.search_exhaustive(row, 8)
            assert [h.id for h in sequential] == [h.id for h in hits]
            np.testing.assert_allclose(
                [h.score for h in sequential], [h.score for h in hits], rtol=1e-9
            )

    def test_collection_batch_edge_cases(self):
        collection = VectorCollection("c", DIM, IndexConfig(index_type="flat"))
        queries = unit_vectors(3, seed=7)
        assert collection.search_batch(queries, 5) == [[], [], []]
        collection.insert(["a"], unit_vectors(1))
        assert collection.search_batch(queries, 0) == [[], [], []]
        assert collection.search_exhaustive_batch(queries, -1) == [[], [], []]
