"""Tests for the answer-quality & cost observability layer.

Covers the four new :mod:`repro.obs` pieces — shadow-recall sampling
(:mod:`repro.obs.quality`), per-query EXPLAIN (:mod:`repro.obs.explain`),
the metrics-history ring (:mod:`repro.obs.timeseries`), and SLO burn-rate
tracking (:mod:`repro.obs.slo`) — plus their wiring through the serving
engine and the HTTP frontend, and the exposition satellites
(``lovo_build_info``, deterministic ``render``, ``HEAD /v1/metrics``).

The headline check mirrors the acceptance criterion: the shadow-sampled
online recall@10 estimate must land within ±0.05 of a ground-truth recall
computed independently by full exact re-scoring, for all three index
families, sharded and unsharded.
"""

from __future__ import annotations

import json
import logging
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro import LOVO, LOVOConfig, ObsConfig
from repro.config import (
    EncoderConfig,
    IndexConfig,
    KeyframeConfig,
    QueryConfig,
    ServeConfig,
    ShardConfig,
)
from repro.core.query import (
    FAST_SEARCH_PROVENANCE_CAP,
    QueryOptions,
)
from repro.errors import ConfigurationError, QueryError
from repro.obs.explain import ExplainStore, build_explain_report
from repro.obs.exposition import build_info_family, parse_exposition, render
from repro.obs.quality import DriftMonitor, ShadowSampler
from repro.obs.registry import MetricFamily, MetricsRegistry, Sample
from repro.obs.slo import RECALL_OBJECTIVE, SLOTracker
from repro.obs.timeseries import MetricsHistory, flatten_families
from repro.serve import ServingEngine
from repro.serve.http import make_server
from repro.video.datasets import make_bellevue

QUERY_TEXTS = [
    "A red car driving in the center of the road.",
    "A bus driving on the road.",
    "A truck parked on the left side of the road.",
    "A person walking across the road.",
    "A white car turning at the intersection.",
    "A bicycle next to a parked car.",
    "Two cars side by side in the rightmost lane.",
    "A bus with a yellow-green body near the sidewalk.",
]


def quality_config(
    index_type: str = "flat",
    sharded: bool = False,
    **obs_overrides: object,
) -> LOVOConfig:
    """A small configuration with shadow sampling switched on."""
    obs_defaults: dict = {"shadow_sample_rate": 1.0, "shadow_recall_k": 10}
    obs_defaults.update(obs_overrides)
    return LOVOConfig(
        encoder=EncoderConfig(embedding_dim=64, class_embedding_dim=32, patch_grid=6),
        keyframes=KeyframeConfig(strategy="uniform", uniform_stride=10),
        index=IndexConfig(
            index_type=index_type,
            num_subspaces=4,
            num_centroids=16,
            num_coarse_clusters=8,
            nprobe=3,
        ),
        query=QueryConfig(fast_search_k=128, rerank_n=20, max_candidate_frames=30),
        shard=ShardConfig(num_shards=2) if sharded else ShardConfig(),
        obs=ObsConfig(**obs_defaults),
    )


def ground_truth_recall(system: LOVO, texts, k: int) -> float:
    """Mean recall@k of the served fast-search ranking vs a full exact scan.

    Computed independently of the shadow sampler: re-derive the query vector,
    run the exhaustive scan, and compare against the provenance the query
    path stamped into the response — the same comparison the sampler makes,
    implemented from scratch as ground truth.
    """
    encoder = system.text_encoder
    recalls = []
    for text in texts:
        served = system.query(text).metadata["fast_search"]["hits"]
        effective_k = min(k, len(served))
        vector = encoder.encode(encoder.parse(text))
        exact = system.storage.search(vector, effective_k, use_ann=False)
        served_top_k = {patch_id for patch_id, _ in served[:effective_k]}
        overlap = sum(1 for hit in exact if hit.id in served_top_k)
        recalls.append(overlap / len(exact))
    return sum(recalls) / len(recalls)


# ---------------------------------------------------------------------------
# QueryOptions.explain
# ---------------------------------------------------------------------------


class TestQueryOptionsExplain:
    def test_default_off_and_omitted_from_dict(self):
        options = QueryOptions()
        assert options.explain is False
        assert "explain" not in options.to_dict()

    def test_round_trip(self):
        options = QueryOptions(top_n=5, explain=True)
        payload = options.to_dict()
        assert payload["explain"] is True
        assert QueryOptions.from_dict(payload) == options

    def test_non_bool_rejected(self):
        with pytest.raises(QueryError):
            QueryOptions(explain=1)  # type: ignore[arg-type]
        with pytest.raises(QueryError):
            QueryOptions.from_dict({"explain": "yes"})

    def test_explain_distinct_for_hashing(self):
        assert hash(QueryOptions(explain=True)) != hash(QueryOptions()) or (
            QueryOptions(explain=True) != QueryOptions()
        )
        assert QueryOptions(explain=True) != QueryOptions()


# ---------------------------------------------------------------------------
# ObsConfig validation
# ---------------------------------------------------------------------------


class TestObsConfigValidation:
    @pytest.mark.parametrize(
        "overrides",
        [
            {"shadow_sample_rate": -0.1},
            {"shadow_sample_rate": 1.5},
            {"shadow_recall_k": 0},
            {"shadow_queue_size": 0},
            {"shadow_window": 0},
            {"drift_threshold": 0.0},
            {"history_interval_seconds": 0.0},
            {"history_capacity": 0},
            {"slo_latency_ms": 0.0},
            {"slo_latency_target": 1.0},
            {"slo_availability_target": 0.0},
            {"slo_recall_target": 1.2},
            {"slo_fast_window_seconds": 120.0, "slo_slow_window_seconds": 60.0},
            {"slo_max_events": 0},
        ],
    )
    def test_invalid_values_rejected(self, overrides):
        with pytest.raises(ConfigurationError):
            ObsConfig(**overrides)

    def test_round_trips_through_config_dict(self):
        config = quality_config(
            shadow_sample_rate=0.25, slo_latency_ms=100.0, history_capacity=12
        )
        restored = LOVOConfig.from_dict(config.to_dict())
        assert restored.obs.shadow_sample_rate == 0.25
        assert restored.obs.slo_latency_ms == 100.0
        assert restored.obs.history_capacity == 12


# ---------------------------------------------------------------------------
# DriftMonitor
# ---------------------------------------------------------------------------


class TestDriftMonitor:
    def _monitor(self, **kwargs) -> tuple:
        registry = MetricsRegistry()
        counter = registry.counter("drift_total", "alerts", ("signal",))
        monitor = DriftMonitor("test_signal", counter, **kwargs)
        return monitor, counter

    def test_no_alert_during_baseline_or_stable_stream(self):
        monitor, counter = self._monitor(baseline=16, window=8)
        assert monitor.observe_many([1.0] * 64) == 0
        assert counter.value(signal="test_signal") == 0

    def test_shift_alerts_once_then_rebaselines(self):
        monitor, counter = self._monitor(baseline=16, window=8, threshold=4.0)
        monitor.observe_many([1.0] * 16)
        # A large level shift: one alert on the first completed window...
        assert monitor.observe_many([100.0] * 8) == 1
        assert counter.value(signal="test_signal") == 1
        # ...and none afterwards, because the monitor re-baselined onto the
        # shifted distribution.
        assert monitor.observe_many([100.0] * 64) == 0
        assert counter.value(signal="test_signal") == 1

    def test_stats_shape(self):
        monitor, _ = self._monitor(baseline=4, window=2)
        monitor.observe_many([2.0, 2.0, 2.0, 2.0])
        stats = monitor.stats()
        assert stats["signal"] == "test_signal"
        assert stats["observations"] == 4
        assert stats["reference_mean"] == pytest.approx(2.0)
        assert stats["alerts"] == 0


# ---------------------------------------------------------------------------
# ShadowSampler mechanics (no serving engine involved)
# ---------------------------------------------------------------------------


class TestShadowSamplerMechanics:
    def test_fractional_accumulator_admits_configured_rate(self, lovo_system):
        sampler = ShadowSampler(
            lovo_system, ObsConfig(shadow_sample_rate=0.25, shadow_queue_size=256)
        )
        fast = {"hits": [("p1", 1.0)]}
        admitted = sum(
            1 for _ in range(100) if sampler.maybe_sample("text", fast)
        )
        assert admitted == 25
        sampler.stop()

    def test_zero_rate_never_samples(self, lovo_system):
        sampler = ShadowSampler(lovo_system, ObsConfig(shadow_sample_rate=0.0))
        assert not sampler.maybe_sample("text", {"hits": [("p1", 1.0)]})
        sampler.stop()

    def test_empty_provenance_skipped(self, lovo_system):
        sampler = ShadowSampler(lovo_system, ObsConfig(shadow_sample_rate=1.0))
        assert not sampler.maybe_sample("text", None)
        assert not sampler.maybe_sample("text", {"hits": []})
        sampler.stop()

    def test_full_queue_drops_instead_of_blocking(self, lovo_system):
        registry = MetricsRegistry()
        sampler = ShadowSampler(
            lovo_system,
            ObsConfig(shadow_sample_rate=1.0, shadow_queue_size=2),
            registry=registry,
        )
        # Worker never started: the queue fills at its bound and further
        # samples are dropped (counted), never blocking the caller.
        fast = {"hits": [("p1", 1.0)]}
        for _ in range(10):
            sampler.maybe_sample("text", fast)
        dropped = registry.counter(
            "lovo_recall_shadow_dropped_total",
            "Shadow samples dropped because the hand-off queue was full.",
        )
        assert dropped.value() == 8
        sampler.stop()

    def test_stop_is_idempotent_and_blocks_restart(self, lovo_system):
        sampler = ShadowSampler(lovo_system, ObsConfig(shadow_sample_rate=1.0))
        sampler.start()
        sampler.stop()
        sampler.stop()
        with pytest.raises(RuntimeError):
            sampler.start()


# ---------------------------------------------------------------------------
# Shadow recall accuracy: the acceptance-criterion matrix
# ---------------------------------------------------------------------------


class TestShadowRecallAccuracy:
    @pytest.mark.parametrize("index_type", ["flat", "ivfpq", "hnsw"])
    @pytest.mark.parametrize("sharded", [False, True], ids=["unsharded", "sharded"])
    def test_estimate_matches_ground_truth(self, index_type, sharded):
        system = LOVO(quality_config(index_type=index_type, sharded=sharded))
        system.ingest(make_bellevue(num_videos=1, frames_per_video=120))
        serve_config = ServeConfig(num_workers=2, max_wait_ms=1.0, cache_size=0)
        engine = ServingEngine(system, serve_config).start()
        try:
            assert engine.quality is not None
            for text in QUERY_TEXTS:
                engine.query(text, timeout=60.0)
            assert engine.quality.flush(timeout=60.0)
            stats = engine.quality.stats()
        finally:
            engine.stop()

        key = f"{index_type}{'-sharded' if sharded else ''}"
        assert stats["processed"] == len(QUERY_TEXTS)
        family = stats["families"][key]
        assert family["samples"] == len(QUERY_TEXTS)

        truth = ground_truth_recall(system, QUERY_TEXTS, k=10)
        assert family["recall_at_k"] == pytest.approx(truth, abs=0.05)
        # Flat search *is* the exact scan, so its served ranking must agree
        # perfectly with the shadow re-scan.
        if index_type == "flat":
            assert family["recall_at_k"] == pytest.approx(1.0)
            assert family["rank_displacement"] == pytest.approx(0.0)
            assert family["score_margin"] == pytest.approx(0.0, abs=1e-6)

    def test_sharded_samples_attribute_per_shard(self):
        system = LOVO(quality_config(index_type="flat", sharded=True))
        system.ingest(make_bellevue(num_videos=1, frames_per_video=120))
        engine = ServingEngine(
            system, ServeConfig(num_workers=1, max_wait_ms=1.0, cache_size=0)
        ).start()
        try:
            for text in QUERY_TEXTS[:4]:
                engine.query(text, timeout=60.0)
            assert engine.quality.flush(timeout=60.0)
            # Families sharing a name may appear once per registry (engine +
            # module-level); aggregate samples the same way render() merges.
            samples: dict = {}
            for family in engine.metric_families():
                samples.setdefault(family.name, []).extend(family.samples)
        finally:
            engine.stop()
        assert "lovo_recall_shard_hits_total" in samples
        shard_samples = samples["lovo_recall_shard_at_k"]
        shards = {sample.labels["shard"] for sample in shard_samples}
        assert shards  # at least one shard owned exact-top-k ids
        for sample in shard_samples:
            assert 0.0 <= sample.value <= 1.0

    def test_recall_metrics_exposed_with_family_labels(self):
        system = LOVO(quality_config(index_type="ivfpq"))
        system.ingest(make_bellevue(num_videos=1, frames_per_video=120))
        engine = ServingEngine(
            system, ServeConfig(num_workers=1, max_wait_ms=1.0, cache_size=0)
        ).start()
        try:
            for text in QUERY_TEXTS[:4]:
                engine.query(text, timeout=60.0)
            assert engine.quality.flush(timeout=60.0)
            text_metrics = render(engine.metric_families())
        finally:
            engine.stop()
        parsed = parse_exposition(text_metrics)
        samples = parsed["lovo_recall_at_k"]["samples"]
        labels = samples[0]["labels"]
        assert labels["family"] == "ivfpq"
        assert labels["sharded"] == "false"
        assert labels["k"] == "10"
        assert 0.0 <= samples[0]["value"] <= 1.0
        assert parsed["lovo_recall_samples_total"]["samples"][0]["value"] == 4.0


# ---------------------------------------------------------------------------
# EXPLAIN
# ---------------------------------------------------------------------------


class TestExplainStore:
    def test_bounded_fifo_eviction(self):
        store = ExplainStore(capacity=2)
        store.put("a", {"n": 1})
        store.put("b", {"n": 2})
        store.put("c", {"n": 3})
        assert store.get("a") is None
        assert store.get("b") == {"n": 2}
        assert store.get("c") == {"n": 3}
        assert len(store) == 2
        assert store.stats() == {"stored": 2, "capacity": 2}

    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError):
            ExplainStore(capacity=0)


class TestExplainEngine:
    @pytest.fixture(scope="class")
    def explain_service(self):
        system = LOVO(quality_config(index_type="ivfpq", shadow_sample_rate=0.0))
        system.ingest(make_bellevue(num_videos=1, frames_per_video=120))
        engine = ServingEngine(
            system, ServeConfig(num_workers=2, max_wait_ms=1.0, cache_size=32)
        ).start()
        yield engine
        engine.stop()

    def test_report_structure(self, explain_service):
        engine = explain_service
        response = engine.query(
            QUERY_TEXTS[0], options=QueryOptions(explain=True), timeout=60.0
        )
        report = response.metadata["explain"]
        assert report["query"] == QUERY_TEXTS[0]
        assert report["trace_id"] == response.metadata["trace_id"]

        params = report["params"]
        assert params["index_type"] == "ivfpq"
        assert params["nprobe"] == 3
        assert params["num_coarse_clusters"] == 8
        assert params["fast_search_k"] == 128
        assert params["top_n"] == 20

        stages = report["stages"]
        for stage in ("queue_wait", "encode", "fast_search", "rerank"):
            assert stage in stages, f"missing stage {stage}"
            assert stages[stage]["calls"] >= 1
            assert stages[stage]["total_ms"] >= 0.0
        # The IVF-PQ index reports its internal cost split too.
        assert "coarse_scan" in stages
        assert "adc_scan" in stages

        candidates = report["candidates"]
        assert candidates["fast_search_hits"] > 0
        assert candidates["num_candidate_frames"] > 0

        margins = report["score_margins"]
        assert margins["num_results"] == len(response.results)
        assert "fast_search_top1_top2_margin" in margins

        provenance = report["provenance"]
        assert provenance["data_epoch"] == engine.system.data_version
        assert provenance["cache_hit"] is False
        assert provenance["sharded"] is False
        assert report["duration_ms"] > 0.0

    def test_report_retained_in_store(self, explain_service):
        engine = explain_service
        response = engine.query(
            QUERY_TEXTS[1], options=QueryOptions(explain=True), timeout=60.0
        )
        trace_id = response.metadata["trace_id"]
        assert engine.explain_store.get(trace_id) == response.metadata["explain"]

    def test_explain_bypasses_cache_both_ways(self, explain_service):
        engine = explain_service
        text = QUERY_TEXTS[2]
        options = QueryOptions(explain=True)
        first = engine.query(text, options=options, timeout=60.0)
        second = engine.query(text, options=options, timeout=60.0)
        # Two explain passes really ran: distinct traces, neither a hit.
        assert first.metadata["trace_id"] != second.metadata["trace_id"]
        assert not first.metadata.get("cache_hit")
        assert not second.metadata.get("cache_hit")
        # And neither primed the cache: the first *non*-explain request
        # misses, the next one hits.
        miss = engine.query(text, timeout=60.0)
        assert not miss.metadata.get("cache_hit")
        assert "explain" not in miss.metadata
        hit = engine.query(text, timeout=60.0)
        assert hit.metadata["cache_hit"] is True

    def test_plain_queries_have_no_report(self, explain_service):
        response = explain_service.query(QUERY_TEXTS[3], timeout=60.0)
        assert "explain" not in response.metadata

    def test_batch_path_builds_reports(self, explain_service):
        engine = explain_service
        responses = engine.query_many(
            QUERY_TEXTS[4:7], options=QueryOptions(explain=True), timeout=60.0
        )
        trace_ids = {response.metadata["trace_id"] for response in responses}
        assert len(trace_ids) == 3
        for response in responses:
            report = response.metadata["explain"]
            assert report["query"] == response.query
            assert engine.explain_store.get(response.metadata["trace_id"]) == report

    def test_shard_candidates_in_sharded_report(self):
        system = LOVO(quality_config(index_type="flat", sharded=True,
                                     shadow_sample_rate=0.0))
        system.ingest(make_bellevue(num_videos=1, frames_per_video=120))
        engine = ServingEngine(
            system, ServeConfig(num_workers=1, max_wait_ms=1.0, cache_size=0)
        ).start()
        try:
            response = engine.query(
                QUERY_TEXTS[0], options=QueryOptions(explain=True), timeout=60.0
            )
        finally:
            engine.stop()
        report = response.metadata["explain"]
        assert report["provenance"]["sharded"] is True
        assert report["provenance"]["num_shards"] == 2
        per_shard = report["candidates"]["per_shard"]
        assert {entry["shard"] for entry in per_shard} == {0, 1}
        for entry in per_shard:
            assert entry["outcome"] == "ok"
            assert entry["candidates"] > 0
            assert entry["duration_ms"] >= 0.0

    def test_fast_search_provenance_capped(self, explain_service):
        response = explain_service.query(
            QUERY_TEXTS[0],
            options=QueryOptions(explain=True, fast_search_k=512),
            timeout=60.0,
        )
        fast = response.metadata["fast_search"]
        assert len(fast["hits"]) <= FAST_SEARCH_PROVENANCE_CAP
        assert fast["num_hits"] >= len(fast["hits"])

    def test_build_report_without_trace(self, explain_service):
        engine = explain_service
        response = engine.query(QUERY_TEXTS[0], timeout=60.0)
        report = build_explain_report(
            response,
            None,
            options=QueryOptions(),
            query_config=engine.system.config.query,
            index_config=engine.system.config.index,
            backend={},
            epoch=0,
        )
        assert report["trace_id"] is None
        assert report["stages"] == {}
        assert report["score_margins"]["num_results"] == len(response.results)


# ---------------------------------------------------------------------------
# Metrics history
# ---------------------------------------------------------------------------


class TestMetricsHistory:
    @staticmethod
    def _families(value: float):
        return [
            MetricFamily(
                "demo_total",
                "counter",
                "",
                [
                    Sample("demo_total", {"side": "a"}, value),
                    Sample("demo_total", {}, value * 2),
                ],
            ),
            MetricFamily("other", "gauge", "", [Sample("other", {}, 7.0)]),
        ]

    def test_flatten_families_keys(self):
        values = flatten_families(self._families(3.0))
        assert values == {
            'demo_total{side="a"}': 3.0,
            "demo_total": 6.0,
            "other": 7.0,
        }

    def test_tick_points_and_capacity(self):
        counter = {"value": 0.0}

        def collect():
            counter["value"] += 1.0
            return self._families(counter["value"])

        history = MetricsHistory(collect, interval_seconds=60.0, capacity=3)
        for tick in range(5):
            history.tick(now=float(tick))
        points = history.points()
        assert len(points) == 3  # bounded ring: oldest two evicted
        assert [point["t"] for point in points] == [2.0, 3.0, 4.0]
        assert points[-1]["values"]["other"] == 7.0

    def test_limit_and_prefix_filters(self):
        history = MetricsHistory(lambda: self._families(1.0), capacity=10)
        for tick in range(4):
            history.tick(now=float(tick))
        limited = history.points(limit=2)
        assert [point["t"] for point in limited] == [2.0, 3.0]
        filtered = history.points(prefix="other")
        assert all(set(point["values"]) == {"other"} for point in filtered)

    def test_series_extraction(self):
        history = MetricsHistory(lambda: self._families(1.0), capacity=10)
        history.tick(now=1.0)
        history.tick(now=2.0)
        series = history.series("other")
        assert series == [{"t": 1.0, "value": 7.0}, {"t": 2.0, "value": 7.0}]
        assert history.series("missing") == []

    def test_listener_runs_on_tick_and_errors_are_swallowed(self):
        seen = []
        history = MetricsHistory(lambda: self._families(1.0), capacity=4)
        history.add_listener(seen.append)
        history.add_listener(lambda point: 1 / 0)
        history.tick(now=5.0)
        assert len(seen) == 1 and seen[0]["t"] == 5.0

    def test_background_ticker_runs(self):
        history = MetricsHistory(
            lambda: self._families(1.0), interval_seconds=0.02, capacity=64
        )
        history.start()
        deadline = time.monotonic() + 5.0
        while not history.points() and time.monotonic() < deadline:
            time.sleep(0.01)
        history.stop()
        assert history.points()
        history.stop()  # idempotent
        with pytest.raises(RuntimeError):
            history.start()

    def test_validation(self):
        with pytest.raises(ValueError):
            MetricsHistory(list, interval_seconds=0.0)
        with pytest.raises(ValueError):
            MetricsHistory(list, capacity=0)


# ---------------------------------------------------------------------------
# SLO burn rates
# ---------------------------------------------------------------------------


class TestSLOTracker:
    @staticmethod
    def _tracker(**overrides):
        defaults = {
            "slo_latency_ms": 250.0,
            "slo_latency_target": 0.9,
            "slo_availability_target": 0.9,
            "slo_recall_target": 0.8,
            "slo_fast_window_seconds": 60.0,
            "slo_slow_window_seconds": 600.0,
        }
        defaults.update(overrides)
        registry = MetricsRegistry()
        return SLOTracker(ObsConfig(**defaults), registry=registry), registry

    def test_quiet_tracker_is_ok(self):
        tracker, _ = self._tracker()
        evaluation = tracker.evaluate(now=1000.0)
        assert evaluation["status"] == "ok"
        assert {entry["name"] for entry in evaluation["slos"]} == {
            "latency", "availability", "recall",
        }

    def test_all_good_requests_stay_ok(self):
        tracker, _ = self._tracker()
        now = 1000.0
        for _ in range(50):
            tracker.record_request(0.01, True, now=now - 5.0)
        evaluation = tracker.evaluate(now=now)
        assert evaluation["status"] == "ok"
        by_name = {entry["name"]: entry for entry in evaluation["slos"]}
        assert by_name["latency"]["fast"]["events"] == 50
        assert by_name["latency"]["fast"]["bad_events"] == 0

    def test_sustained_failures_breach_both_windows(self):
        tracker, _ = self._tracker()
        now = 1000.0
        # Bad events across both windows: errors burn availability.
        for age in (500.0, 400.0, 300.0, 30.0, 10.0, 5.0):
            tracker.record_request(0.01, False, now=now - age, outcome="error")
        evaluation = tracker.evaluate(now=now)
        by_name = {entry["name"]: entry for entry in evaluation["slos"]}
        assert by_name["availability"]["status"] == "breaching"
        assert by_name["availability"]["fast"]["burn_rate"] >= 1.0
        assert by_name["availability"]["slow"]["burn_rate"] >= 1.0
        assert evaluation["status"] == "breaching"

    def test_recent_blip_is_warning_only(self):
        tracker, _ = self._tracker()
        now = 1000.0
        # Long good history inside the slow window but outside the fast one…
        for _ in range(95):
            tracker.record_request(0.01, True, now=now - 300.0)
        # …then a short burst of recent failures.
        for _ in range(5):
            tracker.record_request(0.01, False, now=now - 5.0, outcome="error")
        evaluation = tracker.evaluate(now=now)
        by_name = {entry["name"]: entry for entry in evaluation["slos"]}
        availability = by_name["availability"]
        assert availability["fast"]["burn_rate"] >= 1.0
        assert availability["slow"]["burn_rate"] < 1.0
        assert availability["status"] == "warning"
        assert evaluation["status"] == "warning"

    def test_slow_requests_burn_latency_budget_only(self):
        tracker, _ = self._tracker()
        now = 1000.0
        for _ in range(10):
            tracker.record_request(0.5, True, now=now - 5.0)  # 500 ms > 250 ms
        evaluation = tracker.evaluate(now=now)
        by_name = {entry["name"]: entry for entry in evaluation["slos"]}
        assert by_name["latency"]["status"] == "breaching"
        assert by_name["availability"]["status"] == "ok"

    def test_recall_slo_from_shadow_samples(self):
        tracker, _ = self._tracker()
        now = 1000.0
        for _ in range(10):
            tracker.record_recall(0.5, "ivfpq", now=now - 5.0)  # below 0.8
        evaluation = tracker.evaluate(now=now)
        by_name = {entry["name"]: entry for entry in evaluation["slos"]}
        assert by_name["recall"]["status"] == "breaching"
        assert by_name["recall"]["objective"] == RECALL_OBJECTIVE

    def test_burn_gauges_refresh_on_evaluate(self):
        tracker, registry = self._tracker()
        now = 1000.0
        tracker.record_request(0.01, False, now=now - 5.0, outcome="error")
        tracker.evaluate(now=now)
        families = {family.name: family for family in registry.collect()}
        samples = families["lovo_slo_burn_rate"].samples
        windows = {(s.labels["slo"], s.labels["window"]) for s in samples}
        assert ("availability", "fast") in windows
        assert ("availability", "slow") in windows

    def test_event_counters(self):
        tracker, registry = self._tracker()
        tracker.record_request(0.01, True, now=1000.0)
        tracker.record_request(0.01, False, now=1000.0, outcome="error")
        families = {family.name: family for family in registry.collect()}
        good = {
            s.labels["slo"]: s.value
            for s in families["lovo_slo_good_events_total"].samples
        }
        bad = {
            s.labels["slo"]: s.value
            for s in families["lovo_slo_bad_events_total"].samples
        }
        assert good["availability"] == 1.0
        assert bad["availability"] == 1.0
        assert good["latency"] == 1.0  # only the successful request counted

    def test_structured_logs_carry_correlation_ids(self, caplog):
        tracker, _ = self._tracker()
        with caplog.at_level(logging.INFO, logger="repro.slo"):
            tracker.record_request(
                0.5, True, trace_id="trace-1", request_id="req-1", now=1000.0
            )
            tracker.record_request(
                0.01, False, trace_id="trace-2", outcome="rejected", now=1000.0
            )
            tracker.record_recall(0.1, "hnsw", trace_id="trace-3", now=1000.0)
        events = [json.loads(record.message) for record in caplog.records]
        by_event = {event["event"]: event for event in events}
        assert by_event["slow_request"]["trace_id"] == "trace-1"
        assert by_event["slow_request"]["request_id"] == "req-1"
        assert by_event["request_failure"]["trace_id"] == "trace-2"
        assert by_event["request_failure"]["outcome"] == "rejected"
        assert by_event["low_recall"]["trace_id"] == "trace-3"
        assert by_event["low_recall"]["family"] == "hnsw"

    def test_status_transition_logged_once(self, caplog):
        tracker, _ = self._tracker()
        now = 1000.0
        for age in (500.0, 5.0):
            tracker.record_request(0.01, False, now=now - age, outcome="error")
        with caplog.at_level(logging.WARNING, logger="repro.slo"):
            tracker.evaluate(now=now)
            tracker.evaluate(now=now)  # unchanged status: no second line
        burn_events = [
            json.loads(record.message)
            for record in caplog.records
            if json.loads(record.message).get("event") == "slo_burn"
        ]
        assert len(burn_events) == 1
        assert burn_events[0]["slo"] == "availability"

    def test_summary_is_compact(self):
        tracker, _ = self._tracker()
        summary = tracker.summary(now=1000.0)
        assert summary["status"] == "ok"
        assert set(summary["slos"]) == {"latency", "availability", "recall"}
        for entry in summary["slos"].values():
            assert set(entry) == {"status", "fast_burn_rate"}


# ---------------------------------------------------------------------------
# Exposition satellites: build info, deterministic render
# ---------------------------------------------------------------------------


class TestBuildInfo:
    def test_family_shape(self):
        family = build_info_family()
        assert family.name == "lovo_build_info"
        assert family.kind == "gauge"
        (sample,) = family.samples
        assert sample.value == 1.0
        assert set(sample.labels) == {"version", "python", "numpy"}
        import platform

        assert sample.labels["python"] == platform.python_version()
        import numpy

        assert sample.labels["numpy"] == numpy.__version__


class TestRenderDeterminism:
    def test_families_sorted_by_name(self):
        families = [
            MetricFamily("zzz", "counter", "", [Sample("zzz", {}, 1.0)]),
            MetricFamily("aaa", "gauge", "", [Sample("aaa", {}, 2.0)]),
        ]
        text = render(families)
        assert text.index("aaa") < text.index("zzz")
        assert text == render(list(reversed(families)))

    def test_same_name_and_kind_merged_into_one_type_block(self):
        first = MetricFamily(
            "dup_total", "counter", "help text",
            [Sample("dup_total", {"side": "a"}, 1.0)],
        )
        second = MetricFamily(
            "dup_total", "counter", "",
            [Sample("dup_total", {"side": "b"}, 2.0)],
        )
        text = render([first, second])
        assert text.count("# TYPE dup_total counter") == 1
        parsed = parse_exposition(text)
        sides = {s["labels"]["side"]: s["value"] for s in parsed["dup_total"]["samples"]}
        assert sides == {"a": 1.0, "b": 2.0}
        # Inputs were not mutated by the merge.
        assert len(first.samples) == 1 and len(second.samples) == 1


# ---------------------------------------------------------------------------
# HTTP surface
# ---------------------------------------------------------------------------


class TestQualityHTTP:
    @pytest.fixture(scope="class")
    def http_service(self):
        system = LOVO(
            quality_config(index_type="flat", sharded=True, shadow_sample_rate=1.0)
        )
        system.ingest(make_bellevue(num_videos=1, frames_per_video=120))
        engine = ServingEngine(
            system, ServeConfig(num_workers=2, max_wait_ms=1.0, cache_size=32)
        ).start()
        server = make_server(engine, host="127.0.0.1", port=0)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        host, port = server.server_address[:2]
        try:
            yield f"http://{host}:{port}", engine
        finally:
            server.shutdown()
            server.server_close()
            engine.stop()

    @staticmethod
    def _post(base: str, path: str, payload: dict) -> dict:
        request = urllib.request.Request(
            base + path,
            data=json.dumps(payload).encode("utf-8"),
            headers={"Content-Type": "application/json"},
        )
        with urllib.request.urlopen(request, timeout=30) as response:
            return json.load(response)

    @staticmethod
    def _get(base: str, path: str) -> dict:
        with urllib.request.urlopen(base + path, timeout=30) as response:
            return json.load(response)

    def test_explain_round_trip_over_http(self, http_service):
        base, engine = http_service
        payload = self._post(
            base,
            "/v1/query",
            {"query": QUERY_TEXTS[0], "options": {"explain": True}},
        )
        assert "explain" in payload
        trace_id = payload["trace_id"]
        assert payload["explain"]["trace_id"] == trace_id
        stored = self._get(base, f"/v1/explain/{trace_id}")
        assert stored == payload["explain"]

    def test_explain_unknown_trace_is_404(self, http_service):
        base, _ = http_service
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            self._get(base, "/v1/explain/no-such-trace")
        assert excinfo.value.code == 404
        body = json.load(excinfo.value)
        assert body["error"]["code"] == "explain_not_found"

    def test_metrics_history_endpoint(self, http_service):
        base, engine = http_service
        self._post(base, "/v1/query", {"query": QUERY_TEXTS[1]})
        engine.history.tick()
        engine.history.tick()
        payload = self._get(base, "/v1/metrics/history?limit=1&prefix=lovo_requests")
        assert payload["num_points"] == 1
        assert payload["capacity"] == engine.history.capacity
        (point,) = payload["points"]
        assert all(key.startswith("lovo_requests") for key in point["values"])
        assert point["values"]["lovo_requests_total"] >= 1.0

    def test_metrics_history_rejects_bad_limit(self, http_service):
        base, _ = http_service
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            self._get(base, "/v1/metrics/history?limit=abc")
        assert excinfo.value.code == 400

    def test_slo_endpoint_and_healthz_summary(self, http_service):
        base, _ = http_service
        self._post(base, "/v1/query", {"query": QUERY_TEXTS[2]})
        evaluation = self._get(base, "/v1/slo")
        assert evaluation["status"] in {"ok", "warning", "breaching"}
        names = {entry["name"] for entry in evaluation["slos"]}
        assert names == {"latency", "availability", "recall"}
        for entry in evaluation["slos"]:
            assert "burn_rate" in entry["fast"]
            assert "burn_rate" in entry["slow"]
        health = self._get(base, "/v1/healthz")
        assert set(health["slo"]) == {"status", "slos"}
        assert set(health["slo"]["slos"]) == {"latency", "availability", "recall"}

    def test_head_metrics_matches_get(self, http_service):
        base, _ = http_service
        get_request = urllib.request.Request(base + "/v1/metrics")
        with urllib.request.urlopen(get_request, timeout=30) as response:
            get_body = response.read()
            get_type = response.headers["Content-Type"]
        head_request = urllib.request.Request(base + "/v1/metrics", method="HEAD")
        with urllib.request.urlopen(head_request, timeout=30) as response:
            assert response.status == 200
            assert response.headers["Content-Type"] == get_type
            assert "charset=utf-8" in response.headers["Content-Type"]
            assert int(response.headers["Content-Length"]) > 0
            assert response.read() == b""
        assert get_body  # the GET body itself is non-empty

    def test_head_unknown_path_is_404(self, http_service):
        base, _ = http_service
        request = urllib.request.Request(base + "/v1/stats", method="HEAD")
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=30)
        assert excinfo.value.code == 404

    def test_metrics_include_build_info_and_recall(self, http_service):
        base, engine = http_service
        self._post(base, "/v1/query", {"query": QUERY_TEXTS[3]})
        assert engine.quality.flush(timeout=60.0)
        with urllib.request.urlopen(base + "/v1/metrics", timeout=30) as response:
            text = response.read().decode("utf-8")
        parsed = parse_exposition(text)
        assert parsed["lovo_build_info"]["samples"][0]["value"] == 1.0
        assert "lovo_recall_at_k" in parsed
        assert "lovo_slo_burn_rate" in parsed or "lovo_slo_good_events_total" in parsed

    def test_stats_carry_quality_and_slo_sections(self, http_service):
        base, _ = http_service
        stats = self._get(base, "/v1/stats")
        assert "slo" in stats
        assert "history" in stats
        assert "explain" in stats
        assert "quality" in stats
        assert stats["quality"]["sample_rate"] == 1.0
