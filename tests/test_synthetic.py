"""Tests for the procedural scene generator."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import VideoError
from repro.video.synthetic import (
    ObjectSpec,
    SceneSpec,
    SyntheticVideoGenerator,
    color_to_rgb,
    generate_videos,
)


def simple_scene(camera: str = "fixed", **kwargs) -> SceneSpec:
    specs = (
        ObjectSpec("car", {"color": "red"}, ("road",), ("driving",), speed=0.01),
        ObjectSpec("person", {"color": "dark"}, ("road",), ("walking",), speed=0.004),
    )
    return SceneSpec(name="test-scene", object_specs=specs, camera=camera, **kwargs)


class TestSceneSpec:
    def test_requires_object_specs(self):
        with pytest.raises(VideoError):
            SceneSpec(name="empty", object_specs=())

    def test_rejects_unknown_camera(self):
        with pytest.raises(VideoError):
            simple_scene(camera="drone")


class TestGenerator:
    def test_generates_requested_frames(self):
        video = SyntheticVideoGenerator(simple_scene()).generate("v0", 40)
        assert video.num_frames == 40
        assert video.frames[0].index == 0
        assert video.frames[-1].index == 39

    def test_deterministic_given_seed(self):
        first = SyntheticVideoGenerator(simple_scene(), seed=3).generate("v0", 30)
        second = SyntheticVideoGenerator(simple_scene(), seed=3).generate("v0", 30)
        for f1, f2 in zip(first.frames, second.frames):
            assert len(f1.objects) == len(f2.objects)
            for o1, o2 in zip(f1.objects, f2.objects):
                assert o1.object_id == o2.object_id
                assert o1.box.to_array() == pytest.approx(o2.box.to_array())

    def test_different_seeds_differ(self):
        first = SyntheticVideoGenerator(simple_scene(), seed=1).generate("v0", 40)
        second = SyntheticVideoGenerator(simple_scene(), seed=2).generate("v0", 40)
        counts_first = [len(f.objects) for f in first.frames]
        counts_second = [len(f.objects) for f in second.frames]
        assert counts_first != counts_second or first.frames[-1].objects != second.frames[-1].objects

    def test_rejects_nonpositive_length(self):
        with pytest.raises(VideoError):
            SyntheticVideoGenerator(simple_scene()).generate("v0", 0)

    def test_objects_eventually_appear(self):
        video = SyntheticVideoGenerator(simple_scene()).generate("v0", 80)
        assert any(frame.visible_objects() for frame in video.frames)

    def test_annotations_carry_spec_metadata(self):
        video = SyntheticVideoGenerator(simple_scene()).generate("v0", 80)
        seen_categories = {o.category for f in video.frames for o in f.objects}
        assert seen_categories <= {"car", "person"}
        for frame in video.frames:
            for annotation in frame.objects:
                assert annotation.context == ("road",)

    def test_paired_spec_spawns_adjacent_companion(self):
        specs = (
            ObjectSpec("car", {"color": "red"}, speed=0.01, paired=True, spawn_weight=1.0),
        )
        scene = SceneSpec(name="paired", object_specs=specs, mean_objects=2.0, spawn_rate=1.0)
        video = SyntheticVideoGenerator(scene).generate("v0", 30)
        frame_with_two = next(
            (f for f in video.frames if len(f.objects) >= 2), None
        )
        assert frame_with_two is not None
        a, b = frame_with_two.objects[:2]
        assert abs(a.box.center[1] - b.box.center[1]) < 0.05

    def test_companion_spec_used_for_pairing(self):
        companion = ObjectSpec("woman", {"color": "black"}, speed=0.001)
        specs = (
            ObjectSpec("dog", {"color": "white"}, speed=0.001, paired=True,
                       companion=companion, spawn_weight=1.0),
        )
        scene = SceneSpec(name="pair2", object_specs=specs, mean_objects=2.0, spawn_rate=1.0)
        video = SyntheticVideoGenerator(scene).generate("v0", 20)
        categories = {o.category for f in video.frames for o in f.objects}
        assert categories == {"dog", "woman"}

    def test_max_age_retires_objects(self):
        specs = (ObjectSpec("person", {}, speed=0.0, spawn_weight=1.0, max_age=5),)
        scene = SceneSpec(name="aging", object_specs=specs, mean_objects=1.0, spawn_rate=1.0)
        video = SyntheticVideoGenerator(scene).generate("v0", 60)
        ids = {o.object_id for f in video.frames for o in f.objects}
        assert len(ids) > 3

    def test_moving_camera_records_offsets(self):
        video = SyntheticVideoGenerator(simple_scene(camera="moving")).generate("v0", 30)
        assert video.camera == "moving"
        assert any(frame.camera_offset != (0.0, 0.0) for frame in video.frames)

    def test_fixed_camera_offsets_zero(self):
        video = SyntheticVideoGenerator(simple_scene()).generate("v0", 10)
        assert all(frame.camera_offset == (0.0, 0.0) for frame in video.frames)

    def test_generate_videos_helper(self):
        videos = generate_videos(simple_scene(), num_videos=3, frames_per_video=10)
        assert len(videos) == 3
        assert {video.video_id for video in videos} == {
            "test-scene-000", "test-scene-001", "test-scene-002"
        }

    @given(
        mean_objects=st.floats(1.0, 8.0),
        spawn_rate=st.floats(0.1, 1.0),
        frames=st.integers(5, 60),
    )
    @settings(max_examples=20, deadline=None)
    def test_generator_always_produces_valid_videos(self, mean_objects, spawn_rate, frames):
        scene = SceneSpec(
            name="prop",
            object_specs=(ObjectSpec("car", {"color": "red"}, speed=0.01),),
            mean_objects=mean_objects,
            spawn_rate=spawn_rate,
        )
        video = SyntheticVideoGenerator(scene).generate("v0", frames)
        assert video.num_frames == frames
        for frame in video.frames:
            for annotation in frame.objects:
                clipped = annotation.box.clipped()
                assert 0.0 <= clipped.x <= 1.0
                assert clipped.area >= 0.0


class TestColors:
    def test_known_color(self):
        assert color_to_rgb("red")[0] > 0.5

    def test_unknown_color_defaults_to_grey(self):
        assert color_to_rgb("turquoise") == (0.5, 0.5, 0.5)
