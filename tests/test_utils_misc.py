"""Tests for deterministic RNG helpers, timing, and serialization."""

from __future__ import annotations

import time

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.utils.rng import derive_seed, rng_from_tokens, stable_shuffle
from repro.utils.serialization import load_arrays, load_json, save_arrays, save_json
from repro.utils.timing import PhaseTimer, Stopwatch


class TestRng:
    def test_derive_seed_deterministic(self):
        assert derive_seed("a", 1) == derive_seed("a", 1)

    def test_derive_seed_varies_with_tokens(self):
        assert derive_seed("a") != derive_seed("b")

    def test_derive_seed_varies_with_base_seed(self):
        assert derive_seed("a", base_seed=0) != derive_seed("a", base_seed=1)

    def test_rng_streams_reproducible(self):
        first = rng_from_tokens("x").normal(size=5)
        second = rng_from_tokens("x").normal(size=5)
        np.testing.assert_allclose(first, second)

    def test_rng_streams_independent(self):
        a = rng_from_tokens("x").normal(size=5)
        b = rng_from_tokens("y").normal(size=5)
        assert not np.allclose(a, b)

    def test_stable_shuffle_is_permutation_and_deterministic(self):
        items = list(range(20))
        shuffled = stable_shuffle(items, "key")
        assert sorted(shuffled) == items
        assert shuffled == stable_shuffle(items, "key")

    @given(st.lists(st.integers(), max_size=30))
    @settings(max_examples=50, deadline=None)
    def test_stable_shuffle_preserves_multiset(self, items):
        assert sorted(stable_shuffle(items, "k")) == sorted(items)

    def test_seed_non_negative(self):
        for token in ["a", "b", 123, ("x", "y")]:
            assert derive_seed(token) >= 0


class TestTiming:
    def test_stopwatch_accumulates(self):
        watch = Stopwatch().start()
        time.sleep(0.01)
        elapsed = watch.stop()
        assert elapsed >= 0.005
        assert watch.elapsed == pytest.approx(elapsed)

    def test_stopwatch_reset(self):
        watch = Stopwatch().start()
        watch.stop()
        watch.reset()
        assert watch.elapsed == 0.0

    def test_phase_timer_records_phases(self):
        timer = PhaseTimer()
        with timer.phase("a"):
            time.sleep(0.005)
        with timer.phase("a"):
            pass
        with timer.phase("b"):
            pass
        assert timer.counts["a"] == 2
        assert timer.totals["a"] > 0
        assert timer.total() == pytest.approx(timer.totals["a"] + timer.totals["b"])
        assert timer.total("a") == timer.totals["a"]
        assert timer.mean("a") == pytest.approx(timer.totals["a"] / 2)

    def test_phase_timer_mean_of_missing_phase(self):
        assert PhaseTimer().mean("nope") == 0.0

    def test_phase_timer_merge(self):
        first, second = PhaseTimer(), PhaseTimer()
        first.add("x", 1.0)
        second.add("x", 2.0)
        second.add("y", 3.0)
        first.merge(second)
        assert first.totals["x"] == pytest.approx(3.0)
        assert first.totals["y"] == pytest.approx(3.0)

    def test_phase_timer_reset(self):
        timer = PhaseTimer()
        timer.add("x", 1.0)
        timer.reset()
        assert timer.as_dict() == {}


class TestSerialization:
    def test_json_round_trip(self, tmp_path):
        payload = {"name": "lovo", "values": [1, 2, 3], "nested": {"pi": 3.14}}
        path = tmp_path / "sub" / "payload.json"
        save_json(path, payload)
        assert load_json(path) == payload

    def test_json_serialises_numpy_types(self, tmp_path):
        payload = {"int": np.int64(5), "float": np.float64(2.5), "array": np.arange(3)}
        path = tmp_path / "payload.json"
        save_json(path, payload)
        loaded = load_json(path)
        assert loaded["int"] == 5
        assert loaded["array"] == [0, 1, 2]

    def test_json_rejects_unknown_types(self, tmp_path):
        with pytest.raises(TypeError):
            save_json(tmp_path / "bad.json", {"obj": object()})

    def test_array_round_trip(self, tmp_path):
        arrays = {"a": np.arange(10, dtype=np.float64), "b": np.eye(3)}
        path = tmp_path / "arrays.npz"
        save_arrays(path, arrays)
        loaded = load_arrays(path)
        np.testing.assert_allclose(loaded["a"], arrays["a"])
        np.testing.assert_allclose(loaded["b"], arrays["b"])
