"""End-to-end integration tests reproducing the paper's headline behaviours."""

from __future__ import annotations

import pytest

from repro import LOVO, LOVOConfig
from repro.config import EncoderConfig, IndexConfig, KeyframeConfig, QueryConfig
from repro.eval.metrics import evaluate_results
from repro.eval.workloads import build_ground_truth, queries_for_dataset, query_by_id
from tests.conftest import small_config


class TestLOVOAccuracy:
    def test_positive_avep_on_bellevue_queries(self, lovo_system, bellevue_small):
        evaluated = 0
        for spec in queries_for_dataset("bellevue"):
            ground_truth = build_ground_truth(bellevue_small, spec)
            if not ground_truth:
                # The reduced test dataset may lack instances for a query;
                # the full-size datasets are checked in test_datasets.py.
                continue
            response = lovo_system.query(spec.text)
            avep = evaluate_results(response.results, ground_truth)
            assert avep > 0.0, f"{spec.query_id} scored zero AveP"
            evaluated += 1
        assert evaluated >= 2

    def test_rerank_helps_relational_query(self, bellevue_small):
        spec = query_by_id("Q2.2")
        ground_truth = build_ground_truth(bellevue_small, spec)

        with_rerank = LOVO(small_config())
        with_rerank.ingest(bellevue_small)
        without_rerank = LOVO(small_config().with_overrides(query=QueryConfig(rerank_enabled=False)))
        without_rerank.ingest(bellevue_small)

        ap_with = evaluate_results(with_rerank.query(spec.text).results, ground_truth)
        ap_without = evaluate_results(without_rerank.query(spec.text).results, ground_truth)
        assert ap_with >= ap_without

    def test_open_vocabulary_query_runs(self, lovo_system):
        # "SUV" is outside the MSCOCO label set; LOVO should still return
        # ranked candidates rather than failing (QA-index methods cannot).
        response = lovo_system.query("A black SUV driving in the intersection of the road.")
        assert response.results


class TestLatencyShape:
    def test_fast_search_is_sub_100ms(self, lovo_system):
        response = lovo_system.query("A bus driving on the road.")
        assert response.timings["fast_search"] < 0.1

    def test_search_much_faster_than_qd_baseline(self, lovo_system, bellevue_small):
        from repro.baselines import FiGOBaseline

        figo = FiGOBaseline(EncoderConfig(embedding_dim=64, class_embedding_dim=32, patch_grid=6))
        figo.ingest(bellevue_small)
        query = "A red car driving in the center of the road."
        lovo_seconds = lovo_system.query(query).search_seconds
        figo_seconds = figo.query(query).search_seconds
        assert figo_seconds > lovo_seconds

    def test_rerank_cost_scales_with_candidates_not_dataset(self, bellevue_small):
        config = small_config()
        small_system = LOVO(config)
        small_system.ingest(bellevue_small.subset(60))
        big_system = LOVO(config)
        big_system.ingest(bellevue_small)

        query = "A red car driving in the center of the road."
        small_rerank = small_system.query(query).timings.get("rerank", 0.0)
        big_rerank = big_system.query(query).timings.get("rerank", 0.0)
        # Rerank touches at most max_candidate_frames frames, so the larger
        # dataset must not blow rerank cost up proportionally (15x frames).
        assert big_rerank < small_rerank * 10


class TestIndexVariants:
    @pytest.mark.parametrize("index_type", ["flat", "ivfpq", "hnsw"])
    def test_all_ann_variants_answer_queries(self, bellevue_small, index_type):
        config = LOVOConfig(
            encoder=EncoderConfig(embedding_dim=64, class_embedding_dim=32, patch_grid=6),
            keyframes=KeyframeConfig(strategy="uniform", uniform_stride=10),
            index=IndexConfig(index_type=index_type, num_subspaces=4, num_centroids=16,
                              num_coarse_clusters=8, nprobe=3),
            query=QueryConfig(fast_search_k=128, rerank_n=20, max_candidate_frames=30),
        )
        system = LOVO(config)
        system.ingest(bellevue_small)
        spec = query_by_id("Q2.1")
        ground_truth = build_ground_truth(bellevue_small, spec)
        avep = evaluate_results(system.query(spec.text).results, ground_truth)
        assert avep > 0.0

    def test_keyframe_ablation_increases_entities(self, bellevue_small):
        with_keyframes = LOVO(small_config())
        with_keyframes.ingest(bellevue_small)
        without_keyframes = LOVO(
            small_config().with_overrides(keyframes=KeyframeConfig(strategy="all"))
        )
        without_keyframes.ingest(bellevue_small.subset(60))
        per_frame = small_config().encoder.patch_grid ** 2
        assert without_keyframes.num_entities == 60 * per_frame
        assert with_keyframes.num_entities < bellevue_small.num_frames * per_frame
