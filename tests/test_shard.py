"""Tests for the sharded scatter-gather vector database (:mod:`repro.shard`).

The headline guarantee is **bit-exact parity**: a sharded database answers
every search with exactly the hits, scores, and ordering of a single
unsharded :class:`~repro.vectordb.database.VectorDatabase` over the same
inserts — across all three index families, for single and batched queries,
through save/load, and while replicas are failing over mid-run.
"""

from __future__ import annotations

import threading
from typing import List

import numpy as np
import pytest

from repro.config import IndexConfig, LOVOConfig, ShardConfig
from repro.errors import (
    CollectionExistsError,
    CollectionNotFoundError,
    ConfigurationError,
    ShardError,
    ShardUnavailableError,
    SnapshotCorruptionError,
    VectorDatabaseError,
)
from repro.shard import (
    HashPartitioner,
    KMeansPartitioner,
    ReplicaGroup,
    ShardRouter,
    ShardedDatabase,
    make_partitioner,
    merge_top_k,
    merge_top_k_batches,
    stable_shard_hash,
)
from repro.vectordb.collection import SearchHit
from repro.vectordb.database import VectorDatabase

DIM = 32
NUM_VECTORS = 600
NUM_QUERIES = 7
TOP_K = 10

# HNSW graph search is exact once ef_search covers the whole shard; parity
# tests pin that regime (the guarantee documented for the sharded backend).
INDEX_CONFIGS = {
    "flat": IndexConfig(index_type="flat"),
    "hnsw": IndexConfig(index_type="hnsw", hnsw_ef_search=2 * NUM_VECTORS),
    "ivfpq": IndexConfig(index_type="ivfpq"),
}


def make_data(seed: int = 7, count: int = NUM_VECTORS):
    rng = np.random.default_rng(seed)
    ids = [f"vec-{i:05d}" for i in range(count)]
    vectors = rng.normal(size=(count, DIM))
    metadata = [{"i": i} for i in range(count)]
    queries = rng.normal(size=(NUM_QUERIES, DIM))
    return ids, vectors, metadata, queries


def hit_key(hits: List[SearchHit]) -> List[tuple]:
    """Bit-exact identity of a ranked hit list."""
    return [(hit.id, hit.score) for hit in hits]


def build_pair(index_config: IndexConfig, shard_config: ShardConfig, seed: int = 7):
    """The same inserts into an unsharded and a sharded database."""
    ids, vectors, metadata, queries = make_data(seed)
    plain = VectorDatabase()
    plain.create_collection("c", DIM, index_config).insert(ids, vectors, metadata)
    sharded = ShardedDatabase(shard_config)
    sharded.create_collection("c", DIM, index_config).insert(ids, vectors, metadata)
    return plain, sharded, queries


class TestPartitioners:
    def test_stable_hash_is_deterministic_and_in_range(self):
        for num_shards in (1, 2, 4, 7):
            for i in range(100):
                shard = stable_shard_hash(f"id-{i}", num_shards)
                assert 0 <= shard < num_shards
                assert shard == stable_shard_hash(f"id-{i}", num_shards)

    def test_hash_partitioner_spreads_load(self):
        partitioner = HashPartitioner(4)
        ids = [f"vec-{i}" for i in range(1000)]
        assignments = partitioner.assign(ids, np.zeros((1000, DIM)))
        counts = np.bincount(assignments, minlength=4)
        assert counts.min() > 100  # no shard starves under a uniform id stream

    def test_kmeans_partitioner_groups_nearby_vectors(self):
        rng = np.random.default_rng(3)
        centers = np.array([[10.0] * DIM, [-10.0] * DIM])
        vectors = np.vstack([
            centers[0] + rng.normal(scale=0.1, size=(50, DIM)),
            centers[1] + rng.normal(scale=0.1, size=(50, DIM)),
        ])
        partitioner = KMeansPartitioner(num_shards=2, seed=1, iterations=8)
        assignments = partitioner.assign([f"v{i}" for i in range(100)], vectors)
        # Each cluster must land wholly on one shard.
        assert len(set(assignments[:50].tolist())) == 1
        assert len(set(assignments[50:].tolist())) == 1
        assert assignments[0] != assignments[-1]

    def test_partitioner_state_round_trip(self):
        config = ShardConfig(num_shards=3, partitioner="kmeans")
        partitioner = make_partitioner(config)
        ids, vectors, _, _ = make_data(seed=5, count=200)
        before = partitioner.assign(ids, vectors)
        meta, arrays = partitioner.to_state()
        restored = type(partitioner).from_state(config, meta, arrays)
        after = restored.assign(ids, vectors)
        assert np.array_equal(before, after)

    def test_unknown_partitioner_state_is_corruption(self):
        from repro.shard.partition import Partitioner

        with pytest.raises(SnapshotCorruptionError):
            Partitioner.from_state(ShardConfig(), {"kind": "nope"}, {})

    def test_unknown_partitioner_name_rejected(self):
        with pytest.raises(ConfigurationError):
            ShardConfig(partitioner="alphabetical")


class TestMerge:
    def test_merge_is_exact_against_global_sort(self):
        rng = np.random.default_rng(11)
        hits = [
            SearchHit(id=f"h{i}", score=float(score))
            for i, score in enumerate(rng.normal(size=60))
        ]
        shards = [sorted(hits[i::3], key=lambda h: -h.score)[:TOP_K] for i in range(3)]
        merged = merge_top_k(shards, TOP_K)
        expected = sorted(hits, key=lambda h: -h.score)[:TOP_K]
        assert hit_key(merged) == hit_key(expected)

    def test_tie_rank_orders_equal_scores(self):
        rank = {"b": 1, "a": 0}
        shards = [[SearchHit(id="b", score=1.0)], [SearchHit(id="a", score=1.0)]]
        merged = merge_top_k(shards, 2, tie_rank=lambda hit: rank[hit.id])
        assert [hit.id for hit in merged] == ["a", "b"]

    def test_batch_merge_rejects_misaligned_shards(self):
        with pytest.raises(ShardError):
            merge_top_k_batches([[[]], [[], []]], 3)


@pytest.mark.parametrize("index_kind", sorted(INDEX_CONFIGS))
@pytest.mark.parametrize("partitioner", ["hash", "kmeans"])
class TestScatterGatherParity:
    """Sharded results must be bit-identical to the single database."""

    def test_search_and_batch_parity(self, index_kind, partitioner):
        shard_config = ShardConfig(num_shards=3, partitioner=partitioner)
        plain, sharded, queries = build_pair(INDEX_CONFIGS[index_kind], shard_config)
        for query in queries:
            assert hit_key(sharded.search("c", query, TOP_K)) == hit_key(
                plain.search("c", query, TOP_K)
            )
        sharded_rows = sharded.search_batch("c", queries, TOP_K)
        plain_rows = plain.search_batch("c", queries, TOP_K)
        assert [hit_key(row) for row in sharded_rows] == [
            hit_key(row) for row in plain_rows
        ]

    def test_exhaustive_parity(self, index_kind, partitioner):
        shard_config = ShardConfig(num_shards=3, partitioner=partitioner)
        plain, sharded, queries = build_pair(INDEX_CONFIGS[index_kind], shard_config)
        sharded_rows = sharded.get_collection("c").search_exhaustive_batch(
            queries, TOP_K
        )
        plain_rows = plain.get_collection("c").search_exhaustive_batch(queries, TOP_K)
        assert [hit_key(row) for row in sharded_rows] == [
            hit_key(row) for row in plain_rows
        ]

    def test_parity_survives_incremental_insert(self, index_kind, partitioner):
        shard_config = ShardConfig(num_shards=3, partitioner=partitioner)
        plain, sharded, queries = build_pair(INDEX_CONFIGS[index_kind], shard_config)
        # Force both builds, then grow both sides identically.
        plain.search("c", queries[0], TOP_K)
        sharded.search("c", queries[0], TOP_K)
        rng = np.random.default_rng(23)
        extra_ids = [f"extra-{i}" for i in range(40)]
        extra = rng.normal(size=(40, DIM))
        plain.get_collection("c").insert(extra_ids, extra)
        sharded.get_collection("c").insert(extra_ids, extra)
        for query in queries:
            assert hit_key(sharded.search("c", query, TOP_K)) == hit_key(
                plain.search("c", query, TOP_K)
            )


class TestShardedDatabaseSurface:
    def test_single_shard_runs_inline(self):
        sharded = ShardedDatabase(ShardConfig(num_shards=1))
        assert sharded.router._executor is None

    def test_collection_lifecycle_and_errors(self):
        sharded = ShardedDatabase(ShardConfig(num_shards=2))
        sharded.create_collection("c", DIM)
        with pytest.raises(CollectionExistsError):
            sharded.create_collection("c", DIM)
        assert sharded.has_collection("c")
        assert sharded.list_collections() == ["c"]
        with pytest.raises(CollectionNotFoundError):
            sharded.get_collection("missing")
        sharded.drop_collection("c")
        assert not sharded.has_collection("c")
        with pytest.raises(CollectionNotFoundError):
            sharded.drop_collection("c")

    def test_insert_validation_matches_unsharded(self):
        sharded = ShardedDatabase(ShardConfig(num_shards=2))
        collection = sharded.create_collection("c", DIM, IndexConfig(index_type="flat"))
        with pytest.raises(VectorDatabaseError, match="ids for"):
            collection.insert(["a"], np.zeros((2, DIM)))
        with pytest.raises(VectorDatabaseError, match="-d vectors"):
            collection.insert(["a"], np.zeros((1, DIM + 1)))
        collection.insert(["a"], np.zeros((1, DIM)))
        with pytest.raises(VectorDatabaseError, match="Duplicate id"):
            collection.insert(["a"], np.zeros((1, DIM)))

    def test_vector_and_metadata_routing(self):
        ids, vectors, metadata, _ = make_data(seed=9, count=100)
        sharded = ShardedDatabase(ShardConfig(num_shards=4))
        collection = sharded.create_collection("c", DIM, IndexConfig(index_type="flat"))
        collection.insert(ids, vectors, metadata)
        assert collection.ids() == ids
        assert sum(collection.shard_sizes()) == len(ids)
        for i in (0, 17, 99):
            assert np.array_equal(collection.get_vector(ids[i]), vectors[i])
            assert collection.get_metadata(ids[i])["i"] == i
        with pytest.raises(VectorDatabaseError):
            collection.get_vector("unknown")

    def test_adopt_unsharded_collection_preserves_results(self):
        ids, vectors, metadata, queries = make_data(seed=13)
        plain = VectorDatabase()
        source = plain.create_collection("c", DIM, IndexConfig(index_type="ivfpq"))
        source.insert(ids, vectors, metadata)
        sharded = ShardedDatabase(ShardConfig(num_shards=3))
        sharded.add_collection(source)
        for query in queries:
            assert hit_key(sharded.search("c", query, TOP_K)) == hit_key(
                plain.search("c", query, TOP_K)
            )

    def test_status_reports_topology(self):
        ids, vectors, _, _ = make_data(seed=1, count=60)
        sharded = ShardedDatabase(ShardConfig(num_shards=2, num_replicas=2))
        sharded.create_collection("c", DIM, IndexConfig(index_type="flat")).insert(
            ids, vectors
        )
        status = sharded.status()
        assert status["num_shards"] == 2
        assert sum(entry["entities"] for entry in status["shards"]) == 60
        assert all(entry["healthy_replicas"] == 2 for entry in status["shards"])


class TestSaveLoad:
    @pytest.mark.parametrize("index_kind", sorted(INDEX_CONFIGS))
    def test_round_trip_preserves_results(self, tmp_path, index_kind):
        shard_config = ShardConfig(num_shards=3, partitioner="kmeans")
        plain, sharded, queries = build_pair(INDEX_CONFIGS[index_kind], shard_config)
        sharded.save(tmp_path / "snap")
        restored = ShardedDatabase.load(tmp_path / "snap")
        assert restored.num_shards == 3
        for query in queries:
            assert hit_key(restored.search("c", query, TOP_K)) == hit_key(
                plain.search("c", query, TOP_K)
            )

    def test_loaded_database_accepts_new_inserts(self, tmp_path):
        shard_config = ShardConfig(num_shards=2)
        plain, sharded, queries = build_pair(INDEX_CONFIGS["ivfpq"], shard_config)
        # Build the unsharded index now: save() builds the sharded one, so
        # both sides must take the incremental-insert path for the extras.
        plain.search("c", queries[0], TOP_K)
        sharded.save(tmp_path / "snap")
        restored = ShardedDatabase.load(tmp_path / "snap")
        rng = np.random.default_rng(31)
        extra_ids = [f"late-{i}" for i in range(20)]
        extra = rng.normal(size=(20, DIM))
        plain.get_collection("c").insert(extra_ids, extra)
        restored.get_collection("c").insert(extra_ids, extra)
        for query in queries:
            assert hit_key(restored.search("c", query, TOP_K)) == hit_key(
                plain.search("c", query, TOP_K)
            )

    def test_missing_shard_directory_is_corruption(self, tmp_path):
        _, sharded, _ = build_pair(INDEX_CONFIGS["flat"], ShardConfig(num_shards=2))
        sharded.save(tmp_path / "snap")
        import shutil

        shutil.rmtree(tmp_path / "snap" / "shards" / "0001")
        with pytest.raises(SnapshotCorruptionError):
            ShardedDatabase.load(tmp_path / "snap")


class FlakyBackend:
    """Replica wrapper that fails a configurable number of calls."""

    def __init__(self, inner, failures: int = 0) -> None:
        self._inner = inner
        self._failures = failures
        self.calls = 0
        self._lock = threading.Lock()

    def get_collection(self, name):
        with self._lock:
            self.calls += 1
            if self._failures > 0:
                self._failures -= 1
                raise RuntimeError("replica crashed")
        return self._inner.get_collection(name)


class TestReplicaFailover:
    def test_round_robin_rotates_across_healthy_replicas(self):
        group = ReplicaGroup(0)
        group.add("a")
        second = group.add("b")
        assert [replica.backend for replica in group.rotation()] == ["a", "b"]
        assert [replica.backend for replica in group.rotation()] == ["b", "a"]
        group.mark_unhealthy(second)
        assert [replica.backend for replica in group.rotation()] == ["a"]
        assert group.status() == {"shard": 0, "replicas": 2, "healthy_replicas": 1}

    def test_failover_marks_replica_unhealthy_and_recovers(self):
        ids, vectors, _, queries = make_data(seed=17, count=120)
        plain = VectorDatabase()
        plain.create_collection("c", DIM, IndexConfig(index_type="flat")).insert(
            ids, vectors
        )
        sharded = ShardedDatabase(ShardConfig(num_shards=2))
        sharded.create_collection("c", DIM, IndexConfig(index_type="flat")).insert(
            ids, vectors
        )
        flaky = FlakyBackend(sharded.shards[0], failures=1)
        sharded.add_replica(0, flaky)
        group = sharded.replica_groups[0]
        expected = hit_key(plain.search("c", queries[0], TOP_K))
        # The round-robin rotation reaches the flaky replica within two
        # searches; its one crash must fail over with identical results.
        for _ in range(4):
            assert hit_key(sharded.search("c", queries[0], TOP_K)) == expected
        unhealthy = [replica for replica in group.replicas if not replica.healthy]
        assert len(unhealthy) == 1
        assert flaky.calls >= 1
        # mark_healthy returns the replica to the rotation.
        group.mark_healthy(unhealthy[0])
        assert all(replica.healthy for replica in group.replicas)

    def test_all_replicas_dead_raises_shard_unavailable(self):
        ids, vectors, _, queries = make_data(seed=19, count=50)
        sharded = ShardedDatabase(ShardConfig(num_shards=2))
        sharded.create_collection("c", DIM, IndexConfig(index_type="flat")).insert(
            ids, vectors
        )
        sharded.search("c", queries[0], TOP_K)  # build once
        group = sharded.replica_groups[1]
        for replica in group.replicas:
            group.mark_unhealthy(replica)
        with pytest.raises(ShardUnavailableError) as excinfo:
            sharded.search("c", queries[0], TOP_K)
        assert excinfo.value.retryable is True
        assert excinfo.value.code == "shard_unavailable"

    def test_request_errors_do_not_trigger_failover(self):
        sharded = ShardedDatabase(ShardConfig(num_shards=2, num_replicas=2))
        sharded.create_collection("c", DIM, IndexConfig(index_type="flat")).insert(
            ["a"], np.zeros((1, DIM))
        )
        with pytest.raises(CollectionNotFoundError):
            sharded.router.scatter(lambda backend: backend.get_collection("missing"))
        for group in sharded.replica_groups:
            assert all(replica.healthy for replica in group.replicas)

    def test_failover_mid_run_drops_zero_queries(self):
        """Replicas dying mid-stream must not lose or corrupt any query."""
        ids, vectors, _, queries = make_data(seed=29, count=300)
        plain = VectorDatabase()
        plain.create_collection("c", DIM, IndexConfig(index_type="flat")).insert(
            ids, vectors
        )
        expected = {
            i: hit_key(plain.search("c", queries[i % NUM_QUERIES], TOP_K))
            for i in range(NUM_QUERIES)
        }

        sharded = ShardedDatabase(ShardConfig(num_shards=3))
        sharded.create_collection("c", DIM, IndexConfig(index_type="flat")).insert(
            ids, vectors
        )
        # Every shard gets a replica that will crash partway through the run.
        for shard_index, shard in enumerate(sharded.shards):
            sharded.add_replica(shard_index, FlakyBackend(shard, failures=3))

        errors: List[BaseException] = []
        mismatches: List[int] = []

        def client(worker: int) -> None:
            try:
                for i in range(NUM_QUERIES):
                    got = sharded.search("c", queries[i % NUM_QUERIES], TOP_K)
                    if hit_key(got) != expected[i]:
                        mismatches.append(worker)
            except BaseException as error:  # noqa: BLE001 - collected for assert
                errors.append(error)

        threads = [threading.Thread(target=client, args=(w,)) for w in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors  # zero dropped queries
        assert not mismatches  # zero corrupted answers
        # The flaky replicas did crash (and were taken out of rotation).
        unhealthy = [
            replica
            for group in sharded.replica_groups
            for replica in group.replicas
            if not replica.healthy
        ]
        assert unhealthy

    def test_add_replica_validates_index(self):
        sharded = ShardedDatabase(ShardConfig(num_shards=2))
        with pytest.raises(ShardError):
            sharded.add_replica(5, object())

    def test_router_requires_groups(self):
        with pytest.raises(ShardError):
            ShardRouter([])


class TestEndToEndLOVO:
    def test_lovo_query_parity_sharded_vs_unsharded(self):
        from repro.core.system import LOVO
        from repro.video import make_bellevue

        dataset = make_bellevue(num_videos=2, frames_per_video=40)
        plain = LOVO(LOVOConfig())
        plain.ingest(dataset)
        sharded = LOVO(LOVOConfig(shard=ShardConfig(num_shards=3)))
        sharded.ingest(dataset)
        assert sharded.storage.sharded
        text = "A red car driving in the center of the road"
        a = plain.query(text)
        b = sharded.query(text)
        assert [(r.frame_id, r.score) for r in a.results] == [
            (r.frame_id, r.score) for r in b.results
        ]

    def test_lovo_snapshot_round_trip_with_shards(self, tmp_path):
        from repro.core.system import LOVO
        from repro.video import make_bellevue

        dataset = make_bellevue(num_videos=1, frames_per_video=30)
        system = LOVO(LOVOConfig(shard=ShardConfig(num_shards=2)))
        system.ingest(dataset)
        text = "A red car driving in the center of the road"
        before = system.query(text)
        system.save(tmp_path / "snap")
        restored = LOVO.load(tmp_path / "snap")
        assert restored.storage.sharded
        after = restored.query(text)
        assert [(r.frame_id, r.score) for r in before.results] == [
            (r.frame_id, r.score) for r in after.results
        ]
