"""Tests for Lloyd's k-means and product quantization."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import DimensionMismatchError, IndexNotBuiltError, VectorDatabaseError
from repro.vectordb.kmeans import lloyd_kmeans
from repro.vectordb.quantization import ProductQuantizer


def clustered_data(num_clusters=4, points_per_cluster=50, dim=8, seed=0):
    rng = np.random.default_rng(seed)
    centers = rng.normal(scale=5.0, size=(num_clusters, dim))
    points = np.concatenate([
        center + rng.normal(scale=0.3, size=(points_per_cluster, dim)) for center in centers
    ])
    return points, centers


class TestKMeans:
    def test_finds_well_separated_clusters(self):
        points, centers = clustered_data()
        result = lloyd_kmeans(points, num_clusters=4, seed=1)
        assert result.centroids.shape == (4, 8)
        # Every true centre should have a learned centroid nearby.
        for center in centers:
            distances = np.linalg.norm(result.centroids - center, axis=1)
            assert distances.min() < 1.0

    def test_assignments_valid(self):
        points, _ = clustered_data()
        result = lloyd_kmeans(points, num_clusters=4)
        assert result.assignments.shape == (points.shape[0],)
        assert result.assignments.min() >= 0
        assert result.assignments.max() < 4

    def test_inertia_decreases_with_more_clusters(self):
        points, _ = clustered_data()
        few = lloyd_kmeans(points, num_clusters=2, seed=0)
        many = lloyd_kmeans(points, num_clusters=8, seed=0)
        assert many.inertia < few.inertia

    def test_clusters_capped_at_num_points(self):
        points = np.random.default_rng(0).normal(size=(3, 4))
        result = lloyd_kmeans(points, num_clusters=10)
        assert result.centroids.shape[0] == 3

    def test_empty_input_rejected(self):
        with pytest.raises(VectorDatabaseError):
            lloyd_kmeans(np.zeros((0, 4)), num_clusters=2)

    def test_non_2d_rejected(self):
        with pytest.raises(VectorDatabaseError):
            lloyd_kmeans(np.zeros(10), num_clusters=2)

    def test_deterministic_given_seed(self):
        points, _ = clustered_data()
        first = lloyd_kmeans(points, num_clusters=4, seed=5)
        second = lloyd_kmeans(points, num_clusters=4, seed=5)
        np.testing.assert_allclose(first.centroids, second.centroids)

    @given(st.integers(2, 6), st.integers(10, 60))
    @settings(max_examples=20, deadline=None)
    def test_inertia_non_negative_and_assignment_consistent(self, k, n):
        rng = np.random.default_rng(k * 100 + n)
        points = rng.normal(size=(n, 5))
        result = lloyd_kmeans(points, num_clusters=k, seed=0)
        assert result.inertia >= 0.0
        recomputed = ((points - result.centroids[result.assignments]) ** 2).sum()
        assert recomputed == pytest.approx(result.inertia, rel=1e-6)


class TestProductQuantizer:
    def unit_vectors(self, n=200, dim=32, seed=0):
        rng = np.random.default_rng(seed)
        vectors = rng.normal(size=(n, dim))
        return vectors / np.linalg.norm(vectors, axis=1, keepdims=True)

    def test_requires_training_before_use(self):
        quantizer = ProductQuantizer(num_subspaces=4, num_centroids=8)
        with pytest.raises(IndexNotBuiltError):
            quantizer.encode(self.unit_vectors())
        with pytest.raises(IndexNotBuiltError):
            _ = quantizer.dim

    def test_invalid_parameters(self):
        with pytest.raises(VectorDatabaseError):
            ProductQuantizer(num_subspaces=0, num_centroids=8)
        with pytest.raises(VectorDatabaseError):
            ProductQuantizer(num_subspaces=4, num_centroids=1)

    def test_dimension_must_divide(self):
        quantizer = ProductQuantizer(num_subspaces=5, num_centroids=8)
        with pytest.raises(DimensionMismatchError):
            quantizer.train(self.unit_vectors(dim=32))

    def test_codes_shape_and_range(self):
        vectors = self.unit_vectors()
        quantizer = ProductQuantizer(num_subspaces=4, num_centroids=16)
        quantizer.train(vectors)
        codes = quantizer.encode(vectors)
        assert codes.shape == (vectors.shape[0], 4)
        assert codes.min() >= 0 and codes.max() < 16

    def test_reconstruction_reasonable(self):
        vectors = self.unit_vectors()
        quantizer = ProductQuantizer(num_subspaces=8, num_centroids=32)
        quantizer.train(vectors)
        error = quantizer.quantization_error(vectors)
        assert error < 0.5

    def test_more_centroids_reduce_error(self):
        vectors = self.unit_vectors()
        small = ProductQuantizer(num_subspaces=4, num_centroids=4)
        big = ProductQuantizer(num_subspaces=4, num_centroids=64)
        small.train(vectors)
        big.train(vectors)
        assert big.quantization_error(vectors) < small.quantization_error(vectors)

    def test_adc_scores_approximate_exact(self):
        vectors = self.unit_vectors(n=300)
        quantizer = ProductQuantizer(num_subspaces=8, num_centroids=32)
        quantizer.train(vectors)
        codes = quantizer.encode(vectors)
        query = vectors[0]
        approximate = quantizer.approximate_scores(query, codes)
        exact = vectors @ query
        correlation = np.corrcoef(approximate, exact)[0, 1]
        assert correlation > 0.85

    def test_query_dimension_checked(self):
        quantizer = ProductQuantizer(num_subspaces=4, num_centroids=8)
        quantizer.train(self.unit_vectors())
        with pytest.raises(DimensionMismatchError):
            quantizer.inner_product_tables(np.zeros(16))

    def test_decode_shape_checked(self):
        quantizer = ProductQuantizer(num_subspaces=4, num_centroids=8)
        quantizer.train(self.unit_vectors())
        with pytest.raises(DimensionMismatchError):
            quantizer.decode(np.zeros((3, 5), dtype=np.int32))

    def test_codebooks_exposed_after_training(self):
        quantizer = ProductQuantizer(num_subspaces=4, num_centroids=8)
        quantizer.train(self.unit_vectors())
        assert len(quantizer.codebooks) == 4
        assert quantizer.codebooks[0].shape == (8, 8)
        assert quantizer.subspace_dim == 8
