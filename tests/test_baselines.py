"""Behavioural tests for the baseline systems (VOCAL, MIRIS, FiGO, ZELDA, UMT, VISA)."""

from __future__ import annotations

import pytest

from repro.baselines import (
    FiGOBaseline,
    HybridBaseline,
    MIRISBaseline,
    UMTBaseline,
    VISABaseline,
    VOCALBaseline,
    ZELDABaseline,
)
from repro.config import EncoderConfig
from repro.errors import QueryError, UnsupportedQueryError
from repro.eval.metrics import evaluate_results
from repro.eval.workloads import build_ground_truth, query_by_id

SMALL_ENCODER = EncoderConfig(embedding_dim=64, class_embedding_dim=32, patch_grid=6)


def ingested(cls, dataset, **kwargs):
    baseline = cls(SMALL_ENCODER, **kwargs)
    baseline.ingest(dataset)
    return baseline


class TestBaselineInterface:
    def test_query_before_ingest_raises(self):
        with pytest.raises(QueryError):
            MIRISBaseline(SMALL_ENCODER).query("a car")

    @pytest.mark.parametrize("cls", [MIRISBaseline, FiGOBaseline, ZELDABaseline, UMTBaseline, VISABaseline])
    def test_query_returns_timed_response(self, cls, bellevue_small):
        baseline = ingested(cls, bellevue_small)
        response = baseline.query("A red car driving on the road.")
        assert "search" in response.timings
        assert response.metadata["system"] == baseline.name
        for result in response.results:
            assert result.source == baseline.name


class TestVOCAL:
    def test_supports_predefined_class_query(self, bellevue_small):
        vocal = ingested(VOCALBaseline, bellevue_small)
        response = vocal.query("A bus driving on the road.")
        assert response.results
        ground_truth = build_ground_truth(bellevue_small, query_by_id("Q2.3"))
        assert evaluate_results(response.results, ground_truth) > 0.2

    def test_rejects_attribute_query(self, bellevue_small):
        vocal = ingested(VOCALBaseline, bellevue_small)
        with pytest.raises(UnsupportedQueryError):
            vocal.query("A red car driving in the center of the road.")

    def test_rejects_open_vocabulary_class(self, qvhighlights_small):
        vocal = ingested(VOCALBaseline, qvhighlights_small)
        with pytest.raises(UnsupportedQueryError):
            vocal.query("A woman smiling sitting inside car.")

    def test_index_size_positive(self, bellevue_small):
        vocal = ingested(VOCALBaseline, bellevue_small)
        assert vocal.index_size() > 0

    def test_fast_queries(self, bellevue_small):
        vocal = ingested(VOCALBaseline, bellevue_small)
        response = vocal.query("A bus driving on the road.")
        assert response.search_seconds < 0.5


class TestMIRIS:
    def test_finds_described_objects(self, bellevue_small):
        miris = ingested(MIRISBaseline, bellevue_small, plan_configuration_passes=5)
        response = miris.query("A red car driving in the center of the road.")
        ground_truth = build_ground_truth(bellevue_small, query_by_id("Q2.1"))
        assert evaluate_results(response.results, ground_truth) > 0.1

    def test_plan_configuration_counted_as_processing(self, bellevue_small):
        miris = ingested(MIRISBaseline, bellevue_small, plan_configuration_passes=5)
        response = miris.query("A bus driving on the road.")
        assert "processing" in response.timings
        assert response.search_seconds < response.timings["processing"] + response.timings["search"] + 1e-6
        assert "processing" not in {"search"}  # search_seconds excludes processing by definition
        assert response.search_seconds == pytest.approx(response.timings["search"], rel=1e-6)


class TestFiGO:
    def test_scans_with_ensemble(self, bellevue_small):
        figo = ingested(FiGOBaseline, bellevue_small)
        response = figo.query("A red car driving in the center of the road.")
        assert response.results
        ground_truth = build_ground_truth(bellevue_small, query_by_id("Q2.1"))
        assert evaluate_results(response.results, ground_truth) > 0.1

    def test_search_slower_than_zelda(self, bellevue_small):
        figo = ingested(FiGOBaseline, bellevue_small)
        zelda = ingested(ZELDABaseline, bellevue_small)
        figo_time = figo.query("A bus driving on the road.").search_seconds
        zelda_time = zelda.query("A bus driving on the road.").search_seconds
        assert figo_time > zelda_time


class TestZELDA:
    def test_preprocessing_dominates(self, bellevue_small):
        zelda = ingested(ZELDABaseline, bellevue_small)
        response = zelda.query("A bus driving on the road.")
        assert zelda.timer.totals["processing"] > response.search_seconds

    def test_reasonable_accuracy_on_simple_query(self, bellevue_small):
        zelda = ingested(ZELDABaseline, bellevue_small)
        response = zelda.query("A bus driving on the road.")
        ground_truth = build_ground_truth(bellevue_small, query_by_id("Q2.3"))
        assert evaluate_results(response.results, ground_truth) > 0.1


class TestUMTAndVISA:
    def test_umt_returns_moment_level_results(self, bellevue_small):
        umt = ingested(UMTBaseline, bellevue_small)
        response = umt.query("A bus driving on the road.")
        assert response.results

    def test_visa_better_on_daily_life_than_traffic(self, bellevue_small, qvhighlights_small):
        visa_traffic = ingested(VISABaseline, bellevue_small, llm_reasoning_repeats=1)
        visa_daily = ingested(VISABaseline, qvhighlights_small, llm_reasoning_repeats=1)
        traffic_ap = evaluate_results(
            visa_traffic.query("A red car driving in the center of the road.").results,
            build_ground_truth(bellevue_small, query_by_id("Q2.1")),
        )
        daily_ap = evaluate_results(
            visa_daily.query("A woman smiling sitting inside car.").results,
            build_ground_truth(qvhighlights_small, query_by_id("Q3.1")),
        )
        assert daily_ap > traffic_ap


class TestHybrid:
    def test_uses_index_when_possible(self, bellevue_small):
        hybrid = ingested(HybridBaseline, bellevue_small)
        response = hybrid.query("A bus driving on the road.")
        assert response.results
        assert response.search_seconds < 0.5

    def test_falls_back_to_search_for_complex_queries(self, bellevue_small):
        hybrid = ingested(HybridBaseline, bellevue_small)
        response = hybrid.query("A red car driving in the center of the road.")
        assert response.results
