"""Tests for the cross-modality rerank model."""

from __future__ import annotations

import pytest

from repro.encoders.concepts import ConceptSpace
from repro.encoders.cross_modal import (
    CandidatePatch,
    CrossModalityReranker,
    FrameCandidate,
    RerankerConfig,
)
from repro.encoders.text import QueryParser
from repro.encoders.vocabulary import default_vocabulary
from repro.utils.geometry import BoundingBox


@pytest.fixture(scope="module")
def space():
    return ConceptSpace(dim=64, seed=7)


@pytest.fixture(scope="module")
def parser():
    return QueryParser(default_vocabulary())


@pytest.fixture(scope="module")
def reranker(space):
    return CrossModalityReranker(space, RerankerConfig(hidden_dim=64))


def patch(space, patch_id, tokens, box, objectness=0.8):
    return CandidatePatch(
        patch_id=patch_id,
        embedding=space.encode(tokens),
        box=box,
        objectness=objectness,
    )


def candidate(space, frame_id, patch_specs):
    patches = tuple(
        patch(space, f"{frame_id}/p{i}", tokens, box)
        for i, (tokens, box) in enumerate(patch_specs)
    )
    return FrameCandidate(frame_id=frame_id, patches=patches)


class TestAppearanceRanking:
    def test_frame_with_target_ranks_higher(self, space, parser, reranker):
        query = parser.parse("a red car driving on the road")
        with_target = candidate(space, "f-red", [
            (["car", "red", "road", "driving"], BoundingBox(0.4, 0.4, 0.2, 0.15)),
            (["road"], BoundingBox(0.0, 0.0, 0.2, 0.2)),
        ])
        without_target = candidate(space, "f-dog", [
            (["dog", "white", "room"], BoundingBox(0.4, 0.4, 0.2, 0.15)),
            (["room"], BoundingBox(0.0, 0.0, 0.2, 0.2)),
        ])
        ranked = reranker.rerank(query, [without_target, with_target])
        assert ranked[0].frame_id == "f-red"

    def test_attribute_discrimination_within_frame(self, space, parser, reranker):
        query = parser.parse("a red car on the road")
        frame = candidate(space, "f", [
            (["car", "grey", "road", "driving"], BoundingBox(0.1, 0.4, 0.2, 0.15)),
            (["car", "red", "road", "driving"], BoundingBox(0.6, 0.4, 0.2, 0.15)),
        ])
        result = reranker.score_frame(query, frame)
        assert result.patch_id.endswith("p1")

    def test_category_discrimination(self, space, parser, reranker):
        query = parser.parse("a bus driving on the road")
        frame = candidate(space, "f", [
            (["car", "grey", "road", "driving"], BoundingBox(0.1, 0.4, 0.2, 0.15)),
            (["bus", "blue", "road", "driving"], BoundingBox(0.6, 0.4, 0.25, 0.15)),
        ])
        result = reranker.score_frame(query, frame)
        assert result.patch_id.endswith("p1")

    def test_rerank_respects_top_n(self, space, parser, reranker):
        query = parser.parse("a red car")
        candidates = [
            candidate(space, f"f{i}", [(["car", "red"], BoundingBox(0.4, 0.4, 0.2, 0.2))])
            for i in range(5)
        ]
        assert len(reranker.rerank(query, candidates, top_n=3)) == 3

    def test_empty_candidate_returns_none(self, space, parser, reranker):
        query = parser.parse("a red car")
        assert reranker.score_frame(query, FrameCandidate("empty", ())) is None


class TestRelations:
    def test_center_relation_prefers_centered_object(self, space, parser, reranker):
        query = parser.parse("A red car driving in the center of the road.")
        frame = candidate(space, "f", [
            (["car", "red", "road", "driving"], BoundingBox(0.0, 0.0, 0.15, 0.12)),
            (["car", "red", "road", "driving"], BoundingBox(0.45, 0.45, 0.15, 0.12)),
        ])
        result = reranker.score_frame(query, frame)
        assert result.patch_id.endswith("p1")
        assert result.relation_score > 0

    def test_side_by_side_requires_companion(self, space, parser, reranker):
        query = parser.parse("A red car side by side with another car in the center of the road.")
        paired = candidate(space, "f-paired", [
            (["car", "red", "road", "driving"], BoundingBox.from_center(0.45, 0.5, 0.14, 0.1)),
            (["car", "grey", "road", "driving"], BoundingBox.from_center(0.62, 0.5, 0.14, 0.1)),
        ])
        lonely = candidate(space, "f-lonely", [
            (["car", "red", "road", "driving"], BoundingBox.from_center(0.45, 0.5, 0.14, 0.1)),
            (["road"], BoundingBox(0.0, 0.0, 0.15, 0.15)),
        ])
        ranked = reranker.rerank(query, [lonely, paired])
        assert ranked[0].frame_id == "f-paired"
        assert ranked[0].relation_score > ranked[1].relation_score

    def test_next_to_companion_attributes_checked(self, space, parser, reranker):
        query = parser.parse("A white dog inside a car, next to a woman wearing black clothes.")
        with_woman = candidate(space, "f-with", [
            (["dog", "white", "car_interior", "sitting"], BoundingBox.from_center(0.45, 0.5, 0.1, 0.1)),
            (["woman", "black", "black clothes", "car_interior"], BoundingBox.from_center(0.58, 0.5, 0.12, 0.2)),
        ])
        alone = candidate(space, "f-alone", [
            (["dog", "white", "car_interior", "sitting"], BoundingBox.from_center(0.45, 0.5, 0.1, 0.1)),
        ])
        ranked = reranker.rerank(query, [alone, with_woman])
        assert ranked[0].frame_id == "f-with"


class TestDetections:
    def test_detections_do_not_overlap(self, space, parser, reranker):
        query = parser.parse("a person walking on the street")
        frame = candidate(space, "f", [
            (["person", "walking", "street"], BoundingBox(0.1, 0.4, 0.1, 0.2)),
            (["person", "walking", "street"], BoundingBox(0.12, 0.42, 0.1, 0.2)),
            (["person", "walking", "street"], BoundingBox(0.7, 0.4, 0.1, 0.2)),
        ])
        result = reranker.score_frame(query, frame)
        boxes = [detection.box for detection in result.detections]
        for i in range(len(boxes)):
            for j in range(i + 1, len(boxes)):
                assert boxes[i].iou(boxes[j]) < reranker.config.nms_iou_threshold

    def test_detection_cap(self, space, parser):
        reranker = CrossModalityReranker(
            ConceptSpace(dim=64, seed=7), RerankerConfig(max_boxes_per_frame=2, hidden_dim=64)
        )
        query = parser.parse("a person")
        frame = candidate(space, "f", [
            (["person"], BoundingBox(0.1, 0.1, 0.1, 0.2)),
            (["person"], BoundingBox(0.4, 0.4, 0.1, 0.2)),
            (["person"], BoundingBox(0.7, 0.7, 0.1, 0.2)),
        ])
        result = reranker.score_frame(query, frame)
        assert len(result.detections) == 2

    def test_scores_are_descending(self, space, parser, reranker):
        query = parser.parse("a red car")
        candidates = [
            candidate(space, "f-red", [(["car", "red"], BoundingBox(0.4, 0.4, 0.2, 0.2))]),
            candidate(space, "f-grey", [(["car", "grey"], BoundingBox(0.4, 0.4, 0.2, 0.2))]),
            candidate(space, "f-dog", [(["dog", "brown"], BoundingBox(0.4, 0.4, 0.2, 0.2))]),
        ]
        ranked = reranker.rerank(query, candidates)
        scores = [result.score for result in ranked]
        assert scores == sorted(scores, reverse=True)
        assert ranked[0].frame_id == "f-red"
        assert ranked[-1].frame_id == "f-dog"
