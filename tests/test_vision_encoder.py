"""Tests for the patch grid, localization head, and vision encoder."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import EncoderConfig
from repro.encoders.concepts import ConceptSpace
from repro.encoders.localization import SimulatedBoxHead
from repro.encoders.text import TextEncoder
from repro.encoders.vision import PatchGrid, VisionEncoder
from repro.errors import EncodingError
from repro.utils.geometry import BoundingBox, iou
from repro.video.model import Frame, ObjectAnnotation


CONFIG = EncoderConfig(embedding_dim=64, class_embedding_dim=32, patch_grid=6)


@pytest.fixture(scope="module")
def space():
    return ConceptSpace(dim=64, seed=7)


@pytest.fixture(scope="module")
def encoder(space):
    return VisionEncoder(space, CONFIG)


def frame_with(objects) -> Frame:
    return Frame(frame_id="v0/frame000000", video_id="v0", index=0, timestamp=0.0,
                 objects=tuple(objects))


def red_car(x: float = 0.35, y: float = 0.45) -> ObjectAnnotation:
    return ObjectAnnotation(
        object_id="car-red", category="car", attributes={"color": "red"},
        context=("road",), activity=("driving",),
        box=BoundingBox(x, y, 0.2, 0.15),
    )


def white_dog(x: float = 0.7, y: float = 0.2) -> ObjectAnnotation:
    return ObjectAnnotation(
        object_id="dog-white", category="dog", attributes={"color": "white"},
        context=("room",), activity=("sitting",),
        box=BoundingBox(x, y, 0.15, 0.15),
    )


class TestPatchGrid:
    def test_anchor_count_and_coverage(self):
        grid = PatchGrid(4)
        anchors = grid.anchors()
        assert len(anchors) == 16
        assert sum(anchor.area for anchor in anchors) == pytest.approx(1.0)

    def test_anchor_positions(self):
        grid = PatchGrid(4)
        first = grid.anchor(0)
        last = grid.anchor(15)
        assert (first.x, first.y) == (0.0, 0.0)
        assert last.x2 == pytest.approx(1.0)
        assert last.y2 == pytest.approx(1.0)

    def test_invalid_grid_and_index(self):
        with pytest.raises(EncodingError):
            PatchGrid(0)
        with pytest.raises(EncodingError):
            PatchGrid(4).anchor(16)


class TestBoxHead:
    def test_predicts_object_box_for_covered_patch(self):
        head = SimulatedBoxHead(noise_scale=0.0)
        anchors = [BoundingBox(0.25, 0.25, 0.25, 0.25)]
        target = BoundingBox(0.2, 0.2, 0.3, 0.3)
        overlaps = np.array([[1.0]])
        predicted = head.predict("f", anchors, [target], overlaps)[0]
        assert iou(predicted, target) > 0.9

    def test_background_patch_returns_anchor(self):
        head = SimulatedBoxHead(noise_scale=0.0)
        anchor = BoundingBox(0.0, 0.0, 0.25, 0.25)
        predicted = head.predict("f", [anchor], [], np.zeros((1, 0)))[0]
        assert iou(predicted, anchor) > 0.99

    def test_noise_perturbs_but_preserves_location(self):
        head = SimulatedBoxHead(noise_scale=0.01)
        anchors = [BoundingBox(0.25, 0.25, 0.25, 0.25)]
        target = BoundingBox(0.2, 0.2, 0.3, 0.3)
        predicted = head.predict("f", anchors, [target], np.array([[1.0]]))[0]
        assert iou(predicted, target) > 0.7


class TestVisionEncoder:
    def test_encoding_counts_and_shapes(self, encoder):
        encodings = encoder.encode_frame(frame_with([red_car()]))
        assert len(encodings) == CONFIG.patch_grid ** 2
        for encoding in encodings:
            assert encoding.embedding.shape == (64,)
            assert encoding.class_embedding.shape == (32,)
            assert np.linalg.norm(encoding.embedding) == pytest.approx(1.0)
            assert np.linalg.norm(encoding.class_embedding) == pytest.approx(1.0)
            assert 0.0 <= encoding.objectness <= 1.0

    def test_patch_ids_unique_and_linked_to_frame(self, encoder):
        encodings = encoder.encode_frame(frame_with([red_car()]))
        ids = {encoding.patch_id for encoding in encodings}
        assert len(ids) == len(encodings)
        assert all(encoding.frame_id == "v0/frame000000" for encoding in encodings)

    def test_deterministic(self, encoder, space):
        first = encoder.encode_frame(frame_with([red_car()]))
        second = VisionEncoder(space, CONFIG).encode_frame(frame_with([red_car()]))
        np.testing.assert_allclose(first[10].embedding, second[10].embedding)

    def test_object_patches_have_higher_objectness(self, encoder):
        encodings = encoder.encode_frame(frame_with([red_car()]))
        grid = encoder.grid
        car_box = red_car().box
        covered = [e for e in encodings if grid.anchor(e.patch_index).overlap_fraction(car_box) > 0.5]
        background = [e for e in encodings if grid.anchor(e.patch_index).overlap_fraction(car_box) == 0.0]
        assert covered and background
        assert min(e.objectness for e in covered) > max(e.objectness for e in background)

    def test_query_alignment_with_matching_object(self, encoder, space):
        text_encoder = TextEncoder(space, class_embedding_dim=32)
        query = text_encoder.encode("a red car driving on the road")
        encodings = encoder.encode_frame(frame_with([red_car(), white_dog()]))
        grid = encoder.grid
        car_scores = [float(e.class_embedding @ query) for e in encodings
                      if grid.anchor(e.patch_index).overlap_fraction(red_car().box) > 0.5]
        dog_scores = [float(e.class_embedding @ query) for e in encodings
                      if grid.anchor(e.patch_index).overlap_fraction(white_dog().box) > 0.5]
        assert max(car_scores) > max(dog_scores)

    def test_predicted_boxes_localise_dominant_object(self, encoder):
        encodings = encoder.encode_frame(frame_with([red_car()]))
        grid = encoder.grid
        best = max(
            encodings, key=lambda e: grid.anchor(e.patch_index).overlap_fraction(red_car().box)
        )
        assert iou(best.box, red_car().box) > 0.5

    def test_encode_frames_concatenates(self, encoder):
        frames = [frame_with([red_car()]),
                  Frame(frame_id="v0/frame000001", video_id="v0", index=1, timestamp=0.03,
                        objects=(white_dog(),))]
        encodings = encoder.encode_frames(frames)
        assert len(encodings) == 2 * CONFIG.patch_grid ** 2

    def test_dimension_mismatch_rejected(self):
        with pytest.raises(EncodingError):
            VisionEncoder(ConceptSpace(dim=32, seed=7), CONFIG)
