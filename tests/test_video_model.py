"""Tests for the video data model (frames, videos, datasets)."""

from __future__ import annotations

import pytest

from repro.errors import VideoError
from repro.utils.geometry import BoundingBox
from repro.video.model import (
    Frame,
    ObjectAnnotation,
    Video,
    VideoDataset,
    concat_datasets,
    make_frame_id,
)


def build_frame(video_id: str, index: int, objects=()):
    return Frame(
        frame_id=make_frame_id(video_id, index),
        video_id=video_id,
        index=index,
        timestamp=index / 30.0,
        objects=tuple(objects),
    )


def build_video(video_id: str = "v0", num_frames: int = 5) -> Video:
    return Video(video_id=video_id, frames=[build_frame(video_id, i) for i in range(num_frames)])


class TestObjectAnnotation:
    def test_concept_tokens_include_all_facets(self):
        annotation = ObjectAnnotation(
            object_id="o1",
            category="car",
            attributes={"color": "red"},
            context=("road",),
            activity=("driving",),
            box=BoundingBox(0.1, 0.1, 0.2, 0.2),
        )
        tokens = annotation.concept_tokens()
        assert tokens == ["car", "red", "road", "driving"]

    def test_describe_mentions_attributes_and_category(self):
        annotation = ObjectAnnotation(
            object_id="o1",
            category="bus",
            attributes={"color": "green"},
            context=("road",),
            activity=("driving",),
        )
        description = annotation.describe()
        assert "green" in description and "bus" in description


class TestFrame:
    def test_visible_objects_filters_degenerate_boxes(self):
        inside = ObjectAnnotation("a", "car", box=BoundingBox(0.1, 0.1, 0.2, 0.2))
        outside = ObjectAnnotation("b", "car", box=BoundingBox(1.5, 1.5, 0.2, 0.2))
        frame = build_frame("v0", 0, [inside, outside])
        visible = frame.visible_objects()
        assert [a.object_id for a in visible] == ["a"]

    def test_categories_deduplicated(self):
        frame = build_frame(
            "v0", 0,
            [
                ObjectAnnotation("a", "car", box=BoundingBox(0.1, 0.1, 0.2, 0.2)),
                ObjectAnnotation("b", "car", box=BoundingBox(0.4, 0.4, 0.2, 0.2)),
                ObjectAnnotation("c", "bus", box=BoundingBox(0.6, 0.6, 0.2, 0.2)),
            ],
        )
        assert frame.categories() == ["car", "bus"]


class TestVideo:
    def test_duration_and_count(self):
        video = build_video(num_frames=30)
        assert video.num_frames == 30
        assert video.duration_seconds == pytest.approx(1.0)

    def test_rejects_wrong_video_id(self):
        frame = build_frame("other", 0)
        with pytest.raises(VideoError):
            Video(video_id="v0", frames=[frame])

    def test_rejects_out_of_order_frames(self):
        frames = [build_frame("v0", 1), build_frame("v0", 0)]
        with pytest.raises(VideoError):
            Video(video_id="v0", frames=frames)

    def test_rejects_nonpositive_fps(self):
        with pytest.raises(VideoError):
            Video(video_id="v0", frames=[build_frame("v0", 0)], fps=0)

    def test_frame_pairs(self):
        video = build_video(num_frames=4)
        pairs = list(video.frame_pairs())
        assert len(pairs) == 3
        assert pairs[0][0].index == 0 and pairs[0][1].index == 1


class TestVideoDataset:
    def test_counts_and_iteration(self):
        dataset = VideoDataset(name="d", videos=[build_video("a", 3), build_video("b", 2)])
        assert dataset.num_videos == 2
        assert dataset.num_frames == 5
        assert len(dataset.all_frames()) == 5

    def test_frame_by_id(self):
        dataset = VideoDataset(name="d", videos=[build_video("a", 3)])
        frame = dataset.frame_by_id(make_frame_id("a", 2))
        assert frame.index == 2

    def test_frame_by_id_missing(self):
        dataset = VideoDataset(name="d", videos=[build_video("a", 3)])
        with pytest.raises(VideoError):
            dataset.frame_by_id("missing")

    def test_subset_truncates_frames(self):
        dataset = VideoDataset(name="d", videos=[build_video("a", 10), build_video("b", 10)])
        subset = dataset.subset(12)
        assert subset.num_frames == 12
        assert subset.num_videos == 2

    def test_subset_invalid(self):
        dataset = VideoDataset(name="d", videos=[build_video("a", 3)])
        with pytest.raises(VideoError):
            dataset.subset(0)

    def test_concat_datasets(self):
        combined = concat_datasets(
            "both",
            [
                VideoDataset(name="d1", videos=[build_video("a", 3)]),
                VideoDataset(name="d2", videos=[build_video("b", 4)]),
            ],
        )
        assert combined.num_frames == 7
        assert combined.name == "both"

    def test_categories(self):
        frame = build_frame("a", 0, [ObjectAnnotation("o", "dog", box=BoundingBox(0.1, 0.1, 0.2, 0.2))])
        video = Video(video_id="a", frames=[frame])
        dataset = VideoDataset(name="d", videos=[video])
        assert dataset.categories() == ["dog"]
