"""Tests for the canonical v1 query API (:class:`QueryRequest` / :class:`QueryOptions`).

Covers validation, JSON wire round-trips, the deprecation shims on every
entry point, options-aware cache keying, and the full HTTP round trip of a
``QueryRequest`` through the ``/v1`` endpoints.
"""

from __future__ import annotations

import json
import threading
import urllib.request
import warnings

import numpy as np
import pytest

from repro.config import LOVOConfig, QueryConfig, ServeConfig
from repro.core.query import (
    QueryOptions,
    QueryRequest,
    as_query_batch,
    as_query_request,
)
from repro.errors import QueryError
from repro.serve import ResultCache, ServingEngine
from repro.serve.http import make_server
from repro.vectordb.base import exact_scores


class TestQueryOptions:
    def test_defaults_resolve_from_config(self):
        config = QueryConfig()
        assert QueryOptions().resolved(config) == (
            config.fast_search_k,
            config.rerank_n,
        )

    def test_explicit_values_override_config(self):
        fast_k, top_n = QueryOptions(top_n=7, fast_search_k=33).resolved(QueryConfig())
        assert (fast_k, top_n) == (33, 7)

    @pytest.mark.parametrize("bad", [0, -3, 1.5, "5", True])
    def test_rejects_non_positive_ints(self, bad):
        with pytest.raises(QueryError):
            QueryOptions(top_n=bad)
        with pytest.raises(QueryError):
            QueryOptions(fast_search_k=bad)

    def test_json_round_trip(self):
        options = QueryOptions(top_n=9, fast_search_k=64)
        assert QueryOptions.from_dict(options.to_dict()) == options
        assert QueryOptions.from_dict(None) == QueryOptions()
        assert QueryOptions().to_dict() == {}

    def test_unknown_keys_rejected(self):
        with pytest.raises(QueryError, match="Unknown query option"):
            QueryOptions.from_dict({"depth": 3})

    def test_hashable_for_grouping(self):
        assert {QueryOptions(top_n=5), QueryOptions(top_n=5)} == {QueryOptions(top_n=5)}
        assert QueryOptions(top_n=5) != QueryOptions(top_n=6)


class TestQueryRequest:
    def test_rejects_empty_text(self):
        for bad in ("", "   ", 42, None):
            with pytest.raises(QueryError):
                QueryRequest(bad)

    def test_rejects_non_options(self):
        with pytest.raises(QueryError):
            QueryRequest("a car", options={"top_n": 5})

    def test_json_round_trip(self):
        request = QueryRequest("a red car", QueryOptions(top_n=5))
        wire = json.loads(json.dumps(request.to_dict()))
        assert QueryRequest.from_dict(wire) == request
        bare = QueryRequest("a red car")
        assert QueryRequest.from_dict(bare.to_dict()) == bare
        assert "options" not in bare.to_dict()

    def test_from_dict_accepts_legacy_top_n(self):
        request = QueryRequest.from_dict({"query": "a car", "top_n": 5})
        assert request.options == QueryOptions(top_n=5)

    def test_from_dict_rejects_conflicting_top_n(self):
        with pytest.raises(QueryError, match="Conflicting top_n"):
            QueryRequest.from_dict(
                {"query": "a car", "options": {"top_n": 3}, "top_n": 9}
            )

    def test_from_dict_agreeing_top_n_ok(self):
        request = QueryRequest.from_dict(
            {"query": "a car", "options": {"top_n": 3}, "top_n": 3}
        )
        assert request.options.top_n == 3


class TestCoercionShims:
    def test_string_passes_without_warning(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            request = as_query_request("a car")
        assert request == QueryRequest("a car")

    def test_top_n_kwarg_warns(self):
        with pytest.warns(DeprecationWarning, match="deprecated"):
            request = as_query_request("a car", 5, caller="LOVO.query")
        assert request.options.top_n == 5

    def test_query_request_with_separate_options_rejected(self):
        with pytest.raises(QueryError, match="both"):
            as_query_request(QueryRequest("a car"), options=QueryOptions(top_n=5))

    def test_batch_coercion_merges_shared_options(self):
        texts, options = as_query_batch(
            ["a", QueryRequest("b", QueryOptions(top_n=5))],
            options=QueryOptions(top_n=5),
        )
        assert texts == ["a", "b"]
        assert options == QueryOptions(top_n=5)

    def test_batch_coercion_rejects_mixed_options(self):
        with pytest.raises(QueryError, match="share one QueryOptions"):
            as_query_batch(
                [
                    QueryRequest("a", QueryOptions(top_n=5)),
                    QueryRequest("b", QueryOptions(top_n=6)),
                ]
            )

    def test_batch_rejects_single_request(self):
        with pytest.raises(QueryError):
            as_query_batch("a car")
        with pytest.raises(QueryError):
            as_query_batch(QueryRequest("a car"))


class TestCacheKeying:
    def test_key_is_shim_invariant(self):
        config = QueryConfig()
        explicit = ResultCache.key_for(
            "a car", QueryOptions(top_n=config.rerank_n), config
        )
        defaulted = ResultCache.key_for("a car", QueryOptions(), config)
        assert explicit == defaulted

    def test_key_varies_with_options(self):
        config = QueryConfig()
        base = ResultCache.key_for("a car", QueryOptions(), config)
        assert ResultCache.key_for("a car", QueryOptions(top_n=3), config) != base
        assert (
            ResultCache.key_for("a car", QueryOptions(fast_search_k=7), config) != base
        )


class TestExactScoresDeterminism:
    """The fixed-tile GEMM invariance the sharded parity guarantee rests on."""

    def test_scores_are_subset_and_position_invariant(self):
        rng = np.random.default_rng(3)
        matrix = rng.normal(size=(700, 24))
        queries = rng.normal(size=(11, 24))
        full = exact_scores(matrix, queries)
        for _trial in range(10):
            rows = np.sort(
                rng.choice(700, size=int(rng.integers(1, 700)), replace=False)
            )
            sub = exact_scores(np.ascontiguousarray(matrix[rows]), queries)
            assert np.array_equal(full[rows], sub)
        for i in range(queries.shape[0]):
            single = exact_scores(matrix, queries[i : i + 1])
            assert np.array_equal(full[:, i], single[:, 0])

    def test_empty_inputs(self):
        assert exact_scores(np.zeros((0, 8)), np.zeros((3, 8))).shape == (0, 3)
        assert exact_scores(np.zeros((5, 8)), np.zeros((0, 8))).shape == (5, 0)


@pytest.fixture(scope="module")
def tiny_system():
    from repro.core.system import LOVO
    from repro.video import make_bellevue

    system = LOVO(LOVOConfig())
    system.ingest(make_bellevue(num_videos=1, frames_per_video=30))
    return system


class TestEntryPointShims:
    def test_lovo_query_accepts_request_and_warns_on_top_n(self, tiny_system):
        text = "A red car driving in the center of the road"
        via_request = tiny_system.query(QueryRequest(text, QueryOptions(top_n=5)))
        with pytest.warns(DeprecationWarning):
            via_kwarg = tiny_system.query(text, top_n=5)
        assert [(r.frame_id, r.score) for r in via_request.results] == [
            (r.frame_id, r.score) for r in via_kwarg.results
        ]

    def test_lovo_query_batch_accepts_options(self, tiny_system):
        texts = ["A red car driving in the center of the road", "a car"]
        batch = tiny_system.query_batch(texts, options=QueryOptions(top_n=5))
        with pytest.warns(DeprecationWarning):
            legacy = tiny_system.query_batch(texts, top_n=5)
        assert [
            [(r.frame_id, r.score) for r in response.results]
            for response in batch.responses
        ] == [
            [(r.frame_id, r.score) for r in response.results]
            for response in legacy.responses
        ]

    def test_engine_submit_accepts_request(self, tiny_system):
        config = ServeConfig(num_workers=1, cache_size=16, max_wait_ms=1.0)
        text = "A red car driving in the center of the road"
        with ServingEngine(tiny_system, config) as engine:
            direct = engine.query(QueryRequest(text, QueryOptions(top_n=5)))
            with pytest.warns(DeprecationWarning):
                legacy = engine.query(text, top_n=5)
        assert [(r.frame_id, r.score) for r in direct.results] == [
            (r.frame_id, r.score) for r in legacy.results
        ]
        # The second call hit the cache: options and legacy kwarg share a key.
        assert legacy.metadata.get("cache_hit") is True


class TestHTTPRoundTrip:
    @pytest.fixture()
    def base_url(self, tiny_system):
        engine = ServingEngine(
            tiny_system, ServeConfig(num_workers=1, max_wait_ms=1.0, cache_size=0)
        ).start()
        server = make_server(engine, host="127.0.0.1", port=0)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        host, port = server.server_address[:2]
        try:
            yield f"http://{host}:{port}"
        finally:
            server.shutdown()
            server.server_close()
            engine.stop()

    def test_query_request_survives_http(self, base_url, tiny_system):
        request = QueryRequest(
            "A red car driving in the center of the road", QueryOptions(top_n=5)
        )
        http_request = urllib.request.Request(
            base_url + "/v1/query",
            data=json.dumps(request.to_dict()).encode("utf-8"),
            headers={"Content-Type": "application/json"},
        )
        with urllib.request.urlopen(http_request, timeout=30) as response:
            payload = json.load(response)
        direct = tiny_system.query(request)
        assert payload["query"] == request.text
        assert [(r["frame_id"], r["score"]) for r in payload["results"]] == [
            (r.frame_id, r.score) for r in direct.results
        ]
