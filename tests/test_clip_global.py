"""Tests for the global (whole-frame) encoder used by ZELDA and UMT."""

from __future__ import annotations

import numpy as np
import pytest

from repro.encoders.clip_global import GlobalFrameEncoder
from repro.encoders.concepts import ConceptSpace
from repro.encoders.text import TextEncoder
from repro.errors import EncodingError
from repro.utils.geometry import BoundingBox
from repro.video.model import Frame, ObjectAnnotation


@pytest.fixture(scope="module")
def space():
    return ConceptSpace(dim=64, seed=7)


def frame_with(objects, frame_id="v0/frame000000") -> Frame:
    return Frame(frame_id=frame_id, video_id="v0", index=0, timestamp=0.0, objects=tuple(objects))


def bus_annotation() -> ObjectAnnotation:
    return ObjectAnnotation(
        object_id="bus-1", category="bus", attributes={"color": "green"},
        context=("road",), activity=("driving",), box=BoundingBox(0.2, 0.3, 0.5, 0.35),
    )


def dog_annotation() -> ObjectAnnotation:
    return ObjectAnnotation(
        object_id="dog-1", category="dog", attributes={"color": "white"},
        context=("room",), activity=("sitting",), box=BoundingBox(0.45, 0.45, 0.06, 0.06),
    )


class TestGlobalFrameEncoder:
    def test_unit_norm_output(self, space):
        encoder = GlobalFrameEncoder(space, class_embedding_dim=32)
        vector = encoder.encode_frame(frame_with([bus_annotation()]))
        assert vector.shape == (32,)
        assert np.linalg.norm(vector) == pytest.approx(1.0)

    def test_invalid_dim(self, space):
        with pytest.raises(EncodingError):
            GlobalFrameEncoder(space, class_embedding_dim=0)

    def test_frame_matches_its_description(self, space):
        encoder = GlobalFrameEncoder(space, class_embedding_dim=32)
        text_encoder = TextEncoder(space, class_embedding_dim=32)
        bus_frame = encoder.encode_frame(frame_with([bus_annotation()]))
        dog_frame = encoder.encode_frame(frame_with([dog_annotation()], "v0/frame000001"))
        bus_query = text_encoder.encode_full("a green bus driving on the road")
        assert float(bus_query @ bus_frame) > float(bus_query @ dog_frame)

    def test_large_objects_dominate(self, space):
        encoder = GlobalFrameEncoder(space, class_embedding_dim=32, noise_scale=0.0)
        text_encoder = TextEncoder(space, class_embedding_dim=32)
        both = encoder.encode_frame(frame_with([bus_annotation(), dog_annotation()]))
        bus_query = text_encoder.encode_full("a green bus")
        dog_query = text_encoder.encode_full("a white dog")
        assert float(bus_query @ both) > float(dog_query @ both)

    def test_encode_frames_stacks(self, space):
        encoder = GlobalFrameEncoder(space, class_embedding_dim=32)
        frames = [frame_with([bus_annotation()]), frame_with([dog_annotation()], "v0/frame000001")]
        matrix = encoder.encode_frames(frames)
        assert matrix.shape == (2, 32)
        assert encoder.encode_frames([]).shape == (0, 32)

    def test_deterministic(self, space):
        encoder = GlobalFrameEncoder(space, class_embedding_dim=32)
        a = encoder.encode_frame(frame_with([bus_annotation()]))
        b = encoder.encode_frame(frame_with([bus_annotation()]))
        np.testing.assert_allclose(a, b)
