"""Tests for the synthetic stand-ins of the paper's evaluation datasets."""

from __future__ import annotations

import pytest

from repro.errors import VideoError
from repro.eval.workloads import build_ground_truth, queries_for_dataset
from repro.video.datasets import (
    dataset_names,
    make_activitynet_qa,
    make_beach,
    make_bellevue,
    make_cityscapes,
    make_dataset,
    make_qvhighlights,
)


class TestBuilders:
    def test_dataset_names_cover_all_builders(self):
        assert set(dataset_names()) == {
            "cityscapes", "bellevue", "qvhighlights", "beach", "activitynet"
        }

    def test_make_dataset_dispatch(self):
        dataset = make_dataset("beach", num_videos=1, frames_per_video=30)
        assert dataset.name == "beach"
        assert dataset.num_frames == 30

    def test_make_dataset_unknown_name(self):
        with pytest.raises(VideoError):
            make_dataset("kitti")

    def test_camera_regimes_match_paper(self):
        assert make_bellevue(1, 30).videos[0].camera == "fixed"
        assert make_beach(1, 30).videos[0].camera == "fixed"
        assert make_cityscapes(1, 30).videos[0].camera == "moving"
        assert make_qvhighlights(1, 30).videos[0].camera == "moving"

    def test_determinism_across_calls(self):
        first = make_bellevue(1, 60)
        second = make_bellevue(1, 60)
        assert [len(f.objects) for f in first.iter_frames()] == [
            len(f.objects) for f in second.iter_frames()
        ]

    def test_seed_changes_content(self):
        first = make_bellevue(1, 60, seed=0)
        second = make_bellevue(1, 60, seed=1)
        assert [len(f.objects) for f in first.iter_frames()] != [
            len(f.objects) for f in second.iter_frames()
        ]

    @pytest.mark.parametrize(
        "builder, expected_categories",
        [
            (make_bellevue, {"car", "bus"}),
            (make_beach, {"bus", "truck"}),
            (make_cityscapes, {"person"}),
            (make_qvhighlights, {"woman", "dog"}),
            (make_activitynet_qa, {"person"}),
        ],
    )
    def test_expected_categories_present(self, builder, expected_categories):
        dataset = builder(num_videos=2, frames_per_video=200)
        assert expected_categories <= set(dataset.categories())


class TestGroundTruthAvailability:
    """Every query of Table II / Table VI must have ground truth in its
    default dataset — otherwise the accuracy experiments are ill-posed."""

    @pytest.mark.parametrize("name", dataset_names())
    def test_default_datasets_contain_targets_for_all_queries(self, name):
        dataset = make_dataset(name)
        for spec in queries_for_dataset(name):
            ground_truth = build_ground_truth(dataset, spec)
            assert ground_truth, f"No ground truth for {spec.query_id} in {name}"

    def test_ground_truth_boxes_are_clipped(self):
        dataset = make_bellevue(num_videos=1, frames_per_video=120)
        for spec in queries_for_dataset("bellevue"):
            for instance in build_ground_truth(dataset, spec):
                for box in instance.boxes.values():
                    assert 0.0 <= box.x and box.x2 <= 1.0 + 1e-9
                    assert 0.0 <= box.y and box.y2 <= 1.0 + 1e-9
