"""A small least-recently-used cache.

Used by the batched text encoder to avoid re-parsing and re-embedding
repeated query strings: real workloads (and the Table II benchmark batches)
contain many duplicate or near-duplicate queries, so an LRU over the query
text makes the per-query encoding cost of a hot query effectively zero.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Generic, Hashable, Optional, TypeVar

K = TypeVar("K", bound=Hashable)
V = TypeVar("V")

_MISSING = object()


class LRUCache(Generic[K, V]):
    """A bounded mapping that evicts the least-recently-used entry.

    Both :meth:`get` and :meth:`put` refresh an entry's recency.  ``hits``
    and ``misses`` counters are exposed so callers (and tests) can verify
    cache effectiveness.
    """

    def __init__(self, maxsize: int = 1024) -> None:
        if maxsize <= 0:
            raise ValueError("LRUCache maxsize must be positive")
        self._maxsize = maxsize
        self._entries: "OrderedDict[K, V]" = OrderedDict()
        self.hits = 0
        self.misses = 0

    @property
    def maxsize(self) -> int:
        """Maximum number of entries retained."""
        return self._maxsize

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: K) -> bool:
        return key in self._entries

    def get(self, key: K, default: Optional[V] = None) -> Optional[V]:
        """Return the cached value (refreshing recency) or ``default``."""
        value = self._entries.get(key, _MISSING)
        if value is _MISSING:
            self.misses += 1
            return default
        self.hits += 1
        self._entries.move_to_end(key)
        return value  # type: ignore[return-value]

    def put(self, key: K, value: V) -> None:
        """Insert or refresh an entry, evicting the oldest when full."""
        if key in self._entries:
            self._entries.move_to_end(key)
        self._entries[key] = value
        if len(self._entries) > self._maxsize:
            self._entries.popitem(last=False)

    def clear(self) -> None:
        """Drop every entry and reset the hit/miss counters."""
        self._entries.clear()
        self.hits = 0
        self.misses = 0
