"""A small least-recently-used cache.

Used by the batched text encoder to avoid re-parsing and re-embedding
repeated query strings: real workloads (and the Table II benchmark batches)
contain many duplicate or near-duplicate queries, so an LRU over the query
text makes the per-query encoding cost of a hot query effectively zero.

The cache is thread-safe: the serving subsystem (:mod:`repro.serve`) answers
queries from a pool of worker threads that all share one text encoder, and an
unsynchronized ``OrderedDict`` corrupts its recency links under concurrent
``move_to_end``/``popitem`` calls.  Every public operation holds an internal
re-entrant lock, which subclasses (e.g. the TTL cache in
:mod:`repro.serve.cache`) may also acquire to make compound operations atomic.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Generic, Hashable, Optional, TypeVar

from repro.utils.locking import create_rlock

K = TypeVar("K", bound=Hashable)
V = TypeVar("V")

_MISSING = object()


class LRUCache(Generic[K, V]):
    """A bounded, thread-safe mapping that evicts the least-recently-used entry.

    Both :meth:`get` and :meth:`put` refresh an entry's recency.  ``hits``
    and ``misses`` counters are exposed so callers (and tests) can verify
    cache effectiveness.
    """

    def __init__(self, maxsize: int = 1024) -> None:
        if maxsize <= 0:
            raise ValueError("LRUCache maxsize must be positive")
        self._maxsize = maxsize
        self._entries: "OrderedDict[K, V]" = OrderedDict()
        self._lock = create_rlock("LRUCache._lock")
        self.hits = 0
        self.misses = 0

    @property
    def maxsize(self) -> int:
        """Maximum number of entries retained."""
        return self._maxsize

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: K) -> bool:
        with self._lock:
            return key in self._entries

    def get(self, key: K, default: Optional[V] = None) -> Optional[V]:
        """Return the cached value (refreshing recency) or ``default``."""
        with self._lock:
            value = self._entries.get(key, _MISSING)
            if value is _MISSING:
                self.misses += 1
                return default
            self.hits += 1
            self._entries.move_to_end(key)
            return value  # type: ignore[return-value]

    def put(self, key: K, value: V) -> None:
        """Insert or refresh an entry, evicting the oldest when full."""
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
            self._entries[key] = value
            if len(self._entries) > self._maxsize:
                self._entries.popitem(last=False)

    def pop(self, key: K, default: Optional[V] = None) -> Optional[V]:
        """Remove and return an entry without touching the hit/miss counters."""
        with self._lock:
            value = self._entries.pop(key, _MISSING)
            if value is _MISSING:
                return default
            return value  # type: ignore[return-value]

    def clear(self) -> None:
        """Drop every entry and reset the hit/miss counters."""
        with self._lock:
            self._entries.clear()
            self.hits = 0
            self.misses = 0
