"""Bounding boxes, IoU computation, and spatial-relation predicates.

The paper evaluates object matches with an IoU threshold of 0.5 (following
MSCOCO) and its complex queries include spatial relations such as "side by
side" or "in the center of the road".  This module provides the geometric
primitives used by the synthetic datasets, the localization heads, the
cross-modality rerank, and the evaluation metrics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np


@dataclass(frozen=True)
class BoundingBox:
    """Axis-aligned bounding box in normalised frame coordinates.

    Coordinates follow the ``(x, y, w, h)`` convention used in the paper's
    vector collection (§IV-D): ``(x, y)`` is the top-left corner and
    ``(w, h)`` the width and height.  All values are expressed as fractions of
    the frame, i.e. lie in ``[0, 1]`` for boxes fully inside the frame.
    """

    x: float
    y: float
    w: float
    h: float

    def __post_init__(self) -> None:
        if self.w < 0 or self.h < 0:
            raise ValueError(f"Box width/height must be non-negative, got {self}")

    @property
    def x2(self) -> float:
        """Right edge."""
        return self.x + self.w

    @property
    def y2(self) -> float:
        """Bottom edge."""
        return self.y + self.h

    @property
    def area(self) -> float:
        """Box area."""
        return self.w * self.h

    @property
    def center(self) -> tuple[float, float]:
        """Box centre ``(cx, cy)``."""
        return (self.x + self.w / 2.0, self.y + self.h / 2.0)

    def clipped(self) -> "BoundingBox":
        """Return a copy clipped to the unit frame ``[0, 1] x [0, 1]``."""
        x1 = min(max(self.x, 0.0), 1.0)
        y1 = min(max(self.y, 0.0), 1.0)
        x2 = min(max(self.x2, 0.0), 1.0)
        y2 = min(max(self.y2, 0.0), 1.0)
        return BoundingBox(x1, y1, max(x2 - x1, 0.0), max(y2 - y1, 0.0))

    def shifted(self, dx: float, dy: float) -> "BoundingBox":
        """Return a copy translated by ``(dx, dy)``."""
        return BoundingBox(self.x + dx, self.y + dy, self.w, self.h)

    def scaled(self, factor: float) -> "BoundingBox":
        """Return a copy scaled about its centre by ``factor``."""
        cx, cy = self.center
        new_w = self.w * factor
        new_h = self.h * factor
        return BoundingBox(cx - new_w / 2.0, cy - new_h / 2.0, new_w, new_h)

    def intersection(self, other: "BoundingBox") -> float:
        """Intersection area with ``other``."""
        ix = max(0.0, min(self.x2, other.x2) - max(self.x, other.x))
        iy = max(0.0, min(self.y2, other.y2) - max(self.y, other.y))
        return ix * iy

    def iou(self, other: "BoundingBox") -> float:
        """Intersection-over-union with ``other``."""
        return iou(self, other)

    def overlap_fraction(self, other: "BoundingBox") -> float:
        """Fraction of *this* box covered by ``other``."""
        if self.area <= 0.0:
            return 0.0
        return self.intersection(other) / self.area

    def contains_point(self, px: float, py: float) -> bool:
        """Whether ``(px, py)`` lies inside the box (inclusive)."""
        return self.x <= px <= self.x2 and self.y <= py <= self.y2

    def to_array(self) -> np.ndarray:
        """Return ``[x, y, w, h]`` as a float64 array."""
        return np.array([self.x, self.y, self.w, self.h], dtype=np.float64)

    @classmethod
    def from_array(cls, values: Sequence[float]) -> "BoundingBox":
        """Build a box from any length-4 sequence ``[x, y, w, h]``."""
        if len(values) != 4:
            raise ValueError(f"Expected 4 values, got {len(values)}")
        return cls(float(values[0]), float(values[1]), float(values[2]), float(values[3]))

    @classmethod
    def from_center(cls, cx: float, cy: float, w: float, h: float) -> "BoundingBox":
        """Build a box from its centre point and size."""
        return cls(cx - w / 2.0, cy - h / 2.0, w, h)


def iou(a: BoundingBox, b: BoundingBox) -> float:
    """IoU between two boxes; 0 when either box is degenerate."""
    inter = a.intersection(b)
    union = a.area + b.area - inter
    if union <= 0.0:
        return 0.0
    return inter / union


def iou_matrix(boxes_a: Sequence[BoundingBox], boxes_b: Sequence[BoundingBox]) -> np.ndarray:
    """Pairwise IoU matrix with shape ``(len(boxes_a), len(boxes_b))``."""
    matrix = np.zeros((len(boxes_a), len(boxes_b)), dtype=np.float64)
    for i, box_a in enumerate(boxes_a):
        for j, box_b in enumerate(boxes_b):
            matrix[i, j] = iou(box_a, box_b)
    return matrix


def pairwise_center_distance(boxes: Sequence[BoundingBox]) -> np.ndarray:
    """Pairwise Euclidean distance between box centres."""
    centers = np.array([box.center for box in boxes], dtype=np.float64)
    if centers.size == 0:
        return np.zeros((0, 0), dtype=np.float64)
    deltas = centers[:, None, :] - centers[None, :, :]
    return np.sqrt((deltas ** 2).sum(axis=-1))


def boxes_side_by_side(
    a: BoundingBox,
    b: BoundingBox,
    max_center_gap: float = 0.25,
    max_vertical_offset: float = 0.08,
) -> bool:
    """Spatial predicate for the "side by side" relation used in Q2.2.

    Two boxes are side by side when their vertical centres are close, they do
    not substantially overlap, and their horizontal separation is small.
    """
    (ax, ay), (bx, by) = a.center, b.center
    if iou(a, b) > 0.3:
        return False
    if abs(ay - by) > max_vertical_offset:
        return False
    return abs(ax - bx) <= max_center_gap


def box_in_center_region(box: BoundingBox, margin: float = 0.25) -> bool:
    """Spatial predicate for "in the center of the road / frame"."""
    cx, cy = box.center
    return (margin <= cx <= 1.0 - margin) and (margin <= cy <= 1.0 - margin)


def box_next_to(a: BoundingBox, b: BoundingBox, max_gap: float = 0.15) -> bool:
    """Spatial predicate for "next to" — centres within ``max_gap``."""
    (ax, ay), (bx, by) = a.center, b.center
    return float(np.hypot(ax - bx, ay - by)) <= max_gap + (a.w + b.w) / 4.0


def box_inside(inner: BoundingBox, outer: BoundingBox, min_overlap: float = 0.7) -> bool:
    """Spatial predicate for containment ("inside a car")."""
    return inner.overlap_fraction(outer) >= min_overlap


def clip_unit(value: float) -> float:
    """Clamp a scalar to ``[0, 1]``."""
    return min(max(value, 0.0), 1.0)


def merge_boxes(boxes: Iterable[BoundingBox]) -> BoundingBox:
    """Smallest box enclosing all ``boxes``; raises on an empty iterable."""
    materialised = list(boxes)
    if not materialised:
        raise ValueError("Cannot merge an empty collection of boxes")
    x1 = min(box.x for box in materialised)
    y1 = min(box.y for box in materialised)
    x2 = max(box.x2 for box in materialised)
    y2 = max(box.y2 for box in materialised)
    return BoundingBox(x1, y1, x2 - x1, y2 - y1)
