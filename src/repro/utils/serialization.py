"""Lightweight persistence helpers for indexes and collections.

The vector database supports saving and loading built indexes so that the
"one-time feature extraction" story of the paper carries through: a dataset is
summarised and indexed once, persisted, and served for any number of queries.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Mapping

import numpy as np


def save_json(path: str | Path, payload: Mapping[str, Any]) -> None:
    """Write ``payload`` to ``path`` as UTF-8 JSON, creating parent dirs."""
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    with target.open("w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True, default=_json_default)


def load_json(path: str | Path) -> Dict[str, Any]:
    """Load a JSON document written by :func:`save_json`."""
    with Path(path).open("r", encoding="utf-8") as handle:
        return json.load(handle)


def save_arrays(path: str | Path, arrays: Mapping[str, np.ndarray]) -> None:
    """Save named arrays to a compressed ``.npz`` archive."""
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    np.savez_compressed(target, **{name: np.asarray(value) for name, value in arrays.items()})


def load_arrays(path: str | Path) -> Dict[str, np.ndarray]:
    """Load all arrays from a ``.npz`` archive into a plain dict."""
    with np.load(Path(path), allow_pickle=False) as archive:
        return {name: archive[name] for name in archive.files}


def _json_default(value: Any) -> Any:
    """JSON serialiser for NumPy scalars and arrays."""
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        return float(value)
    if isinstance(value, np.ndarray):
        return value.tolist()
    raise TypeError(f"Object of type {type(value)!r} is not JSON serialisable")
