"""The canonical JSON / ``.npz`` codec used by snapshot persistence.

Four small helpers — :func:`save_json` / :func:`load_json` for structured
documents and :func:`save_arrays` / :func:`load_arrays` for named NumPy array
payloads.  The :mod:`repro.persist` subsystem is the single consumer: every
snapshot artifact on disk is written and read through these functions, so
there is exactly one place defining how the reproduction serialises data
(UTF-8 JSON with sorted keys; compressed ``.npz`` with ``allow_pickle``
disabled).
"""

from __future__ import annotations

import json
import zipfile
from pathlib import Path
from typing import Any, Dict, Mapping

import numpy as np

from repro.errors import PersistenceError, SnapshotCorruptionError


def save_json(path: str | Path, payload: Mapping[str, Any]) -> None:
    """Write ``payload`` to ``path`` as UTF-8 JSON, creating parent dirs.

    Write failures (permissions, disk full) raise
    :class:`~repro.errors.PersistenceError`, mirroring the load side.
    """
    target = Path(path)
    try:
        target.parent.mkdir(parents=True, exist_ok=True)
        with target.open("w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True, default=_json_default)
    except OSError as error:
        raise PersistenceError(f"Cannot write snapshot artifact {target}: {error}") from error


def load_json(path: str | Path) -> Dict[str, Any]:
    """Load a JSON document written by :func:`save_json`.

    Raises :class:`~repro.errors.PersistenceError` when the file is missing
    or unreadable and :class:`~repro.errors.SnapshotCorruptionError` when it
    is not valid JSON, so every persistence layer surfaces the typed error
    hierarchy rather than bare ``IOError``/``ValueError``.
    """
    target = Path(path)
    try:
        with target.open("r", encoding="utf-8") as handle:
            return json.load(handle)
    except FileNotFoundError as error:
        raise PersistenceError(f"Snapshot artifact {target} is missing") from error
    except OSError as error:
        raise PersistenceError(f"Cannot read snapshot artifact {target}: {error}") from error
    except json.JSONDecodeError as error:
        raise SnapshotCorruptionError(
            f"Snapshot artifact {target} is not valid JSON"
        ) from error


def save_arrays(path: str | Path, arrays: Mapping[str, np.ndarray]) -> None:
    """Save named arrays to a compressed ``.npz`` archive.

    Write failures raise :class:`~repro.errors.PersistenceError`, mirroring
    the load side.
    """
    target = Path(path)
    try:
        target.parent.mkdir(parents=True, exist_ok=True)
        np.savez_compressed(
            target, **{name: np.asarray(value) for name, value in arrays.items()}
        )
    except OSError as error:
        raise PersistenceError(f"Cannot write snapshot artifact {target}: {error}") from error


def load_arrays(path: str | Path) -> Dict[str, np.ndarray]:
    """Load all arrays from a ``.npz`` archive into a plain dict.

    Missing/unreadable files raise
    :class:`~repro.errors.PersistenceError`; structurally damaged archives
    raise :class:`~repro.errors.SnapshotCorruptionError`.
    """
    target = Path(path)
    try:
        with np.load(target, allow_pickle=False) as archive:
            return {name: archive[name] for name in archive.files}
    except FileNotFoundError as error:
        raise PersistenceError(f"Snapshot artifact {target} is missing") from error
    except OSError as error:
        raise PersistenceError(f"Cannot read snapshot artifact {target}: {error}") from error
    except (ValueError, zipfile.BadZipFile) as error:
        raise SnapshotCorruptionError(
            f"Snapshot artifact {target} is not a valid array archive"
        ) from error


def _json_default(value: Any) -> Any:
    """JSON serialiser for NumPy scalars and arrays."""
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        return float(value)
    if isinstance(value, np.ndarray):
        return value.tolist()
    raise TypeError(f"Object of type {type(value)!r} is not JSON serialisable")
