"""Lockdep-style runtime lock-order sanitizer.

Production-grade threaded Python needs machine-checked locking invariants,
not reviewer vigilance.  This module provides the runtime half of that
correctness layer (the static half is :mod:`repro.analysis`):

* :func:`create_lock` / :func:`create_rlock` / :func:`create_condition` are
  drop-in factories for ``threading.Lock`` / ``RLock`` / ``Condition``.  In
  normal operation they return the plain stdlib primitive — zero overhead.
  When lockdep is enabled (``REPRO_LOCKDEP=1`` in the environment, or
  :func:`instrument_locks` programmatically) they return :class:`OrderedLock`
  / :class:`OrderedRLock` wrappers that feed a **global lock-order graph**.
* Every lock carries a *name* — its lock class, e.g. ``"LRUCache._lock"``.
  Like the kernel's lockdep, ordering is tracked per lock class, not per
  instance: when a thread acquires lock ``B`` while holding lock ``A``, the
  edge ``A → B`` is recorded (with the acquiring stack frame).  An acquisition
  that would close a cycle in the graph raises :class:`LockOrderViolation`
  **before blocking on the lock**, so a latent ABBA deadlock surfaces as a
  deterministic exception with both acquisition sites instead of a hung
  process.
* Each fully released lock is checked against a hold-time budget
  (``REPRO_LOCKDEP_BUDGET_MS``, default 1000 ms); overruns are recorded in
  ``lockdep.hold_violations`` and emitted as :class:`LockHeldTooLong`
  warnings — a lock held that long over this codebase's critical sections is
  almost certainly covering a blocking call.

Conventions baked into the checker:

* Re-entrant acquisition of the *same instance* (``RLock``) records no edge.
* Acquiring another **instance of the same lock class** records no edge
  either (the analogue of lockdep's nesting annotations); genuinely layered
  same-class locks should be given distinct names.
* Acquiring a non-reentrant :class:`OrderedLock` the thread already holds
  raises immediately (it would self-deadlock).
* ``Condition.wait`` fully releases the tracked lock, so the wait itself
  never holds an edge open.
"""

from __future__ import annotations

import os
import threading
import time
import traceback
import warnings
from typing import Dict, List, Optional, Tuple


class LockOrderViolation(RuntimeError):
    """An acquisition would create a cycle in the global lock-order graph."""


class LockHeldTooLong(UserWarning):
    """A lock was held longer than the configured lockdep budget."""


def _env_enabled() -> bool:
    return os.environ.get("REPRO_LOCKDEP", "").strip() in {"1", "true", "yes", "on"}


def _env_budget_seconds() -> float:
    raw = os.environ.get("REPRO_LOCKDEP_BUDGET_MS", "").strip()
    if not raw:
        return 1.0
    try:
        return max(float(raw), 0.0) / 1000.0
    except ValueError:
        return 1.0


def _call_site(skip: int = 3) -> str:
    """``file:line in func`` of the frame that acquired the lock."""
    stack = traceback.extract_stack()
    # Walk outward past this module's own frames.
    for frame in reversed(stack[:-skip + 1] if skip else stack):
        if not frame.filename.endswith("locking.py"):
            return f"{frame.filename}:{frame.lineno} in {frame.name}"
    return "<unknown>"


class _Held:
    """One entry of a thread's held-lock stack."""

    __slots__ = ("lock", "name", "acquired_at", "site", "depth")

    def __init__(self, lock: object, name: str, site: str) -> None:
        self.lock = lock
        self.name = name
        self.acquired_at = time.perf_counter()
        self.site = site
        self.depth = 1


class LockDep:
    """Global lockdep state: the order graph, held stacks, and violations."""

    def __init__(self) -> None:
        self._graph_lock = threading.Lock()
        # name -> {successor name -> first-seen acquisition site}
        self._edges: Dict[str, Dict[str, str]] = {}
        self._tls = threading.local()
        self.hold_violations: List[Dict[str, object]] = []
        self.budget_seconds = _env_budget_seconds()

    # ------------------------------------------------------------- inspection

    def edges(self) -> Dict[str, Dict[str, str]]:
        """A copy of the observed lock-order graph (name → successors)."""
        with self._graph_lock:
            return {name: dict(successors) for name, successors in self._edges.items()}

    def held_names(self) -> List[str]:
        """Names of the locks the calling thread currently holds."""
        return [record.name for record in self._held_stack()]

    def reset(self) -> None:
        """Drop the order graph and violation log (test isolation)."""
        with self._graph_lock:
            self._edges.clear()
            self.hold_violations.clear()

    # ------------------------------------------------------------- bookkeeping

    def _held_stack(self) -> List[_Held]:
        stack = getattr(self._tls, "stack", None)
        if stack is None:
            stack = self._tls.stack = []
        return stack

    def _find(self, lock: object) -> Optional[_Held]:
        for record in self._held_stack():
            if record.lock is lock:
                return record
        return None

    def _reaches(self, start: str, goal: str) -> Optional[List[str]]:
        """A path ``start → … → goal`` in the edge graph, if one exists."""
        seen = {start}
        frontier: List[Tuple[str, List[str]]] = [(start, [start])]
        while frontier:
            node, path = frontier.pop()
            for successor in self._edges.get(node, ()):
                if successor == goal:
                    return path + [successor]
                if successor not in seen:
                    seen.add(successor)
                    frontier.append((successor, path + [successor]))
        return None

    def before_acquire(self, lock: object, name: str, reentrant: bool) -> Optional[_Held]:
        """Order-check an acquisition; called *before* blocking on the lock.

        Returns the existing held record for a re-entrant re-acquisition
        (``None`` for a first acquisition).  Raises
        :class:`LockOrderViolation` when the thread already holds a
        non-reentrant lock it is re-acquiring, or when the new ``held → name``
        edge would close a cycle in the global graph.
        """
        existing = self._find(lock)
        if existing is not None:
            if not reentrant:
                raise LockOrderViolation(
                    f"Self-deadlock: thread {threading.current_thread().name!r} "
                    f"re-acquired non-reentrant lock {name!r} it already holds "
                    f"(first acquired at {existing.site})"
                )
            return existing
        site = _call_site()
        held = [record for record in self._held_stack() if record.name != name]
        if held:
            with self._graph_lock:
                for record in held:
                    successors = self._edges.setdefault(record.name, {})
                    if name in successors:
                        continue
                    cycle = self._reaches(name, record.name)
                    if cycle is not None:
                        order = " -> ".join(cycle + [name])
                        known = self._edges.get(cycle[0], {}).get(cycle[1], "<unknown>")
                        raise LockOrderViolation(
                            f"Lock-order inversion: acquiring {name!r} while holding "
                            f"{record.name!r} (held since {record.site}) inverts the "
                            f"established order {order} (first seen at {known}); "
                            f"this is a potential ABBA deadlock"
                        )
                    successors[name] = site
        return None

    def after_acquire(self, lock: object, name: str) -> None:
        """Push the newly acquired lock onto the thread's held stack."""
        self._held_stack().append(_Held(lock, name, _call_site()))

    def on_release(self, lock: object, name: str) -> None:
        """Pop (or decrement) the held record; budget-check full releases."""
        stack = self._held_stack()
        for index in range(len(stack) - 1, -1, -1):
            record = stack[index]
            if record.lock is lock:
                record.depth -= 1
                if record.depth == 0:
                    del stack[index]
                    self._check_budget(record)
                return

    def _check_budget(self, record: _Held) -> None:
        if self.budget_seconds <= 0:
            return
        held_for = time.perf_counter() - record.acquired_at
        if held_for <= self.budget_seconds:
            return
        violation = {
            "name": record.name,
            "held_seconds": held_for,
            "budget_seconds": self.budget_seconds,
            "site": record.site,
            "thread": threading.current_thread().name,
        }
        self.hold_violations.append(violation)
        warnings.warn(
            f"Lock {record.name!r} held for {held_for * 1000.0:.1f} ms "
            f"(budget {self.budget_seconds * 1000.0:.1f} ms), acquired at "
            f"{record.site}",
            LockHeldTooLong,
            stacklevel=3,
        )

    # ----------------------------------------------------- condition support

    def suspend(self, lock: object) -> Optional[_Held]:
        """Remove a held record wholesale (``Condition.wait`` releasing)."""
        stack = self._held_stack()
        for index in range(len(stack) - 1, -1, -1):
            if stack[index].lock is lock:
                record = stack[index]
                del stack[index]
                self._check_budget(record)
                return record
        return None

    def resume(self, record: Optional[_Held]) -> None:
        """Re-install a suspended record after ``Condition.wait`` re-acquires."""
        if record is None:
            return
        record.acquired_at = time.perf_counter()
        self._held_stack().append(record)


#: The process-global lockdep state shared by every tracked lock.
lockdep = LockDep()


class OrderedLock:
    """A named, lockdep-tracked, non-reentrant mutual-exclusion lock."""

    _REENTRANT = False

    def __init__(self, name: str) -> None:
        self.name = name
        self._inner = self._make_inner()

    @staticmethod
    def _make_inner():
        return threading.Lock()

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        reentry = lockdep.before_acquire(self, self.name, self._REENTRANT)
        acquired = self._inner.acquire(blocking, timeout)
        if acquired:
            if reentry is not None:
                reentry.depth += 1
            else:
                lockdep.after_acquire(self, self.name)
        return acquired

    def release(self) -> None:
        lockdep.on_release(self, self.name)
        self._inner.release()

    def locked(self) -> bool:
        """Whether any thread currently holds the lock."""
        return self._inner.locked()

    def __enter__(self) -> "OrderedLock":
        self.acquire()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.release()

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name!r}>"


class OrderedRLock(OrderedLock):
    """A named, lockdep-tracked re-entrant lock, usable under ``Condition``."""

    _REENTRANT = True

    @staticmethod
    def _make_inner():
        return threading.RLock()

    # ``threading.Condition`` drives its lock through this private protocol
    # when available; delegating keeps wait/notify semantics exact while the
    # held-stack is suspended for the duration of the wait.
    def _release_save(self):
        record = lockdep.suspend(self)
        return (self._inner._release_save(), record)

    def _acquire_restore(self, state) -> None:
        inner_state, record = state
        self._inner._acquire_restore(inner_state)
        lockdep.resume(record)

    def _is_owned(self) -> bool:
        return self._inner._is_owned()


_FORCED: Optional[bool] = None


def instrument_locks(enabled: Optional[bool] = True) -> bool:
    """Force lockdep on/off for locks created afterwards; ``None`` restores
    the ``REPRO_LOCKDEP`` environment default.  Returns the effective state.
    """
    global _FORCED
    _FORCED = enabled
    return lockdep_enabled()


def lockdep_enabled() -> bool:
    """Whether the lock factories currently produce tracked locks."""
    if _FORCED is not None:
        return _FORCED
    return _env_enabled()


def create_lock(name: str) -> "threading.Lock | OrderedLock":
    """A mutex for the given lock class; tracked under lockdep."""
    if lockdep_enabled():
        return OrderedLock(name)
    return threading.Lock()


def create_rlock(name: str) -> "threading.RLock | OrderedRLock":
    """A re-entrant lock for the given lock class; tracked under lockdep."""
    if lockdep_enabled():
        return OrderedRLock(name)
    return threading.RLock()


def create_condition(name: str) -> threading.Condition:
    """A condition variable whose underlying lock is tracked under lockdep."""
    if lockdep_enabled():
        return threading.Condition(OrderedRLock(name))
    return threading.Condition()


__all__ = [
    "LockDep",
    "LockHeldTooLong",
    "LockOrderViolation",
    "OrderedLock",
    "OrderedRLock",
    "create_condition",
    "create_lock",
    "create_rlock",
    "instrument_locks",
    "lockdep",
    "lockdep_enabled",
]
