"""Wall-clock timing helpers used to report the paper's latency breakdowns.

The paper splits LOVO's execution time into *video processing*, *indexing +
fast search*, and *cross-modality rerank* phases (Fig. 9) and reports search
versus total time for every system (Fig. 8, Table III).  :class:`PhaseTimer`
accumulates named phases so the benchmark harness can regenerate exactly those
breakdowns.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator

from repro.utils.locking import create_lock


@dataclass
class Stopwatch:
    """A restartable stopwatch measuring elapsed wall-clock seconds."""

    _start: float | None = None
    _elapsed: float = 0.0

    def start(self) -> "Stopwatch":
        """Start (or restart) the stopwatch."""
        self._start = time.perf_counter()
        return self

    def stop(self) -> float:
        """Stop the stopwatch and return the accumulated elapsed time."""
        if self._start is not None:
            self._elapsed += time.perf_counter() - self._start
            self._start = None
        return self._elapsed

    def reset(self) -> None:
        """Reset the accumulated time and stop."""
        self._start = None
        self._elapsed = 0.0

    @property
    def elapsed(self) -> float:
        """Elapsed seconds so far (including a running interval)."""
        running = 0.0
        if self._start is not None:
            running = time.perf_counter() - self._start
        return self._elapsed + running


@dataclass
class PhaseTimer:
    """Accumulates wall-clock time per named phase.

    The timer is thread-safe: a LOVO system shared by the serving worker pool
    folds per-query timings into one accumulator from many threads at once,
    and the unsynchronized read-modify-write of :meth:`add` would silently
    lose updates.  All mutating and aggregating methods hold an internal lock;
    the ``totals``/``counts`` dicts stay public for direct (point-in-time)
    reads.

    Example:
        >>> timer = PhaseTimer()
        >>> with timer.phase("fast_search"):
        ...     pass
        >>> "fast_search" in timer.totals
        True
    """

    totals: Dict[str, float] = field(default_factory=dict)
    counts: Dict[str, int] = field(default_factory=dict)
    _lock: threading.Lock = field(
        default_factory=lambda: create_lock("PhaseTimer._lock"), repr=False, compare=False
    )

    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        """Context manager timing one occurrence of phase ``name``."""
        start = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - start
            self.add(name, elapsed)

    def add(self, name: str, seconds: float) -> None:
        """Add ``seconds`` to phase ``name`` explicitly (thread-safe)."""
        with self._lock:
            self.totals[name] = self.totals.get(name, 0.0) + seconds
            self.counts[name] = self.counts.get(name, 0) + 1

    def total(self, *names: str) -> float:
        """Sum of the given phases; all phases when none are given."""
        with self._lock:
            if not names:
                return sum(self.totals.values())
            return sum(self.totals.get(name, 0.0) for name in names)

    def mean(self, name: str) -> float:
        """Average duration of a phase across its occurrences."""
        with self._lock:
            count = self.counts.get(name, 0)
            if count == 0:
                return 0.0
            return self.totals[name] / count

    def merge(self, other: "PhaseTimer") -> None:
        """Fold another timer's totals into this one."""
        # Snapshot the other timer first (dict copies are atomic under the
        # GIL) so two timers merging into each other cannot deadlock.
        other_totals, other_counts = dict(other.totals), dict(other.counts)
        with self._lock:
            for name, seconds in other_totals.items():
                self.totals[name] = self.totals.get(name, 0.0) + seconds
                self.counts[name] = self.counts.get(name, 0) + other_counts.get(name, 0)

    def as_dict(self) -> Dict[str, float]:
        """A copy of the per-phase totals."""
        with self._lock:
            return dict(self.totals)

    def reset(self) -> None:
        """Drop all recorded phases."""
        with self._lock:
            self.totals.clear()
            self.counts.clear()
