"""Deterministic random-number helpers.

Everything in the reproduction must be deterministic given a seed, including
the "pretrained" encoder weights, the synthetic video generators, and the
quantizer training.  The helpers here derive independent :class:`numpy.random.
Generator` streams from string tokens so that, e.g., the concept vector for
``"red"`` never depends on how many other concepts were created before it.
"""

from __future__ import annotations

import hashlib
from typing import Iterable

import numpy as np


def derive_seed(*tokens: object, base_seed: int = 0) -> int:
    """Derive a stable 63-bit seed from arbitrary tokens.

    The derivation uses SHA-256 over the repr of the tokens, so it is stable
    across processes and Python hash randomisation.

    Args:
        *tokens: Any objects with a stable ``str`` representation.
        base_seed: Extra seed mixed into the digest, allowing whole experiment
            families to be re-seeded at once.

    Returns:
        A non-negative integer suitable for :class:`numpy.random.default_rng`.
    """
    payload = "\x1f".join([str(base_seed)] + [str(token) for token in tokens])
    digest = hashlib.sha256(payload.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "little") & 0x7FFF_FFFF_FFFF_FFFF


def rng_from_tokens(*tokens: object, base_seed: int = 0) -> np.random.Generator:
    """Create an independent generator keyed by ``tokens`` and ``base_seed``."""
    return np.random.default_rng(derive_seed(*tokens, base_seed=base_seed))


def stable_shuffle(items: Iterable[object], *tokens: object, base_seed: int = 0) -> list:
    """Return ``items`` shuffled deterministically by a token-derived stream."""
    materialised = list(items)
    rng = rng_from_tokens("shuffle", *tokens, base_seed=base_seed)
    order = rng.permutation(len(materialised))
    return [materialised[index] for index in order]
