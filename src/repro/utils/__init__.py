"""Shared utilities: geometry, deterministic RNG, timing, caching, serialization."""

from repro.utils.cache import LRUCache
from repro.utils.geometry import BoundingBox, iou, iou_matrix, pairwise_center_distance
from repro.utils.rng import derive_seed, rng_from_tokens
from repro.utils.serialization import load_arrays, load_json, save_arrays, save_json
from repro.utils.timing import PhaseTimer, Stopwatch

__all__ = [
    "LRUCache",
    "BoundingBox",
    "iou",
    "iou_matrix",
    "pairwise_center_distance",
    "derive_seed",
    "rng_from_tokens",
    "PhaseTimer",
    "Stopwatch",
    "save_json",
    "load_json",
    "save_arrays",
    "load_arrays",
]
