"""Configuration dataclasses for every LOVO subsystem.

The defaults mirror the paper's setup where it is specified (ViT-B/32 style
embedding dimensionality, IoU threshold 0.5, top-``k`` fast search followed by
top-``n`` rerank) and otherwise pick values that keep the pure-Python
reproduction tractable while preserving the system's behaviour.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Any, Dict, Mapping

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class EncoderConfig:
    """Configuration of the simulated decoupled encoders (paper §IV).

    Attributes:
        embedding_dim: Dimensionality ``D`` of the patch/backbone embeddings
            (the paper uses ViT-B/32 with ``D = 768``; the default is smaller
            to keep the reproduction fast while preserving behaviour).
        class_embedding_dim: Dimensionality ``D'`` of the projected class
            embeddings stored in the vector database (paper §IV-C).
        patch_grid: Number of patches per frame side; a frame yields
            ``patch_grid ** 2`` patch tokens.
        noise_scale: Standard deviation of the isotropic noise added to every
            visual embedding, modelling encoder imperfection.
        background_weight: Relative weight of the background/context concept
            mixed into each patch embedding.
        seed: Base seed for all "pretrained" weights and concept vectors.
    """

    embedding_dim: int = 128
    class_embedding_dim: int = 64
    patch_grid: int = 8
    noise_scale: float = 0.08
    background_weight: float = 0.35
    seed: int = 7

    def __post_init__(self) -> None:
        if self.embedding_dim <= 0 or self.class_embedding_dim <= 0:
            raise ConfigurationError("Embedding dimensions must be positive")
        if self.class_embedding_dim > self.embedding_dim:
            raise ConfigurationError(
                "class_embedding_dim (D') must not exceed embedding_dim (D)"
            )
        if self.patch_grid <= 0:
            raise ConfigurationError("patch_grid must be positive")
        if self.noise_scale < 0:
            raise ConfigurationError("noise_scale must be non-negative")


@dataclass(frozen=True)
class KeyframeConfig:
    """Configuration of key-frame extraction (paper §IV-A).

    Attributes:
        strategy: One of ``"mvmed"``, ``"uniform"``, ``"content"`` or
            ``"all"`` (the w/o-key-frame ablation keeps every frame).
        uniform_stride: Frame stride for the uniform strategy.
        motion_threshold: Relative change of aggregate motion magnitude that
            marks a key frame for the MVmed strategy.
        content_threshold: Mean absolute pixel difference that marks a key
            frame for the content strategy.
        min_gap: Minimum number of frames between two key frames.
    """

    strategy: str = "mvmed"
    uniform_stride: int = 10
    motion_threshold: float = 0.3
    content_threshold: float = 0.06
    min_gap: int = 3

    def __post_init__(self) -> None:
        allowed = {"mvmed", "uniform", "content", "all"}
        if self.strategy not in allowed:
            raise ConfigurationError(f"Unknown keyframe strategy {self.strategy!r}; expected one of {sorted(allowed)}")
        if self.uniform_stride <= 0 or self.min_gap < 0:
            raise ConfigurationError("uniform_stride must be positive and min_gap non-negative")


@dataclass(frozen=True)
class IndexConfig:
    """Configuration of the vector-database index (paper §V).

    Attributes:
        index_type: ``"ivfpq"`` (the paper's inverted multi-index with product
            quantization), ``"flat"`` (brute force) or ``"hnsw"``.
        num_subspaces: Number of PQ subspaces ``P``; must divide the class
            embedding dimensionality.
        num_centroids: Number of centroids ``M`` per subspace codebook.
        num_coarse_clusters: Number of inverted-list (coarse) clusters.
        nprobe: Number of coarse clusters ``A`` visited per query.
        kmeans_iterations: Lloyd iterations used when training codebooks.
        hnsw_m: Out-degree of HNSW graph nodes.
        hnsw_ef_construction: Candidate-list size used while building HNSW.
        hnsw_ef_search: Candidate-list size used while searching HNSW.
    """

    index_type: str = "ivfpq"
    num_subspaces: int = 8
    num_centroids: int = 32
    num_coarse_clusters: int = 16
    nprobe: int = 4
    kmeans_iterations: int = 12
    hnsw_m: int = 12
    hnsw_ef_construction: int = 64
    hnsw_ef_search: int = 48

    def __post_init__(self) -> None:
        if self.index_type not in {"ivfpq", "flat", "hnsw"}:
            raise ConfigurationError(f"Unknown index_type {self.index_type!r}")
        if self.num_subspaces <= 0 or self.num_centroids <= 1:
            raise ConfigurationError("num_subspaces must be > 0 and num_centroids > 1")
        if self.num_coarse_clusters <= 0 or self.nprobe <= 0:
            raise ConfigurationError("num_coarse_clusters and nprobe must be positive")
        if self.nprobe > self.num_coarse_clusters:
            raise ConfigurationError("nprobe cannot exceed num_coarse_clusters")


@dataclass(frozen=True)
class QueryConfig:
    """Configuration of the two-stage query strategy (paper §VI).

    Attributes:
        fast_search_k: Number of patch vectors retrieved by the ANN fast
            search (the ``k`` of Algorithm 1).
        max_candidate_frames: Upper bound on the number of distinct candidate
            key frames passed to the rerank stage; keeps rerank cost bounded
            independently of dataset size (paper §VII-D).
        rerank_n: Number of frames returned after the cross-modality rerank.
        rerank_enabled: Disable to reproduce the "w/o Rerank" ablation.
        ann_enabled: Disable to reproduce the "w/o ANNS" ablation (exhaustive
            search over the collection).
        iou_threshold: IoU above which a retrieved box counts as a positive
            match (0.5 per MSCOCO convention used in the paper).
    """

    fast_search_k: int = 256
    max_candidate_frames: int = 60
    rerank_n: int = 40
    rerank_enabled: bool = True
    ann_enabled: bool = True
    iou_threshold: float = 0.5

    def __post_init__(self) -> None:
        if self.fast_search_k <= 0 or self.rerank_n <= 0:
            raise ConfigurationError("fast_search_k and rerank_n must be positive")
        if self.max_candidate_frames <= 0:
            raise ConfigurationError("max_candidate_frames must be positive")
        if not 0.0 < self.iou_threshold < 1.0:
            raise ConfigurationError("iou_threshold must lie strictly between 0 and 1")


@dataclass(frozen=True)
class ShardConfig:
    """Configuration of the sharded scatter-gather layer (:mod:`repro.shard`).

    Attributes:
        num_shards: Number of partitions the vector collections are split
            into.  ``1`` keeps the classic single-database layout (the
            sharded code path is bypassed entirely).
        partitioner: ``"hash"`` routes each entity by a stable hash of its
            external id; ``"kmeans"`` clusters the vectors themselves so
            neighbouring vectors land on the same shard.
        num_replicas: In-process replicas registered per shard.  Replicas
            share the primary's data but carry independent health state, so
            the router can exercise round-robin routing and failover; use
            ``ShardedDatabase.add_replica`` to attach physically distinct
            backends (e.g. separately loaded snapshot copies).
        max_parallel: Worker threads used to fan searches (and snapshot
            loads) out across shards.  ``0`` means "one thread per shard".
        partition_seed: Seed of the k-means partitioner (ignored by hash).
        partition_iterations: Lloyd iterations of the k-means partitioner.
    """

    num_shards: int = 1
    partitioner: str = "hash"
    num_replicas: int = 1
    max_parallel: int = 0
    partition_seed: int = 11
    partition_iterations: int = 8

    def __post_init__(self) -> None:
        if self.num_shards <= 0:
            raise ConfigurationError("num_shards must be positive")
        if self.partitioner not in {"hash", "kmeans"}:
            raise ConfigurationError(
                f"Unknown partitioner {self.partitioner!r}; expected 'hash' or 'kmeans'"
            )
        if self.num_replicas <= 0:
            raise ConfigurationError("num_replicas must be positive")
        if self.max_parallel < 0:
            raise ConfigurationError("max_parallel must be non-negative (0 = one per shard)")
        if self.partition_iterations <= 0:
            raise ConfigurationError("partition_iterations must be positive")


@dataclass(frozen=True)
class ServeConfig:
    """Configuration of the concurrent query-serving subsystem (:mod:`repro.serve`).

    Attributes:
        num_workers: Worker threads pulling micro-batches off the admission
            queue.  Each worker answers one coalesced ``query_batch`` call at
            a time.
        max_batch_size: Upper bound on how many queued queries one micro-batch
            may coalesce.
        max_wait_ms: How long the micro-batcher waits for more queries to
            arrive after the first one, trading a little latency for batching
            opportunity under concurrent load.
        queue_size: Admission-queue capacity; submissions beyond it are
            rejected with :class:`~repro.errors.ServiceOverloadedError`
            (backpressure instead of unbounded memory growth).
        cache_size: Maximum entries of the TTL+LRU result cache; ``0``
            disables response caching entirely.
        cache_ttl_seconds: How long a cached response stays valid.
        request_timeout_seconds: How long a synchronous caller (including the
            HTTP frontend) waits for its future before giving up.
        metrics_window: Number of most-recent request latencies kept for the
            percentile estimates in the service metrics.
        host: Bind address of the HTTP frontend.
        port: TCP port of the HTTP frontend (``0`` picks an ephemeral port).
    """

    num_workers: int = 2
    max_batch_size: int = 32
    max_wait_ms: float = 2.0
    queue_size: int = 256
    cache_size: int = 1024
    cache_ttl_seconds: float = 30.0
    request_timeout_seconds: float = 30.0
    metrics_window: int = 2048
    host: str = "127.0.0.1"
    port: int = 8080

    def __post_init__(self) -> None:
        if self.num_workers <= 0:
            raise ConfigurationError("num_workers must be positive")
        if self.max_batch_size <= 0:
            raise ConfigurationError("max_batch_size must be positive")
        if self.max_wait_ms < 0:
            raise ConfigurationError("max_wait_ms must be non-negative")
        if self.queue_size <= 0:
            raise ConfigurationError("queue_size must be positive")
        if self.cache_size < 0:
            raise ConfigurationError("cache_size must be non-negative (0 disables)")
        if self.cache_ttl_seconds <= 0:
            raise ConfigurationError("cache_ttl_seconds must be positive")
        if self.request_timeout_seconds <= 0:
            raise ConfigurationError("request_timeout_seconds must be positive")
        if self.metrics_window <= 0:
            raise ConfigurationError("metrics_window must be positive")
        if not 0 <= self.port <= 65535:
            raise ConfigurationError("port must lie in [0, 65535]")


@dataclass(frozen=True)
class StreamConfig:
    """Configuration of the streaming ingest subsystem (:mod:`repro.stream`).

    Attributes:
        encode_queue_size: Capacity of the bounded queue feeding the encode
            stage (submitted segments waiting to be summarized).
        index_queue_size: Capacity of the bounded queue between the encode
            and index stages (summaries waiting to be appended to the live
            indexes).
        backpressure: What a full encode queue does to ``submit``:
            ``"block"`` waits for space; ``"reject"`` raises
            :class:`~repro.errors.StreamBackpressureError` immediately.
        subscription_buffer_size: Per-subscriber bounded event buffer; when a
            slow consumer falls this far behind, the oldest undelivered
            matches are dropped (and counted).
        max_subscriptions: Upper bound on concurrently registered standing
            queries.
        max_matches_per_segment: At most this many matches are pushed to one
            subscriber per ingested segment (the best-scoring ones win), so a
            broad standing query cannot flood its buffer with one segment.
        default_poll_seconds: How long ``GET .../events`` long-polls when the
            request does not say.
        max_poll_seconds: Hard ceiling on one long-poll wait.
        max_duty_cycle: Optional cap on the fraction of wall-clock time the
            ingest pipeline may spend doing work (encode + index combined).
            ``None`` (the default) runs ingest at full speed; ``0.25`` leaves
            at least three quarters of the CPU to concurrent queries, trading
            ingest throughput for query-latency isolation on small machines.
    """

    encode_queue_size: int = 8
    index_queue_size: int = 8
    backpressure: str = "block"
    subscription_buffer_size: int = 256
    max_subscriptions: int = 128
    max_matches_per_segment: int = 32
    default_poll_seconds: float = 2.0
    max_poll_seconds: float = 30.0
    max_duty_cycle: float | None = None

    def __post_init__(self) -> None:
        if self.encode_queue_size <= 0 or self.index_queue_size <= 0:
            raise ConfigurationError("Stream queue sizes must be positive")
        if self.backpressure not in {"block", "reject"}:
            raise ConfigurationError(
                f"Unknown backpressure mode {self.backpressure!r}; "
                "expected 'block' or 'reject'"
            )
        if self.subscription_buffer_size <= 0:
            raise ConfigurationError("subscription_buffer_size must be positive")
        if self.max_subscriptions <= 0:
            raise ConfigurationError("max_subscriptions must be positive")
        if self.max_matches_per_segment <= 0:
            raise ConfigurationError("max_matches_per_segment must be positive")
        if self.default_poll_seconds < 0 or self.max_poll_seconds <= 0:
            raise ConfigurationError(
                "default_poll_seconds must be non-negative and max_poll_seconds positive"
            )
        if self.default_poll_seconds > self.max_poll_seconds:
            raise ConfigurationError(
                "default_poll_seconds cannot exceed max_poll_seconds"
            )
        if self.max_duty_cycle is not None and not 0 < self.max_duty_cycle <= 1:
            raise ConfigurationError("max_duty_cycle must lie in (0, 1]")


@dataclass(frozen=True)
class ObsConfig:
    """Configuration of the observability subsystem (:mod:`repro.obs`).

    Attributes:
        enabled: Master switch for request tracing.  When off, the serving
            engine never creates traces and every instrumentation point
            reduces to a no-op context-variable read, so the disabled
            configuration costs effectively nothing on the query path.
        trace_store_size: Maximum number of recent traces retained in the
            bounded in-memory trace store (older traces are evicted FIFO).
        slow_query_ms: End-to-end latency threshold above which a finished
            trace is also pinned into the slow-query log.
        slow_log_size: Maximum number of slow traces retained.  Slow traces
            survive eviction from the main store, so a burst of fast queries
            cannot wash out the evidence of a slow one.
        max_spans_per_trace: Per-trace span budget; spans beyond it are
            counted (``dropped_spans``) instead of stored, bounding memory
            under pathological fan-out.
        shadow_sample_rate: Fraction of served queries re-run through an
            exact flat scan by the background shadow sampler
            (:class:`~repro.obs.quality.ShadowSampler`) to estimate online
            recall.  ``0.0`` (the default) disables shadow sampling.
        shadow_recall_k: The ``k`` of the shadow sampler's recall@k /
            rank-displacement estimates.
        shadow_queue_size: Bounded hand-off queue between the serving path
            and the shadow worker; a full queue *drops* the sample (counted)
            instead of blocking a served query.
        shadow_window: Number of most-recent shadow samples the windowed
            recall / margin / displacement estimates aggregate over.
        drift_threshold: How many reference standard deviations a windowed
            mean (shadow score distribution, streamed embedding norms) may
            move before a drift alert is counted.
        history_interval_seconds: Period of the metrics-history ticker that
            snapshots the registry into the bounded time-series ring.
        history_capacity: Number of snapshots the history ring retains
            (``capacity * interval`` is the lookback window).
        slo_latency_ms: Latency SLO threshold: a request is "fast" when it
            completes within this many milliseconds.
        slo_latency_target: Fraction of requests that must be fast.
        slo_availability_target: Fraction of requests that must succeed
            (not error and not be rejected by admission control).
        slo_recall_target: Shadow-sampled recall@k each sample must reach.
        slo_fast_window_seconds: The short burn-rate evaluation window.
        slo_slow_window_seconds: The long burn-rate evaluation window.
        slo_max_events: Bounded per-SLO event retention (oldest evicted).
    """

    enabled: bool = True
    trace_store_size: int = 512
    slow_query_ms: float = 250.0
    slow_log_size: int = 64
    max_spans_per_trace: int = 512
    shadow_sample_rate: float = 0.0
    shadow_recall_k: int = 10
    shadow_queue_size: int = 64
    shadow_window: int = 256
    drift_threshold: float = 4.0
    history_interval_seconds: float = 10.0
    history_capacity: int = 360
    slo_latency_ms: float = 250.0
    slo_latency_target: float = 0.99
    slo_availability_target: float = 0.999
    slo_recall_target: float = 0.8
    slo_fast_window_seconds: float = 60.0
    slo_slow_window_seconds: float = 600.0
    slo_max_events: int = 4096

    def __post_init__(self) -> None:
        if self.trace_store_size <= 0:
            raise ConfigurationError("trace_store_size must be positive")
        if self.slow_query_ms < 0:
            raise ConfigurationError("slow_query_ms must be non-negative")
        if self.slow_log_size <= 0:
            raise ConfigurationError("slow_log_size must be positive")
        if self.max_spans_per_trace <= 0:
            raise ConfigurationError("max_spans_per_trace must be positive")
        if not 0.0 <= self.shadow_sample_rate <= 1.0:
            raise ConfigurationError("shadow_sample_rate must lie in [0, 1]")
        if self.shadow_recall_k <= 0:
            raise ConfigurationError("shadow_recall_k must be positive")
        if self.shadow_queue_size <= 0:
            raise ConfigurationError("shadow_queue_size must be positive")
        if self.shadow_window <= 0:
            raise ConfigurationError("shadow_window must be positive")
        if self.drift_threshold <= 0:
            raise ConfigurationError("drift_threshold must be positive")
        if self.history_interval_seconds <= 0:
            raise ConfigurationError("history_interval_seconds must be positive")
        if self.history_capacity <= 0:
            raise ConfigurationError("history_capacity must be positive")
        if self.slo_latency_ms <= 0:
            raise ConfigurationError("slo_latency_ms must be positive")
        for name in ("slo_latency_target", "slo_availability_target", "slo_recall_target"):
            value = getattr(self, name)
            if not 0.0 < value < 1.0:
                raise ConfigurationError(f"{name} must lie strictly between 0 and 1")
        if self.slo_fast_window_seconds <= 0 or self.slo_slow_window_seconds <= 0:
            raise ConfigurationError("SLO windows must be positive")
        if self.slo_fast_window_seconds > self.slo_slow_window_seconds:
            raise ConfigurationError(
                "slo_fast_window_seconds cannot exceed slo_slow_window_seconds"
            )
        if self.slo_max_events <= 0:
            raise ConfigurationError("slo_max_events must be positive")


@dataclass(frozen=True)
class LOVOConfig:
    """Top-level configuration bundling every subsystem."""

    encoder: EncoderConfig = field(default_factory=EncoderConfig)
    keyframes: KeyframeConfig = field(default_factory=KeyframeConfig)
    index: IndexConfig = field(default_factory=IndexConfig)
    query: QueryConfig = field(default_factory=QueryConfig)
    serve: ServeConfig = field(default_factory=ServeConfig)
    shard: ShardConfig = field(default_factory=ShardConfig)
    obs: ObsConfig = field(default_factory=ObsConfig)
    stream: StreamConfig = field(default_factory=StreamConfig)

    def with_overrides(
        self,
        encoder: EncoderConfig | None = None,
        keyframes: KeyframeConfig | None = None,
        index: IndexConfig | None = None,
        query: QueryConfig | None = None,
        serve: ServeConfig | None = None,
        shard: ShardConfig | None = None,
        obs: ObsConfig | None = None,
        stream: StreamConfig | None = None,
    ) -> "LOVOConfig":
        """Return a copy with selected sub-configurations replaced."""
        return LOVOConfig(
            encoder=encoder or self.encoder,
            keyframes=keyframes or self.keyframes,
            index=index or self.index,
            query=query or self.query,
            serve=serve or self.serve,
            shard=shard or self.shard,
            obs=obs or self.obs,
            stream=stream or self.stream,
        )

    def to_dict(self) -> Dict[str, Any]:
        """Plain nested-dict form of the configuration (JSON-serialisable).

        Used by the snapshot persistence subsystem: a snapshot stamps the
        full configuration so :meth:`from_dict` can rebuild the exact system
        (every encoder and index in this reproduction is deterministic given
        its configuration and seeds).
        """
        return asdict(self)

    @staticmethod
    def from_dict(payload: Mapping[str, Any]) -> "LOVOConfig":
        """Rebuild a :class:`LOVOConfig` from :meth:`to_dict` output.

        Raises :class:`~repro.errors.ConfigurationError` on unknown keys or
        values that fail the sub-configuration validators.
        """
        sections = {
            "encoder": EncoderConfig,
            "keyframes": KeyframeConfig,
            "index": IndexConfig,
            "query": QueryConfig,
            # Snapshots written before the serving, sharding, observability,
            # or streaming subsystems carry no "serve"/"shard"/"obs"/"stream"
            # section; ``payload.get`` below falls back to the defaults.
            "serve": ServeConfig,
            "shard": ShardConfig,
            "obs": ObsConfig,
            "stream": StreamConfig,
        }
        unknown = set(payload) - set(sections)
        if unknown:
            raise ConfigurationError(f"Unknown configuration sections: {sorted(unknown)}")
        kwargs = {}
        for name, cls in sections.items():
            section = payload.get(name, {})
            try:
                kwargs[name] = cls(**section)
            except TypeError as error:
                raise ConfigurationError(
                    f"Invalid {name!r} configuration section: {error}"
                ) from error
        return LOVOConfig(**kwargs)
