"""Versioned snapshot manifest with per-artifact checksums.

Every snapshot directory carries a ``manifest.json`` written last: it stamps
the snapshot schema version, the ``repro`` package version, a hash of the
full system configuration, and a SHA-256 checksum for every other file in
the snapshot.  Loading starts by validating the manifest, so schema skew
surfaces as :class:`~repro.errors.SnapshotVersionError` and any bit-level
damage to an artifact surfaces as
:class:`~repro.errors.SnapshotCorruptionError` before anything is
deserialised.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict

from repro.config import LOVOConfig
from repro.errors import (
    PersistenceError,
    SnapshotCorruptionError,
    SnapshotVersionError,
)
from repro.utils.serialization import load_json, save_json

#: Version of the on-disk snapshot layout.  Bump on any incompatible change
#: to the artifact set or their schemas.
SNAPSHOT_SCHEMA_VERSION = 1

MANIFEST_FILENAME = "manifest.json"


@dataclass(frozen=True)
class SnapshotManifest:
    """The validated contents of a snapshot's ``manifest.json``."""

    schema_version: int
    repro_version: str
    config_hash: str
    artifacts: Dict[str, str]
    info: Dict[str, Any] = field(default_factory=dict)


def sha256_file(path: str | Path) -> str:
    """Hex SHA-256 digest of a file's contents."""
    digest = hashlib.sha256()
    try:
        with Path(path).open("rb") as handle:
            for block in iter(lambda: handle.read(1 << 20), b""):
                digest.update(block)
    except OSError as error:
        raise PersistenceError(f"Cannot checksum snapshot artifact {path}: {error}") from error
    return digest.hexdigest()


def config_payload_hash(payload: Dict[str, Any]) -> str:
    """Deterministic hash of a configuration *as stored* in ``config.json``.

    Verification hashes the stored payload rather than a re-serialised
    :class:`LOVOConfig`, so snapshots written before a configuration section
    existed (e.g. pre-serving snapshots without a ``serve`` block) keep
    validating after the schema grows: parsing fills new sections with
    defaults, but the hash is only over what was actually saved.
    """
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def config_hash(config: LOVOConfig) -> str:
    """Deterministic hash of a full system configuration."""
    return config_payload_hash(config.to_dict())


def write_manifest(root: str | Path, manifest: SnapshotManifest) -> None:
    """Write ``manifest.json`` into the snapshot directory ``root``."""
    save_json(
        Path(root) / MANIFEST_FILENAME,
        {
            "schema_version": manifest.schema_version,
            "repro_version": manifest.repro_version,
            "config_hash": manifest.config_hash,
            "artifacts": dict(manifest.artifacts),
            "info": dict(manifest.info),
        },
    )


def read_manifest(root: str | Path) -> SnapshotManifest:
    """Read and validate ``manifest.json`` from a snapshot directory.

    Raises:
        PersistenceError: ``root`` is not a snapshot (no manifest file).
        SnapshotCorruptionError: the manifest is not valid JSON or is
            structurally malformed.
        SnapshotVersionError: the snapshot was written with an unsupported
            schema version.
    """
    path = Path(root) / MANIFEST_FILENAME
    try:
        document = load_json(path)
    except SnapshotCorruptionError:
        raise
    except PersistenceError as error:
        raise PersistenceError(
            f"{Path(root)} is not a LOVO snapshot (missing or unreadable {MANIFEST_FILENAME})"
        ) from error
    if not isinstance(document, dict) or "schema_version" not in document:
        raise SnapshotCorruptionError(f"Snapshot manifest {path} is malformed")
    try:
        schema_version = int(document["schema_version"])
    except (TypeError, ValueError) as error:
        raise SnapshotCorruptionError(
            f"Snapshot manifest {path} has a non-numeric schema version"
        ) from error
    if schema_version != SNAPSHOT_SCHEMA_VERSION:
        raise SnapshotVersionError(
            f"Snapshot at {Path(root)} uses schema version {schema_version}; "
            f"this build of repro supports version {SNAPSHOT_SCHEMA_VERSION}"
        )
    try:
        return SnapshotManifest(
            schema_version=schema_version,
            repro_version=str(document["repro_version"]),
            config_hash=str(document["config_hash"]),
            artifacts={str(k): str(v) for k, v in document["artifacts"].items()},
            info=dict(document.get("info", {})),
        )
    except (KeyError, AttributeError, TypeError) as error:
        raise SnapshotCorruptionError(f"Snapshot manifest {path} is malformed") from error


def verify_artifacts(root: str | Path, manifest: SnapshotManifest) -> None:
    """Check that every manifest artifact exists and matches its checksum.

    Raises:
        PersistenceError: an artifact listed in the manifest is missing.
        SnapshotCorruptionError: an artifact's contents changed since the
            snapshot was written.
    """
    base = Path(root)
    for relative, expected in sorted(manifest.artifacts.items()):
        path = base / relative
        if not path.is_file():
            raise PersistenceError(f"Snapshot artifact {relative!r} is missing from {base}")
        actual = sha256_file(path)
        if actual != expected:
            raise SnapshotCorruptionError(
                f"Snapshot artifact {relative!r} failed checksum validation "
                f"(expected {expected[:12]}…, got {actual[:12]}…)"
            )


def collect_artifacts(root: str | Path) -> Dict[str, str]:
    """Checksum every file under ``root`` except the manifest itself."""
    base = Path(root)
    artifacts: Dict[str, str] = {}
    for path in sorted(base.rglob("*")):
        if not path.is_file():
            continue
        relative = path.relative_to(base).as_posix()
        if relative == MANIFEST_FILENAME:
            continue
        artifacts[relative] = sha256_file(path)
    return artifacts
