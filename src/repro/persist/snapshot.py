"""Whole-system snapshots: write once, serve from any process.

A snapshot directory captures everything a built LOVO system needs to answer
queries — configuration, the vector database (every index family serialises
its exact built state), the relational metadata store, the key-frame
registry with annotations, and the frame→scene map — so a fresh process can
:func:`load_system` and return bit-identical ``query()`` / ``query_batch()``
results without re-running the ingest pipeline.

Layout of a snapshot at ``<root>/``::

    manifest.json           schema version, repro version, config hash,
                            SHA-256 checksum of every other file (written last)
    config.json             full LOVOConfig (the system is deterministic
                            given this plus the stored state)
    system.json             dataset names, frame→scene map, ingest counters
    frames.json             ordered key frames incl. object annotations
    storage/storage.json    vector-store dimensionality and index config
    storage/metadata.npz    relational frame/patch records
    storage/vectordb/...    per-collection vectors, ids, and index state
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Mapping, Sequence

import repro
from repro.config import LOVOConfig
from repro.core.storage import LOVOStorage
from repro.errors import PersistenceError, ReproError, SnapshotCorruptionError
from repro.persist.frames import frames_from_list, frames_to_list
from repro.persist.manifest import (
    SNAPSHOT_SCHEMA_VERSION,
    SnapshotManifest,
    collect_artifacts,
    config_hash,
    config_payload_hash,
    read_manifest,
    verify_artifacts,
    write_manifest,
)
from repro.utils.serialization import load_json, save_json
from repro.video.model import Frame


@dataclass
class RestoredSystem:
    """Everything :func:`load_system` recovers from a snapshot."""

    config: LOVOConfig
    storage: LOVOStorage
    keyframes: List[Frame]
    frame_scene: Dict[str, str] = field(default_factory=dict)
    datasets: List[str] = field(default_factory=list)
    frames_processed: int = 0
    total_frames: int = 0
    reranker_config: Dict[str, Any] | None = None
    manifest: SnapshotManifest | None = None


def save_system(
    path: str | Path,
    *,
    config: LOVOConfig,
    storage: LOVOStorage,
    keyframes: Sequence[Frame],
    frame_scene: Mapping[str, str],
    datasets: Sequence[str],
    frames_processed: int,
    total_frames: int,
    reranker_config: Mapping[str, Any] | None = None,
    info: Mapping[str, Any] | None = None,
) -> SnapshotManifest:
    """Write a complete system snapshot and return its manifest.

    The manifest is written last, after every artifact has been checksummed,
    so a directory with a valid manifest is a complete snapshot (a crash
    mid-save leaves no manifest and the directory fails to load cleanly).
    When overwriting an existing snapshot, its old manifest is removed first
    so the invariant also holds across a crashed re-save.
    """
    root = Path(path)
    try:
        root.mkdir(parents=True, exist_ok=True)
        (root / "manifest.json").unlink(missing_ok=True)
        save_json(root / "config.json", config.to_dict())
        save_json(
            root / "system.json",
            {
                "datasets": list(datasets),
                "frame_scene": dict(frame_scene),
                "frames_processed": int(frames_processed),
                "total_frames": int(total_frames),
                "reranker_config": dict(reranker_config) if reranker_config else None,
            },
        )
        save_json(root / "frames.json", {"keyframes": frames_to_list(keyframes)})
        storage.save(root / "storage")
    except ReproError:
        raise
    except (OSError, ValueError, TypeError) as error:
        raise PersistenceError(f"Failed to write snapshot at {root}: {error}") from error

    manifest = SnapshotManifest(
        schema_version=SNAPSHOT_SCHEMA_VERSION,
        repro_version=repro.__version__,
        config_hash=config_hash(config),
        artifacts=collect_artifacts(root),
        info={
            "num_keyframes": len(keyframes),
            "num_entities": storage.num_entities,
            "index_type": storage.index_type,
            **(dict(info) if info else {}),
        },
    )
    write_manifest(root, manifest)
    return manifest


def load_system(path: str | Path) -> RestoredSystem:
    """Validate and load a snapshot written by :func:`save_system`.

    Validation runs before deserialisation: the manifest's schema version is
    checked (:class:`~repro.errors.SnapshotVersionError` on skew) and every
    artifact is re-checksummed (:class:`~repro.errors.SnapshotCorruptionError`
    on mismatch, :class:`~repro.errors.PersistenceError` on missing files).
    """
    root = Path(path)
    manifest = read_manifest(root)
    verify_artifacts(root, manifest)
    try:
        config_doc = load_json(root / "config.json")
        # Hash the payload *as stored*: parsing may add newer configuration
        # sections (with defaults) that an older snapshot legitimately lacks.
        if config_payload_hash(config_doc) != manifest.config_hash:
            raise SnapshotCorruptionError(
                f"Snapshot at {root} has a configuration that does not match "
                "its manifest's config hash"
            )
        config = LOVOConfig.from_dict(config_doc)
        system_doc = load_json(root / "system.json")
        frames_doc = load_json(root / "frames.json")
        keyframes = frames_from_list(frames_doc.get("keyframes", []))
        storage = LOVOStorage.load(root / "storage")
    except ReproError:
        raise
    except (OSError, KeyError, ValueError, TypeError) as error:
        raise SnapshotCorruptionError(
            f"Snapshot at {root} could not be deserialised: {error}"
        ) from error
    return RestoredSystem(
        config=config,
        storage=storage,
        keyframes=keyframes,
        frame_scene={
            str(k): str(v) for k, v in dict(system_doc.get("frame_scene", {})).items()
        },
        datasets=[str(name) for name in system_doc.get("datasets", [])],
        frames_processed=int(system_doc.get("frames_processed", 0)),
        total_frames=int(system_doc.get("total_frames", 0)),
        reranker_config=system_doc.get("reranker_config"),
        manifest=manifest,
    )
