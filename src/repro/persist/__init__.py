"""Snapshot persistence subsystem: save/load the whole built LOVO system.

The paper's economics are "summarise and index once, serve queries forever"
(§IV–§VI); this package makes the "once" durable.  A snapshot is a directory
with a versioned, checksummed ``manifest.json`` plus JSON / ``.npz``
artifacts (written through the canonical codec in
:mod:`repro.utils.serialization`) capturing every layer of a built system:
all three index families, the vector collections, the relational metadata
store, and the key-frame registry.

High-level entry points live on the objects themselves —
``LOVO.save(path)`` / ``LOVO.load(path)``, and ``save()``/``load()`` on
``VectorCollection``, ``VectorDatabase``, and ``LOVOStorage`` — all built on
:func:`save_system` / :func:`load_system` here.
"""

from repro.persist.delta import DeltaSnapshotStore
from repro.persist.manifest import (
    MANIFEST_FILENAME,
    SNAPSHOT_SCHEMA_VERSION,
    SnapshotManifest,
    read_manifest,
    sha256_file,
    verify_artifacts,
)
from repro.persist.snapshot import RestoredSystem, load_system, save_system

__all__ = [
    "MANIFEST_FILENAME",
    "SNAPSHOT_SCHEMA_VERSION",
    "SnapshotManifest",
    "DeltaSnapshotStore",
    "RestoredSystem",
    "read_manifest",
    "sha256_file",
    "verify_artifacts",
    "save_system",
    "load_system",
]
