"""JSON codec for the frame registry (key frames and their annotations).

The rerank stage re-encodes candidate key frames on demand, so a snapshot
must carry the full :class:`~repro.video.model.Frame` objects — object
annotations included — not just frame ids.  Everything here is plain JSON;
Python's ``json`` round-trips ``float`` exactly (``repr`` shortest-round-trip
semantics), so re-encoded embeddings are bit-identical after a load.
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping, Sequence

from repro.errors import SnapshotCorruptionError
from repro.utils.geometry import BoundingBox
from repro.video.model import Frame, ObjectAnnotation


def annotation_to_dict(annotation: ObjectAnnotation) -> Dict[str, Any]:
    """Serialise one ground-truth object annotation."""
    return {
        "object_id": annotation.object_id,
        "category": annotation.category,
        "attributes": dict(annotation.attributes),
        "context": list(annotation.context),
        "activity": list(annotation.activity),
        "box": [annotation.box.x, annotation.box.y, annotation.box.w, annotation.box.h],
    }


def annotation_from_dict(payload: Mapping[str, Any]) -> ObjectAnnotation:
    """Rebuild an annotation from :func:`annotation_to_dict` output."""
    try:
        box = payload["box"]
        return ObjectAnnotation(
            object_id=str(payload["object_id"]),
            category=str(payload["category"]),
            attributes={str(k): str(v) for k, v in payload["attributes"].items()},
            context=tuple(str(token) for token in payload["context"]),
            activity=tuple(str(token) for token in payload["activity"]),
            box=BoundingBox(float(box[0]), float(box[1]), float(box[2]), float(box[3])),
        )
    except (KeyError, IndexError, TypeError, ValueError, AttributeError) as error:
        raise SnapshotCorruptionError(f"Malformed object annotation in snapshot: {error}") from error


def frame_to_dict(frame: Frame) -> Dict[str, Any]:
    """Serialise one key frame with all of its annotations."""
    return {
        "frame_id": frame.frame_id,
        "video_id": frame.video_id,
        "index": frame.index,
        "timestamp": frame.timestamp,
        "camera_offset": list(frame.camera_offset),
        "objects": [annotation_to_dict(annotation) for annotation in frame.objects],
    }


def frame_from_dict(payload: Mapping[str, Any]) -> Frame:
    """Rebuild a frame from :func:`frame_to_dict` output."""
    try:
        offset = payload.get("camera_offset", (0.0, 0.0))
        return Frame(
            frame_id=str(payload["frame_id"]),
            video_id=str(payload["video_id"]),
            index=int(payload["index"]),
            timestamp=float(payload["timestamp"]),
            objects=tuple(annotation_from_dict(entry) for entry in payload["objects"]),
            camera_offset=(float(offset[0]), float(offset[1])),
        )
    except (KeyError, IndexError, TypeError, ValueError) as error:
        raise SnapshotCorruptionError(f"Malformed frame record in snapshot: {error}") from error


def frames_to_list(frames: Sequence[Frame]) -> List[Dict[str, Any]]:
    """Serialise an ordered sequence of frames."""
    return [frame_to_dict(frame) for frame in frames]


def frames_from_list(payload: Sequence[Mapping[str, Any]]) -> List[Frame]:
    """Rebuild an ordered frame list."""
    return [frame_from_dict(entry) for entry in payload]
