"""Delta snapshots: a base snapshot plus an ordered log of ingested segments.

Full snapshots (:mod:`repro.persist.snapshot`) rewrite every artifact, which
is the wrong cost model for streaming ingest: a deployment appending small
segments every few seconds cannot re-serialise the whole collection each
time.  A :class:`DeltaSnapshotStore` instead keeps

* ``base/`` — an ordinary full snapshot (written by :func:`save_system`,
  validated by the same manifest/checksum machinery), and
* ``deltas/delta-NNNNNN/`` — one directory per streamed segment, holding the
  segment's key frames, frame→scene map, and encoded patch vectors, each
  checksummed in the delta's own ``delta.json``, plus
* ``deltalog.json`` — the ordered list of committed deltas (written last per
  append, so a crash mid-append leaves an orphan directory that is simply
  ignored).

Warm start (:meth:`load_system`) restores the base and **replays** the
deltas through :meth:`~repro.core.system.LOVO.ingest_summary` — the same
entry point the live pipeline used — so the recovered system is bit-identical
to the one that crashed.  :meth:`compact` folds the replayed state into a new
base and truncates the log, bounding recovery time.
"""

from __future__ import annotations

import shutil
from pathlib import Path
from typing import Any, Dict, List, Mapping

import numpy as np

from repro.core.summary import SummaryOutput
from repro.encoders.vision import PatchEncoding
from repro.errors import PersistenceError, ReproError, SnapshotCorruptionError
from repro.persist.frames import frames_from_list, frames_to_list
from repro.persist.manifest import sha256_file
from repro.utils.geometry import BoundingBox
from repro.utils.serialization import load_arrays, load_json, save_arrays, save_json

DELTA_LOG_FILENAME = "deltalog.json"
DELTA_SCHEMA_VERSION = 1


def _encodings_to_arrays(encodings: List[PatchEncoding]) -> Dict[str, np.ndarray]:
    return {
        "patch_ids": np.asarray([e.patch_id for e in encodings], dtype=np.str_),
        "frame_ids": np.asarray([e.frame_id for e in encodings], dtype=np.str_),
        "video_ids": np.asarray([e.video_id for e in encodings], dtype=np.str_),
        "patch_index": np.asarray([e.patch_index for e in encodings], dtype=np.int64),
        "embeddings": np.stack([e.embedding for e in encodings])
        if encodings
        else np.zeros((0, 0), dtype=np.float64),
        "class_embeddings": np.stack([e.class_embedding for e in encodings])
        if encodings
        else np.zeros((0, 0), dtype=np.float64),
        "boxes": np.asarray(
            [[e.box.x, e.box.y, e.box.w, e.box.h] for e in encodings], dtype=np.float64
        ).reshape(len(encodings), 4),
        "objectness": np.asarray([e.objectness for e in encodings], dtype=np.float64),
    }


def _encodings_from_arrays(arrays: Mapping[str, np.ndarray]) -> List[PatchEncoding]:
    try:
        count = int(arrays["patch_ids"].shape[0])
        return [
            PatchEncoding(
                patch_id=str(arrays["patch_ids"][i]),
                frame_id=str(arrays["frame_ids"][i]),
                video_id=str(arrays["video_ids"][i]),
                patch_index=int(arrays["patch_index"][i]),
                embedding=np.asarray(arrays["embeddings"][i], dtype=np.float64),
                class_embedding=np.asarray(
                    arrays["class_embeddings"][i], dtype=np.float64
                ),
                box=BoundingBox(*(float(v) for v in arrays["boxes"][i])),
                objectness=float(arrays["objectness"][i]),
            )
            for i in range(count)
        ]
    except (KeyError, IndexError, ValueError, TypeError) as error:
        raise SnapshotCorruptionError(
            f"Delta encodings payload is malformed: {error}"
        ) from error


class DeltaSnapshotStore:
    """Base snapshot + ordered segment deltas under one directory.

    Not internally synchronised: the streaming pipeline's single index-stage
    thread is the only writer, and :meth:`compact` is an administrative
    operation run while ingest is paused (or after :meth:`~repro.stream.
    ingestor.StreamingIngestor.drain`).
    """

    def __init__(self, path: str | Path) -> None:
        self._root = Path(path)
        self._base = self._root / "base"
        self._deltas_dir = self._root / "deltas"
        self._log_path = self._root / DELTA_LOG_FILENAME

    @property
    def root(self) -> Path:
        """The store's root directory."""
        return self._root

    @property
    def base_path(self) -> Path:
        """Where the base snapshot lives."""
        return self._base

    def initialize(self, system: "Any") -> None:
        """Write the base snapshot from ``system`` and an empty delta log.

        ``system`` is a :class:`~repro.core.system.LOVO`; works for a system
        with zero ingested segments (a cold streaming deployment snapshots an
        empty base, then accumulates deltas).  Any existing deltas are
        discarded — the base now owns their data only if the caller replayed
        them first (that is exactly what :meth:`compact` does).
        """
        system.save(self._base)
        if self._deltas_dir.exists():
            shutil.rmtree(self._deltas_dir)
        self._write_log([])

    def append(self, dataset_name: str, summary: SummaryOutput) -> Dict[str, Any]:
        """Record one indexed segment as the next delta; returns its log entry.

        The delta's files are written and checksummed first; the log is
        rewritten last, so a crash mid-append never corrupts the store — the
        half-written delta directory is orphaned and ignored.
        """
        entries = self._read_log()
        sequence = len(entries) + 1
        name = f"delta-{sequence:06d}"
        delta_dir = self._deltas_dir / name
        try:
            delta_dir.mkdir(parents=True, exist_ok=True)
            save_arrays(delta_dir / "encodings.npz", _encodings_to_arrays(summary.encodings))
            save_json(
                delta_dir / "frames.json",
                {
                    "keyframes": frames_to_list(summary.keyframes),
                    "frame_scene": dict(summary.frame_scene),
                },
            )
            save_json(
                delta_dir / "delta.json",
                {
                    "schema_version": DELTA_SCHEMA_VERSION,
                    "sequence": sequence,
                    "dataset": dataset_name,
                    "entities": len(summary.encodings),
                    "keyframes": len(summary.keyframes),
                    "frames_processed": int(summary.frames_processed),
                    "total_frames": int(summary.total_frames),
                    "checksums": {
                        "encodings.npz": sha256_file(delta_dir / "encodings.npz"),
                        "frames.json": sha256_file(delta_dir / "frames.json"),
                    },
                },
            )
        except ReproError:
            raise
        except OSError as error:
            raise PersistenceError(
                f"Failed to write delta {name} at {delta_dir}: {error}"
            ) from error
        entry = {"name": name, "sequence": sequence, "dataset": dataset_name}
        self._write_log(entries + [entry])
        return entry

    def deltas(self) -> List[Dict[str, Any]]:
        """The committed delta log entries, in append order."""
        return self._read_log()

    def load_system(self, loader: "Any" = None) -> "Any":
        """Warm start: load the base snapshot, then replay every delta.

        Replaying goes through :meth:`~repro.core.system.LOVO.
        ingest_summary` — the exact call the live pipeline made — so the
        restored system's index state is bit-identical to the state at the
        last committed delta.  ``loader`` defaults to :class:`~repro.core.
        system.LOVO` (injectable for tests).
        """
        if loader is None:
            from repro.core.system import LOVO

            loader = LOVO
        system = loader.load(self._base)
        for entry in self._read_log():
            dataset, summary = self._load_delta(entry)
            system.ingest_summary(dataset, summary)
        return system

    def compact(self, loader: "Any" = None) -> "Any":
        """Fold every delta into a new base snapshot and truncate the log.

        Replays base+deltas into a fresh system, writes it as the new base,
        then clears the delta log — recovery after ``compact`` replays
        nothing.  Returns the compacted system (callers often adopt it).
        The new base is written to a sibling directory and swapped in only
        after it is complete, so a crash mid-compaction leaves the old
        base+deltas intact.
        """
        system = self.load_system(loader)
        staging = self._root / "base.compacting"
        if staging.exists():
            shutil.rmtree(staging)
        system.save(staging)
        previous = self._root / "base.previous"
        if previous.exists():
            shutil.rmtree(previous)
        if self._base.exists():
            self._base.rename(previous)
        staging.rename(self._base)
        shutil.rmtree(previous, ignore_errors=True)
        if self._deltas_dir.exists():
            shutil.rmtree(self._deltas_dir)
        self._write_log([])
        return system

    # ------------------------------------------------------------- internals

    def _load_delta(self, entry: Mapping[str, Any]) -> "tuple[str, SummaryOutput]":
        name = str(entry["name"])
        delta_dir = self._deltas_dir / name
        meta = load_json(delta_dir / "delta.json")
        if int(meta.get("schema_version", -1)) != DELTA_SCHEMA_VERSION:
            raise SnapshotCorruptionError(
                f"Delta {name} has unsupported schema version "
                f"{meta.get('schema_version')!r}"
            )
        checksums = meta.get("checksums", {})
        for filename in ("encodings.npz", "frames.json"):
            recorded = checksums.get(filename)
            actual = sha256_file(delta_dir / filename)
            if recorded != actual:
                raise SnapshotCorruptionError(
                    f"Delta artifact {delta_dir / filename} failed its checksum"
                )
        frames_doc = load_json(delta_dir / "frames.json")
        summary = SummaryOutput(
            keyframes=frames_from_list(frames_doc.get("keyframes", [])),
            encodings=_encodings_from_arrays(load_arrays(delta_dir / "encodings.npz")),
            frame_scene={
                str(k): str(v)
                for k, v in dict(frames_doc.get("frame_scene", {})).items()
            },
            frames_processed=int(meta.get("frames_processed", 0)),
            total_frames=int(meta.get("total_frames", 0)),
        )
        return str(meta.get("dataset", entry.get("dataset", ""))), summary

    def _read_log(self) -> List[Dict[str, Any]]:
        if not self._log_path.exists():
            return []
        doc = load_json(self._log_path)
        entries = doc.get("deltas", [])
        for position, entry in enumerate(entries, start=1):
            if int(entry.get("sequence", -1)) != position:
                raise SnapshotCorruptionError(
                    f"Delta log at {self._log_path} is not contiguous at "
                    f"position {position}"
                )
        return [dict(entry) for entry in entries]

    def _write_log(self, entries: List[Dict[str, Any]]) -> None:
        save_json(
            self._log_path,
            {"schema_version": DELTA_SCHEMA_VERSION, "deltas": entries},
        )


__all__ = ["DELTA_LOG_FILENAME", "DELTA_SCHEMA_VERSION", "DeltaSnapshotStore"]
