"""Shard partitioners: decide which shard stores each entity.

Two strategies, both deterministic and snapshot-persistable so that a loaded
sharded database routes further inserts exactly like the original process:

* :class:`HashPartitioner` — a stable BLAKE2b hash of the *external id*
  modulo the shard count.  Stateless, uniform, and independent of the vector
  values, so re-ingesting the same ids always lands them on the same shards.
* :class:`KMeansPartitioner` — Lloyd's k-means over the first inserted batch
  of vectors; every vector (including later inserts) is routed to the shard
  whose centroid is nearest.  Keeps geometrically close vectors together,
  which concentrates each query's true neighbours on few shards.
"""

from __future__ import annotations

import abc
import hashlib
from typing import Dict, Mapping, Sequence, Tuple

import numpy as np

from repro.config import ShardConfig
from repro.errors import ShardError, SnapshotCorruptionError
from repro.vectordb.kmeans import lloyd_kmeans


def stable_shard_hash(external_id: str, num_shards: int) -> int:
    """Stable shard index of one external id (independent of ``PYTHONHASHSEED``)."""
    digest = hashlib.blake2b(external_id.encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "big") % num_shards


class Partitioner(abc.ABC):
    """Maps entities (ids + vectors) to shard indices in ``[0, num_shards)``."""

    kind: str = ""

    def __init__(self, num_shards: int) -> None:
        if num_shards <= 0:
            raise ShardError("Partitioner needs a positive shard count")
        self._num_shards = num_shards

    @property
    def num_shards(self) -> int:
        """Number of shards this partitioner routes across."""
        return self._num_shards

    @abc.abstractmethod
    def assign(self, ids: Sequence[str], vectors: np.ndarray) -> np.ndarray:
        """Shard index per entity, as an ``(n,)`` int64 array."""

    def to_state(self) -> Tuple[Dict[str, object], Dict[str, np.ndarray]]:
        """Serialise the partitioner as JSON-able meta plus array payloads."""
        return {"kind": self.kind, "num_shards": self._num_shards}, {}

    @classmethod
    def from_state(
        cls,
        config: ShardConfig,
        meta: Mapping[str, object],
        arrays: Mapping[str, np.ndarray],
    ) -> "Partitioner":
        """Rebuild a partitioner, dispatching on the serialised ``kind``."""
        kind = str(meta.get("kind", ""))
        num_shards = int(meta.get("num_shards", config.num_shards))
        if kind == HashPartitioner.kind:
            return HashPartitioner(num_shards)
        if kind == KMeansPartitioner.kind:
            partitioner = KMeansPartitioner(
                num_shards,
                seed=config.partition_seed,
                iterations=config.partition_iterations,
            )
            centroids = arrays.get("partition_centroids")
            if centroids is not None and centroids.size:
                partitioner._centroids = np.asarray(centroids, dtype=np.float64)
            return partitioner
        raise SnapshotCorruptionError(f"Unknown partitioner kind {kind!r} in snapshot")


class HashPartitioner(Partitioner):
    """Route each entity by a stable hash of its external id."""

    kind = "hash"

    def assign(self, ids: Sequence[str], vectors: np.ndarray) -> np.ndarray:
        return np.asarray(
            [stable_shard_hash(str(external_id), self._num_shards) for external_id in ids],
            dtype=np.int64,
        )


class KMeansPartitioner(Partitioner):
    """Route each entity to the shard whose centroid is nearest its vector.

    Centroids are trained once, on the first batch of vectors seen; later
    batches (incremental ingest) are assigned against the frozen centroids so
    routing stays stable over the lifetime of the database.
    """

    kind = "kmeans"

    def __init__(self, num_shards: int, seed: int = 11, iterations: int = 8) -> None:
        super().__init__(num_shards)
        self._seed = seed
        self._iterations = iterations
        self._centroids: np.ndarray | None = None

    @property
    def trained(self) -> bool:
        """Whether shard centroids have been trained yet."""
        return self._centroids is not None

    def assign(self, ids: Sequence[str], vectors: np.ndarray) -> np.ndarray:
        data = np.asarray(vectors, dtype=np.float64)
        if data.ndim != 2 or data.shape[0] != len(ids):
            raise ShardError(
                f"KMeansPartitioner needs an (n, dim) vector block matching {len(ids)} ids; "
                f"got shape {data.shape}"
            )
        if self._centroids is None:
            result = lloyd_kmeans(
                data,
                num_clusters=min(self._num_shards, data.shape[0]),
                max_iterations=self._iterations,
                seed=self._seed,
            )
            self._centroids = result.centroids
            return result.assignments.astype(np.int64)
        distances = (
            (data**2).sum(axis=1, keepdims=True)
            + (self._centroids**2).sum(axis=1)
            - 2.0 * (data @ self._centroids.T)
        )
        return distances.argmin(axis=1).astype(np.int64)

    def to_state(self) -> Tuple[Dict[str, object], Dict[str, np.ndarray]]:
        meta, arrays = super().to_state()
        if self._centroids is not None:
            arrays["partition_centroids"] = self._centroids
        return meta, arrays


def make_partitioner(config: ShardConfig) -> Partitioner:
    """Instantiate the partitioner named by a :class:`ShardConfig`."""
    if config.partitioner == "kmeans":
        return KMeansPartitioner(
            config.num_shards,
            seed=config.partition_seed,
            iterations=config.partition_iterations,
        )
    return HashPartitioner(config.num_shards)
