"""Sharded vector database: N shard databases behind one scatter-gather facade.

:class:`ShardedDatabase` duck-types :class:`~repro.vectordb.database.
VectorDatabase` and :class:`ShardedCollection` duck-types
:class:`~repro.vectordb.collection.VectorCollection`, so the storage, persist,
and serving layers work on top of either without branching.  Entities are
partitioned across shards at insert time (hash or k-means, see
:mod:`repro.shard.partition`); searches fan out across all shards in parallel
through a :class:`~repro.shard.router.ShardRouter` and the per-shard top-``k``
lists are merged into the exact global top-``k``.

Bit-exact parity with the unsharded path is the design invariant:

* **flat** — per-shard exact search over a row-subset of the same matrix;
  the union of per-shard top-``k`` provably contains the global top-``k``.
* **HNSW** — per-shard graphs are exact whenever ``ef_search`` covers the
  shard (the regime the parity tests pin); merged results then equal the
  exhaustive ranking.
* **IVF-PQ** — the subtle one.  Training per shard would produce different
  centroids and codebooks than the unsharded index, so instead one *global*
  index is trained on all vectors in global insertion order (bitwise the
  same computation as the unsharded build) and its inverted lists are then
  **split by shard membership** into per-shard indexes that share coarse
  centroids and PQ codebooks.  Every stored code, reconstruction, and
  probed-cluster ranking is then identical to the unsharded index, and the
  merge tie-breaks equal scores by global insertion order exactly like the
  unsharded ``lexsort`` on internal ids.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from dataclasses import asdict
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Sequence

import numpy as np

from repro.config import IndexConfig, ShardConfig
from repro.errors import (
    CollectionExistsError,
    CollectionNotFoundError,
    ShardError,
    SnapshotCorruptionError,
    VectorDatabaseError,
)
from repro.obs.trace import span as obs_span
from repro.shard.partition import Partitioner, make_partitioner
from repro.shard.router import (
    ReplicaGroup,
    ShardRouter,
    merge_top_k,
    merge_top_k_batches,
)
from repro.utils.serialization import load_arrays, load_json, save_arrays, save_json
from repro.vectordb.base import as_query_matrix
from repro.vectordb.collection import SearchHit, VectorCollection
from repro.vectordb.database import VectorDatabase
from repro.vectordb.ivfpq import IVFPQIndex
from repro.utils.locking import create_rlock

#: Keys of the IVF-PQ state arrays that describe inverted-list *membership*
#: (split per shard); everything else (centroids, codebooks) is shared.
_IVFPQ_LIST_KEYS = {"list_clusters", "list_offsets", "list_ids", "list_codes"}


class ShardedCollection:
    """One named collection, partitioned across shard collections.

    Mirrors the :class:`VectorCollection` API (insert/flush/search/batch/
    exhaustive/get/ids/storage) so callers never branch on shardedness.
    """

    def __init__(
        self,
        name: str,
        dim: int,
        config: IndexConfig,
        partitioner: Partitioner,
        primaries: Sequence[VectorCollection],
        router: ShardRouter,
    ) -> None:
        self._name = name
        self._dim = dim
        self._config = config
        self._partitioner = partitioner
        self._primaries = list(primaries)
        self._router = router
        self._order: List[str] = []
        self._global_position: Dict[str, int] = {}
        self._assignment: Dict[str, int] = {}
        self._ivfpq_ready = False
        # Serialises writers (streaming appends) and the one-time global
        # IVF-PQ train against each other; searches stay lock-free except
        # for the brief flush check.
        self._write_lock = create_rlock("ShardedCollection._write_lock")

    @property
    def name(self) -> str:
        """Collection name."""
        return self._name

    @property
    def dim(self) -> int:
        """Vector dimensionality."""
        return self._dim

    @property
    def config(self) -> IndexConfig:
        """The (shared) index configuration of every shard."""
        return self._config

    @property
    def index_type(self) -> str:
        """Which ANN index family backs the shards."""
        return self._config.index_type

    @property
    def num_shards(self) -> int:
        """Number of shards the collection is partitioned across."""
        return len(self._primaries)

    @property
    def num_entities(self) -> int:
        """Number of stored vectors across all shards."""
        return len(self._order)

    @property
    def shard_collections(self) -> List[VectorCollection]:
        """The primary per-shard collections, indexed by shard."""
        return list(self._primaries)

    def shard_of(self, external_id: str) -> int:
        """Which shard stores an id (raises like a missing-id lookup)."""
        try:
            return self._assignment[external_id]
        except KeyError as error:
            raise VectorDatabaseError(
                f"Id {external_id!r} not found in collection {self._name!r}"
            ) from error

    def insert(
        self,
        ids: Sequence[str],
        vectors: np.ndarray,
        metadata: Optional[Sequence[Mapping[str, object]]] = None,
    ) -> None:
        """Partition entities across shards; same contract as the unsharded insert."""
        data = np.asarray(vectors, dtype=np.float64)
        if data.ndim == 1:
            data = data[None, :]
        if data.shape[0] != len(ids):
            raise VectorDatabaseError(f"Got {len(ids)} ids for {data.shape[0]} vectors")
        if data.shape[1] != self._dim:
            raise VectorDatabaseError(
                f"Collection {self._name!r} stores {self._dim}-d vectors, got {data.shape[1]}-d"
            )
        if metadata is not None and len(metadata) != len(ids):
            raise VectorDatabaseError("metadata length must match ids length")
        batch_ids = [str(external_id) for external_id in ids]
        with self._write_lock:
            seen = set()
            for external_id in batch_ids:
                if external_id in self._global_position or external_id in seen:
                    raise VectorDatabaseError(
                        f"Duplicate id {external_id!r} in collection {self._name!r}"
                    )
                seen.add(external_id)

            assignments = self._partitioner.assign(batch_ids, data)
            if assignments.shape[0] != len(batch_ids):
                raise ShardError("Partitioner returned a misaligned assignment array")
            # Global bookkeeping is published *before* the vectors reach the
            # per-shard collections: a racing search that already sees a new
            # vector then resolves its merge tie-break to the final global
            # position, never the end-of-order fallback.
            start = len(self._order)
            for position, external_id in enumerate(batch_ids):
                self._global_position[external_id] = start + position
                self._order.append(external_id)
                self._assignment[external_id] = int(assignments[position])
            try:
                for shard in range(self.num_shards):
                    positions = np.nonzero(assignments == shard)[0]
                    if positions.size == 0:
                        continue
                    self._primaries[shard].insert(
                        [batch_ids[int(p)] for p in positions],
                        data[positions],
                        [metadata[int(p)] for p in positions]
                        if metadata is not None
                        else None,
                    )
            except BaseException:
                # A failed batch must not leave ghost bookkeeping behind.
                for external_id in batch_ids:
                    self._global_position.pop(external_id, None)
                    self._assignment.pop(external_id, None)
                del self._order[start:]
                raise

    def flush(self) -> None:
        """Build every shard index (IVF-PQ: global train, then split per shard)."""
        if self.num_entities == 0:
            return
        with self._write_lock:
            if self._config.index_type == "ivfpq" and not self._ivfpq_ready:
                self._build_ivfpq_from_global_train()
            for collection in self._primaries:
                if collection.num_entities:
                    collection.flush()

    def _build_ivfpq_from_global_train(self) -> None:
        """Train one global IVF-PQ index, then split its lists by shard.

        The trainer sees every vector in global insertion order with its
        global position as the internal id — bitwise the exact computation
        the unsharded collection performs — so centroids, codebooks, coarse
        assignments, and PQ codes all match the unsharded index.  Each
        shard then receives only its own members, with ids remapped to the
        shard-local internal ids (which preserve global relative order, so
        per-shard tie-breaking matches the global one).
        """
        matrix = np.vstack(
            [
                self._primaries[self._assignment[external_id]].get_vector(external_id)
                for external_id in self._order
            ]
        )
        trainer = IVFPQIndex(self._dim, self._config)
        trainer.add(list(range(len(self._order))), matrix)
        meta, arrays = trainer.to_state()

        shared = {key: value for key, value in arrays.items() if key not in _IVFPQ_LIST_KEYS}
        clusters = arrays["list_clusters"]
        offsets = arrays["list_offsets"]
        member_ids = arrays["list_ids"]
        member_codes = arrays["list_codes"]

        local_of = [
            {external_id: local for local, external_id in enumerate(collection.ids())}
            for collection in self._primaries
        ]
        split_clusters: List[List[int]] = [[] for _ in self._primaries]
        split_offsets: List[List[int]] = [[0] for _ in self._primaries]
        split_ids: List[List[int]] = [[] for _ in self._primaries]
        split_codes: List[List[np.ndarray]] = [[] for _ in self._primaries]
        for slot, cluster in enumerate(clusters):
            start, stop = int(offsets[slot]), int(offsets[slot + 1])
            buckets: Dict[int, List[int]] = {}
            for member in range(start, stop):
                external_id = self._order[int(member_ids[member])]
                buckets.setdefault(self._assignment[external_id], []).append(member)
            for shard, members in buckets.items():
                split_clusters[shard].append(int(cluster))
                split_ids[shard].extend(
                    local_of[shard][self._order[int(member_ids[m])]] for m in members
                )
                split_codes[shard].append(member_codes[members])
                split_offsets[shard].append(len(split_ids[shard]))

        for shard, collection in enumerate(self._primaries):
            shard_arrays = dict(shared)
            shard_arrays["list_clusters"] = np.asarray(split_clusters[shard], dtype=np.int64)
            shard_arrays["list_offsets"] = np.asarray(split_offsets[shard], dtype=np.int64)
            shard_arrays["list_ids"] = np.asarray(split_ids[shard], dtype=np.int64)
            shard_arrays["list_codes"] = (
                np.vstack(split_codes[shard]).astype(np.int32, copy=False)
                if split_codes[shard]
                else np.zeros((0, self._config.num_subspaces), dtype=np.int32)
            )
            shard_meta = {"kind": "ivfpq", "count": len(split_ids[shard])}
            collection._index = IVFPQIndex.from_state(
                self._dim, self._config, shard_meta, shard_arrays
            )
            collection._built = True
        self._ivfpq_ready = True

    def _tie_rank(self, hit: SearchHit) -> int:
        return self._global_position.get(hit.id, len(self._order))

    def search(self, query: np.ndarray, k: int) -> List[SearchHit]:
        """Scatter a single query to every shard and merge exact top-``k``."""
        if self.num_entities == 0 or k <= 0:
            return []
        self.flush()
        vector = np.asarray(query, dtype=np.float64)
        name = self._name
        per_shard = self._router.scatter(
            lambda backend: backend.get_collection(name).search(vector, k)
        )
        with obs_span("merge", num_shards=self.num_shards, k=k):
            return merge_top_k(per_shard, k, self._tie_rank)

    def search_batch(self, queries: np.ndarray, k: int) -> List[List[SearchHit]]:
        """Scatter a query batch to every shard and merge row-wise top-``k``."""
        batch = as_query_matrix(
            queries, self._dim, context=f"collection {self._name!r} queries"
        )
        if self.num_entities == 0 or k <= 0:
            return [[] for _ in range(batch.shape[0])]
        self.flush()
        name = self._name
        per_shard = self._router.scatter(
            lambda backend: backend.get_collection(name).search_batch(batch, k)
        )
        with obs_span("merge", num_shards=self.num_shards, k=k):
            return merge_top_k_batches(per_shard, k, self._tie_rank)

    def search_exhaustive(self, query: np.ndarray, k: int) -> List[SearchHit]:
        """Exact brute-force search, scattered and merged (w/o-ANNS ablation)."""
        vector = np.asarray(query, dtype=np.float64).reshape(-1)
        return self.search_exhaustive_batch(vector[None, :], k)[0]

    def search_exhaustive_batch(self, queries: np.ndarray, k: int) -> List[List[SearchHit]]:
        """Exact brute-force multi-query search across every shard."""
        batch = as_query_matrix(
            queries, self._dim, context=f"collection {self._name!r} queries"
        )
        if self.num_entities == 0 or k <= 0:
            return [[] for _ in range(batch.shape[0])]
        name = self._name
        per_shard = self._router.scatter(
            lambda backend: backend.get_collection(name).search_exhaustive_batch(batch, k)
        )
        with obs_span("merge", num_shards=self.num_shards, k=k):
            return merge_top_k_batches(per_shard, k, self._tie_rank)

    def get_vector(self, external_id: str) -> np.ndarray:
        """Return the stored vector for an id (routed to its shard)."""
        return self._primaries[self.shard_of(external_id)].get_vector(external_id)

    def get_metadata(self, external_id: str) -> Mapping[str, object]:
        """Return the metadata dict stored for an id (routed to its shard)."""
        return self._primaries[self.shard_of(external_id)].get_metadata(external_id)

    def ids(self) -> List[str]:
        """All external ids in global insertion order."""
        return list(self._order)

    def shard_sizes(self) -> List[int]:
        """Entity count per shard (diagnostics / balance reporting)."""
        return [collection.num_entities for collection in self._primaries]

    def storage_bytes(self) -> int:
        """Approximate memory footprint of the raw vectors (for reporting)."""
        return self.num_entities * self._dim * 8


class ShardedDatabase:
    """Scatter-gather facade over ``num_shards`` :class:`VectorDatabase` shards.

    Mirrors the :class:`VectorDatabase` API; collections created through it
    are :class:`ShardedCollection` objects whose entities are spread across
    the shard databases and whose searches are merged back into exact global
    rankings.  Each shard is fronted by a replica group: by default the
    ``num_replicas`` replicas route to the same in-process shard (giving the
    round-robin/health semantics without duplicating memory), and
    :meth:`add_replica` attaches independently loaded copies.
    """

    SHARD_DIR = "shards"

    def __init__(self, config: ShardConfig | None = None) -> None:
        self._config = config or ShardConfig()
        self._collections: Dict[str, ShardedCollection] = {}
        self._install_shards([VectorDatabase() for _ in range(self._config.num_shards)])

    def _install_shards(self, shards: Sequence[VectorDatabase]) -> None:
        self._shards = list(shards)
        self._groups = [ReplicaGroup(index) for index in range(len(self._shards))]
        for group, shard in zip(self._groups, self._shards):
            for _ in range(self._config.num_replicas):
                group.add(shard)
        self._router = ShardRouter(self._groups, self._config.max_parallel)

    @property
    def num_shards(self) -> int:
        """Number of shard databases."""
        return len(self._shards)

    @property
    def shard_config(self) -> ShardConfig:
        """The sharding configuration."""
        return self._config

    @property
    def shards(self) -> List[VectorDatabase]:
        """The primary shard databases, indexed by shard."""
        return list(self._shards)

    @property
    def router(self) -> ShardRouter:
        """The scatter-gather router (exposes replica health)."""
        return self._router

    @property
    def replica_groups(self) -> List[ReplicaGroup]:
        """Per-shard replica groups, indexed by shard."""
        return list(self._groups)

    def add_replica(self, shard_index: int, backend: object) -> None:
        """Attach one more replica backend to a shard's group.

        The backend must answer the same queries as the shard (typically a
        separately loaded copy of the same shard snapshot).
        """
        if not 0 <= shard_index < len(self._groups):
            raise ShardError(
                f"Shard index {shard_index} out of range for {len(self._groups)} shards"
            )
        self._groups[shard_index].add(backend)

    def create_collection(
        self, name: str, dim: int, config: IndexConfig | None = None
    ) -> ShardedCollection:
        """Create a sharded collection; raises if the name is taken."""
        if name in self._collections:
            raise CollectionExistsError(f"Collection {name!r} already exists")
        index_config = config or IndexConfig()
        primaries = [shard.create_collection(name, dim, index_config) for shard in self._shards]
        collection = ShardedCollection(
            name,
            dim,
            index_config,
            make_partitioner(self._config),
            primaries,
            self._router,
        )
        self._collections[name] = collection
        return collection

    def add_collection(self, collection: VectorCollection) -> ShardedCollection:
        """Adopt an unsharded collection by re-partitioning its entities.

        This is the migration path from a single-box snapshot: ids, vectors,
        and metadata are re-inserted in their original insertion order, so
        index training (and therefore search results) match the original.
        """
        sharded = self.create_collection(collection.name, collection.dim, collection.config)
        order = collection.ids()
        if order:
            sharded.insert(
                order,
                np.vstack([collection.get_vector(external_id) for external_id in order]),
                [collection.get_metadata(external_id) for external_id in order],
            )
        return sharded

    def get_collection(self, name: str) -> ShardedCollection:
        """Fetch an existing sharded collection by name."""
        try:
            return self._collections[name]
        except KeyError as error:
            raise CollectionNotFoundError(f"Collection {name!r} does not exist") from error

    def has_collection(self, name: str) -> bool:
        """Whether a collection with ``name`` exists."""
        return name in self._collections

    def drop_collection(self, name: str) -> None:
        """Delete a collection from every shard; raises if it does not exist."""
        if name not in self._collections:
            raise CollectionNotFoundError(f"Collection {name!r} does not exist")
        del self._collections[name]
        for shard in self._shards:
            if shard.has_collection(name):
                shard.drop_collection(name)

    def search(self, name: str, query: np.ndarray, k: int) -> List[SearchHit]:
        """Single-query scatter-gather search against a named collection."""
        return self.get_collection(name).search(query, k)

    def search_batch(self, name: str, queries: np.ndarray, k: int) -> List[List[SearchHit]]:
        """Multi-query scatter-gather search (one merged list per row)."""
        return self.get_collection(name).search_batch(queries, k)

    def list_collections(self) -> List[str]:
        """Names of all collections."""
        return sorted(self._collections)

    def total_entities(self) -> int:
        """Total number of vectors across every collection."""
        return sum(collection.num_entities for collection in self._collections.values())

    def status(self) -> Dict[str, object]:
        """Shard/replica health and balance summary (for ``/v1/stats``).

        The overall ``"health"`` classifies the replica topology: ``"ok"``
        (every replica healthy), ``"degraded"`` (some replicas down but every
        shard still has at least one), or ``"unavailable"`` (a shard has no
        healthy replica left — scatter queries will fail).
        """
        shards = []
        for index, group_status in enumerate(self._router.status()):
            entry = dict(group_status)
            entry["entities"] = sum(
                collection.shard_collections[index].num_entities
                for collection in self._collections.values()
            )
            shards.append(entry)
        if any(entry["healthy_replicas"] == 0 for entry in shards):
            health = "unavailable"
        elif any(entry["healthy_replicas"] < entry["replicas"] for entry in shards):
            health = "degraded"
        else:
            health = "ok"
        return {"num_shards": self.num_shards, "health": health, "shards": shards}

    def save(self, path: str | Path) -> None:
        """Persist the whole sharded database to a directory tree.

        Layout: ``sharded.json`` (shard config + per-collection routing
        state), ``sharded.npz`` (global insertion order and partitioner
        arrays), and ``shards/{i:04d}/`` — one full, self-contained
        :class:`VectorDatabase` snapshot per shard.  The ``sharded.json``
        marker is what the storage layer dispatches on at load time.
        """
        root = Path(path)
        root.mkdir(parents=True, exist_ok=True)
        entries = []
        payload_arrays: Dict[str, np.ndarray] = {}
        for slot, name in enumerate(self.list_collections()):
            collection = self._collections[name]
            # Finalise before the shard saves run: IVF-PQ shards must be
            # split from the global trainer, never trained per shard.
            collection.flush()
            partition_meta, partition_arrays = collection._partitioner.to_state()
            entries.append(
                {
                    "name": name,
                    "dim": collection.dim,
                    "partitioner": partition_meta,
                    "ivfpq_ready": collection._ivfpq_ready,
                }
            )
            payload_arrays[f"c{slot:04d}_order"] = (
                np.asarray(collection._order, dtype=np.str_)
                if collection._order
                else np.zeros(0, dtype="<U1")
            )
            for key, value in partition_arrays.items():
                payload_arrays[f"c{slot:04d}_{key}"] = value
        for index, shard in enumerate(self._shards):
            shard.save(root / self.SHARD_DIR / f"{index:04d}")
        save_arrays(root / "sharded.npz", payload_arrays)
        save_json(
            root / "sharded.json",
            {
                "version": 1,
                "shard_config": asdict(self._config),
                "collections": entries,
            },
        )

    @classmethod
    def load(cls, path: str | Path) -> "ShardedDatabase":
        """Restore a sharded database, loading all shards in parallel."""
        root = Path(path)
        payload = load_json(root / "sharded.json")
        config = ShardConfig(**payload["shard_config"])
        shard_dirs = [
            root / cls.SHARD_DIR / f"{index:04d}" for index in range(config.num_shards)
        ]
        missing = [str(directory) for directory in shard_dirs if not directory.is_dir()]
        if missing:
            raise SnapshotCorruptionError(
                f"Sharded snapshot is missing shard directories: {missing}"
            )
        if config.num_shards > 1:
            with ThreadPoolExecutor(max_workers=config.num_shards) as pool:
                shards = list(pool.map(VectorDatabase.load, shard_dirs))
        else:
            shards = [VectorDatabase.load(shard_dirs[0])]

        database = cls(config)
        database._router.close()
        database._install_shards(shards)
        arrays = load_arrays(root / "sharded.npz") if (root / "sharded.npz").exists() else {}
        for slot, entry in enumerate(payload.get("collections", [])):
            name = str(entry["name"])
            primaries = []
            for shard in shards:
                if not shard.has_collection(name):
                    raise SnapshotCorruptionError(
                        f"Shard snapshot is missing collection {name!r}"
                    )
                primaries.append(shard.get_collection(name))
            index_config = primaries[0].config
            partition_arrays = {
                key[len(f"c{slot:04d}_") :]: value
                for key, value in arrays.items()
                if key.startswith(f"c{slot:04d}_") and key != f"c{slot:04d}_order"
            }
            partitioner = Partitioner.from_state(
                config, entry.get("partitioner", {}), partition_arrays
            )
            collection = ShardedCollection(
                name, int(entry["dim"]), index_config, partitioner, primaries, database._router
            )
            order = [str(external_id) for external_id in arrays.get(f"c{slot:04d}_order", [])]
            assignment: Dict[str, int] = {}
            for shard_index, primary in enumerate(primaries):
                for external_id in primary.ids():
                    assignment[external_id] = shard_index
            if len(order) != len(assignment) or any(
                external_id not in assignment for external_id in order
            ):
                raise SnapshotCorruptionError(
                    f"Sharded collection {name!r} order does not match shard membership"
                )
            collection._order = order
            collection._global_position = {
                external_id: position for position, external_id in enumerate(order)
            }
            collection._assignment = assignment
            collection._ivfpq_ready = bool(entry.get("ivfpq_ready", bool(order)))
            database._collections[name] = collection
        return database
