"""Sharded scatter-gather layer over the vector database.

Partition a collection across N shard databases, fan queries out in parallel,
and merge per-shard top-k into exact global top-k — with replica groups for
round-robin routing and failover.  See :mod:`repro.shard.database`.
"""

from repro.shard.database import ShardedCollection, ShardedDatabase
from repro.shard.partition import (
    HashPartitioner,
    KMeansPartitioner,
    Partitioner,
    make_partitioner,
    stable_shard_hash,
)
from repro.shard.router import (
    Replica,
    ReplicaGroup,
    ShardRouter,
    merge_top_k,
    merge_top_k_batches,
)

__all__ = [
    "HashPartitioner",
    "KMeansPartitioner",
    "Partitioner",
    "Replica",
    "ReplicaGroup",
    "ShardRouter",
    "ShardedCollection",
    "ShardedDatabase",
    "make_partitioner",
    "merge_top_k",
    "merge_top_k_batches",
    "stable_shard_hash",
]
