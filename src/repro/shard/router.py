"""Scatter-gather routing over shard replica groups.

The :class:`ShardRouter` is the fan-out heart of the sharded database: a call
is dispatched to every shard in parallel on a thread pool, each shard answers
from one of its replicas (round-robin over the healthy ones), and the
per-shard top-``k`` lists are merged into the exact global top-``k``.

Replica health is managed here too: a replica whose call raises an unexpected
error is marked unhealthy and the call fails over to the next replica of the
same group, so one dead replica degrades capacity instead of dropping
queries.  Deterministic *request* errors (dimension mismatches, unknown
collections, validation failures) are propagated immediately — they would
fail identically on every replica, so failing over would only mask the bug
and poison the health state.
"""

from __future__ import annotations

import contextvars
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Dict, List, Optional, Sequence, TypeVar

from repro.errors import (
    CollectionExistsError,
    CollectionNotFoundError,
    ConfigurationError,
    DimensionMismatchError,
    QueryError,
    ShardError,
    ShardUnavailableError,
)
from repro.obs.registry import REGISTRY
from repro.obs.trace import record_span, span as obs_span, tracing_active
from repro.vectordb.collection import SearchHit
from repro.utils.locking import create_lock

T = TypeVar("T")

#: Per-replica call latency, labelled by shard, replica, and outcome
#: ("ok" / "error" / "request_error").  Lives in the module-level registry
#: because the router sits below any engine that could own it.
SHARD_CALL_SECONDS = REGISTRY.histogram(
    "lovo_shard_call_seconds",
    "Latency of individual shard replica calls.",
    ("shard", "replica", "outcome"),
)

#: Failovers per shard: calls that moved on to another replica after an
#: unexpected error marked the serving replica unhealthy.
SHARD_FAILOVERS = REGISTRY.counter(
    "lovo_shard_failovers_total",
    "Shard calls that failed over to another replica.",
    ("shard",),
)

#: Errors that indicate a bad *request*, not a bad replica: every replica of a
#: group would raise them identically, so the router propagates them without
#: touching replica health.
NON_FAILOVER_ERRORS = (
    CollectionExistsError,
    CollectionNotFoundError,
    ConfigurationError,
    DimensionMismatchError,
    QueryError,
    ShardError,
)


class Replica:
    """One routable copy of a shard's data, with its own health state."""

    def __init__(self, backend: object, shard_index: int, replica_index: int) -> None:
        self.backend = backend
        self.shard_index = shard_index
        self.replica_index = replica_index
        self.healthy = True

    @property
    def name(self) -> str:
        """Stable display name, e.g. ``shard-2/replica-0``."""
        return f"shard-{self.shard_index}/replica-{self.replica_index}"


class ReplicaGroup:
    """The replicas of one shard, with round-robin selection over healthy ones."""

    def __init__(self, shard_index: int) -> None:
        self.shard_index = shard_index
        self._replicas: List[Replica] = []
        self._cursor = 0
        self._lock = create_lock("ReplicaGroup._lock")

    def add(self, backend: object) -> Replica:
        """Register one more replica backend; returns its handle."""
        with self._lock:
            replica = Replica(backend, self.shard_index, len(self._replicas))
            self._replicas.append(replica)
            return replica

    @property
    def replicas(self) -> List[Replica]:
        """All replicas of the group (healthy or not)."""
        with self._lock:
            return list(self._replicas)

    def rotation(self) -> List[Replica]:
        """Healthy replicas in round-robin order, advancing the cursor.

        The first element differs call to call, spreading load across
        replicas; the rest of the list is the failover order for this call.
        """
        with self._lock:
            healthy = [replica for replica in self._replicas if replica.healthy]
            if not healthy:
                return []
            start = self._cursor % len(healthy)
            self._cursor += 1
            return healthy[start:] + healthy[:start]

    def mark_unhealthy(self, replica: Replica) -> None:
        """Take a replica out of the rotation (e.g. after a failed call)."""
        replica.healthy = False

    def mark_healthy(self, replica: Replica) -> None:
        """Return a replica to the rotation (e.g. after recovery)."""
        replica.healthy = True

    def status(self) -> Dict[str, object]:
        """Health summary used by the serving ``/v1/stats`` endpoint."""
        with self._lock:
            healthy = sum(1 for replica in self._replicas if replica.healthy)
            return {
                "shard": self.shard_index,
                "replicas": len(self._replicas),
                "healthy_replicas": healthy,
            }


class ShardRouter:
    """Fan calls out across shard replica groups and merge their answers."""

    def __init__(self, groups: Sequence[ReplicaGroup], max_parallel: int = 0) -> None:
        if not groups:
            raise ShardError("ShardRouter needs at least one replica group")
        self._groups = list(groups)
        workers = max_parallel if max_parallel > 0 else len(self._groups)
        # A single shard is answered inline — no pool, no dispatch overhead —
        # so the 1-shard configuration behaves like the classic database.
        self._executor: Optional[ThreadPoolExecutor] = (
            ThreadPoolExecutor(max_workers=workers, thread_name_prefix="lovo-shard")
            if len(self._groups) > 1
            else None
        )

    @property
    def num_shards(self) -> int:
        """Number of shard groups routed over."""
        return len(self._groups)

    @property
    def groups(self) -> List[ReplicaGroup]:
        """The replica groups, indexed by shard."""
        return list(self._groups)

    def scatter(self, fn: Callable[[object], T]) -> List[T]:
        """Run ``fn(backend)`` once per shard (in parallel) and gather results.

        Each shard's call is answered by one healthy replica, failing over on
        unexpected errors; the returned list is ordered by shard index.  When
        a trace is active, the scatter records one ``shard_search`` span per
        replica attempt — pool threads inherit the caller's trace context via
        a fresh ``contextvars`` copy per shard (a single context object must
        not run in two threads at once).
        """
        if self._executor is None:
            with obs_span("scatter", num_shards=len(self._groups)):
                return [self._call_with_failover(group, fn) for group in self._groups]
        with obs_span("scatter", num_shards=len(self._groups)):
            propagate = tracing_active()
            futures = []
            for group in self._groups:
                if propagate:
                    context = contextvars.copy_context()
                    futures.append(
                        self._executor.submit(
                            context.run, self._call_with_failover, group, fn
                        )
                    )
                else:
                    futures.append(
                        self._executor.submit(self._call_with_failover, group, fn)
                    )
            return [future.result() for future in futures]

    @staticmethod
    def _result_size(result: object) -> Optional[int]:
        """Candidate count of one shard call's result, when it is hit-shaped.

        ``search`` answers a list of hits, ``search_batch`` a list of
        per-query hit lists; anything else (ids, stats dicts) has no
        candidate count and stays unannotated.
        """
        if not isinstance(result, list):
            return None
        if not result:
            return 0
        if all(isinstance(entry, list) for entry in result):
            return sum(len(entry) for entry in result)
        if all(isinstance(entry, SearchHit) for entry in result):
            return len(result)
        return None

    def _call_with_failover(self, group: ReplicaGroup, fn: Callable[[object], T]) -> T:
        last_error: Optional[BaseException] = None
        shard = str(group.shard_index)
        failed_over = False
        for replica in group.rotation():
            start = time.perf_counter()
            try:
                result = fn(replica.backend)
            except NON_FAILOVER_ERRORS:
                end = time.perf_counter()
                SHARD_CALL_SECONDS.observe(
                    end - start, shard=shard, replica=replica.name, outcome="request_error"
                )
                record_span(
                    "shard_search",
                    start,
                    end,
                    shard=group.shard_index,
                    replica=replica.name,
                    outcome="request_error",
                    failover=failed_over,
                )
                raise
            except Exception as error:  # noqa: BLE001 - replica failure → fail over
                end = time.perf_counter()
                SHARD_CALL_SECONDS.observe(
                    end - start, shard=shard, replica=replica.name, outcome="error"
                )
                SHARD_FAILOVERS.inc(shard=shard)
                record_span(
                    "shard_search",
                    start,
                    end,
                    shard=group.shard_index,
                    replica=replica.name,
                    outcome="error",
                    failover=failed_over,
                )
                group.mark_unhealthy(replica)
                failed_over = True
                last_error = error
                continue
            end = time.perf_counter()
            SHARD_CALL_SECONDS.observe(
                end - start, shard=shard, replica=replica.name, outcome="ok"
            )
            hits = self._result_size(result) if tracing_active() else None
            if hits is None:
                record_span(
                    "shard_search",
                    start,
                    end,
                    shard=group.shard_index,
                    replica=replica.name,
                    outcome="ok",
                    failover=failed_over,
                )
            else:
                record_span(
                    "shard_search",
                    start,
                    end,
                    shard=group.shard_index,
                    replica=replica.name,
                    outcome="ok",
                    failover=failed_over,
                    hits=hits,
                )
            return result
        raise ShardUnavailableError(
            f"Shard {group.shard_index} has no healthy replica left"
        ) from last_error

    def status(self) -> List[Dict[str, object]]:
        """Per-shard replica health, ordered by shard index."""
        return [group.status() for group in self._groups]

    def close(self) -> None:
        """Shut the scatter pool down (idempotent)."""
        if self._executor is not None:
            self._executor.shutdown(wait=False)
            self._executor = None


def merge_top_k(
    per_shard: Sequence[Sequence[SearchHit]],
    k: int,
    tie_rank: Callable[[SearchHit], int] | None = None,
) -> List[SearchHit]:
    """Exact global top-``k`` from per-shard top-``k`` hit lists.

    Each input list already holds its shard's best ``k`` hits, so the global
    winners are guaranteed to be in the union; a sort of the (small) union
    suffices.  ``tie_rank`` breaks exact score ties deterministically —
    the sharded collection passes global insertion order so merged results
    match the single-database ordering even when distinct entities share a
    score (e.g. IVF-PQ entities that share a PQ code).
    """
    union = [hit for hits in per_shard for hit in hits]
    if tie_rank is None:
        union.sort(key=lambda hit: -hit.score)
    else:
        union.sort(key=lambda hit: (-hit.score, tie_rank(hit)))
    return union[:k]


def merge_top_k_batches(
    per_shard: Sequence[Sequence[Sequence[SearchHit]]],
    k: int,
    tie_rank: Callable[[SearchHit], int] | None = None,
) -> List[List[SearchHit]]:
    """Row-wise :func:`merge_top_k` over per-shard *batched* results."""
    if not per_shard:
        return []
    num_rows = len(per_shard[0])
    if any(len(rows) != num_rows for rows in per_shard):
        raise ShardError("Shards returned differing batch sizes")
    return [
        merge_top_k([rows[row] for rows in per_shard], k, tie_rank)
        for row in range(num_rows)
    ]
