"""Analysis engine: file discovery, suppressions, and the LOVO002 finaliser.

Suppression syntax (parsed from comments via :mod:`tokenize`)::

    x = time.time()  # lovo: ignore[LOVO004] wall-clock timestamp for export
    # lovo: ignore[LOVO003] poll loop releases within 50ms
    queue.get(timeout=poll)
    def insert(self, ...):  # lovo: ignore[LOVO005] corpus growth is the product

A suppression applies to findings on its own line, on the immediately
following line (comment-above style), or — when the comment sits on a
``def``/``class`` header line — to every finding inside that definition.
``# lovo: ignore`` without a bracket suppresses all codes at that location;
text after the bracket is recorded as the justification.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from .findings import Finding
from .rules import ModuleChecker

_SUPPRESSION_RE = re.compile(
    r"lovo:\s*ignore(?:\[(?P<codes>[A-Za-z0-9,\s]+)\])?\s*(?P<why>.*)$"
)


@dataclass
class Suppression:
    line: int
    codes: Optional[Set[str]]  # None → all codes
    justification: str

    def matches(self, code: str) -> bool:
        return self.codes is None or code in self.codes


@dataclass
class _FileInfo:
    path: str
    suppressions: List[Suppression] = field(default_factory=list)
    #: def/class header line → (first line, last line) of the definition
    def_ranges: Dict[int, Tuple[int, int]] = field(default_factory=dict)

    def apply(self, finding: Finding) -> None:
        for suppression in self.suppressions:
            if not suppression.matches(finding.code):
                continue
            if suppression.line in (finding.line, finding.line - 1):
                finding.suppressed = True
                finding.justification = suppression.justification or None
                return
            span = self.def_ranges.get(suppression.line)
            if span and span[0] <= finding.line <= span[1]:
                finding.suppressed = True
                finding.justification = suppression.justification or None
                return


def parse_suppressions(source: str) -> List[Suppression]:
    suppressions: List[Suppression] = []
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for token in tokens:
            if token.type != tokenize.COMMENT:
                continue
            match = _SUPPRESSION_RE.search(token.string)
            if not match:
                continue
            codes: Optional[Set[str]] = None
            if match.group("codes"):
                codes = {
                    chunk.strip().upper()
                    for chunk in match.group("codes").split(",")
                    if chunk.strip()
                }
            suppressions.append(
                Suppression(
                    line=token.start[0],
                    codes=codes,
                    justification=match.group("why").strip(),
                )
            )
    except tokenize.TokenError:
        pass
    return suppressions


def _collect_def_ranges(tree: ast.Module) -> Dict[int, Tuple[int, int]]:
    ranges: Dict[int, Tuple[int, int]] = {}
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            end = getattr(node, "end_lineno", node.lineno)
            ranges[node.lineno] = (node.lineno, end)
    return ranges


class Analyzer:
    """Accumulates per-file findings plus the global static lock-order graph."""

    def __init__(self) -> None:
        self.findings: List[Finding] = []
        self.checked_files = 0
        self.errors: List[str] = []
        self._file_infos: Dict[str, _FileInfo] = {}
        #: holder lock name → {acquired lock name → [(path, line, col), ...]}
        self._edges: Dict[str, Dict[str, List[Tuple[str, int, int]]]] = {}

    # ------------------------------------------------------------------ input

    def add_source(self, source: str, path: str = "<string>") -> None:
        try:
            tree = ast.parse(source, filename=path)
        except SyntaxError as error:
            self.errors.append(f"{path}: {error}")
            return
        self.checked_files += 1
        info = _FileInfo(
            path=path,
            suppressions=parse_suppressions(source),
            def_ranges=_collect_def_ranges(tree),
        )
        self._file_infos[path] = info
        checker = ModuleChecker(tree, path).run()
        for finding in checker.findings:
            info.apply(finding)
            self.findings.append(finding)
        for (holder, acquired), sites in checker.lock_edges.items():
            self._edges.setdefault(holder, {}).setdefault(acquired, []).extend(sites)

    def add_file(self, path: Path) -> None:
        try:
            source = path.read_text(encoding="utf-8")
        except OSError as error:
            self.errors.append(f"{path}: {error}")
            return
        self.add_source(source, str(path))

    # --------------------------------------------------------------- finalise

    def finalize(self) -> List[Finding]:
        """Run the cross-file LOVO002 cycle check and return sorted findings."""
        for holder, successors in sorted(self._edges.items()):
            for acquired, sites in sorted(successors.items()):
                back_path = self._find_path(acquired, holder)
                if back_path is None:
                    continue
                cycle = " -> ".join([holder, acquired, *back_path[1:]])
                return_sites = self._edges.get(acquired, {}).get(back_path[1], [])
                elsewhere = (
                    f"{return_sites[0][0]}:{return_sites[0][1]}"
                    if return_sites
                    else "<unknown>"
                )
                for site_path, line, col in sites:
                    finding = Finding(
                        code="LOVO002",
                        message=(
                            f"acquiring '{acquired}' while holding '{holder}' closes "
                            f"the lock-order cycle {cycle}; the opposite order is "
                            f"taken at {elsewhere}, so two threads can deadlock"
                        ),
                        path=site_path,
                        line=line,
                        col=col,
                    )
                    info = self._file_infos.get(site_path)
                    if info is not None:
                        info.apply(finding)
                    self.findings.append(finding)
        self.findings.sort(key=Finding.sort_key)
        return self.findings

    def _find_path(self, start: str, goal: str) -> Optional[List[str]]:
        seen = {start}
        frontier: List[Tuple[str, List[str]]] = [(start, [start])]
        while frontier:
            node, path = frontier.pop()
            for successor in self._edges.get(node, {}):
                if successor == goal:
                    return path + [successor]
                if successor not in seen:
                    seen.add(successor)
                    frontier.append((successor, path + [successor]))
        return None

    # ------------------------------------------------------------- properties

    @property
    def unsuppressed(self) -> List[Finding]:
        return [finding for finding in self.findings if not finding.suppressed]

    @property
    def suppressed(self) -> List[Finding]:
        return [finding for finding in self.findings if finding.suppressed]


def iter_python_files(paths: Sequence[Path]) -> Iterable[Path]:
    for path in paths:
        if path.is_dir():
            for candidate in sorted(path.rglob("*.py")):
                if "__pycache__" not in candidate.parts:
                    yield candidate
        elif path.suffix == ".py":
            yield path


def analyze_source(source: str, path: str = "<string>") -> List[Finding]:
    """Analyse one module given as a source string (test/fixture entry point)."""
    analyzer = Analyzer()
    analyzer.add_source(source, path)
    return analyzer.finalize()


def analyze_paths(paths: Sequence[Path]) -> Analyzer:
    analyzer = Analyzer()
    for file_path in iter_python_files(paths):
        analyzer.add_file(file_path)
    analyzer.finalize()
    return analyzer


__all__ = [
    "Analyzer",
    "Suppression",
    "analyze_paths",
    "analyze_source",
    "iter_python_files",
    "parse_suppressions",
]
