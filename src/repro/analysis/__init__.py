"""Project-specific concurrency static analysis (the LOVO lint pass).

Run with ``python -m repro.analysis``.  Rules LOVO001–LOVO006 encode the
threading conventions of this codebase; see :mod:`repro.analysis.rules` for
the checkers and :data:`repro.analysis.findings.RULES` for the catalogue.
"""

from .engine import Analyzer, analyze_paths, analyze_source, parse_suppressions
from .findings import RULES, Finding
from .report import render_json, render_text

__all__ = [
    "Analyzer",
    "Finding",
    "RULES",
    "analyze_paths",
    "analyze_source",
    "parse_suppressions",
    "render_json",
    "render_text",
]
