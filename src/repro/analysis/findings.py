"""The finding record shared by the rule checkers and reporters."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional


@dataclass
class Finding:
    """One rule violation at a source location."""

    code: str
    message: str
    path: str
    line: int
    col: int = 0
    suppressed: bool = False
    justification: Optional[str] = None

    @property
    def location(self) -> str:
        return f"{self.path}:{self.line}:{self.col}"

    def sort_key(self):
        return (self.path, self.line, self.col, self.code)

    def to_dict(self) -> Dict[str, object]:
        payload: Dict[str, object] = {
            "code": self.code,
            "message": self.message,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "suppressed": self.suppressed,
        }
        if self.justification:
            payload["justification"] = self.justification
        return payload


RULES: Dict[str, str] = {
    "LOVO001": (
        "attribute mutated from a thread/executor-submitted callable without "
        "holding the lock that guards it elsewhere"
    ),
    "LOVO002": (
        "lock acquired while another lock is held in an order that inverts an "
        "order seen elsewhere (potential ABBA deadlock)"
    ),
    "LOVO003": "blocking call inside a `with <lock>:` body",
    "LOVO004": "time.time() used where perf_counter is the duration convention",
    "LOVO005": "container field grows in steady-state paths with no eviction or maxlen",
    "LOVO006": "bare/overbroad except swallows KeyboardInterrupt/SystemExit-like control flow",
}

__all__ = ["Finding", "RULES"]
