"""AST rule checkers for the LOVO concurrency lint pass.

Each :class:`ModuleChecker` analyses one parsed module and produces
:class:`~repro.analysis.findings.Finding` records plus the module's
contribution to the cross-file static lock-order graph (consumed by the
engine's LOVO002 finaliser).

The checks are deliberately heuristic — they key off the conventions this
codebase actually uses (``self._lock`` attributes built from ``threading`` or
:mod:`repro.utils.locking` factories, ``with self._lock:`` critical sections,
``threading.Thread(target=self._worker)`` / ``executor.submit(...)`` thread
entry points) so that a firing is worth a human look rather than noise.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from .findings import Finding

# Constructors whose result is treated as a lock field when assigned to
# ``self.<attr>`` (suffix match on the callable, so ``threading.Lock`` and a
# bare ``Lock`` both register).
_LOCK_CTOR_NAMES = {
    "Lock",
    "RLock",
    "Condition",
    "OrderedLock",
    "OrderedRLock",
    "create_lock",
    "create_rlock",
    "create_condition",
}

_GROWTH_METHODS = {"append", "appendleft", "add", "extend", "insert", "setdefault"}
_SHRINK_METHODS = {"pop", "popitem", "popleft", "remove", "clear", "discard"}
_MUTATING_METHODS = _GROWTH_METHODS | _SHRINK_METHODS | {"update"}
_CONTAINER_CTORS = {"list", "dict", "set", "OrderedDict", "Counter", "defaultdict", "deque"}
_SOCKET_BLOCKING_ATTRS = {"recv", "recv_into", "accept", "connect", "sendall", "makefile"}
_JOIN_RECEIVER_HINTS = ("thread", "worker", "proc")
_FUTURE_RECEIVER_HINTS = ("future", "fut")


def _callable_name(func: ast.expr) -> str:
    """Last dotted component of a call target (``threading.Lock`` → ``Lock``)."""
    if isinstance(func, ast.Attribute):
        return func.attr
    if isinstance(func, ast.Name):
        return func.id
    return ""


def _is_lock_ctor(node: ast.expr) -> bool:
    if isinstance(node, ast.Call) and _callable_name(node.func) in _LOCK_CTOR_NAMES:
        return True
    return False


def _self_attr(node: ast.expr) -> Optional[str]:
    """``X`` when *node* is ``self.X``, else ``None``."""
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


def _is_empty_container(node: ast.expr) -> Optional[bool]:
    """True if *node* builds an unbounded empty container, False if it is a
    bounded one (``deque(maxlen=...)``), None if it is not a container at all.
    """
    if isinstance(node, (ast.List, ast.Tuple)) and not node.elts:
        return True
    if isinstance(node, ast.Dict) and not node.keys:
        return True
    if isinstance(node, ast.Set):
        return True
    if isinstance(node, ast.Call):
        name = _callable_name(node.func)
        if name not in _CONTAINER_CTORS:
            return None
        if name == "deque":
            has_maxlen = any(kw.arg == "maxlen" for kw in node.keywords) or len(node.args) >= 2
            return not has_maxlen
        if name == "defaultdict":
            return True
        return not node.args and not node.keywords
    return None


@dataclass
class _Held:
    attr: str
    receiver: str
    line: int


@dataclass
class _Mutation:
    attr: str
    line: int
    col: int
    held_attrs: frozenset
    method: str


@dataclass
class _ClassFacts:
    name: str
    lock_fields: Set[str] = field(default_factory=set)
    thread_targets: Set[str] = field(default_factory=set)
    has_threads: bool = False
    mutations: List[_Mutation] = field(default_factory=list)
    container_fields: Dict[str, int] = field(default_factory=dict)
    growth_sites: Dict[str, List[Tuple[int, int, str]]] = field(default_factory=dict)
    bounded_fields: Set[str] = field(default_factory=set)


class ModuleChecker:
    """Run every LOVO rule against one module's AST."""

    def __init__(self, tree: ast.Module, path: str) -> None:
        self._tree = tree
        self._path = path
        self.findings: List[Finding] = []
        #: (holder name, acquired name) -> acquisition sites, fed to the
        #: engine's global LOVO002 graph.
        self.lock_edges: Dict[Tuple[str, str], List[Tuple[str, int, int]]] = {}
        self._time_imported_bare = False
        self._sleep_imported_bare = False

    # ----------------------------------------------------------------- driver

    def run(self) -> "ModuleChecker":
        self._scan_imports()
        self._check_time_calls()
        self._check_except_handlers()
        for node in ast.walk(self._tree):
            if isinstance(node, ast.ClassDef):
                self._check_class(node)
        return self

    def _emit(self, code: str, message: str, node: ast.AST) -> None:
        self.findings.append(
            Finding(
                code=code,
                message=message,
                path=self._path,
                line=getattr(node, "lineno", 0),
                col=getattr(node, "col_offset", 0),
            )
        )

    # ---------------------------------------------------------------- imports

    def _scan_imports(self) -> None:
        for node in ast.walk(self._tree):
            if isinstance(node, ast.ImportFrom) and node.module == "time":
                for alias in node.names:
                    if alias.name == "time" and alias.asname is None:
                        self._time_imported_bare = True
                    if alias.name == "sleep" and alias.asname is None:
                        self._sleep_imported_bare = True

    # ----------------------------------------------------- LOVO004: time.time

    def _check_time_calls(self) -> None:
        for node in ast.walk(self._tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            is_time_time = (
                isinstance(func, ast.Attribute)
                and func.attr == "time"
                and isinstance(func.value, ast.Name)
                and func.value.id == "time"
            )
            is_bare_time = (
                isinstance(func, ast.Name) and func.id == "time" and self._time_imported_bare
            )
            if is_time_time or is_bare_time:
                self._emit(
                    "LOVO004",
                    "time.time() measures wall-clock and can step backwards; this "
                    "codebase measures durations with time.perf_counter() — use it, "
                    "or suppress if wall-clock time is genuinely required",
                    node,
                )

    # --------------------------------------------- LOVO006: overbroad excepts

    def _check_except_handlers(self) -> None:
        for node in ast.walk(self._tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if not self._is_overbroad(node.type):
                continue
            if self._reraises(node):
                continue
            kind = "bare 'except:'" if node.type is None else "'except BaseException'"
            self._emit(
                "LOVO006",
                f"{kind} swallows KeyboardInterrupt/SystemExit and cancellation-style "
                "control flow; re-raise non-Exception errors (bare 'raise') or catch "
                "'Exception' instead",
                node,
            )

    @staticmethod
    def _is_overbroad(type_node: Optional[ast.expr]) -> bool:
        if type_node is None:
            return True
        candidates: Iterable[ast.expr]
        if isinstance(type_node, ast.Tuple):
            candidates = type_node.elts
        else:
            candidates = [type_node]
        return any(_callable_name(candidate) == "BaseException" for candidate in candidates)

    @staticmethod
    def _reraises(handler: ast.ExceptHandler) -> bool:
        for node in ast.walk(handler):
            if isinstance(node, ast.Raise):
                if node.exc is None:
                    return True
                if (
                    handler.name
                    and isinstance(node.exc, ast.Name)
                    and node.exc.id == handler.name
                ):
                    return True
        return False

    # ------------------------------------------------------------ class rules

    def _check_class(self, cls: ast.ClassDef) -> None:
        facts = _ClassFacts(name=cls.name)
        self._collect_lock_fields(cls, facts)
        methods = [
            node
            for node in cls.body
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        ]
        for method in methods:
            self._scan_method(cls, method, facts)
        self._emit_unguarded_mutations(facts)
        self._emit_unbounded_growth(facts)

    def _collect_lock_fields(self, cls: ast.ClassDef, facts: _ClassFacts) -> None:
        # ``self._lock = threading.Lock()`` style, anywhere in the class.
        for node in ast.walk(cls):
            if isinstance(node, (ast.Assign, ast.AnnAssign)):
                value = node.value
                targets = node.targets if isinstance(node, ast.Assign) else [node.target]
                if value is not None and _is_lock_ctor(value):
                    for target in targets:
                        attr = _self_attr(target)
                        if attr:
                            facts.lock_fields.add(attr)
        # Dataclass style: ``_lock: threading.Lock = field(default_factory=...)``.
        for node in cls.body:
            if (
                isinstance(node, ast.AnnAssign)
                and isinstance(node.target, ast.Name)
                and isinstance(node.value, ast.Call)
                and _callable_name(node.value.func) == "field"
            ):
                for kw in node.value.keywords:
                    if kw.arg == "default_factory":
                        factory_src = ast.unparse(kw.value)
                        if any(name in factory_src for name in _LOCK_CTOR_NAMES):
                            facts.lock_fields.add(node.target.id)

    # ------------------------------------------------------- per-method scan

    def _scan_method(
        self, cls: ast.ClassDef, method: ast.FunctionDef, facts: _ClassFacts
    ) -> None:
        method_name = method.name
        in_init = method_name == "__init__"

        def record_mutation(attr: str, node: ast.AST, held: Sequence[_Held]) -> None:
            facts.mutations.append(
                _Mutation(
                    attr=attr,
                    line=node.lineno,
                    col=node.col_offset,
                    held_attrs=frozenset(h.attr for h in held),
                    method=method_name,
                )
            )

        def record_growth(attr: str, node: ast.AST) -> None:
            if not in_init:
                facts.growth_sites.setdefault(attr, []).append(
                    (node.lineno, node.col_offset, method_name)
                )

        def visit(node: ast.AST, held: List[_Held]) -> None:
            if isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef, ast.Lambda)
            ):
                return  # nested scopes execute on their own schedule
            if isinstance(node, (ast.With, ast.AsyncWith)):
                acquired: List[_Held] = []
                for item in node.items:
                    ctx = item.context_expr
                    visit(ctx, held)
                    attr = _self_attr(ctx)
                    if attr is not None and attr in facts.lock_fields:
                        entry = _Held(attr=attr, receiver=ast.unparse(ctx), line=ctx.lineno)
                        for outer in held:
                            if outer.attr != attr:
                                self._record_edge(facts.name, outer.attr, attr, ctx)
                        acquired.append(entry)
                        held = held + [entry]
                for child in node.body:
                    visit(child, held)
                return
            if isinstance(node, ast.Call):
                self._note_thread_target(node, facts)
                if held:
                    self._check_blocking_call(node, held)
            if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
                targets = node.targets if isinstance(node, ast.Assign) else [node.target]
                for target in targets:
                    attr = _self_attr(target)
                    if attr is not None:
                        record_mutation(attr, node, held)
                        if in_init and node.value is not None:
                            bounded = _is_empty_container(node.value)
                            if bounded is True and attr not in facts.lock_fields:
                                facts.container_fields.setdefault(attr, node.lineno)
                            elif bounded is False:
                                facts.bounded_fields.add(attr)
                        elif not in_init and node.value is not None:
                            if _is_empty_container(node.value) is not None:
                                # steady-state reset: the field is emptied, so
                                # growth elsewhere is bounded by this path
                                facts.bounded_fields.add(attr)
                    elif isinstance(target, ast.Subscript):
                        base_attr = _self_attr(target.value)
                        if base_attr is not None:
                            record_mutation(base_attr, node, held)
                            record_growth(base_attr, node)
            if isinstance(node, ast.Delete):
                for target in node.targets:
                    if isinstance(target, ast.Subscript):
                        base_attr = _self_attr(target.value)
                        if base_attr is not None:
                            facts.bounded_fields.add(base_attr)
                            record_mutation(base_attr, node, held)
            if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
                base_attr = _self_attr(node.func.value)
                if base_attr is not None:
                    if node.func.attr in _MUTATING_METHODS:
                        record_mutation(base_attr, node, held)
                    if node.func.attr in _GROWTH_METHODS:
                        record_growth(base_attr, node)
                    if node.func.attr in _SHRINK_METHODS:
                        facts.bounded_fields.add(base_attr)
            if isinstance(node, ast.Call) and _callable_name(node.func) == "len":
                if node.args:
                    length_attr = _self_attr(node.args[0])
                    if length_attr is not None:
                        # ``len(self.X)`` in steady-state code is taken as
                        # evidence the field's size is watched/bounded
                        if not in_init:
                            facts.bounded_fields.add(length_attr)
            for child in ast.iter_child_nodes(node):
                visit(child, held)

        for statement in method.body:
            visit(statement, [])

    # ----------------------------------------------------- LOVO002 edge graph

    def _record_edge(self, cls_name: str, holder: str, acquired: str, node: ast.AST) -> None:
        key = (f"{cls_name}.{holder}", f"{cls_name}.{acquired}")
        self.lock_edges.setdefault(key, []).append(
            (self._path, node.lineno, node.col_offset)
        )

    # ------------------------------------------------- thread entry detection

    def _note_thread_target(self, call: ast.Call, facts: _ClassFacts) -> None:
        name = _callable_name(call.func)
        if name == "Thread" or name.endswith("Thread"):
            facts.has_threads = True
            for kw in call.keywords:
                if kw.arg == "target":
                    attr = _self_attr(kw.value)
                    if attr:
                        facts.thread_targets.add(attr)
        elif isinstance(call.func, ast.Attribute) and call.func.attr == "submit":
            facts.has_threads = True
            if call.args:
                attr = _self_attr(call.args[0])
                if attr:
                    facts.thread_targets.add(attr)

    # -------------------------------------------------- LOVO003: blocking ops

    def _check_blocking_call(self, call: ast.Call, held: List[_Held]) -> None:
        reason = self._blocking_reason(call, {h.receiver for h in held})
        if reason is None:
            return
        innermost = held[-1]
        self._emit(
            "LOVO003",
            f"{reason} while holding 'with {innermost.receiver}:' (line "
            f"{innermost.line}); blocking inside a critical section stalls every "
            "other thread contending for the lock",
            call,
        )

    def _blocking_reason(self, call: ast.Call, held_receivers: Set[str]) -> Optional[str]:
        func = call.func
        if isinstance(func, ast.Attribute):
            receiver = ast.unparse(func.value)
            low = receiver.lower()
            attr = func.attr
            if attr in {"wait", "wait_for"}:
                if receiver in held_receivers:
                    return None  # Condition.wait on the held lock releases it
                return f"'{receiver}.{attr}()' blocks"
            if attr in {"get", "put"} and ("queue" in low or low.endswith("_q")):
                return f"queue operation '{receiver}.{attr}()' can block"
            if attr == "join" and any(hint in low for hint in _JOIN_RECEIVER_HINTS):
                return f"'{receiver}.join()' blocks until the thread exits"
            if attr in _SOCKET_BLOCKING_ATTRS:
                return f"socket operation '{receiver}.{attr}()' blocks on I/O"
            if attr == "result" and any(hint in low for hint in _FUTURE_RECEIVER_HINTS):
                return f"'{receiver}.result()' blocks until the future resolves"
            if attr == "urlopen":
                return "HTTP request blocks on network I/O"
            if receiver == "time" and attr == "sleep":
                return "'time.sleep()' blocks"
            if receiver == "subprocess" and attr in {
                "run",
                "call",
                "check_call",
                "check_output",
            }:
                return f"'subprocess.{attr}()' blocks on the child process"
            if attr == "communicate":
                return f"'{receiver}.communicate()' blocks on the child process"
        elif isinstance(func, ast.Name):
            if func.id == "sleep" and self._sleep_imported_bare:
                return "'sleep()' blocks"
            if func.id == "urlopen":
                return "HTTP request blocks on network I/O"
        return None

    # ---------------------------------------------- LOVO001: unguarded writes

    def _emit_unguarded_mutations(self, facts: _ClassFacts) -> None:
        guarded: Dict[str, Set[str]] = {}
        for mutation in facts.mutations:
            if mutation.held_attrs:
                guarded.setdefault(mutation.attr, set()).update(mutation.held_attrs)
        seen: Set[Tuple[str, int]] = set()
        for mutation in facts.mutations:
            if mutation.held_attrs:
                continue
            if mutation.method == "__init__" or mutation.method.endswith("_locked"):
                continue
            if mutation.method not in facts.thread_targets:
                continue
            locks = guarded.get(mutation.attr)
            if not locks:
                continue
            key = (mutation.attr, mutation.line)
            if key in seen:
                continue
            seen.add(key)
            lock_list = ", ".join(f"self.{name}" for name in sorted(locks))
            self.findings.append(
                Finding(
                    code="LOVO001",
                    message=(
                        f"'{facts.name}.{mutation.method}' runs on a worker thread and "
                        f"mutates 'self.{mutation.attr}' without holding {lock_list}, "
                        "which guards it elsewhere in the class"
                    ),
                    path=self._path,
                    line=mutation.line,
                    col=mutation.col,
                )
            )

    # --------------------------------------------- LOVO005: unbounded growth

    def _emit_unbounded_growth(self, facts: _ClassFacts) -> None:
        if not facts.lock_fields and not facts.has_threads:
            return  # only concurrent/service classes are in scope
        for attr, sites in sorted(facts.growth_sites.items()):
            if attr not in facts.container_fields:
                continue
            if attr in facts.bounded_fields:
                continue
            line, col, method = min(sites)
            self.findings.append(
                Finding(
                    code="LOVO005",
                    message=(
                        f"'{facts.name}.{attr}' grows in '{method}' with no eviction, "
                        "maxlen, or len() bound anywhere in the class; long-running "
                        "services leak memory through fields like this"
                    ),
                    path=self._path,
                    line=line,
                    col=col,
                )
            )


__all__ = ["ModuleChecker"]
