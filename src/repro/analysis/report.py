"""Text and JSON reporters for the LOVO analysis pass."""

from __future__ import annotations

import json
from typing import List

from .engine import Analyzer
from .findings import RULES, Finding


def render_text(analyzer: Analyzer, show_suppressed: bool = False) -> str:
    lines: List[str] = []
    for finding in analyzer.findings:
        if finding.suppressed and not show_suppressed:
            continue
        marker = " (suppressed)" if finding.suppressed else ""
        lines.append(f"{finding.location}: {finding.code}{marker} {finding.message}")
        if finding.suppressed and finding.justification:
            lines.append(f"    justification: {finding.justification}")
    unsuppressed = len(analyzer.unsuppressed)
    suppressed = len(analyzer.suppressed)
    lines.append(
        f"checked {analyzer.checked_files} file(s): "
        f"{unsuppressed} finding(s), {suppressed} suppressed"
    )
    for error in analyzer.errors:
        lines.append(f"error: {error}")
    return "\n".join(lines)


def render_json(analyzer: Analyzer, show_suppressed: bool = False) -> str:
    findings = [
        finding.to_dict()
        for finding in analyzer.findings
        if show_suppressed or not finding.suppressed
    ]
    payload = {
        "rules": RULES,
        "checked_files": analyzer.checked_files,
        "findings": findings,
        "counts": {
            "unsuppressed": len(analyzer.unsuppressed),
            "suppressed": len(analyzer.suppressed),
        },
        "errors": analyzer.errors,
    }
    return json.dumps(payload, indent=2, sort_keys=True)


__all__ = ["render_json", "render_text", "Finding"]
