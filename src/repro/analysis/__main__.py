"""CLI for the LOVO concurrency lint pass: ``python -m repro.analysis``."""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional, Sequence

from .engine import analyze_paths
from .report import render_json, render_text


def _default_paths() -> List[Path]:
    import repro

    return [Path(repro.__file__).resolve().parent]


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="LOVO concurrency lint pass (stdlib-ast, project rules).",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        type=Path,
        help="files or directories to analyse (default: the repro package)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--show-suppressed",
        action="store_true",
        help="include suppressed findings in the report",
    )
    options = parser.parse_args(argv)

    paths = options.paths or _default_paths()
    analyzer = analyze_paths(paths)

    if options.format == "json":
        print(render_json(analyzer, show_suppressed=options.show_suppressed))
    else:
        print(render_text(analyzer, show_suppressed=options.show_suppressed))

    if analyzer.errors:
        return 2
    return 1 if analyzer.unsuppressed else 0


if __name__ == "__main__":
    sys.exit(main())
