"""Prometheus text exposition (format 0.0.4) over metric families.

Two halves:

* :func:`render` — serialise any list of :class:`~repro.obs.registry.
  MetricFamily` into the Prometheus text format (``# HELP``/``# TYPE``
  headers, escaped label values, ``_bucket``/``_sum``/``_count`` histogram
  series, summary quantiles);
* :func:`service_families` — map the serving engine's ``stats()`` snapshot
  (requests, latency percentiles, micro-batch histogram, cache, backend
  health) and the system's ingest :class:`~repro.utils.timing.PhaseTimer`
  totals into families, so the whole stack surfaces through one
  ``GET /v1/metrics`` scrape.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional

from repro.obs.registry import MetricFamily, Sample, format_float

#: The content type of the rendered exposition.
CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

#: Health states mapped to ``lovo_backend_health{state=...}`` one-hot gauges.
HEALTH_STATES = ("ok", "degraded", "unavailable", "not_ready")


def escape_help(text: str) -> str:
    r"""Escape a help string (``\`` and newlines)."""
    return text.replace("\\", r"\\").replace("\n", r"\n")


def escape_label_value(value: str) -> str:
    r"""Escape a label value (``\``, ``"`` and newlines)."""
    return value.replace("\\", r"\\").replace('"', r"\"").replace("\n", r"\n")


def _render_sample(sample: Sample) -> str:
    if sample.labels:
        body = ",".join(
            f'{name}="{escape_label_value(str(value))}"'
            for name, value in sample.labels.items()
        )
        return f"{sample.name}{{{body}}} {format_float(sample.value)}"
    return f"{sample.name} {format_float(sample.value)}"


def render(families: Iterable[MetricFamily]) -> str:
    """Serialise metric families into Prometheus text exposition format.

    Output is deterministic regardless of input order: families are emitted
    sorted by name, and families sharing a name and kind (e.g. the same
    counter collected from two registries) are merged into one ``# TYPE``
    block — Prometheus rejects duplicate headers.  Inputs are not mutated.
    """
    merged: Dict[str, Dict[str, object]] = {}
    for family in families:
        entry = merged.get(family.name)
        if entry is None or entry["kind"] != family.kind:
            merged[family.name] = {
                "kind": family.kind,
                "help": family.help,
                "samples": list(family.samples),
            }
        else:
            entry["samples"].extend(family.samples)  # type: ignore[union-attr]
            if not entry["help"]:
                entry["help"] = family.help
    lines: List[str] = []
    for name in sorted(merged):
        entry = merged[name]
        if entry["help"]:
            lines.append(f"# HELP {name} {escape_help(str(entry['help']))}")
        lines.append(f"# TYPE {name} {entry['kind']}")
        for sample in entry["samples"]:  # type: ignore[union-attr]
            lines.append(_render_sample(sample))
    return "\n".join(lines) + "\n"


def build_info_family() -> MetricFamily:
    """The ``lovo_build_info`` gauge: version/runtime labels, value 1.

    Imports are deferred so this module stays importable without pulling the
    ``repro`` package top-level (avoiding an import cycle) or numpy at
    module-import time.
    """
    import platform

    try:
        from importlib import metadata as importlib_metadata

        version = importlib_metadata.version("repro")
    except Exception:  # noqa: BLE001 - not installed as a distribution
        try:
            from repro import __version__ as version
        except Exception:  # noqa: BLE001
            version = "unknown"
    try:
        import numpy

        numpy_version = numpy.__version__
    except Exception:  # noqa: BLE001
        numpy_version = "unavailable"
    labels = {
        "version": str(version),
        "python": platform.python_version(),
        "numpy": numpy_version,
    }
    return MetricFamily(
        "lovo_build_info",
        "gauge",
        "Build and runtime versions (constant 1; metadata in labels).",
        [Sample("lovo_build_info", labels, 1.0)],
    )


def _counter(name: str, help: str, value: float) -> MetricFamily:
    return MetricFamily(name, "counter", help, [Sample(name, {}, float(value))])


def _gauge(name: str, help: str, value: float) -> MetricFamily:
    return MetricFamily(name, "gauge", help, [Sample(name, {}, float(value))])


def service_families(
    stats: Mapping[str, object],
    phase_totals: Optional[Mapping[str, float]] = None,
) -> List[MetricFamily]:
    """Metric families derived from one engine ``stats()`` snapshot.

    Everything is re-derived per scrape from the snapshot (the single source
    of truth), so no second set of counters can drift from ``/v1/stats``.
    """
    families: List[MetricFamily] = [
        _counter(
            "lovo_requests_total", "Query submissions admitted or rejected.",
            stats.get("requests_total", 0),
        ),
        _counter(
            "lovo_requests_completed_total", "Queries answered successfully.",
            stats.get("completed_total", 0),
        ),
        _counter(
            "lovo_requests_rejected_total",
            "Submissions rejected by admission control (backpressure).",
            stats.get("rejected_total", 0),
        ),
        _counter(
            "lovo_request_errors_total", "Queries that failed with an engine error.",
            stats.get("errors_total", 0),
        ),
        _gauge("lovo_uptime_seconds", "Engine uptime.", stats.get("uptime_seconds", 0.0)),
        _gauge("lovo_qps", "Completed queries per second since start.", stats.get("qps", 0.0)),
        _gauge(
            "lovo_queue_depth", "Admitted queries waiting for a micro-batch.",
            stats.get("queue_depth", 0),
        ),
        _gauge(
            "lovo_queue_capacity", "Admission queue capacity.",
            stats.get("queue_capacity", 0),
        ),
        _gauge("lovo_workers", "Worker threads serving batches.", stats.get("num_workers", 0)),
    ]

    latency = stats.get("latency_ms")
    if isinstance(latency, Mapping):
        name = "lovo_request_latency_seconds"
        samples = [
            Sample(name, {"quantile": quantile}, float(latency.get(key, 0.0)) / 1000.0)
            for quantile, key in (("0.5", "p50"), ("0.95", "p95"), ("0.99", "p99"))
        ]
        samples.append(
            Sample(f"{name}_sum", {}, float(stats.get("latency_seconds_sum", 0.0)))
        )
        samples.append(Sample(f"{name}_count", {}, float(stats.get("completed_total", 0))))
        families.append(
            MetricFamily(
                name,
                "summary",
                "End-to-end request latency (windowed quantiles).",
                samples,
            )
        )

    batches = stats.get("batches")
    if isinstance(batches, Mapping):
        histogram = batches.get("histogram")
        name = "lovo_microbatch_size"
        samples: List[Sample] = []
        if isinstance(histogram, Mapping) and histogram:
            # The stats histogram is exact (count per observed batch size), so
            # the cumulative buckets can use the observed sizes themselves.
            cumulative = 0
            total_queries = 0.0
            for size, count in sorted(
                ((int(size), int(count)) for size, count in histogram.items())
            ):
                cumulative += count
                total_queries += size * count
                samples.append(
                    Sample(f"{name}_bucket", {"le": format_float(float(size))}, float(cumulative))
                )
            samples.append(Sample(f"{name}_bucket", {"le": "+Inf"}, float(cumulative)))
            samples.append(Sample(f"{name}_sum", {}, total_queries))
            samples.append(Sample(f"{name}_count", {}, float(cumulative)))
        else:
            samples.append(Sample(f"{name}_bucket", {"le": "+Inf"}, 0.0))
            samples.append(Sample(f"{name}_sum", {}, 0.0))
            samples.append(Sample(f"{name}_count", {}, 0.0))
        families.append(
            MetricFamily(
                name, "histogram", "Queries coalesced per executed micro-batch.", samples
            )
        )

    cache = stats.get("cache")
    if isinstance(cache, Mapping):
        enabled = bool(cache.get("enabled", False))
        families.append(
            _gauge("lovo_cache_enabled", "Whether the result cache is enabled.", float(enabled))
        )
        if enabled:
            families.extend(
                [
                    _counter("lovo_cache_hits_total", "Result-cache hits.", cache.get("hits", 0)),
                    _counter(
                        "lovo_cache_misses_total", "Result-cache misses.", cache.get("misses", 0)
                    ),
                    _counter(
                        "lovo_cache_expirations_total",
                        "Result-cache hits lost to TTL expiry.",
                        cache.get("expirations", 0),
                    ),
                    _gauge("lovo_cache_size", "Live result-cache entries.", cache.get("size", 0)),
                    _gauge(
                        "lovo_cache_hit_rate", "Result-cache hit rate.", cache.get("hit_rate", 0.0)
                    ),
                ]
            )

    backend = stats.get("backend")
    if isinstance(backend, Mapping):
        health = str(stats.get("health", backend.get("health", "ok")))
        families.append(
            MetricFamily(
                "lovo_backend_health",
                "gauge",
                "Backend health state (one-hot over states).",
                [
                    Sample(
                        "lovo_backend_health",
                        {"state": state},
                        1.0 if state == health else 0.0,
                    )
                    for state in HEALTH_STATES
                ],
            )
        )
        shards = backend.get("shards")
        if isinstance(shards, list):
            replica_samples: List[Sample] = []
            healthy_samples: List[Sample] = []
            entity_samples: List[Sample] = []
            for entry in shards:
                if not isinstance(entry, Mapping):
                    continue
                shard = str(entry.get("shard", ""))
                replica_samples.append(
                    Sample(
                        "lovo_shard_replicas", {"shard": shard}, float(entry.get("replicas", 0))
                    )
                )
                healthy_samples.append(
                    Sample(
                        "lovo_shard_healthy_replicas",
                        {"shard": shard},
                        float(entry.get("healthy_replicas", 0)),
                    )
                )
                entity_samples.append(
                    Sample(
                        "lovo_shard_entities", {"shard": shard}, float(entry.get("entities", 0))
                    )
                )
            families.extend(
                [
                    MetricFamily(
                        "lovo_shard_replicas", "gauge", "Registered replicas per shard.",
                        replica_samples,
                    ),
                    MetricFamily(
                        "lovo_shard_healthy_replicas", "gauge", "Healthy replicas per shard.",
                        healthy_samples,
                    ),
                    MetricFamily(
                        "lovo_shard_entities", "gauge", "Stored entities per shard.",
                        entity_samples,
                    ),
                ]
            )

    traces = stats.get("traces")
    if isinstance(traces, Mapping):
        families.append(
            _gauge(
                "lovo_traces_stored", "Traces retained in the in-memory store.",
                traces.get("stored", 0),
            )
        )
        families.append(
            _gauge(
                "lovo_traces_slow", "Traces retained in the slow-query log.",
                traces.get("slow", 0),
            )
        )

    if phase_totals:
        families.append(
            MetricFamily(
                "lovo_phase_seconds_total",
                "counter",
                "Accumulated wall-clock seconds per pipeline phase.",
                [
                    Sample("lovo_phase_seconds_total", {"phase": phase}, float(seconds))
                    for phase, seconds in sorted(phase_totals.items())
                ],
            )
        )
    return families


def parse_exposition(text: str) -> Dict[str, Dict[str, object]]:
    """Parse rendered exposition back into ``{name: {"type", "samples"}}``.

    A deliberately small parser used by the round-trip tests and example —
    it understands exactly what :func:`render` emits (one metric per line,
    quoted label values with ``\\``/``\\"``/``\\n`` escapes).
    """
    metrics: Dict[str, Dict[str, object]] = {}

    def _entry(name: str) -> Dict[str, object]:
        return metrics.setdefault(name, {"type": None, "help": None, "samples": []})

    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        if line.startswith("# TYPE "):
            _, _, rest = line.partition("# TYPE ")
            name, _, kind = rest.partition(" ")
            _entry(name)["type"] = kind.strip()
            continue
        if line.startswith("# HELP "):
            _, _, rest = line.partition("# HELP ")
            name, _, help_text = rest.partition(" ")
            _entry(name)["help"] = help_text
            continue
        if line.startswith("#"):
            continue
        name, labels, value = _parse_sample_line(line)
        family = name
        for suffix in ("_bucket", "_sum", "_count"):
            if name.endswith(suffix) and name[: -len(suffix)] in metrics:
                family = name[: -len(suffix)]
                break
        _entry(family)["samples"].append(  # type: ignore[union-attr]
            {"name": name, "labels": labels, "value": value}
        )
    return metrics


def _parse_sample_line(line: str):
    if "{" in line:
        name, _, rest = line.partition("{")
        body, _, value_part = rest.rpartition("} ")
        labels: Dict[str, str] = {}
        position = 0
        while position < len(body):
            equals = body.index("=", position)
            label_name = body[position:equals]
            if body[equals + 1] != '"':
                raise ValueError(f"Malformed label in {line!r}")
            cursor = equals + 2
            chunks: List[str] = []
            while body[cursor] != '"':
                if body[cursor] == "\\":
                    escape = body[cursor + 1]
                    chunks.append({"n": "\n", '"': '"', "\\": "\\"}[escape])
                    cursor += 2
                else:
                    chunks.append(body[cursor])
                    cursor += 1
            labels[label_name] = "".join(chunks)
            position = cursor + 1
            if position < len(body) and body[position] == ",":
                position += 1
    else:
        name, _, value_part = line.partition(" ")
        labels = {}
    value_text = value_part.strip()
    if value_text == "+Inf":
        value = float("inf")
    elif value_text == "-Inf":
        value = float("-inf")
    else:
        value = float(value_text)
    return name, labels, value
