"""Request tracing: spans, traces, contextvar propagation, and the trace store.

One served query crosses several threads — the HTTP handler thread submits,
the micro-batcher queues, an engine worker executes the batch, and the shard
router fans the ANN search out across a thread pool.  A :class:`Trace`
accumulates :class:`Span` records across all of them:

* ``queue_wait`` — from admission to batch pickup (recorded by the worker);
* ``encode`` / ``fast_search`` / ``rerank`` — the engine phases;
* ``scatter`` → ``shard_search`` — one span per shard call, annotated with
  which replica answered and whether the call failed over;
* ``merge`` — the global top-``k`` merge.

Propagation is contextvar-based: :func:`activate` installs one or more target
traces for the current context, :func:`span` opens a child span in every
target (micro-batched queries share the work of one engine pass, so one
measured interval is recorded into every member's trace), and thread pools
carry the context across with ``contextvars.copy_context()``.  When no trace
is active — or tracing is disabled via :class:`~repro.config.ObsConfig` —
every instrumentation point is a single context-variable read and a no-op
context manager, so the disabled path stays effectively free.

Span clocks are ``time.perf_counter`` offsets relative to the trace's start,
so spans recorded by different threads stay mutually comparable.
"""

from __future__ import annotations

import time
import uuid
from collections import OrderedDict
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.config import ObsConfig
from repro.utils.locking import create_lock


@dataclass
class Span:
    """One timed operation inside a trace.

    ``start_s`` is the offset from the owning trace's start; ``duration_s``
    is ``0.0`` while the span is still open.  ``parent_id`` links the span
    into the trace's tree (``None`` marks a root-level span).
    """

    span_id: int
    parent_id: Optional[int]
    name: str
    start_s: float
    duration_s: float = 0.0
    attributes: Dict[str, object] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, object]:
        """JSON-serialisable form (milliseconds, like the latency metrics)."""
        return {
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "start_ms": self.start_s * 1000.0,
            "duration_ms": self.duration_s * 1000.0,
            "attributes": dict(self.attributes),
        }


class Trace:
    """A bounded, thread-safe collection of spans for one request."""

    def __init__(self, trace_id: str | None = None, max_spans: int = 512) -> None:
        self.trace_id = trace_id or uuid.uuid4().hex
        self.attributes: Dict[str, object] = {}
        self.dropped_spans = 0
        self.duration_s: Optional[float] = None
        self._started_wall = time.time()  # lovo: ignore[LOVO004] wall-clock display timestamp, not a duration
        self._t0 = time.perf_counter()
        self._max_spans = max_spans
        self._spans: List[Span] = []
        self._by_id: Dict[int, Span] = {}
        self._next_id = 1
        self._finished = False
        self._lock = create_lock("Trace._lock")

    @property
    def t0(self) -> float:
        """The trace's ``perf_counter`` epoch (span offsets are relative to it)."""
        return self._t0

    @property
    def finished(self) -> bool:
        """Whether :meth:`finish` has sealed the trace."""
        with self._lock:
            return self._finished

    def spans(self) -> List[Span]:
        """A snapshot of the recorded spans, in creation order."""
        with self._lock:
            return list(self._spans)

    def open_span(
        self,
        name: str,
        parent_id: Optional[int] = None,
        attributes: Optional[Dict[str, object]] = None,
    ) -> Optional[int]:
        """Start a span; returns its id, or ``None`` if the budget is spent."""
        start = time.perf_counter() - self._t0
        with self._lock:
            if len(self._spans) >= self._max_spans:
                self.dropped_spans += 1
                return None
            span = Span(
                span_id=self._next_id,
                parent_id=parent_id,
                name=name,
                start_s=start,
                attributes=dict(attributes or {}),
            )
            self._next_id += 1
            self._spans.append(span)
            # lovo: ignore[LOVO005] grows in lockstep with _spans, which is capped by max_spans
            self._by_id[span.span_id] = span
            return span.span_id

    def close_span(self, span_id: Optional[int], **attributes: object) -> None:
        """Seal an open span with its duration (no-op for dropped spans)."""
        if span_id is None:
            return
        now = time.perf_counter() - self._t0
        with self._lock:
            span = self._by_id.get(span_id)
            if span is None:
                return
            span.duration_s = max(now - span.start_s, 0.0)
            if attributes:
                span.attributes.update(attributes)

    def record(
        self,
        name: str,
        start: float,
        end: float,
        parent_id: Optional[int] = None,
        **attributes: object,
    ) -> None:
        """Record an already-measured interval (``perf_counter`` values).

        Used where the interval was timed outside the trace — e.g. the
        queue-wait span, whose start is the submission timestamp stamped by
        a different thread.
        """
        with self._lock:
            if len(self._spans) >= self._max_spans:
                self.dropped_spans += 1
                return
            span = Span(
                span_id=self._next_id,
                parent_id=parent_id,
                name=name,
                start_s=start - self._t0,
                duration_s=max(end - start, 0.0),
                attributes=dict(attributes),
            )
            self._next_id += 1
            self._spans.append(span)
            self._by_id[span.span_id] = span

    def finish(self, **attributes: object) -> bool:
        """Seal the trace; returns ``True`` only for the first call.

        Idempotent so that racing finishers (a worker resolving the future
        versus an error path in the submitter) cannot double-report.
        """
        now = time.perf_counter()
        with self._lock:
            if self._finished:
                return False
            self._finished = True
            self.duration_s = now - self._t0
            if attributes:
                self.attributes.update(attributes)
            return True

    def span_names(self) -> List[str]:
        """The names of all recorded spans, in creation order."""
        with self._lock:
            return [span.name for span in self._spans]

    def as_dict(self) -> Dict[str, object]:
        """JSON-serialisable form served by ``GET /v1/traces/<id>``."""
        with self._lock:
            return {
                "trace_id": self.trace_id,
                "started_at": self._started_wall,
                "duration_ms": (
                    self.duration_s * 1000.0 if self.duration_s is not None else None
                ),
                "finished": self._finished,
                "dropped_spans": self.dropped_spans,
                "attributes": dict(self.attributes),
                "spans": [span.as_dict() for span in self._spans],
            }


# -- contextvar propagation --------------------------------------------------

#: The active trace targets of the current context: ``(trace, parent_id)``
#: pairs.  A micro-batched engine pass is shared work, so one measured span is
#: recorded into *every* member query's trace (fan-out); ``None`` means no
#: tracing — the fast path every instrumentation point checks first.
_ACTIVE: ContextVar[Optional[Tuple[Tuple[Trace, Optional[int]], ...]]] = ContextVar(
    "lovo_active_traces", default=None
)


def tracing_active() -> bool:
    """Whether the current context carries at least one active trace."""
    return _ACTIVE.get() is not None


def active_traces() -> Tuple[Trace, ...]:
    """The traces targeted by the current context (empty when none)."""
    targets = _ACTIVE.get()
    return tuple(trace for trace, _ in targets) if targets else ()


@contextmanager
def activate(traces: Sequence[Trace]) -> Iterator[None]:
    """Install ``traces`` as the span targets of the current context.

    Spans opened inside become root-level spans of every target trace; an
    empty sequence leaves the context untouched (tracing stays inactive).
    """
    live = [trace for trace in traces if trace is not None]
    if not live:
        yield
        return
    token = _ACTIVE.set(tuple((trace, None) for trace in live))
    try:
        yield
    finally:
        _ACTIVE.reset(token)


class SpanHandle:
    """Mutable annotation surface yielded by :func:`span`.

    ``handle.set(key, value)`` attaches an attribute that is written into
    every target span when the block exits (e.g. a failover outcome known
    only at the end of the measured interval).
    """

    __slots__ = ("_extra",)

    def __init__(self) -> None:
        self._extra: Dict[str, object] = {}

    def set(self, key: str, value: object) -> None:
        self._extra[key] = value


class _NoopSpanHandle(SpanHandle):
    """Shared handle for the tracing-inactive fast path; drops annotations."""

    def set(self, key: str, value: object) -> None:  # noqa: D102 - no-op
        pass


_NOOP_HANDLE = _NoopSpanHandle()


@contextmanager
def span(name: str, **attributes: object) -> Iterator[SpanHandle]:
    """Open a span named ``name`` in every active trace for the block.

    Nested :func:`span` blocks become child spans.  With no active trace the
    body runs against a shared no-op handle — one contextvar read of
    overhead — which is what makes disabling observability near-free.
    """
    targets = _ACTIVE.get()
    if not targets:
        yield _NOOP_HANDLE
        return
    opened = [
        (trace, trace.open_span(name, parent_id, attributes))
        for trace, parent_id in targets
    ]
    # Children opened inside this block parent onto this span; a trace whose
    # span budget dropped the span keeps its previous parent.
    token = _ACTIVE.set(
        tuple(
            (trace, span_id if span_id is not None else parent_id)
            for (trace, parent_id), (_, span_id) in zip(targets, opened)
        )
    )
    handle = SpanHandle()
    try:
        yield handle
    finally:
        _ACTIVE.reset(token)
        for trace, span_id in opened:
            trace.close_span(span_id, **handle._extra)


def record_span(name: str, start: float, end: float, **attributes: object) -> None:
    """Record a pre-measured interval into every active trace.

    ``start``/``end`` are ``time.perf_counter`` values; the interval becomes
    a child of the current context's span in each target trace.
    """
    targets = _ACTIVE.get()
    if not targets:
        return
    for trace, parent_id in targets:
        trace.record(name, start, end, parent_id=parent_id, **attributes)


# -- trace retention ---------------------------------------------------------


class TraceStore:
    """Bounded in-memory retention of finished traces, plus a slow-query log.

    The main store is a FIFO ring of the most recent traces; traces whose
    end-to-end duration crosses the slow threshold are *also* pinned into a
    separate bounded log, so slow queries stay inspectable after the ring
    has churned past them.
    """

    def __init__(
        self,
        capacity: int = 512,
        slow_threshold_ms: float = 250.0,
        slow_capacity: int = 64,
    ) -> None:
        if capacity <= 0 or slow_capacity <= 0:
            raise ValueError("TraceStore capacities must be positive")
        self._capacity = capacity
        self._slow_threshold_ms = slow_threshold_ms
        self._slow_capacity = slow_capacity
        self._traces: "OrderedDict[str, Trace]" = OrderedDict()
        self._slow: "OrderedDict[str, Trace]" = OrderedDict()
        self._lock = create_lock("TraceStore._lock")

    @property
    def slow_threshold_ms(self) -> float:
        """Latency above which a trace is retained in the slow log."""
        return self._slow_threshold_ms

    def put(self, trace: Trace) -> None:
        """Retain a finished trace (evicting the oldest beyond capacity)."""
        duration_ms = (trace.duration_s or 0.0) * 1000.0
        with self._lock:
            self._traces[trace.trace_id] = trace
            self._traces.move_to_end(trace.trace_id)
            while len(self._traces) > self._capacity:
                self._traces.popitem(last=False)
            if duration_ms >= self._slow_threshold_ms:
                self._slow[trace.trace_id] = trace
                self._slow.move_to_end(trace.trace_id)
                while len(self._slow) > self._slow_capacity:
                    self._slow.popitem(last=False)

    def get(self, trace_id: str) -> Optional[Trace]:
        """Look a trace up by id (main store first, then the slow log)."""
        with self._lock:
            return self._traces.get(trace_id) or self._slow.get(trace_id)

    def annotate(self, trace_id: str, **attributes: object) -> bool:
        """Attach attributes to a stored trace (e.g. the request id)."""
        trace = self.get(trace_id)
        if trace is None:
            return False
        trace.attributes.update(attributes)
        return True

    def slow(self) -> List[Trace]:
        """The retained slow traces, most recent first."""
        with self._lock:
            return list(reversed(self._slow.values()))

    def __len__(self) -> int:
        with self._lock:
            return len(self._traces)

    def stats(self) -> Dict[str, object]:
        """Occupancy summary for ``/v1/stats``."""
        with self._lock:
            return {
                "stored": len(self._traces),
                "capacity": self._capacity,
                "slow": len(self._slow),
                "slow_capacity": self._slow_capacity,
                "slow_threshold_ms": self._slow_threshold_ms,
            }


class Tracer:
    """Config-gated trace factory plus the store finished traces land in."""

    def __init__(self, config: ObsConfig | None = None) -> None:
        self._config = config or ObsConfig()
        self._store = TraceStore(
            capacity=self._config.trace_store_size,
            slow_threshold_ms=self._config.slow_query_ms,
            slow_capacity=self._config.slow_log_size,
        )

    @property
    def enabled(self) -> bool:
        """Whether this tracer creates traces at all."""
        return self._config.enabled

    @property
    def config(self) -> ObsConfig:
        """The observability configuration in effect."""
        return self._config

    @property
    def store(self) -> TraceStore:
        """Where finished traces are retained."""
        return self._store

    def start(self, **attributes: object) -> Optional[Trace]:
        """A new trace, or ``None`` when tracing is disabled.

        ``None`` short-circuits every downstream instrumentation point, so
        a disabled tracer never pays for span bookkeeping.
        """
        if not self._config.enabled:
            return None
        trace = Trace(max_spans=self._config.max_spans_per_trace)
        if attributes:
            trace.attributes.update(attributes)
        return trace

    def finish(self, trace: Optional[Trace], **attributes: object) -> Optional[str]:
        """Seal a trace and retain it; returns its id (idempotent)."""
        if trace is None:
            return None
        if trace.finish(**attributes):
            self._store.put(trace)
        return trace.trace_id
