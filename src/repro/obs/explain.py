"""Per-query EXPLAIN reports: stage costs, search params, and provenance.

``QueryOptions(explain=True)`` asks the serving engine to build a structured
report for the pass that answered the query.  The report is assembled from
three sources the stack already records:

* the request's :class:`~repro.obs.trace.Trace` — stage costs (queue wait,
  encode, coarse scan, ADC scan, graph search, per-shard ``shard_search``
  calls with candidate counts, merge, rerank);
* the configuration in effect — the search parameters the pass actually used
  (index family, ``nprobe``/``efSearch``, resolved ``fast_search_k``/
  ``top_n``, rerank depth cap, ablation switches);
* the response itself — final score margins over the returned results and
  the served fast-search head.

Reports are retained in a bounded :class:`ExplainStore` keyed by trace id
(``GET /v1/explain/<trace_id>``) and attached to the response's metadata so
the HTTP payload carries them inline.
"""

from __future__ import annotations

from repro.utils.locking import create_lock
from collections import OrderedDict
from typing import TYPE_CHECKING, Dict, List, Mapping, Optional

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.config import IndexConfig, QueryConfig
    from repro.core.query import QueryOptions
    from repro.core.results import QueryResponse
    from repro.obs.trace import Trace

#: Span names that are per-shard search calls (candidate attribution).
_SHARD_SPAN = "shard_search"


def _stage_costs(trace: "Optional[Trace]") -> Dict[str, Dict[str, float]]:
    """Aggregate a trace's spans into per-stage call counts and totals."""
    stages: Dict[str, Dict[str, float]] = {}
    if trace is None:
        return stages
    for span in trace.spans():
        entry = stages.setdefault(span.name, {"calls": 0, "total_ms": 0.0})
        entry["calls"] += 1
        entry["total_ms"] += span.duration_s * 1000.0
    return stages


def _shard_candidates(trace: "Optional[Trace]") -> List[Dict[str, object]]:
    """Per-shard candidate counts from the scatter's ``shard_search`` spans."""
    shards: List[Dict[str, object]] = []
    if trace is None:
        return shards
    for span in trace.spans():
        if span.name != _SHARD_SPAN:
            continue
        entry: Dict[str, object] = {
            "shard": span.attributes.get("shard"),
            "replica": span.attributes.get("replica"),
            "outcome": span.attributes.get("outcome"),
            "duration_ms": span.duration_s * 1000.0,
        }
        if "hits" in span.attributes:
            entry["candidates"] = span.attributes["hits"]
        if span.attributes.get("failover"):
            entry["failover"] = True
        shards.append(entry)
    return shards


def _score_margins(response: "QueryResponse") -> Dict[str, object]:
    """Final-ranking margins: top-1 vs top-2 and the head of the scores."""
    scores = [float(result.score) for result in response.results]
    margins: Dict[str, object] = {
        "num_results": len(scores),
        "head_scores": scores[:5],
    }
    if len(scores) >= 2:
        margins["top1_top2_margin"] = scores[0] - scores[1]
    fast = response.metadata.get("fast_search")
    if isinstance(fast, Mapping):
        hits = fast.get("hits") or []
        if len(hits) >= 2:
            margins["fast_search_top1_top2_margin"] = float(hits[0][1]) - float(
                hits[1][1]
            )
    return margins


def build_explain_report(
    response: "QueryResponse",
    trace: "Optional[Trace]",
    *,
    options: "QueryOptions",
    query_config: "QueryConfig",
    index_config: "IndexConfig",
    backend: Mapping[str, object],
    epoch: int,
    cache_hit: bool = False,
) -> Dict[str, object]:
    """Assemble one query's EXPLAIN report (JSON-serialisable)."""
    fast_k, top_n = options.resolved(query_config)
    params: Dict[str, object] = {
        "index_type": index_config.index_type,
        "fast_search_k": fast_k,
        "top_n": top_n,
        "max_candidate_frames": query_config.max_candidate_frames,
        "rerank_enabled": query_config.rerank_enabled,
        "ann_enabled": query_config.ann_enabled,
    }
    if index_config.index_type == "ivfpq":
        params["nprobe"] = index_config.nprobe
        params["num_coarse_clusters"] = index_config.num_coarse_clusters
        params["num_subspaces"] = index_config.num_subspaces
    elif index_config.index_type == "hnsw":
        params["ef_search"] = index_config.hnsw_ef_search
        params["hnsw_m"] = index_config.hnsw_m

    fast = response.metadata.get("fast_search")
    candidates: Dict[str, object] = {
        "num_candidate_frames": response.metadata.get("num_candidates", 0),
    }
    if isinstance(fast, Mapping):
        candidates["fast_search_hits"] = fast.get("num_hits", 0)
    shard_calls = _shard_candidates(trace)
    if shard_calls:
        candidates["per_shard"] = shard_calls

    report: Dict[str, object] = {
        "query": response.query,
        "trace_id": trace.trace_id if trace is not None else None,
        "params": params,
        "stages": _stage_costs(trace),
        "candidates": candidates,
        "score_margins": _score_margins(response),
        "provenance": {
            "data_epoch": epoch,
            "cache_hit": cache_hit,
            "sharded": bool(backend.get("sharded", False)),
            "num_shards": backend.get("num_shards", 1),
            "batched": bool(response.metadata.get("batched", False)),
        },
    }
    if trace is not None and trace.duration_s is not None:
        report["duration_ms"] = trace.duration_s * 1000.0
    return report


class ExplainStore:
    """Bounded FIFO retention of EXPLAIN reports, keyed by trace id."""

    def __init__(self, capacity: int = 512) -> None:
        if capacity <= 0:
            raise ValueError("ExplainStore capacity must be positive")
        self._capacity = capacity
        self._reports: "OrderedDict[str, Dict[str, object]]" = OrderedDict()
        self._lock = create_lock("ExplainStore._lock")

    def put(self, trace_id: str, report: Dict[str, object]) -> None:
        """Retain one report (evicting the oldest beyond capacity)."""
        with self._lock:
            self._reports[trace_id] = report
            self._reports.move_to_end(trace_id)
            while len(self._reports) > self._capacity:
                self._reports.popitem(last=False)

    def get(self, trace_id: str) -> Optional[Dict[str, object]]:
        """Look one report up by trace id."""
        with self._lock:
            return self._reports.get(trace_id)

    def __len__(self) -> int:
        with self._lock:
            return len(self._reports)

    def stats(self) -> Dict[str, object]:
        """Occupancy summary for ``/v1/stats``."""
        with self._lock:
            return {"stored": len(self._reports), "capacity": self._capacity}


__all__ = ["ExplainStore", "build_explain_report"]
