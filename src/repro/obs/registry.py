"""Unified metrics registry: labelled counters, gauges, and histograms.

One registry replaces the scattered per-subsystem counters with a single
queryable surface: the serving engine absorbs :class:`~repro.serve.metrics.
ServiceMetrics`, cache effectiveness, and backend health through registry
collectors, while the shard router records its per-replica call latencies and
failovers into module-level instruments here.  Everything the registry holds
is rendered by :mod:`repro.obs.exposition` as Prometheus text.

The instrument model follows the Prometheus client conventions: an instrument
has a name, help text, and a fixed tuple of label names; each distinct
label-value combination is an independent time series.  All instruments are
thread-safe (one lock per instrument), because the serving worker pool and
the shard scatter pool write concurrently.
"""

from __future__ import annotations

import math
import re
from repro.utils.locking import create_lock
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple


def percentile(sorted_values: Sequence[float], fraction: float) -> float:
    """Ceil-based nearest-rank percentile of an already-sorted sequence.

    The nearest-rank definition: the ``q``-th percentile is the smallest
    value such that at least ``q`` of the distribution lies at or below it,
    i.e. the element at rank ``ceil(q * N)`` (1-based).  An explicit ``ceil``
    avoids the banker's-rounding bias of ``round()`` on ``.5`` ties, which
    alternated the chosen rank with the parity of the target index.
    """
    if not sorted_values:
        return 0.0
    if fraction <= 0.0:
        return float(sorted_values[0])
    rank = math.ceil(fraction * len(sorted_values))
    index = min(max(rank, 1), len(sorted_values)) - 1
    return float(sorted_values[index])


_METRIC_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_NAME_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

#: Default histogram buckets (seconds), tuned for query-serving latencies.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.001,
    0.0025,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
    10.0,
)


@dataclass
class Sample:
    """One exposition line: a metric name, its labels, and a value."""

    name: str
    labels: Dict[str, str] = field(default_factory=dict)
    value: float = 0.0


@dataclass
class MetricFamily:
    """All samples of one metric, with its type and help text."""

    name: str
    kind: str  # "counter" | "gauge" | "histogram" | "summary" | "untyped"
    help: str
    samples: List[Sample] = field(default_factory=list)


class _Instrument:
    """Shared base: name/label validation and label-key resolution."""

    kind = "untyped"

    def __init__(self, name: str, help: str, label_names: Sequence[str] = ()) -> None:
        if not _METRIC_NAME_RE.match(name):
            raise ValueError(f"Invalid metric name {name!r}")
        for label in label_names:
            if not _LABEL_NAME_RE.match(label):
                raise ValueError(f"Invalid label name {label!r} for metric {name!r}")
        self.name = name
        self.help = help
        self.label_names: Tuple[str, ...] = tuple(label_names)
        self._lock = create_lock("_Instrument._lock")

    def _key(self, labels: Mapping[str, object]) -> Tuple[str, ...]:
        if set(labels) != set(self.label_names):
            raise ValueError(
                f"Metric {self.name!r} expects labels {list(self.label_names)}, "
                f"got {sorted(labels)}"
            )
        return tuple(str(labels[name]) for name in self.label_names)

    def _labels_of(self, key: Tuple[str, ...]) -> Dict[str, str]:
        return dict(zip(self.label_names, key))

    def collect(self) -> MetricFamily:
        raise NotImplementedError


class Counter(_Instrument):
    """A monotonically increasing sum, per label combination."""

    kind = "counter"

    def __init__(self, name: str, help: str, label_names: Sequence[str] = ()) -> None:
        super().__init__(name, help, label_names)
        self._values: Dict[Tuple[str, ...], float] = {}

    def inc(self, amount: float = 1.0, **labels: object) -> None:
        """Add ``amount`` (must be non-negative) to the labelled series."""
        if amount < 0:
            raise ValueError(f"Counter {self.name!r} cannot decrease")
        key = self._key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount

    def value(self, **labels: object) -> float:
        """Current value of the labelled series (0 when never incremented)."""
        key = self._key(labels)
        with self._lock:
            return self._values.get(key, 0.0)

    def collect(self) -> MetricFamily:
        with self._lock:
            samples = [
                Sample(self.name, self._labels_of(key), value)
                for key, value in sorted(self._values.items())
            ]
        if not samples and not self.label_names:
            samples = [Sample(self.name, {}, 0.0)]
        return MetricFamily(self.name, self.kind, self.help, samples)


class Gauge(_Instrument):
    """A value that can go up and down, per label combination."""

    kind = "gauge"

    def __init__(self, name: str, help: str, label_names: Sequence[str] = ()) -> None:
        super().__init__(name, help, label_names)
        self._values: Dict[Tuple[str, ...], float] = {}

    def set(self, value: float, **labels: object) -> None:
        """Set the labelled series to ``value``."""
        key = self._key(labels)
        with self._lock:
            self._values[key] = float(value)

    def inc(self, amount: float = 1.0, **labels: object) -> None:
        """Add ``amount`` (may be negative) to the labelled series."""
        key = self._key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount

    def value(self, **labels: object) -> float:
        """Current value of the labelled series (0 when never set)."""
        key = self._key(labels)
        with self._lock:
            return self._values.get(key, 0.0)

    def collect(self) -> MetricFamily:
        with self._lock:
            samples = [
                Sample(self.name, self._labels_of(key), value)
                for key, value in sorted(self._values.items())
            ]
        if not samples and not self.label_names:
            samples = [Sample(self.name, {}, 0.0)]
        return MetricFamily(self.name, self.kind, self.help, samples)


class Histogram(_Instrument):
    """Cumulative-bucket distribution with ``_sum``/``_count``, per labels."""

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str,
        label_names: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> None:
        super().__init__(name, help, label_names)
        bounds = tuple(sorted(float(bound) for bound in buckets))
        if not bounds:
            raise ValueError(f"Histogram {self.name!r} needs at least one bucket")
        if len(set(bounds)) != len(bounds):
            raise ValueError(f"Histogram {self.name!r} has duplicate bucket bounds")
        self.buckets = bounds
        # Per label key: [bucket counts..., +Inf count], sum, count.
        self._series: Dict[Tuple[str, ...], Tuple[List[int], List[float]]] = {}

    def observe(self, value: float, **labels: object) -> None:
        """Record one observation into the labelled series."""
        key = self._key(labels)
        with self._lock:
            series = self._series.get(key)
            if series is None:
                series = ([0] * (len(self.buckets) + 1), [0.0, 0.0])
                self._series[key] = series
            counts, sum_count = series
            for position, bound in enumerate(self.buckets):
                if value <= bound:
                    counts[position] += 1
                    break
            else:
                counts[-1] += 1
            sum_count[0] += value
            sum_count[1] += 1.0

    def value(self, **labels: object) -> Dict[str, float]:
        """The labelled series' ``{"sum": ..., "count": ...}`` totals."""
        key = self._key(labels)
        with self._lock:
            series = self._series.get(key)
            if series is None:
                return {"sum": 0.0, "count": 0.0}
            return {"sum": series[1][0], "count": series[1][1]}

    def collect(self) -> MetricFamily:
        samples: List[Sample] = []
        with self._lock:
            for key, (counts, sum_count) in sorted(self._series.items()):
                labels = self._labels_of(key)
                cumulative = 0
                for position, bound in enumerate(self.buckets):
                    cumulative += counts[position]
                    samples.append(
                        Sample(
                            f"{self.name}_bucket",
                            {**labels, "le": format_float(bound)},
                            float(cumulative),
                        )
                    )
                cumulative += counts[-1]
                samples.append(
                    Sample(f"{self.name}_bucket", {**labels, "le": "+Inf"}, float(cumulative))
                )
                samples.append(Sample(f"{self.name}_sum", dict(labels), sum_count[0]))
                samples.append(Sample(f"{self.name}_count", dict(labels), sum_count[1]))
        return MetricFamily(self.name, self.kind, self.help, samples)


def format_float(value: float) -> str:
    """Compact decimal form used for bucket bounds and sample values."""
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    if value != value:  # NaN
        return "NaN"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


class MetricsRegistry:
    """Get-or-create instrument registry plus pluggable collectors.

    ``register_collector`` accepts a zero-argument callable returning metric
    families; it is invoked at every :meth:`collect`.  Collectors are how
    point-in-time state (queue depth, cache hit rate, replica health) joins
    the cumulative instruments in one snapshot without double bookkeeping.
    """

    def __init__(self) -> None:
        self._lock = create_lock("MetricsRegistry._lock")
        self._instruments: Dict[str, _Instrument] = {}
        self._collectors: List[Callable[[], Iterable[MetricFamily]]] = []

    def _get_or_create(
        self,
        cls,
        name: str,
        help: str,
        label_names: Sequence[str],
        **kwargs: object,
    ):
        with self._lock:
            existing = self._instruments.get(name)
            if existing is not None:
                if not isinstance(existing, cls):
                    raise ValueError(
                        f"Metric {name!r} is already registered as a "
                        f"{existing.kind}, not a {cls.kind}"
                    )
                if existing.label_names != tuple(label_names):
                    raise ValueError(
                        f"Metric {name!r} is already registered with labels "
                        f"{list(existing.label_names)}"
                    )
                return existing
            instrument = cls(name, help, label_names, **kwargs)
            # lovo: ignore[LOVO005] cardinality is the set of metric names defined in code
            self._instruments[name] = instrument
            return instrument

    def counter(self, name: str, help: str, label_names: Sequence[str] = ()) -> Counter:
        """Get or create a :class:`Counter`."""
        return self._get_or_create(Counter, name, help, label_names)

    def gauge(self, name: str, help: str, label_names: Sequence[str] = ()) -> Gauge:
        """Get or create a :class:`Gauge`."""
        return self._get_or_create(Gauge, name, help, label_names)

    def histogram(
        self,
        name: str,
        help: str,
        label_names: Sequence[str] = (),
        buckets: Optional[Sequence[float]] = None,
    ) -> Histogram:
        """Get or create a :class:`Histogram`."""
        return self._get_or_create(
            Histogram, name, help, label_names, buckets=buckets or DEFAULT_BUCKETS
        )

    def register_collector(
        self, collector: Callable[[], Iterable[MetricFamily]]
    ) -> None:
        """Add a callable whose families are appended at every collect."""
        with self._lock:
            self._collectors.append(collector)

    def unregister_collector(
        self, collector: Callable[[], Iterable[MetricFamily]]
    ) -> None:
        """Remove a previously registered collector (no-op if absent)."""
        with self._lock:
            if collector in self._collectors:
                self._collectors.remove(collector)

    def collect(self) -> List[MetricFamily]:
        """A point-in-time snapshot: instrument families plus collectors'."""
        with self._lock:
            instruments = sorted(self._instruments.values(), key=lambda i: i.name)
            collectors = list(self._collectors)
        families = [instrument.collect() for instrument in instruments]
        for collector in collectors:
            families.extend(collector())
        return families


#: Module-level default registry.  Layers without an obvious owner (the shard
#: router lives below the engine) record into it, mirroring the prometheus
#: client's default-registry idiom; the serving engine merges it into its own
#: exposition snapshot.
REGISTRY = MetricsRegistry()
