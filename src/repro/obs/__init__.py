"""Cross-cutting observability: request tracing, metrics, and exposition.

Three pieces, used together by the serving → shard → index stack:

* :mod:`repro.obs.trace` — ``Trace``/``Span`` with contextvar propagation,
  so one served query accumulates spans across the HTTP handler, the
  micro-batcher (queue wait), the engine worker, the shard scatter (one span
  per shard call, annotated with the serving replica and any failover), and
  the rerank stage; finished traces land in a bounded store with a
  slow-query log.
* :mod:`repro.obs.registry` — labelled counters / gauges / histograms in a
  unified, thread-safe registry, plus the shared ceil-based nearest-rank
  :func:`~repro.obs.registry.percentile`.
* :mod:`repro.obs.exposition` — Prometheus text rendering (``GET
  /v1/metrics``) and the mapping from engine stats and ingest phase totals
  to metric families.

On top of those, the answer-quality and cost layer:

* :mod:`repro.obs.quality` — :class:`~repro.obs.quality.ShadowSampler`
  (online recall@k against an exact flat re-scan of sampled served queries)
  and :class:`~repro.obs.quality.DriftMonitor` (embedding/score distribution
  drift under streaming ingest);
* :mod:`repro.obs.explain` — per-query EXPLAIN reports (stage costs, search
  params, per-shard candidates, cache/epoch provenance, score margins) in a
  bounded :class:`~repro.obs.explain.ExplainStore`;
* :mod:`repro.obs.timeseries` — :class:`~repro.obs.timeseries.
  MetricsHistory`, a bounded ring of windowed registry snapshots behind
  ``GET /v1/metrics/history``;
* :mod:`repro.obs.slo` — declarative latency/availability/recall SLOs with
  multi-window burn-rate evaluation surfaced in ``/v1/healthz`` and
  ``GET /v1/slo``.

Tracing is on by default and disabled via ``LOVOConfig(obs=ObsConfig(
enabled=False))``; when off, every instrumentation point is a no-op
context-variable read.
"""

from repro.config import ObsConfig
from repro.obs.explain import ExplainStore, build_explain_report
from repro.obs.exposition import (
    CONTENT_TYPE,
    build_info_family,
    parse_exposition,
    render,
    service_families,
)
from repro.obs.quality import DriftMonitor, ShadowSampler
from repro.obs.slo import RECALL_OBJECTIVE, SLODefinition, SLOTracker
from repro.obs.timeseries import MetricsHistory, flatten_families
from repro.obs.registry import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricFamily,
    MetricsRegistry,
    REGISTRY,
    Sample,
    percentile,
)
from repro.obs.trace import (
    Span,
    SpanHandle,
    Trace,
    TraceStore,
    Tracer,
    activate,
    active_traces,
    record_span,
    span,
    tracing_active,
)

__all__ = [
    "ObsConfig",
    "Span",
    "SpanHandle",
    "Trace",
    "TraceStore",
    "Tracer",
    "activate",
    "active_traces",
    "record_span",
    "span",
    "tracing_active",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricFamily",
    "MetricsRegistry",
    "REGISTRY",
    "Sample",
    "percentile",
    "DEFAULT_BUCKETS",
    "CONTENT_TYPE",
    "render",
    "service_families",
    "parse_exposition",
    "build_info_family",
    "DriftMonitor",
    "ShadowSampler",
    "ExplainStore",
    "build_explain_report",
    "MetricsHistory",
    "flatten_families",
    "RECALL_OBJECTIVE",
    "SLODefinition",
    "SLOTracker",
]
