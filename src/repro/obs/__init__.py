"""Cross-cutting observability: request tracing, metrics, and exposition.

Three pieces, used together by the serving → shard → index stack:

* :mod:`repro.obs.trace` — ``Trace``/``Span`` with contextvar propagation,
  so one served query accumulates spans across the HTTP handler, the
  micro-batcher (queue wait), the engine worker, the shard scatter (one span
  per shard call, annotated with the serving replica and any failover), and
  the rerank stage; finished traces land in a bounded store with a
  slow-query log.
* :mod:`repro.obs.registry` — labelled counters / gauges / histograms in a
  unified, thread-safe registry, plus the shared ceil-based nearest-rank
  :func:`~repro.obs.registry.percentile`.
* :mod:`repro.obs.exposition` — Prometheus text rendering (``GET
  /v1/metrics``) and the mapping from engine stats and ingest phase totals
  to metric families.

Tracing is on by default and disabled via ``LOVOConfig(obs=ObsConfig(
enabled=False))``; when off, every instrumentation point is a no-op
context-variable read.
"""

from repro.config import ObsConfig
from repro.obs.exposition import (
    CONTENT_TYPE,
    parse_exposition,
    render,
    service_families,
)
from repro.obs.registry import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricFamily,
    MetricsRegistry,
    REGISTRY,
    Sample,
    percentile,
)
from repro.obs.trace import (
    Span,
    SpanHandle,
    Trace,
    TraceStore,
    Tracer,
    activate,
    active_traces,
    record_span,
    span,
    tracing_active,
)

__all__ = [
    "ObsConfig",
    "Span",
    "SpanHandle",
    "Trace",
    "TraceStore",
    "Tracer",
    "activate",
    "active_traces",
    "record_span",
    "span",
    "tracing_active",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricFamily",
    "MetricsRegistry",
    "REGISTRY",
    "Sample",
    "percentile",
    "DEFAULT_BUCKETS",
    "CONTENT_TYPE",
    "render",
    "service_families",
    "parse_exposition",
]
