"""Answer-quality observability: shadow-recall sampling and drift monitors.

The serving stack answers queries through approximate search (IVF-PQ lists,
HNSW beams, sharded scatter), so the one number the paper actually optimises
— recall against an exact scan — is invisible in production unless something
measures it continuously.  Two pieces do that here:

* :class:`ShadowSampler` — samples a configurable fraction of served queries
  and re-runs each through the **exact** flat scan
  (``storage.search(..., use_ann=False)``) in a background worker thread.
  Comparing the served fast-search ranking against the exact one yields
  online estimates of recall@k, top-1 score margin, and rank displacement,
  exposed as ``lovo_recall_*`` metrics per index family (and per shard on
  sharded backends).  The hand-off is a bounded queue that *drops* samples
  when full — the shadow path must never perturb served latency.
* :class:`DriftMonitor` — watches a stream of scalar observations (streamed
  embedding norms, shadow exact-scan scores) and counts drift alerts when a
  recent window's mean wanders more than ``drift_threshold`` reference
  standard deviations from the baseline established earlier, re-baselining
  after each alert so a genuine distribution shift is counted once, not on
  every subsequent observation.

Both are deliberately decoupled from the serving engine's hot path: the
sampler's serving-side cost is one lock-guarded float accumulation per
request plus (for sampled requests) a non-blocking queue put.
"""

from __future__ import annotations

import math
import queue
import threading
import time
from collections import deque
from typing import TYPE_CHECKING, Callable, Deque, Dict, List, Optional, Sequence, Tuple

from repro.config import ObsConfig
from repro.obs.registry import MetricsRegistry, REGISTRY
from repro.utils.locking import create_lock

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.system import LOVO

_STOP = object()


class DriftMonitor:
    """Counts alerts when a scalar stream's windowed mean leaves its baseline.

    The first ``baseline`` observations establish a reference mean and
    standard deviation (Welford).  After that, each completed window of
    ``window`` observations is compared against the reference: a windowed
    mean further than ``threshold * reference_std`` (with a small epsilon
    floor so a zero-variance baseline is not a hair trigger) from the
    reference mean increments the labelled alert counter and **re-baselines**
    on the drifted window, so one genuine shift is one alert.
    """

    def __init__(
        self,
        signal: str,
        counter,
        threshold: float = 4.0,
        baseline: int = 32,
        window: int = 16,
    ) -> None:
        self._signal = signal
        self._counter = counter
        self._threshold = threshold
        self._baseline_size = max(int(baseline), 2)
        self._window_size = max(int(window), 1)
        self._lock = create_lock("DriftMonitor._lock")
        self._count = 0
        self._mean = 0.0
        self._m2 = 0.0
        self._window: List[float] = []
        self._alerts = 0
        self._last_value = 0.0

    def _reference_std(self) -> float:
        if self._count < 2:
            return 0.0
        return math.sqrt(self._m2 / (self._count - 1))

    def _absorb(self, value: float) -> None:
        self._count += 1
        delta = value - self._mean
        self._mean += delta / self._count
        self._m2 += delta * (value - self._mean)

    def observe(self, value: float) -> bool:
        """Feed one observation; returns ``True`` when it triggered an alert."""
        value = float(value)
        with self._lock:
            self._last_value = value
            if self._count < self._baseline_size:
                self._absorb(value)
                return False
            self._window.append(value)
            if len(self._window) < self._window_size:
                return False
            window_mean = sum(self._window) / len(self._window)
            window_values = self._window
            self._window = []
            scale = max(self._reference_std(), 1e-9, abs(self._mean) * 1e-6)
            if abs(window_mean - self._mean) > self._threshold * scale:
                self._alerts += 1
                self._counter.inc(signal=self._signal)
                # Re-baseline on the drifted window: the new distribution is
                # now "normal", and further windows alert only on a new shift.
                self._count = 0
                self._mean = 0.0
                self._m2 = 0.0
                for drifted in window_values:
                    self._absorb(drifted)
                return True
            for absorbed in window_values:
                self._absorb(absorbed)
            return False

    def observe_many(self, values: Sequence[float]) -> int:
        """Feed several observations; returns how many alerts they triggered."""
        return sum(1 for value in values if self.observe(value))

    def stats(self) -> Dict[str, object]:
        """Baseline summary plus the alert count."""
        with self._lock:
            return {
                "signal": self._signal,
                "observations": self._count + len(self._window),
                "reference_mean": self._mean,
                "reference_std": self._reference_std(),
                "last_value": self._last_value,
                "alerts": self._alerts,
            }


class _RecallWindow:
    """Windowed recall / margin / displacement aggregates for one label set."""

    __slots__ = ("recalls", "margins", "displacements", "samples")

    def __init__(self, window: int) -> None:
        self.recalls: Deque[float] = deque(maxlen=window)
        self.margins: Deque[float] = deque(maxlen=window)
        self.displacements: Deque[float] = deque(maxlen=window)
        self.samples = 0

    def add(self, recall: float, margin: float, displacement: float) -> None:
        self.recalls.append(recall)
        self.margins.append(margin)
        self.displacements.append(displacement)
        self.samples += 1

    def means(self) -> Tuple[float, float, float]:
        def _mean(values: Deque[float]) -> float:
            return sum(values) / len(values) if values else 0.0

        return _mean(self.recalls), _mean(self.margins), _mean(self.displacements)


class ShadowSampler:
    """Re-runs a sampled fraction of served queries through an exact scan.

    The serving engine calls :meth:`maybe_sample` with each answered query's
    text and served fast-search ranking (the capped provenance the query
    strategy stamps into ``response.metadata["fast_search"]``).  A
    deterministic fractional accumulator admits ``sample_rate`` of them onto
    a bounded queue; one daemon worker re-encodes the text, runs the exact
    flat scan over the same storage, and folds the comparison into windowed
    estimates:

    * **recall@k** — fraction of the exact top-``k`` ids the served top-``k``
      also returned (``k`` = ``ObsConfig.shadow_recall_k``, clamped to what
      was served);
    * **score margin** — exact top-1 score minus served top-1 score (0 when
      the ANN search found the true best patch);
    * **rank displacement** — mean over the exact top-``k`` of
      ``|served_rank - exact_rank|``, with ids the served list missed
      entirely charged the served list's length.

    Estimates are exposed per index family (``flat`` / ``ivfpq`` / ``hnsw``,
    suffixed ``-sharded`` on scatter-gather backends) as ``lovo_recall_*``
    gauges and counters; on sharded backends each exact-top-``k`` id is also
    attributed to its shard, yielding per-shard recall.  A
    :class:`DriftMonitor` over the exact top-1 scores counts score-
    distribution drift (e.g. under streaming ingest).
    """

    def __init__(
        self,
        system: "LOVO",
        config: ObsConfig | None = None,
        registry: MetricsRegistry | None = None,
        on_sample: Optional[Callable[[float, str, Optional[str]], None]] = None,
    ) -> None:
        self._system = system
        self._config = config or system.config.obs
        self._on_sample = on_sample
        registry = registry or REGISTRY
        self._rate = self._config.shadow_sample_rate
        self._recall_k = self._config.shadow_recall_k
        self._queue: "queue.Queue[object]" = queue.Queue(self._config.shadow_queue_size)
        self._lock = create_lock("ShadowSampler._lock")
        self._accumulator = 0.0
        self._windows: Dict[Tuple[str, str], _RecallWindow] = {}
        self._offered = 0
        self._processed = 0
        self._started = False
        self._closed = False

        self._samples_counter = registry.counter(
            "lovo_recall_samples_total",
            "Served queries re-run through the exact shadow scan.",
            ("family", "sharded"),
        )
        self._dropped_counter = registry.counter(
            "lovo_recall_shadow_dropped_total",
            "Shadow samples dropped because the hand-off queue was full.",
        )
        self._recall_sum = registry.counter(
            "lovo_recall_sum",
            "Sum of per-sample shadow recall@k (divide by samples for the "
            "online estimate).",
            ("family", "sharded"),
        )
        self._recall_gauge = registry.gauge(
            "lovo_recall_at_k",
            "Windowed online recall@k estimate from shadow sampling.",
            ("family", "sharded", "k"),
        )
        self._margin_gauge = registry.gauge(
            "lovo_recall_score_margin",
            "Windowed mean (exact top-1 score - served top-1 score).",
            ("family", "sharded"),
        )
        self._displacement_gauge = registry.gauge(
            "lovo_recall_rank_displacement",
            "Windowed mean |served rank - exact rank| over the exact top-k.",
            ("family", "sharded"),
        )
        self._shard_hits = registry.counter(
            "lovo_recall_shard_hits_total",
            "Exact-top-k ids the served ranking also returned, by owning shard.",
            ("shard",),
        )
        self._shard_misses = registry.counter(
            "lovo_recall_shard_misses_total",
            "Exact-top-k ids the served ranking missed, by owning shard.",
            ("shard",),
        )
        self._shard_recall_gauge = registry.gauge(
            "lovo_recall_shard_at_k",
            "Cumulative per-shard recall of exact-top-k ids.",
            ("shard",),
        )
        drift_counter = registry.counter(
            "lovo_quality_drift_alerts_total",
            "Drift alerts from the quality monitors, by signal.",
            ("signal",),
        )
        self._score_drift = DriftMonitor(
            "shadow_score", drift_counter, threshold=self._config.drift_threshold
        )
        self._worker = threading.Thread(
            target=self._worker_loop, name="lovo-shadow-sampler", daemon=True
        )

    @property
    def sample_rate(self) -> float:
        """The configured fraction of served queries that is shadow-sampled."""
        return self._rate

    @property
    def recall_k(self) -> int:
        """The ``k`` of the recall@k estimates."""
        return self._recall_k

    def start(self) -> "ShadowSampler":
        """Start the background worker; idempotent."""
        with self._lock:
            if self._closed:
                raise RuntimeError("Cannot restart a stopped ShadowSampler")
            if not self._started:
                self._started = True
                self._worker.start()
        return self

    def stop(self, timeout: float | None = 5.0) -> None:
        """Stop the worker after draining queued samples; idempotent."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            started = self._started
        if started:
            self._queue.put(_STOP)
            self._worker.join(timeout)

    def maybe_sample(
        self,
        text: str,
        fast_search: Optional[Dict[str, object]],
        epoch: int = 0,
        trace_id: Optional[str] = None,
    ) -> bool:
        """Offer one served query; returns whether it was admitted.

        Called on the serving path, so the non-sampled case is one lock plus
        one float add, and the sampled case a non-blocking queue put — a full
        queue drops the sample (counted) rather than waiting.
        """
        if self._rate <= 0.0 or not fast_search or self._closed:
            return False
        hits = fast_search.get("hits")
        if not hits:
            return False
        with self._lock:
            self._accumulator += self._rate
            if self._accumulator < 1.0:
                return False
            self._accumulator -= 1.0
            self._offered += 1
        try:
            self._queue.put_nowait((text, list(hits), epoch, trace_id))
        except queue.Full:
            self._dropped_counter.inc()
            return False
        return True

    def flush(self, timeout: float = 10.0) -> bool:
        """Block until every admitted sample has been processed (tests)."""
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            with self._lock:
                if self._processed >= self._offered or self._closed:
                    return True
            if self._queue.empty():
                with self._lock:
                    if self._processed >= self._offered:
                        return True
            time.sleep(0.005)
        return False

    def stats(self) -> Dict[str, object]:
        """Windowed estimates plus worker counters for ``/v1/stats``."""
        with self._lock:
            windows = {
                key: window.means() + (window.samples,)
                for key, window in self._windows.items()
            }
            offered, processed = self._offered, self._processed
        families = {}
        for (family, sharded), (recall, margin, displacement, samples) in windows.items():
            families[f"{family}{'-sharded' if sharded == 'true' else ''}"] = {
                "recall_at_k": recall,
                "score_margin": margin,
                "rank_displacement": displacement,
                "samples": samples,
            }
        return {
            "sample_rate": self._rate,
            "recall_k": self._recall_k,
            "offered": offered,
            "processed": processed,
            "queue_depth": self._queue.qsize(),
            "families": families,
            "score_drift": self._score_drift.stats(),
        }

    # ------------------------------------------------------------- worker

    def _worker_loop(self) -> None:
        while True:
            item = self._queue.get()
            if item is _STOP:
                return
            text, served_hits, epoch, trace_id = item
            try:
                self._process(text, served_hits, epoch, trace_id)
            except Exception:  # noqa: BLE001 - shadow failures must stay shadow
                pass
            finally:
                with self._lock:
                    self._processed += 1

    def _process(
        self,
        text: str,
        served_hits: List[Tuple[str, float]],
        epoch: int,
        trace_id: Optional[str],
    ) -> None:
        storage = self._system.storage
        encoder = self._system.text_encoder
        query_vector = encoder.encode(encoder.parse(text))
        k = min(self._recall_k, len(served_hits))
        if k <= 0:
            return
        exact = storage.search(query_vector, k, use_ann=False)
        if not exact:
            return
        exact_ids = [hit.id for hit in exact]
        served_ids = [patch_id for patch_id, _ in served_hits]
        served_rank = {patch_id: rank for rank, patch_id in enumerate(served_ids)}
        served_top_k = set(served_ids[:k])

        overlap = sum(1 for patch_id in exact_ids if patch_id in served_top_k)
        recall = overlap / len(exact_ids)
        margin = float(exact[0].score) - float(served_hits[0][1])
        miss_penalty = len(served_ids)
        displacement = sum(
            abs(served_rank.get(patch_id, miss_penalty) - rank)
            for rank, patch_id in enumerate(exact_ids)
        ) / len(exact_ids)

        family = storage.index_type
        sharded = storage.sharded
        labels = {"family": family, "sharded": "true" if sharded else "false"}
        self._samples_counter.inc(**labels)
        self._recall_sum.inc(recall, **labels)

        with self._lock:
            key = (family, labels["sharded"])
            window = self._windows.get(key)
            if window is None:
                # lovo: ignore[LOVO005] keyed by (family, sharded) — at most a handful of windows
                window = self._windows[key] = _RecallWindow(self._config.shadow_window)
            window.add(recall, margin, displacement)
            window_recall, window_margin, window_displacement = window.means()
        self._recall_gauge.set(window_recall, k=str(self._recall_k), **labels)
        self._margin_gauge.set(window_margin, **labels)
        self._displacement_gauge.set(window_displacement, **labels)

        if sharded:
            self._attribute_shards(storage, exact_ids, served_top_k)
        self._score_drift.observe(float(exact[0].score))
        if self._on_sample is not None:
            self._on_sample(recall, family, trace_id)

    def _attribute_shards(
        self, storage, exact_ids: List[str], served_top_k: set
    ) -> None:
        collection = storage.collection
        shard_of = getattr(collection, "shard_of", None)
        if shard_of is None:
            return
        touched = set()
        for patch_id in exact_ids:
            try:
                shard = str(shard_of(patch_id))
            except Exception:  # noqa: BLE001 - ids may vanish under ingest races
                continue
            touched.add(shard)
            if patch_id in served_top_k:
                self._shard_hits.inc(shard=shard)
            else:
                self._shard_misses.inc(shard=shard)
        for shard in touched:
            hits = self._shard_hits.value(shard=shard)
            misses = self._shard_misses.value(shard=shard)
            total = hits + misses
            if total > 0:
                self._shard_recall_gauge.set(hits / total, shard=shard)


__all__ = ["DriftMonitor", "ShadowSampler"]
