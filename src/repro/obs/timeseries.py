"""Metrics history: a bounded ring of windowed registry snapshots.

Prometheus-style pull metrics only show *now*; operating the service (and
evaluating SLO burn rates) needs a short look-back without an external TSDB.
:class:`MetricsHistory` ticks on a background thread (or manually, in tests),
flattens every metric family from a collect callable into one
``{series: value}`` point, and appends it to a bounded ring served by
``GET /v1/metrics/history``.

Tick listeners run after each snapshot — the SLO tracker registers one so
its burn-rate gauges refresh on the same cadence the history records.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Callable, Deque, Dict, Iterable, List, Optional

from repro.obs.registry import MetricFamily
from repro.utils.locking import create_lock


def flatten_families(families: Iterable[MetricFamily]) -> Dict[str, float]:
    """One ``{"name{label=value,...}": value}`` mapping per snapshot.

    Series keys follow the exposition line format (minus escaping — keys are
    identifiers, not wire format), so a history point lines up with what a
    scrape of ``/v1/metrics`` would have shown at that instant.
    """
    values: Dict[str, float] = {}
    for family in families:
        for sample in family.samples:
            if sample.labels:
                body = ",".join(
                    f'{name}="{value}"' for name, value in sample.labels.items()
                )
                key = f"{sample.name}{{{body}}}"
            else:
                key = sample.name
            values[key] = float(sample.value)
    return values


class MetricsHistory:
    """Periodic registry snapshots in a bounded ring, with tick listeners."""

    def __init__(
        self,
        collect: Callable[[], Iterable[MetricFamily]],
        interval_seconds: float = 10.0,
        capacity: int = 360,
    ) -> None:
        if interval_seconds <= 0:
            raise ValueError("MetricsHistory interval must be positive")
        if capacity <= 0:
            raise ValueError("MetricsHistory capacity must be positive")
        self._collect = collect
        self._interval = interval_seconds
        self._capacity = capacity
        self._points: Deque[Dict[str, object]] = deque(maxlen=capacity)
        self._listeners: List[Callable[[Dict[str, object]], None]] = []
        self._lock = create_lock("MetricsHistory._lock")
        self._wake = threading.Event()
        self._ticks = 0
        self._started = False
        self._closed = False
        self._thread = threading.Thread(
            target=self._loop, name="lovo-metrics-history", daemon=True
        )

    @property
    def interval_seconds(self) -> float:
        """Seconds between automatic snapshots."""
        return self._interval

    @property
    def capacity(self) -> int:
        """Maximum retained snapshots."""
        return self._capacity

    def add_listener(self, listener: Callable[[Dict[str, object]], None]) -> None:
        """Run ``listener(point)`` after every tick (errors are swallowed)."""
        with self._lock:
            # lovo: ignore[LOVO005] listeners are registered once at wiring time, not per request
            self._listeners.append(listener)

    def start(self) -> "MetricsHistory":
        """Start the background ticker; idempotent."""
        with self._lock:
            if self._closed:
                raise RuntimeError("Cannot restart a stopped MetricsHistory")
            if not self._started:
                self._started = True
                self._thread.start()
        return self

    def stop(self, timeout: float | None = 5.0) -> None:
        """Stop the ticker; idempotent."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            started = self._started
        self._wake.set()
        if started:
            self._thread.join(timeout)

    def _loop(self) -> None:
        while not self._wake.wait(self._interval):
            self.tick()

    def tick(self, now: float | None = None) -> Dict[str, object]:
        """Take one snapshot now (the ticker's body; callable from tests)."""
        point: Dict[str, object] = {
            # lovo: ignore[LOVO004] history points carry wall-clock timestamps for display
            "t": now if now is not None else time.time(),
            "values": flatten_families(self._collect()),
        }
        with self._lock:
            self._points.append(point)
            self._ticks += 1
            listeners = list(self._listeners)
        for listener in listeners:
            try:
                listener(point)
            except Exception:  # noqa: BLE001 - listeners must not kill the ticker
                pass
        return point

    def points(
        self, limit: int | None = None, prefix: str | None = None
    ) -> List[Dict[str, object]]:
        """The retained snapshots, oldest first, optionally name-filtered."""
        with self._lock:
            snapshot = list(self._points)
        if limit is not None and limit >= 0:
            snapshot = snapshot[-limit:]
        if prefix:
            snapshot = [
                {
                    "t": point["t"],
                    "values": {
                        key: value
                        for key, value in point["values"].items()  # type: ignore[union-attr]
                        if key.startswith(prefix)
                    },
                }
                for point in snapshot
            ]
        return snapshot

    def series(self, key: str) -> List[Dict[str, float]]:
        """One series' ``[{"t", "value"}]`` across the retained snapshots."""
        with self._lock:
            snapshot = list(self._points)
        series: List[Dict[str, float]] = []
        for point in snapshot:
            values = point["values"]
            if key in values:  # type: ignore[operator]
                series.append({"t": point["t"], "value": values[key]})  # type: ignore[index]
        return series

    def stats(self) -> Dict[str, object]:
        """Occupancy summary for ``/v1/stats``."""
        with self._lock:
            return {
                "points": len(self._points),
                "capacity": self._capacity,
                "interval_seconds": self._interval,
                "ticks": self._ticks,
            }


__all__ = ["MetricsHistory", "flatten_families"]
