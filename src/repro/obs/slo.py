"""Declarative SLOs with multi-window burn-rate evaluation.

Three service-level objectives are derived from :class:`~repro.config.
ObsConfig` and tracked from the serving engine's per-request events:

* **latency** — a fraction ``slo_latency_target`` of successful requests
  must complete within ``slo_latency_ms``;
* **availability** — a fraction ``slo_availability_target`` of submissions
  must succeed (errors and admission rejections are "bad");
* **recall** — a fraction :data:`RECALL_OBJECTIVE` of shadow-sampled queries
  must reach recall@k ``slo_recall_target`` (events come from the
  :class:`~repro.obs.quality.ShadowSampler`).

Evaluation follows the multi-window burn-rate pattern: for each SLO the bad
fraction over a *fast* and a *slow* window is divided by the error budget
``1 - objective``.  A burn rate of 1.0 consumes the budget exactly at the
sustainable rate; the tracker reports ``"breaching"`` when **both** windows
burn above 1 (sustained, not a blip), ``"warning"`` when only the fast
window does, and ``"ok"`` otherwise.  Results surface in ``/v1/healthz``
(compact summary), ``GET /v1/slo`` (full evaluation), burn-rate gauges in
the metrics registry, and structured JSON log lines on ``repro.slo``
correlated by trace/request id.
"""

from __future__ import annotations

import json
import logging
import time
from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Optional, Tuple

from repro.config import ObsConfig
from repro.obs.registry import MetricsRegistry, REGISTRY
from repro.utils.locking import create_lock

#: Good-event fraction the recall SLO targets (the per-sample threshold is
#: ``ObsConfig.slo_recall_target``; this is how often it must be met).
RECALL_OBJECTIVE = 0.95

#: Rank of the status states, worst last.
_STATUS_ORDER = ("ok", "warning", "breaching")

logger = logging.getLogger("repro.slo")
# Library idiom: a NullHandler so un-configured applications are not spammed
# via logging.lastResort; tests and deployments attach their own handlers.
logger.addHandler(logging.NullHandler())


def _log(level: int, event: str, **fields: object) -> None:
    """One structured JSON log line (trace/request ids ride in ``fields``)."""
    payload = {"event": event}
    payload.update({key: value for key, value in fields.items() if value is not None})
    logger.log(level, json.dumps(payload, sort_keys=True))


@dataclass(frozen=True)
class SLODefinition:
    """One declarative objective: what fraction of events must be good."""

    name: str
    objective: float
    description: str

    @property
    def error_budget(self) -> float:
        """The tolerated bad fraction, ``1 - objective``."""
        return 1.0 - self.objective


class SLOTracker:
    """Windowed good/bad event rings per SLO, plus burn-rate evaluation."""

    def __init__(
        self,
        config: ObsConfig | None = None,
        registry: MetricsRegistry | None = None,
    ) -> None:
        self._config = config or ObsConfig()
        registry = registry or REGISTRY
        self._slos: Dict[str, SLODefinition] = {
            "latency": SLODefinition(
                "latency",
                self._config.slo_latency_target,
                f"requests under {self._config.slo_latency_ms:g} ms",
            ),
            "availability": SLODefinition(
                "availability",
                self._config.slo_availability_target,
                "requests answered without error or rejection",
            ),
            "recall": SLODefinition(
                "recall",
                RECALL_OBJECTIVE,
                f"shadow samples at recall@k >= {self._config.slo_recall_target:g}",
            ),
        }
        # Per SLO: (wall time, good) events, oldest first, bounded.
        self._events: Dict[str, Deque[Tuple[float, bool]]] = {
            name: deque(maxlen=self._config.slo_max_events) for name in self._slos
        }
        self._lock = create_lock("SLOTracker._lock")
        self._last_status: Dict[str, str] = {name: "ok" for name in self._slos}
        self._burn_gauge = registry.gauge(
            "lovo_slo_burn_rate",
            "Error-budget burn rate per SLO and evaluation window.",
            ("slo", "window"),
        )
        self._bad_counter = registry.counter(
            "lovo_slo_bad_events_total", "Bad (objective-violating) events per SLO.",
            ("slo",),
        )
        self._good_counter = registry.counter(
            "lovo_slo_good_events_total", "Good (objective-meeting) events per SLO.",
            ("slo",),
        )

    @property
    def slos(self) -> List[SLODefinition]:
        """The tracked objectives."""
        return list(self._slos.values())

    def _record(self, name: str, good: bool, now: Optional[float] = None) -> None:
        # lovo: ignore[LOVO004] burn-rate windows are anchored to wall-clock epochs
        t = now if now is not None else time.time()
        with self._lock:
            self._events[name].append((t, good))
        if good:
            self._good_counter.inc(slo=name)
        else:
            self._bad_counter.inc(slo=name)

    def record_request(
        self,
        latency_seconds: float,
        ok: bool,
        trace_id: Optional[str] = None,
        request_id: Optional[str] = None,
        outcome: str = "completed",
        now: Optional[float] = None,
    ) -> None:
        """Fold one served request into the availability and latency SLOs."""
        latency_ms = latency_seconds * 1000.0
        self._record("availability", ok, now)
        if ok:
            fast_enough = latency_ms <= self._config.slo_latency_ms
            self._record("latency", fast_enough, now)
            if not fast_enough:
                _log(
                    logging.INFO,
                    "slow_request",
                    trace_id=trace_id,
                    request_id=request_id,
                    latency_ms=round(latency_ms, 3),
                    threshold_ms=self._config.slo_latency_ms,
                )
        else:
            _log(
                logging.WARNING,
                "request_failure",
                trace_id=trace_id,
                request_id=request_id,
                outcome=outcome,
                latency_ms=round(latency_ms, 3),
            )

    def record_recall(
        self,
        recall: float,
        family: str,
        trace_id: Optional[str] = None,
        now: Optional[float] = None,
    ) -> None:
        """Fold one shadow-recall sample into the recall SLO."""
        good = recall >= self._config.slo_recall_target
        self._record("recall", good, now)
        if not good:
            _log(
                logging.WARNING,
                "low_recall",
                trace_id=trace_id,
                family=family,
                recall=round(recall, 4),
                target=self._config.slo_recall_target,
            )

    def _window_burn(
        self, events: Deque[Tuple[float, bool]], slo: SLODefinition,
        now: float, window_seconds: float,
    ) -> Dict[str, object]:
        cutoff = now - window_seconds
        total = bad = 0
        for t, good in reversed(events):
            if t < cutoff:
                break
            total += 1
            if not good:
                bad += 1
        bad_fraction = (bad / total) if total else 0.0
        budget = max(slo.error_budget, 1e-9)
        return {
            "window_seconds": window_seconds,
            "events": total,
            "bad_events": bad,
            "bad_fraction": bad_fraction,
            "burn_rate": bad_fraction / budget,
        }

    def evaluate(self, now: Optional[float] = None) -> Dict[str, object]:
        """Full multi-window evaluation (the ``GET /v1/slo`` body)."""
        # lovo: ignore[LOVO004] evaluated against the same wall-clock event timeline
        t = now if now is not None else time.time()
        results: List[Dict[str, object]] = []
        worst = "ok"
        for name, slo in self._slos.items():
            with self._lock:
                events = deque(self._events[name])
            fast = self._window_burn(
                events, slo, t, self._config.slo_fast_window_seconds
            )
            slow = self._window_burn(
                events, slo, t, self._config.slo_slow_window_seconds
            )
            fast_burning = fast["burn_rate"] >= 1.0 and fast["events"] > 0
            slow_burning = slow["burn_rate"] >= 1.0 and slow["events"] > 0
            if fast_burning and slow_burning:
                status = "breaching"
            elif fast_burning:
                status = "warning"
            else:
                status = "ok"
            self._burn_gauge.set(float(fast["burn_rate"]), slo=name, window="fast")
            self._burn_gauge.set(float(slow["burn_rate"]), slo=name, window="slow")
            previous = self._last_status.get(name)
            self._last_status[name] = status
            if status != previous and status != "ok":
                _log(
                    logging.WARNING,
                    "slo_burn",
                    slo=name,
                    status=status,
                    fast_burn_rate=round(float(fast["burn_rate"]), 3),
                    slow_burn_rate=round(float(slow["burn_rate"]), 3),
                )
            if _STATUS_ORDER.index(status) > _STATUS_ORDER.index(worst):
                worst = status
            results.append(
                {
                    "name": name,
                    "objective": slo.objective,
                    "description": slo.description,
                    "status": status,
                    "fast": fast,
                    "slow": slow,
                }
            )
        return {"status": worst, "evaluated_at": t, "slos": results}

    def summary(self, now: Optional[float] = None) -> Dict[str, object]:
        """Compact per-SLO status for ``/v1/healthz`` and ``/v1/stats``."""
        evaluation = self.evaluate(now)
        return {
            "status": evaluation["status"],
            "slos": {
                entry["name"]: {  # type: ignore[index]
                    "status": entry["status"],  # type: ignore[index]
                    "fast_burn_rate": entry["fast"]["burn_rate"],  # type: ignore[index]
                }
                for entry in evaluation["slos"]  # type: ignore[union-attr]
            },
        }

    def on_tick(self, point: Dict[str, object]) -> None:
        """Metrics-history tick listener: refresh the burn-rate gauges."""
        self.evaluate()


__all__ = ["RECALL_OBJECTIVE", "SLODefinition", "SLOTracker"]
