"""Low-resolution rasteriser turning annotated frames into pixel arrays.

The real pipeline decodes H.264 frames; the reproduction renders each
annotated frame onto a small RGB grid (default ``48x48``).  The rendered
pixels are consumed by the content-based key-frame extractor, the block-
matching motion estimator (MVmed substitute), and the ZELDA-style global
frame encoder, so those components operate on genuine image data rather than
ground-truth shortcuts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.utils.rng import rng_from_tokens
from repro.video.model import Frame
from repro.video.synthetic import color_to_rgb


@dataclass(frozen=True)
class RenderConfig:
    """Rasteriser settings.

    Attributes:
        height: Raster height in pixels.
        width: Raster width in pixels.
        noise_scale: Standard deviation of per-pixel sensor noise.
        seed: Seed for the deterministic per-frame noise.
    """

    height: int = 48
    width: int = 48
    noise_scale: float = 0.01
    seed: int = 0


class FrameRenderer:
    """Renders annotated frames to ``(H, W, 3)`` float arrays in ``[0, 1]``."""

    def __init__(
        self,
        background_color: Tuple[float, float, float] = (0.45, 0.45, 0.45),
        config: RenderConfig | None = None,
    ) -> None:
        self._background = np.array(background_color, dtype=np.float64)
        self._config = config or RenderConfig()

    @property
    def config(self) -> RenderConfig:
        """The renderer configuration."""
        return self._config

    def render(self, frame: Frame) -> np.ndarray:
        """Render one frame.

        Objects are drawn back-to-front in annotation order as filled
        rectangles of their colour attribute; a small amount of deterministic
        per-frame noise models sensor variation.
        """
        height, width = self._config.height, self._config.width
        image = np.tile(self._background, (height, width, 1))
        for annotation in frame.objects:
            box = annotation.box.clipped()
            if box.area <= 0.0:
                continue
            color = np.array(color_to_rgb(annotation.attributes.get("color", "grey")))
            y1 = int(np.floor(box.y * height))
            y2 = int(np.ceil(box.y2 * height))
            x1 = int(np.floor(box.x * width))
            x2 = int(np.ceil(box.x2 * width))
            y1, y2 = max(y1, 0), min(max(y2, y1 + 1), height)
            x1, x2 = max(x1, 0), min(max(x2, x1 + 1), width)
            image[y1:y2, x1:x2, :] = color
            roof = annotation.attributes.get("roof")
            if roof and y2 > y1 + 1:
                roof_color = np.array(color_to_rgb(roof.split()[0]))
                image[y1:y1 + max((y2 - y1) // 4, 1), x1:x2, :] = roof_color
        if self._config.noise_scale > 0:
            rng = rng_from_tokens("render", frame.frame_id, base_seed=self._config.seed)
            image = image + rng.normal(scale=self._config.noise_scale, size=image.shape)
        return np.clip(image, 0.0, 1.0)

    def render_grayscale(self, frame: Frame) -> np.ndarray:
        """Render and convert to a single luminance channel."""
        image = self.render(frame)
        weights = np.array([0.299, 0.587, 0.114])
        return image @ weights
