"""Data model for videos, frames, and ground-truth object annotations.

The real datasets used by the paper (Cityscapes, Bellevue Traffic,
QVHighlights, Beach, ActivityNet-QA) are not available offline, so the
reproduction works over synthetic videos that carry the same structure: a
dataset is a set of videos, a video is a sequence of frames, and every frame
is annotated with the objects it contains (category, visual attributes,
context and activity tags, bounding box).  These annotations play the role of
the ByteTrack-assisted manual labelling the paper uses for ground truth, and
they also parameterise the simulated encoders.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Mapping, Sequence, Tuple

from repro.errors import VideoError
from repro.utils.geometry import BoundingBox


@dataclass(frozen=True)
class ObjectAnnotation:
    """A single ground-truth object instance inside one frame.

    Attributes:
        object_id: Identity of the object across frames (track id).
        category: Object class, e.g. ``"car"``, ``"person"``, ``"bus"``.
        attributes: Visual attributes such as ``{"color": "red",
            "size": "large"}``.
        context: Scene-context tags such as ``("road", "intersection")``.
        activity: Activity tags such as ``("driving",)`` or ``("walking",)``.
        box: Bounding box in normalised frame coordinates.
    """

    object_id: str
    category: str
    attributes: Mapping[str, str] = field(default_factory=dict)
    context: Tuple[str, ...] = ()
    activity: Tuple[str, ...] = ()
    box: BoundingBox = field(default_factory=lambda: BoundingBox(0.0, 0.0, 0.0, 0.0))

    def concept_tokens(self) -> List[str]:
        """All semantic tokens describing the object.

        The simulated encoders mix the concept vectors of these tokens into
        the visual embedding of any patch the object overlaps.
        """
        tokens: List[str] = [self.category]
        tokens.extend(self.attributes.values())
        tokens.extend(self.context)
        tokens.extend(self.activity)
        return tokens

    def describe(self) -> str:
        """A compact human-readable description for logs and examples."""
        attrs = " ".join(self.attributes.values())
        parts = [part for part in (attrs, self.category) if part]
        if self.activity:
            parts.append(" ".join(self.activity))
        if self.context:
            parts.append("on " + " ".join(self.context))
        return " ".join(parts)


@dataclass(frozen=True)
class Frame:
    """A single annotated video frame."""

    frame_id: str
    video_id: str
    index: int
    timestamp: float
    objects: Tuple[ObjectAnnotation, ...] = ()
    camera_offset: Tuple[float, float] = (0.0, 0.0)

    def visible_objects(self, min_area: float = 1e-4) -> List[ObjectAnnotation]:
        """Objects whose clipped box retains at least ``min_area`` area."""
        visible = []
        for annotation in self.objects:
            clipped = annotation.box.clipped()
            if clipped.area >= min_area:
                visible.append(annotation)
        return visible

    def categories(self) -> List[str]:
        """Distinct categories present in the frame."""
        seen: Dict[str, None] = {}
        for annotation in self.objects:
            seen.setdefault(annotation.category, None)
        return list(seen)


@dataclass
class Video:
    """A sequence of frames from one camera."""

    video_id: str
    frames: List[Frame]
    fps: float = 30.0
    camera: str = "fixed"
    scene: str = "generic"

    def __post_init__(self) -> None:
        if self.fps <= 0:
            raise VideoError(f"fps must be positive, got {self.fps}")
        for position, frame in enumerate(self.frames):
            if frame.video_id != self.video_id:
                raise VideoError(
                    f"Frame {frame.frame_id} belongs to video {frame.video_id!r}, "
                    f"not {self.video_id!r}"
                )
            if frame.index != position:
                raise VideoError(
                    f"Frame at position {position} has index {frame.index}; frames must be ordered"
                )

    @property
    def num_frames(self) -> int:
        """Number of frames in the video."""
        return len(self.frames)

    @property
    def duration_seconds(self) -> float:
        """Duration implied by the frame count and frame rate."""
        return self.num_frames / self.fps

    def frame_pairs(self) -> Iterator[Tuple[Frame, Frame]]:
        """Iterate over consecutive ``(previous, current)`` frame pairs."""
        yield from zip(self.frames, self.frames[1:])


@dataclass
class VideoDataset:
    """A named collection of videos plus dataset-level metadata."""

    name: str
    videos: List[Video]
    description: str = ""
    background_color: Tuple[float, float, float] = (0.45, 0.45, 0.45)

    @property
    def num_videos(self) -> int:
        """Number of videos in the dataset."""
        return len(self.videos)

    @property
    def num_frames(self) -> int:
        """Total number of frames across all videos."""
        return sum(video.num_frames for video in self.videos)

    @property
    def duration_seconds(self) -> float:
        """Total duration across all videos."""
        return sum(video.duration_seconds for video in self.videos)

    def iter_frames(self) -> Iterator[Frame]:
        """Iterate over every frame of every video, in order."""
        for video in self.videos:
            yield from video.frames

    def all_frames(self) -> List[Frame]:
        """All frames materialised as a list."""
        return list(self.iter_frames())

    def frame_by_id(self, frame_id: str) -> Frame:
        """Look up a frame by its id; raises :class:`VideoError` if missing."""
        for frame in self.iter_frames():
            if frame.frame_id == frame_id:
                return frame
        raise VideoError(f"Frame {frame_id!r} not found in dataset {self.name!r}")

    def categories(self) -> List[str]:
        """Distinct object categories appearing anywhere in the dataset."""
        seen: Dict[str, None] = {}
        for frame in self.iter_frames():
            for annotation in frame.objects:
                seen.setdefault(annotation.category, None)
        return list(seen)

    def subset(self, max_frames: int) -> "VideoDataset":
        """A new dataset truncated to at most ``max_frames`` frames.

        Used by the scalability benchmarks (Fig. 10) to sweep dataset size.
        """
        if max_frames <= 0:
            raise VideoError("max_frames must be positive")
        remaining = max_frames
        truncated_videos: List[Video] = []
        for video in self.videos:
            if remaining <= 0:
                break
            frames = video.frames[:remaining]
            truncated_videos.append(
                Video(
                    video_id=video.video_id,
                    frames=frames,
                    fps=video.fps,
                    camera=video.camera,
                    scene=video.scene,
                )
            )
            remaining -= len(frames)
        return VideoDataset(
            name=f"{self.name}[:{max_frames}]",
            videos=truncated_videos,
            description=self.description,
            background_color=self.background_color,
        )


def make_frame_id(video_id: str, index: int) -> str:
    """Canonical frame-id format shared by generators and the metadata store."""
    return f"{video_id}/frame{index:06d}"


def concat_datasets(name: str, datasets: Sequence[VideoDataset]) -> VideoDataset:
    """Concatenate several datasets into one (used by scalability sweeps)."""
    videos: List[Video] = []
    for dataset in datasets:
        videos.extend(dataset.videos)
    background = datasets[0].background_color if datasets else (0.45, 0.45, 0.45)
    return VideoDataset(name=name, videos=videos, background_color=background)
