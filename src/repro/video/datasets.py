"""Synthetic stand-ins for the paper's evaluation datasets.

The paper evaluates on four video datasets (Table II) plus ActivityNet-QA for
the query-type extension (Table VI/VII):

* **Cityscapes** — moving dashcam, urban streets, pedestrians and cyclists.
* **Bellevue Traffic** — fixed intersection camera, cars and buses.
* **QVHighlights** — diverse YouTube vlogs; the selected queries involve
  people and dogs inside cars.
* **Beach** — fixed sidewalk camera at a resort; buses, trucks, carts.
* **ActivityNet-QA** — everyday activity videos used for yes/no questions.

Each builder below assembles a :class:`~repro.video.synthetic.SceneSpec`
whose object archetypes include both the *query targets* of Table II (e.g. a
red car driving side-by-side in the centre of the road, a green bus with a
white roof) and plentiful distractors, so that retrieval is a genuine
discrimination problem rather than a lookup.
"""

from __future__ import annotations

from typing import Callable, Dict

from repro.errors import VideoError
from repro.video.model import VideoDataset
from repro.video.synthetic import ObjectSpec, SceneSpec, generate_videos

#: Number of frames per video used by the default dataset builders.  The
#: evaluation datasets in the paper are tens of gigabytes; the reproduction
#: keeps the same *relative* sizes across datasets while staying laptop-scale.
DEFAULT_FRAMES_PER_VIDEO = 300
DEFAULT_NUM_VIDEOS = 3


def make_cityscapes(
    num_videos: int = DEFAULT_NUM_VIDEOS,
    frames_per_video: int = DEFAULT_FRAMES_PER_VIDEO,
    seed: int = 0,
) -> VideoDataset:
    """Moving-camera urban street scene (pedestrians, cyclists, parked cars)."""
    specs = (
        # Distractors: ordinary traffic and pedestrians.
        ObjectSpec("car", {"color": "grey"}, ("street",), ("driving",),
                   size=(0.14, 0.10), speed=0.012, spawn_weight=1.8),
        ObjectSpec("car", {"color": "blue"}, ("street",), ("parked",),
                   size=(0.14, 0.10), speed=0.0, spawn_weight=1.0, max_age=110),
        ObjectSpec("person", {"color": "dark", "clothing": "jacket"}, ("street",),
                   ("standing",), size=(0.05, 0.12), speed=0.0, spawn_weight=1.2, max_age=90),
        # Q1.1 target: a person walking on the street.
        ObjectSpec("person", {"color": "grey", "clothing": "coat"}, ("street",),
                   ("walking",), size=(0.05, 0.12), speed=0.004, spawn_weight=2.0, max_age=130),
        # Q1.2 target: light-coloured clothing, walking, holding a dark bag.
        ObjectSpec("person", {"color": "light", "clothing": "coat", "accessory": "dark bag"},
                   ("street",), ("walking", "holding"),
                   size=(0.05, 0.12), speed=0.004, spawn_weight=1.3, max_age=110),
        # Q1.3 target: a person riding a bicycle.
        ObjectSpec("person", {"color": "grey", "vehicle": "bicycle"}, ("street",),
                   ("riding",), size=(0.06, 0.12), speed=0.008, spawn_weight=1.0),
        # Q1.4 target: cyclist in a black t-shirt and blue jeans.
        ObjectSpec("person", {"color": "black", "clothing": "black t-shirt",
                              "legwear": "blue jeans", "vehicle": "bicycle"},
                   ("street",), ("riding",),
                   size=(0.06, 0.12), speed=0.008, spawn_weight=1.2),
    )
    scene = SceneSpec(
        name="cityscapes",
        object_specs=specs,
        mean_objects=6.0,
        camera="moving",
        camera_speed=0.005,
        background_color=(0.50, 0.50, 0.52),
        spawn_rate=0.9,
        default_max_age=90,
    )
    videos = generate_videos(scene, num_videos, frames_per_video, seed=seed)
    return VideoDataset(
        name="cityscapes",
        videos=videos,
        description="Synthetic stand-in for the Cityscapes Stuttgart dashcam sequence",
        background_color=scene.background_color,
    )


def make_bellevue(
    num_videos: int = DEFAULT_NUM_VIDEOS,
    frames_per_video: int = DEFAULT_FRAMES_PER_VIDEO,
    seed: int = 0,
) -> VideoDataset:
    """Fixed intersection camera with cars and buses (Bellevue Traffic)."""
    specs = (
        # Distractor traffic across several lanes.
        ObjectSpec("car", {"color": "grey"}, ("road",), ("driving",),
                   size=(0.13, 0.09), speed=0.014, spawn_weight=2.0),
        ObjectSpec("car", {"color": "black", "size": "large"}, ("road",), ("driving",),
                   size=(0.15, 0.10), speed=0.013, spawn_weight=1.5),
        ObjectSpec("car", {"color": "white"}, ("road",), ("driving",),
                   size=(0.13, 0.09), speed=0.014, spawn_weight=1.5),
        ObjectSpec("person", {"color": "dark"}, ("sidewalk",), ("walking",),
                   size=(0.04, 0.10), speed=0.003, spawn_weight=0.8),
        # Q2.1 target: red car driving in the centre of the road.
        ObjectSpec("car", {"color": "red"}, ("road", "center"), ("driving",),
                   size=(0.13, 0.09), speed=0.013, spawn_weight=0.9, lane=0.5),
        # Q2.2 target: red car side by side with another car in the centre.
        ObjectSpec("car", {"color": "red"}, ("road", "center"), ("driving",),
                   size=(0.13, 0.09), speed=0.013, spawn_weight=0.7, lane=0.5, paired=True),
        # Q2.3 target: a bus driving on the road.
        ObjectSpec("bus", {"color": "blue", "size": "large"}, ("road",), ("driving",),
                   size=(0.22, 0.12), speed=0.010, spawn_weight=0.9),
        # Q2.4 target: bus with a white roof and yellow-green body.
        ObjectSpec("bus", {"color": "yellow-green", "roof": "white roof", "size": "large"},
                   ("road",), ("driving",),
                   size=(0.22, 0.12), speed=0.010, spawn_weight=0.8),
    )
    scene = SceneSpec(
        name="bellevue",
        object_specs=specs,
        mean_objects=7.0,
        camera="fixed",
        background_color=(0.42, 0.42, 0.42),
        spawn_rate=0.9,
        default_max_age=90,
    )
    videos = generate_videos(scene, num_videos, frames_per_video, seed=seed)
    return VideoDataset(
        name="bellevue",
        videos=videos,
        description="Synthetic stand-in for the Bellevue Traffic intersection footage",
        background_color=scene.background_color,
    )


def make_qvhighlights(
    num_videos: int = DEFAULT_NUM_VIDEOS,
    frames_per_video: int = DEFAULT_FRAMES_PER_VIDEO,
    seed: int = 0,
) -> VideoDataset:
    """Moving-camera vlog-style scenes involving people and dogs inside cars."""
    specs = (
        # Distractors: people and objects in everyday settings.
        ObjectSpec("person", {"color": "grey", "clothing": "shirt"}, ("room",),
                   ("talking",), size=(0.10, 0.22), speed=0.002, spawn_weight=1.5, max_age=70),
        ObjectSpec("car", {"color": "silver"}, ("road",), ("driving",),
                   size=(0.18, 0.12), speed=0.008, spawn_weight=1.0),
        ObjectSpec("dog", {"color": "brown"}, ("room",), ("sitting",),
                   size=(0.08, 0.08), speed=0.001, spawn_weight=0.8, max_age=70),
        # Q3.1 target: a woman smiling sitting inside a car.
        ObjectSpec("woman", {"color": "grey", "expression": "smiling"}, ("car_interior",),
                   ("sitting",), size=(0.12, 0.20), speed=0.001, spawn_weight=1.2, max_age=70),
        # Q3.2 target: red-haired woman with a white dress sitting inside a car.
        ObjectSpec("woman", {"color": "white", "hair": "red hair", "clothing": "white dress"},
                   ("car_interior",), ("sitting",),
                   size=(0.12, 0.20), speed=0.001, spawn_weight=1.0, max_age=70),
        # Q3.3 target: a white dog inside a car.
        ObjectSpec("dog", {"color": "white"}, ("car_interior",), ("sitting",),
                   size=(0.08, 0.08), speed=0.001, spawn_weight=1.0, max_age=70),
        # Q3.4 target: white dog inside a car next to a woman in black clothes;
        # the paired spawn keeps the woman companion adjacent in every frame.
        ObjectSpec("dog", {"color": "white"}, ("car_interior",), ("sitting",),
                   size=(0.08, 0.08), speed=0.001, spawn_weight=1.0, paired=True, max_age=70,
                   companion=ObjectSpec(
                       "woman", {"color": "black", "clothing": "black clothes"},
                       ("car_interior",), ("sitting",), size=(0.12, 0.20), speed=0.001,
                   )),
        ObjectSpec("woman", {"color": "black", "clothing": "black clothes"},
                   ("car_interior",), ("sitting",),
                   size=(0.12, 0.20), speed=0.001, spawn_weight=0.8, max_age=70),
    )
    scene = SceneSpec(
        name="qvhighlights",
        object_specs=specs,
        mean_objects=5.0,
        camera="moving",
        camera_speed=0.003,
        background_color=(0.55, 0.52, 0.48),
        spawn_rate=0.9,
        default_max_age=70,
    )
    videos = generate_videos(scene, num_videos, frames_per_video, seed=seed)
    return VideoDataset(
        name="qvhighlights",
        videos=videos,
        description="Synthetic stand-in for the selected QVHighlights YouTube videos",
        background_color=scene.background_color,
    )


def make_beach(
    num_videos: int = DEFAULT_NUM_VIDEOS,
    frames_per_video: int = DEFAULT_FRAMES_PER_VIDEO,
    seed: int = 0,
) -> VideoDataset:
    """Fixed sidewalk camera at a resort (buses, trucks, carts)."""
    specs = (
        # Distractors: pedestrians, carts, ordinary vehicles.
        ObjectSpec("person", {"color": "light"}, ("sidewalk",), ("walking",),
                   size=(0.04, 0.10), speed=0.003, spawn_weight=1.5, max_age=130),
        ObjectSpec("car", {"color": "white"}, ("road",), ("driving",),
                   size=(0.13, 0.09), speed=0.012, spawn_weight=1.5),
        ObjectSpec("cart", {"color": "orange"}, ("sidewalk",), ("driving",),
                   size=(0.08, 0.07), speed=0.006, spawn_weight=1.0),
        ObjectSpec("bus", {"color": "white", "size": "large"}, ("road",), ("driving",),
                   size=(0.22, 0.12), speed=0.009, spawn_weight=0.8),
        # Q4.1 target: a green bus driving on the road.
        ObjectSpec("bus", {"color": "green", "size": "large"}, ("road",), ("driving",),
                   size=(0.22, 0.12), speed=0.009, spawn_weight=0.9),
        # Q4.2 target: green bus with a white roof.
        ObjectSpec("bus", {"color": "green", "roof": "white roof", "size": "large"},
                   ("road",), ("driving",),
                   size=(0.22, 0.12), speed=0.009, spawn_weight=0.8),
        # Q4.3 target: a truck driving on the road.
        ObjectSpec("truck", {"color": "grey", "size": "large"}, ("road",), ("driving",),
                   size=(0.20, 0.12), speed=0.010, spawn_weight=0.8),
        # Q4.4 target: a small white truck filled with cargo.
        ObjectSpec("truck", {"color": "white", "size": "small", "load": "cargo"},
                   ("road",), ("driving",),
                   size=(0.14, 0.09), speed=0.010, spawn_weight=0.8),
    )
    scene = SceneSpec(
        name="beach",
        object_specs=specs,
        mean_objects=6.0,
        camera="fixed",
        background_color=(0.80, 0.75, 0.60),
        spawn_rate=0.9,
        default_max_age=90,
    )
    videos = generate_videos(scene, num_videos, frames_per_video, seed=seed)
    return VideoDataset(
        name="beach",
        videos=videos,
        description="Synthetic stand-in for the Beach resort sidewalk footage",
        background_color=scene.background_color,
    )


def make_activitynet_qa(
    num_videos: int = DEFAULT_NUM_VIDEOS,
    frames_per_video: int = DEFAULT_FRAMES_PER_VIDEO,
    seed: int = 0,
) -> VideoDataset:
    """Everyday-activity scenes for the yes/no extension queries (Table VI)."""
    specs = (
        # Distractors.
        ObjectSpec("person", {"color": "grey"}, ("room",), ("standing",),
                   size=(0.10, 0.22), speed=0.002, spawn_weight=1.5, max_age=80),
        ObjectSpec("car", {"color": "black"}, ("road",), ("driving",),
                   size=(0.15, 0.10), speed=0.010, spawn_weight=1.0),
        # EQ1 target: a car parked on the meadow.
        ObjectSpec("car", {"color": "blue"}, ("meadow",), ("parked",),
                   size=(0.15, 0.10), speed=0.0, spawn_weight=0.9, max_age=90),
        # EQ2 target: a man wearing a hat.
        ObjectSpec("man", {"color": "grey", "headwear": "hat"}, ("outdoors",),
                   ("standing",), size=(0.10, 0.22), speed=0.002, spawn_weight=1.0, max_age=80),
        # EQ3 target: a person in a red life jacket, outdoors.
        ObjectSpec("person", {"color": "red", "clothing": "red life jacket"},
                   ("outdoors", "water"), ("paddling",),
                   size=(0.08, 0.16), speed=0.004, spawn_weight=0.9, max_age=90),
        # EQ4 target: a person in a grey skirt dancing in a room.
        ObjectSpec("person", {"color": "grey", "clothing": "grey skirt"},
                   ("room",), ("dancing",),
                   size=(0.10, 0.22), speed=0.003, spawn_weight=0.9, max_age=90),
    )
    scene = SceneSpec(
        name="activitynet",
        object_specs=specs,
        mean_objects=5.0,
        camera="moving",
        camera_speed=0.003,
        background_color=(0.50, 0.55, 0.45),
        spawn_rate=0.9,
        default_max_age=70,
    )
    videos = generate_videos(scene, num_videos, frames_per_video, seed=seed)
    return VideoDataset(
        name="activitynet",
        videos=videos,
        description="Synthetic stand-in for the selected ActivityNet-QA videos",
        background_color=scene.background_color,
    )


_BUILDERS: Dict[str, Callable[..., VideoDataset]] = {
    "cityscapes": make_cityscapes,
    "bellevue": make_bellevue,
    "qvhighlights": make_qvhighlights,
    "beach": make_beach,
    "activitynet": make_activitynet_qa,
}


def dataset_names() -> list[str]:
    """Names of all available synthetic datasets."""
    return list(_BUILDERS)


def make_dataset(
    name: str,
    num_videos: int = DEFAULT_NUM_VIDEOS,
    frames_per_video: int = DEFAULT_FRAMES_PER_VIDEO,
    seed: int = 0,
) -> VideoDataset:
    """Build a dataset by name; raises :class:`VideoError` for unknown names."""
    try:
        builder = _BUILDERS[name]
    except KeyError as error:
        raise VideoError(
            f"Unknown dataset {name!r}; available: {sorted(_BUILDERS)}"
        ) from error
    return builder(num_videos=num_videos, frames_per_video=frames_per_video, seed=seed)
