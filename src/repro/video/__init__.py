"""Synthetic video substrate: data model, scene generators, rendering, motion."""

from repro.video.model import Frame, ObjectAnnotation, Video, VideoDataset
from repro.video.synthetic import ObjectSpec, SceneSpec, SyntheticVideoGenerator
from repro.video.datasets import (
    make_activitynet_qa,
    make_beach,
    make_bellevue,
    make_cityscapes,
    make_dataset,
    make_qvhighlights,
)

__all__ = [
    "Frame",
    "ObjectAnnotation",
    "Video",
    "VideoDataset",
    "ObjectSpec",
    "SceneSpec",
    "SyntheticVideoGenerator",
    "make_cityscapes",
    "make_bellevue",
    "make_qvhighlights",
    "make_beach",
    "make_activitynet_qa",
    "make_dataset",
]
