"""Procedural scene generator producing annotated synthetic videos.

The generator replaces the paper's real surveillance / dashcam / YouTube
footage.  A :class:`SceneSpec` describes the statistical composition of a
scene — which object archetypes appear, how often, how they move, and whether
the camera itself moves (Cityscapes and QVHighlights use moving cameras,
Bellevue and Beach are fixed).  :class:`SyntheticVideoGenerator` rolls that
specification forward in time with constant-velocity dynamics plus noise,
spawning and retiring objects, and emits fully annotated :class:`~repro.video.
model.Frame` objects.

Because every object carries its category, attributes, context and activity
tags, downstream components can (a) build ground truth for any query and
(b) simulate pretrained encoders whose embeddings reflect what is actually in
the frame.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Mapping, Optional, Tuple

import numpy as np

from repro.errors import VideoError
from repro.utils.geometry import BoundingBox
from repro.utils.rng import rng_from_tokens
from repro.video.model import Frame, ObjectAnnotation, Video, make_frame_id


@dataclass(frozen=True)
class ObjectSpec:
    """Archetype of an object class that can appear in a scene.

    Attributes:
        category: Object class name (``"car"``, ``"person"``, ...).
        attributes: Fixed visual attributes of the archetype.
        context: Scene-context tags attached to every instance.
        activity: Activity tags attached to every instance.
        size: Nominal ``(width, height)`` of the bounding box in normalised
            frame coordinates.
        speed: Nominal speed in frame-widths per frame.
        spawn_weight: Relative probability of this archetype being chosen when
            a new object spawns.
        lane: Optional vertical position (``y`` centre) the object keeps, e.g.
            a road lane; when ``None`` the spawn position is uniform.
        paired: When true, instances spawn as side-by-side pairs (used for the
            "side by side with another car" query targets).
        max_age: Maximum number of frames an instance stays in the scene
            before it is retired (models scene cuts for slow-moving indoor
            objects); ``None`` means the object only leaves by moving
            off-screen.
        companion: Archetype of the paired companion object; when ``None`` the
            companion is a copy of this archetype (e.g. another car).
    """

    category: str
    attributes: Mapping[str, str] = field(default_factory=dict)
    context: Tuple[str, ...] = ()
    activity: Tuple[str, ...] = ()
    size: Tuple[float, float] = (0.12, 0.10)
    speed: float = 0.01
    spawn_weight: float = 1.0
    lane: Optional[float] = None
    paired: bool = False
    max_age: Optional[int] = None
    companion: Optional["ObjectSpec"] = None

    def with_weight(self, weight: float) -> "ObjectSpec":
        """A copy of the spec with a different spawn weight."""
        return replace(self, spawn_weight=weight)


@dataclass(frozen=True)
class SceneSpec:
    """Statistical description of a scene filmed by one camera.

    Attributes:
        name: Scene name, also used to seed the generator.
        object_specs: Archetypes that may appear.
        mean_objects: Target mean number of concurrently visible objects.
        camera: ``"fixed"`` or ``"moving"``.
        camera_speed: Magnitude of the camera drift per frame when moving.
        fps: Frame rate of the produced videos.
        background_color: RGB background colour used by the renderer.
        spawn_rate: Probability per frame of spawning a new object when the
            scene is below ``mean_objects``.
        default_max_age: Lifetime cap applied to archetypes that do not set
            their own ``max_age``; keeps slow scenes turning over so long
            videos contain many distinct object instances.
    """

    name: str
    object_specs: Tuple[ObjectSpec, ...]
    mean_objects: float = 4.0
    camera: str = "fixed"
    camera_speed: float = 0.004
    fps: float = 30.0
    background_color: Tuple[float, float, float] = (0.45, 0.45, 0.45)
    spawn_rate: float = 0.6
    default_max_age: int | None = None

    def __post_init__(self) -> None:
        if not self.object_specs:
            raise VideoError(f"SceneSpec {self.name!r} needs at least one ObjectSpec")
        if self.camera not in {"fixed", "moving"}:
            raise VideoError(f"camera must be 'fixed' or 'moving', got {self.camera!r}")


@dataclass
class _ActiveObject:
    """Internal mutable state of a live object while a video is generated."""

    object_id: str
    spec: ObjectSpec
    center: np.ndarray
    velocity: np.ndarray
    size: Tuple[float, float]
    age: int = 0

    def to_annotation(self, camera_offset: Tuple[float, float]) -> ObjectAnnotation:
        """Project the object into camera coordinates and annotate it."""
        cx = float(self.center[0] - camera_offset[0])
        cy = float(self.center[1] - camera_offset[1])
        box = BoundingBox.from_center(cx, cy, self.size[0], self.size[1])
        return ObjectAnnotation(
            object_id=self.object_id,
            category=self.spec.category,
            attributes=dict(self.spec.attributes),
            context=self.spec.context,
            activity=self.spec.activity,
            box=box,
        )


class SyntheticVideoGenerator:
    """Generates annotated videos from a :class:`SceneSpec`.

    The generator is deterministic given ``(scene.name, seed, video_id)``.
    """

    def __init__(self, scene: SceneSpec, seed: int = 0) -> None:
        self._scene = scene
        self._seed = seed
        self._current_camera_offset = np.zeros(2, dtype=np.float64)

    @property
    def scene(self) -> SceneSpec:
        """The scene specification driving this generator."""
        return self._scene

    def generate(self, video_id: str, num_frames: int) -> Video:
        """Generate one annotated video with ``num_frames`` frames."""
        if num_frames <= 0:
            raise VideoError("num_frames must be positive")
        rng = rng_from_tokens("video", self._scene.name, video_id, base_seed=self._seed)
        active: List[_ActiveObject] = []
        frames: List[Frame] = []
        camera_offset = np.zeros(2, dtype=np.float64)
        camera_velocity = self._initial_camera_velocity(rng)
        next_object_serial = 0

        for index in range(num_frames):
            self._current_camera_offset = camera_offset
            next_object_serial = self._maybe_spawn(rng, active, video_id, next_object_serial)
            self._step_objects(rng, active)
            if self._scene.camera == "moving":
                camera_velocity = self._update_camera_velocity(rng, camera_velocity)
                camera_offset = camera_offset + camera_velocity
            annotations = self._annotate(active, camera_offset)
            frames.append(
                Frame(
                    frame_id=make_frame_id(video_id, index),
                    video_id=video_id,
                    index=index,
                    timestamp=index / self._scene.fps,
                    objects=tuple(annotations),
                    camera_offset=(float(camera_offset[0]), float(camera_offset[1])),
                )
            )
            active = self._retire_offscreen(active, camera_offset)

        return Video(
            video_id=video_id,
            frames=frames,
            fps=self._scene.fps,
            camera=self._scene.camera,
            scene=self._scene.name,
        )

    def _initial_camera_velocity(self, rng: np.random.Generator) -> np.ndarray:
        if self._scene.camera != "moving":
            return np.zeros(2, dtype=np.float64)
        direction = rng.normal(size=2)
        direction /= max(np.linalg.norm(direction), 1e-9)
        return direction * self._scene.camera_speed

    def _update_camera_velocity(
        self, rng: np.random.Generator, velocity: np.ndarray
    ) -> np.ndarray:
        jitter = rng.normal(scale=self._scene.camera_speed * 0.2, size=2)
        updated = velocity + jitter
        norm = np.linalg.norm(updated)
        if norm > self._scene.camera_speed * 2.0:
            updated = updated / norm * self._scene.camera_speed * 2.0
        return updated

    def _maybe_spawn(
        self,
        rng: np.random.Generator,
        active: List[_ActiveObject],
        video_id: str,
        serial: int,
    ) -> int:
        """Spawn new objects while the scene is below its target density."""
        while len(active) < self._scene.mean_objects and rng.random() < self._scene.spawn_rate:
            spec = self._choose_spec(rng)
            spawned = self._spawn_object(rng, spec, video_id, serial)
            active.extend(spawned)
            serial += len(spawned)
        return serial

    def _choose_spec(self, rng: np.random.Generator) -> ObjectSpec:
        weights = np.array([spec.spawn_weight for spec in self._scene.object_specs])
        weights = weights / weights.sum()
        index = int(rng.choice(len(self._scene.object_specs), p=weights))
        return self._scene.object_specs[index]

    def _spawn_object(
        self,
        rng: np.random.Generator,
        spec: ObjectSpec,
        video_id: str,
        serial: int,
    ) -> List[_ActiveObject]:
        """Create one object (or a side-by-side pair for paired archetypes)."""
        # Spawn positions are expressed relative to the *current camera view*
        # so that a drifting camera keeps seeing new objects.
        camera_offset = self._current_camera_offset
        lane = spec.lane if spec.lane is not None else float(rng.uniform(0.2, 0.8))
        lane += float(camera_offset[1])
        moving_right = bool(rng.random() < 0.5)
        speed = spec.speed * float(rng.uniform(0.8, 1.2))
        if abs(spec.speed) < 0.003:
            # Slow or static objects (parked cars, seated people) appear inside
            # the visible frame — spawning them off-screen would mean they
            # never become visible before they are retired.
            start_x = float(rng.uniform(0.2, 0.8)) + float(camera_offset[0])
        else:
            start_x = -spec.size[0] if moving_right else 1.0 + spec.size[0]
            start_x += float(camera_offset[0])
        velocity = np.array([speed if moving_right else -speed, 0.0])
        size = (
            spec.size[0] * float(rng.uniform(0.9, 1.1)),
            spec.size[1] * float(rng.uniform(0.9, 1.1)),
        )
        primary = _ActiveObject(
            object_id=f"{video_id}/obj{serial:05d}",
            spec=spec,
            center=np.array([start_x, lane], dtype=np.float64),
            velocity=velocity,
            size=size,
        )
        spawned = [primary]
        if spec.paired:
            companion_spec = spec.companion or replace(spec, paired=False, companion=None)
            companion_spec = replace(companion_spec, paired=False, companion=None)
            companion_size = (
                companion_spec.size[0] * float(rng.uniform(0.9, 1.1)),
                companion_spec.size[1] * float(rng.uniform(0.9, 1.1)),
            )
            companion = _ActiveObject(
                object_id=f"{video_id}/obj{serial + 1:05d}",
                spec=companion_spec,
                center=primary.center + np.array([max(size[0], companion_size[0]) * 1.3, 0.0]),
                velocity=velocity.copy(),
                size=companion_size,
            )
            spawned.append(companion)
        return spawned

    def _step_objects(self, rng: np.random.Generator, active: List[_ActiveObject]) -> None:
        for obj in active:
            jitter = rng.normal(scale=abs(obj.spec.speed) * 0.1 + 1e-4, size=2)
            jitter[1] *= 0.3
            obj.center = obj.center + obj.velocity + jitter
            obj.age += 1

    def _annotate(
        self, active: List[_ActiveObject], camera_offset: np.ndarray
    ) -> List[ObjectAnnotation]:
        offset = (float(camera_offset[0]), float(camera_offset[1]))
        annotations = []
        for obj in active:
            annotation = obj.to_annotation(offset)
            if annotation.box.clipped().area > 1e-4:
                annotations.append(annotation)
        return annotations

    def _retire_offscreen(
        self, active: List[_ActiveObject], camera_offset: np.ndarray
    ) -> List[_ActiveObject]:
        """Drop objects that left the visible frame or exceeded their lifetime."""
        survivors = []
        for obj in active:
            max_age = obj.spec.max_age if obj.spec.max_age is not None else self._scene.default_max_age
            if max_age is not None and obj.age > max_age:
                continue
            cx = obj.center[0] - camera_offset[0]
            cy = obj.center[1] - camera_offset[1]
            if -0.5 <= cx <= 1.5 and -0.5 <= cy <= 1.5:
                survivors.append(obj)
        return survivors


def generate_videos(
    scene: SceneSpec,
    num_videos: int,
    frames_per_video: int,
    seed: int = 0,
    video_prefix: str | None = None,
) -> List[Video]:
    """Generate several videos of the same scene with independent streams.

    Video ids (and therefore frame and patch ids) include the seed when it is
    non-zero, so datasets generated with different seeds can be ingested into
    the same index without id collisions.
    """
    if video_prefix is not None:
        prefix = video_prefix
    elif seed == 0:
        prefix = scene.name
    else:
        prefix = f"{scene.name}-seed{seed}"
    generator = SyntheticVideoGenerator(scene, seed=seed)
    return [
        generator.generate(f"{prefix}-{index:03d}", frames_per_video)
        for index in range(num_videos)
    ]


COLOR_RGB: Dict[str, Tuple[float, float, float]] = {
    "red": (0.85, 0.15, 0.15),
    "black": (0.08, 0.08, 0.08),
    "white": (0.95, 0.95, 0.95),
    "green": (0.15, 0.65, 0.25),
    "yellow-green": (0.65, 0.80, 0.20),
    "blue": (0.15, 0.25, 0.80),
    "grey": (0.55, 0.55, 0.55),
    "silver": (0.75, 0.75, 0.78),
    "light": (0.85, 0.85, 0.80),
    "dark": (0.15, 0.15, 0.18),
    "brown": (0.45, 0.30, 0.15),
    "orange": (0.90, 0.55, 0.10),
}


def color_to_rgb(color_name: str) -> Tuple[float, float, float]:
    """Map a colour attribute to RGB for the renderer; grey when unknown."""
    return COLOR_RGB.get(color_name, (0.5, 0.5, 0.5))
