"""Block-matching motion-vector estimation.

MVmed (the key-frame tracker the paper adopts, §IV-A) works in the compressed
domain by reading the motion vectors the codec already computed.  Raw motion
vectors are not available for synthetic frames, so this module recomputes them
with classic block matching over the rendered luminance images: each block of
the current frame is matched against a small search window in the previous
frame and the displacement with the lowest sum-of-absolute-differences wins.
The resulting field has exactly the same role as codec motion vectors — it
measures how much, and where, the scene moved — which is all the MVmed-style
key-frame selector needs.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class MotionField:
    """Dense block-level motion vectors between two frames.

    Attributes:
        dx: Horizontal displacement per block (in pixels).
        dy: Vertical displacement per block (in pixels).
    """

    dx: np.ndarray
    dy: np.ndarray

    @property
    def magnitude(self) -> np.ndarray:
        """Per-block motion magnitude."""
        return np.sqrt(self.dx ** 2 + self.dy ** 2)

    @property
    def mean_magnitude(self) -> float:
        """Average motion magnitude over all blocks."""
        if self.magnitude.size == 0:
            return 0.0
        return float(self.magnitude.mean())

    @property
    def active_fraction(self) -> float:
        """Fraction of blocks with non-trivial motion (> 0.5 pixel)."""
        if self.magnitude.size == 0:
            return 0.0
        return float((self.magnitude > 0.5).mean())


def estimate_motion(
    previous: np.ndarray,
    current: np.ndarray,
    block_size: int = 8,
    search_radius: int = 2,
) -> MotionField:
    """Estimate block motion from ``previous`` to ``current`` luminance images.

    Args:
        previous: ``(H, W)`` luminance image of the earlier frame.
        current: ``(H, W)`` luminance image of the later frame.
        block_size: Side length of the matching blocks in pixels.
        search_radius: Maximum displacement searched in each direction.

    Returns:
        A :class:`MotionField` with one vector per block.
    """
    if previous.shape != current.shape:
        raise ValueError(
            f"Frame shapes differ: {previous.shape} vs {current.shape}"
        )
    height, width = previous.shape
    rows = height // block_size
    cols = width // block_size
    usable_h = rows * block_size
    usable_w = cols * block_size
    current_blocks = current[:usable_h, :usable_w]

    offsets = [
        (offset_x, offset_y)
        for offset_y in range(-search_radius, search_radius + 1)
        for offset_x in range(-search_radius, search_radius + 1)
    ]
    # For every candidate displacement, shift the previous frame once and
    # accumulate the per-block SAD with a reshape; this is equivalent to the
    # classic per-block search but vectorised over the whole frame.
    costs = np.full((len(offsets), rows, cols), np.inf, dtype=np.float64)
    padded = np.pad(previous, search_radius, mode="edge")
    for index, (offset_x, offset_y) in enumerate(offsets):
        shifted = padded[
            search_radius + offset_y: search_radius + offset_y + usable_h,
            search_radius + offset_x: search_radius + offset_x + usable_w,
        ]
        difference = np.abs(current_blocks - shifted)
        per_block = difference.reshape(rows, block_size, cols, block_size).sum(axis=(1, 3))
        costs[index] = per_block

    best = costs.reshape(len(offsets), -1).argmin(axis=0).reshape(rows, cols)
    offset_array = np.array(offsets, dtype=np.float64)
    dx = offset_array[best, 0]
    dy = offset_array[best, 1]
    return MotionField(dx=dx, dy=dy)


def motion_statistics(field: MotionField) -> dict[str, float]:
    """Summary statistics used by the MVmed-style key-frame selector."""
    magnitude = field.magnitude
    if magnitude.size == 0:
        return {"mean": 0.0, "max": 0.0, "active_fraction": 0.0}
    return {
        "mean": float(magnitude.mean()),
        "max": float(magnitude.max()),
        "active_fraction": field.active_fraction,
    }
