"""Shared scaffolding for baseline query systems.

Every baseline exposes the same two-call interface as LOVO — ``ingest`` once,
``query`` per request — and records its phase timings in a
:class:`~repro.utils.timing.PhaseTimer`, so the evaluation harness treats all
systems identically.
"""

from __future__ import annotations

import abc
from typing import Dict, List, Optional

from repro.config import EncoderConfig
from repro.core.results import QueryResponse
from repro.encoders.concepts import ConceptSpace
from repro.encoders.text import ParsedQuery, QueryParser, TextEncoder
from repro.errors import QueryError
from repro.utils.timing import PhaseTimer
from repro.video.model import Frame, VideoDataset


class BaselineSystem(abc.ABC):
    """Base class for all baselines; subclasses implement the two phases."""

    name: str = "baseline"

    def __init__(self, encoder_config: EncoderConfig | None = None) -> None:
        self._encoder_config = encoder_config or EncoderConfig()
        self._space = ConceptSpace(
            dim=self._encoder_config.embedding_dim, seed=self._encoder_config.seed
        )
        self._text_encoder = TextEncoder(
            self._space, class_embedding_dim=self._encoder_config.class_embedding_dim
        )
        self._parser: QueryParser = self._text_encoder.parser
        self._timer = PhaseTimer()
        self._dataset: Optional[VideoDataset] = None
        self._frames: Dict[str, Frame] = {}
        self._scene_by_video: Dict[str, str] = {}

    @property
    def timer(self) -> PhaseTimer:
        """Accumulated phase timings."""
        return self._timer

    @property
    def concept_space(self) -> ConceptSpace:
        """The shared concept space (same pretrained space as LOVO)."""
        return self._space

    @property
    def text_encoder(self) -> TextEncoder:
        """Query text encoder."""
        return self._text_encoder

    @property
    def dataset(self) -> VideoDataset:
        """The ingested dataset; raises before :meth:`ingest`."""
        if self._dataset is None:
            raise QueryError(f"{self.name}: no dataset ingested yet")
        return self._dataset

    def ingest(self, dataset: VideoDataset) -> None:
        """Register the dataset and run the system-specific preprocessing."""
        self._dataset = dataset
        self._frames = {frame.frame_id: frame for frame in dataset.iter_frames()}
        self._scene_by_video = {video.video_id: video.scene for video in dataset.videos}
        with self._timer.phase("processing"):
            self._preprocess(dataset)

    def query(self, text: str, top_n: int | None = None) -> QueryResponse:
        """Parse the query and dispatch to the system-specific search."""
        if self._dataset is None:
            raise QueryError(f"{self.name}: call ingest() before query()")
        parsed = self._parser.parse(text)
        timer = PhaseTimer()
        results = self._run_query(parsed, top_n or 50, timer)
        response = QueryResponse(query=text, results=results, timings=timer.as_dict())
        response.metadata["system"] = self.name
        for phase, seconds in timer.totals.items():
            self._timer.add(phase, seconds)
        return response

    def _run_query(self, parsed: ParsedQuery, top_n: int, timer: PhaseTimer) -> List:
        """Execute the query, attributing work to timing phases.

        The default implementation times everything as ``"search"``;
        subclasses with per-query offline work (e.g. MIRIS' detector training
        and plan configuration) override this to attribute that work to the
        ``"processing"`` phase, which Fig. 8 counts toward total time but not
        toward user-perceived search time.
        """
        with timer.phase("search"):
            return self._search(parsed, top_n)

    def frame(self, frame_id: str) -> Frame:
        """Look up a registered frame by id."""
        try:
            return self._frames[frame_id]
        except KeyError as error:
            raise QueryError(f"{self.name}: unknown frame {frame_id!r}") from error

    def scene_of(self, frame: Frame) -> str:
        """Scene label of a frame's parent video."""
        return self._scene_by_video.get(frame.video_id, "generic")

    def all_frames(self) -> List[Frame]:
        """Every frame of the ingested dataset."""
        return list(self._frames.values())

    @abc.abstractmethod
    def _preprocess(self, dataset: VideoDataset) -> None:
        """System-specific offline processing (indexing, sampling, ...)."""

    @abc.abstractmethod
    def _search(self, parsed: ParsedQuery, top_n: int) -> List:
        """System-specific query execution returning ObjectQueryResults."""
