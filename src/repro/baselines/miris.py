"""MIRIS-style query-dependent tracking baseline (paper §VII-A, [24]).

MIRIS answers object-track queries by running a detector plus tracker over
the video *for every query*, after an offline per-query step that trains /
tunes the detector and the query plan.  The reproduction keeps that
structure:

* ``query`` first pays a plan-configuration cost (detector "training" is
  simulated by a fixed number of model-compute passes);
* it then scans **every frame** of the dataset with the detector and a
  ByteTrack-style tracker;
* detected tracks are filtered by comparing their appearance features with
  the query embedding (attribute matching), which handles descriptive
  queries but not spatial relations — matching the paper's analysis.

The per-query full scan is what makes MIRIS orders of magnitude slower than
LOVO on large datasets while remaining reasonably accurate for simple and
normal queries.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from repro.baselines.base import BaselineSystem
from repro.baselines.detectors import DetectionModel, burn_model_compute
from repro.config import EncoderConfig
from repro.core.results import ObjectQueryResult
from repro.encoders.text import ParsedQuery
from repro.tracking.bytetrack import ByteTracker, Detection
from repro.utils.timing import PhaseTimer
from repro.video.model import VideoDataset


class MIRISBaseline(BaselineSystem):
    """QD-search baseline: per-query detector training + full-video tracking."""

    name = "MIRIS"

    def __init__(
        self,
        encoder_config: EncoderConfig | None = None,
        detector: DetectionModel | None = None,
        plan_configuration_passes: int = 120,
        plan_configuration_units: int = 512,
        match_threshold: float = 0.35,
    ) -> None:
        super().__init__(encoder_config)
        self._detector = detector or DetectionModel(name="miris-detector", miss_rate=0.12)
        self._plan_passes = plan_configuration_passes
        self._plan_units = plan_configuration_units
        self._match_threshold = match_threshold

    def _preprocess(self, dataset: VideoDataset) -> None:
        """MIRIS has minimal query-agnostic preprocessing (frame registration)."""

    def _run_query(self, parsed: ParsedQuery, top_n: int, timer: PhaseTimer) -> List:
        """Per-query detector training counts as processing, the scan as search.

        Fig. 8 attributes MIRIS' plan configuration and detector tuning to its
        (per-query) processing cost — it dominates MIRIS' *total* time — while
        the tracker scan is the user-perceived search time.
        """
        with timer.phase("processing"):
            burn_model_compute(self._plan_units, repeats=self._plan_passes)
        with timer.phase("search"):
            return self._search(parsed, top_n)

    def _search(self, parsed: ParsedQuery, top_n: int) -> List[ObjectQueryResult]:
        query_vector = self._space.encode(list(parsed.object_tokens))
        results: List[ObjectQueryResult] = []
        for video in self.dataset.videos:
            tracker = ByteTracker()
            frame_appearance: Dict[str, Dict[int, np.ndarray]] = {}
            for frame in video.frames:
                detections = self._detector.detect(frame, self._space)
                tracker_input = [
                    Detection(box=d.box, score=d.score, category=d.category)
                    for d in detections
                ]
                tracker.step(frame.frame_id, tracker_input)
                # Remember appearances for scoring the tracked boxes later.
                frame_appearance[frame.frame_id] = {
                    index: detection.appearance for index, detection in enumerate(detections)
                }
                for detection in detections:
                    similarity = float(detection.appearance @ query_vector)
                    if similarity < self._match_threshold:
                        continue
                    results.append(
                        ObjectQueryResult(
                            frame_id=frame.frame_id,
                            video_id=frame.video_id,
                            box=detection.box,
                            score=similarity,
                            source=self.name,
                        )
                    )
            tracker.finish()
        results.sort(key=lambda result: result.score, reverse=True)
        return results[: max(top_n, 1) * 4]
