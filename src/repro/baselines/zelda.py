"""ZELDA-style vision-language baseline (paper §VII-A, [44]).

ZELDA runs CLIP over sampled video frames during preprocessing and answers
queries by comparing the query text embedding against the stored *global*
frame embeddings.  It therefore supports free-form natural-language queries
(unlike the QA-index and QD-search baselines), its preprocessing dominates
its cost, and its query phase is extremely fast — but it matches whole frames
rather than objects, so fine-grained details, small objects, and spatial
relations dilute into the global representation.  The reproduction keeps that
architecture: global embeddings for retrieval, and a coarse patch-level
argmax (the best *anchor* box rather than a regressed object box) as its
localization, reproducing the "incomplete object" failure mode of Fig. 7.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from repro.baselines.base import BaselineSystem
from repro.baselines.detectors import burn_model_compute
from repro.config import EncoderConfig
from repro.core.results import ObjectQueryResult
from repro.encoders.clip_global import GlobalFrameEncoder
from repro.encoders.text import ParsedQuery
from repro.encoders.vision import VisionEncoder
from repro.video.model import VideoDataset


class ZELDABaseline(BaselineSystem):
    """Vision-based baseline: CLIP-style global frame retrieval."""

    name = "ZELDA"

    def __init__(
        self,
        encoder_config: EncoderConfig | None = None,
        sample_stride: int = 5,
        clip_compute_units: int = 192,
    ) -> None:
        super().__init__(encoder_config)
        self._stride = sample_stride
        self._clip_units = clip_compute_units
        self._global_encoder = GlobalFrameEncoder(
            self._space, class_embedding_dim=self._encoder_config.class_embedding_dim
        )
        self._vision_encoder = VisionEncoder(self._space, self._encoder_config)
        self._frame_ids: List[str] = []
        self._frame_embeddings: np.ndarray = np.zeros((0, 1))
        self._patch_cache: Dict[str, Tuple[np.ndarray, list]] = {}

    def _preprocess(self, dataset: VideoDataset) -> None:
        """Embed sampled frames with the CLIP-style encoders (the costly part)."""
        frame_ids: List[str] = []
        embeddings: List[np.ndarray] = []
        for video in dataset.videos:
            for frame in video.frames:
                if frame.index % self._stride != 0:
                    continue
                burn_model_compute(self._clip_units)
                frame_ids.append(frame.frame_id)
                embeddings.append(self._global_encoder.encode_frame(frame, scene=video.scene))
                encodings = self._vision_encoder.encode_frame(frame, scene=video.scene)
                self._patch_cache[frame.frame_id] = (
                    np.stack([e.class_embedding for e in encodings]),
                    [e.box for e in encodings],
                )
        self._frame_ids = frame_ids
        self._frame_embeddings = (
            np.stack(embeddings) if embeddings else np.zeros((0, self._global_encoder.dim))
        )

    def _search(self, parsed: ParsedQuery, top_n: int) -> List[ObjectQueryResult]:
        if self._frame_embeddings.shape[0] == 0:
            return []
        query_vector = self._text_encoder.encode_full(parsed)
        scores = self._frame_embeddings @ query_vector
        order = np.argsort(-scores)[: max(top_n, 1) * 4]

        results: List[ObjectQueryResult] = []
        for rank in order:
            frame_id = self._frame_ids[int(rank)]
            frame = self.frame(frame_id)
            patch_matrix, patch_boxes = self._patch_cache[frame_id]
            patch_scores = patch_matrix @ query_vector
            best_patch = int(np.argmax(patch_scores))
            # ZELDA localizes with the single best-matching patch of the
            # *globally* retrieved frame — adequate for large, distinctive
            # objects, but it has no cross-modal refinement, so detailed or
            # relational queries keep the global frame ranking's mistakes.
            results.append(
                ObjectQueryResult(
                    frame_id=frame_id,
                    video_id=frame.video_id,
                    box=patch_boxes[best_patch],
                    score=float(scores[rank]),
                    source=self.name,
                )
            )
        return results
