"""FiGO-style query-dependent ensemble baseline (paper §VII-A, [17]).

FiGO keeps an ensemble of detection models covering different
accuracy/throughput trade-offs and, per query, runs a fine-grained query
optimizer that probes the cheap models before committing to a plan.  Its
flexibility comes at the cost of invoking *multiple* models over the video
for every query, which is why its search phase is the slowest in the paper's
runtime comparison (Fig. 8) even though its total time beats MIRIS (no
per-query detector training).
"""

from __future__ import annotations

from typing import Dict, List

from repro.baselines.base import BaselineSystem
from repro.baselines.detectors import DetectionModel, model_zoo
from repro.config import EncoderConfig
from repro.core.results import ObjectQueryResult
from repro.encoders.text import ParsedQuery
from repro.video.model import VideoDataset


class FiGOBaseline(BaselineSystem):
    """QD-search baseline: per-query ensemble scan with plan optimization."""

    name = "FiGO"

    def __init__(
        self,
        encoder_config: EncoderConfig | None = None,
        models: Dict[str, DetectionModel] | None = None,
        probe_fraction: float = 0.1,
        match_threshold: float = 0.35,
    ) -> None:
        super().__init__(encoder_config)
        self._models = models or model_zoo()
        self._probe_fraction = probe_fraction
        self._match_threshold = match_threshold

    def _preprocess(self, dataset: VideoDataset) -> None:
        """FiGO performs no query-agnostic indexing."""

    def _search(self, parsed: ParsedQuery, top_n: int) -> List[ObjectQueryResult]:
        frames = self.all_frames()
        query_vector = self._space.encode(list(parsed.object_tokens))

        # Query optimization: probe every model on a sample of frames to pick
        # the plan (the optimizer itself costs several model invocations).
        probe_count = max(int(len(frames) * self._probe_fraction), 1)
        probe_frames = frames[::max(len(frames) // probe_count, 1)][:probe_count]
        probe_hits: Dict[str, int] = {}
        for model_name, model in self._models.items():
            hits = 0
            for frame in probe_frames:
                detections = model.detect(frame, self._space)
                hits += sum(
                    1 for det in detections
                    if float(det.appearance @ query_vector) >= self._match_threshold
                )
            probe_hits[model_name] = hits

        # Plan: the optimizer settles on a cascade — a recall-oriented model
        # plus the accurate model — and invokes *both* over the whole dataset
        # for every query.  Running several detectors per frame is what makes
        # FiGO's search phase the slowest in the paper's runtime comparison,
        # even though it avoids MIRIS' per-query detector training.
        cascade = [self._models["base"], self._models["large"]]
        if parsed.complexity == "complex":
            cascade.append(self._models["tiny"])

        results: List[ObjectQueryResult] = []
        for frame in frames:
            merged: Dict[str, tuple] = {}
            for model in cascade:
                for detection in model.detect(frame, self._space):
                    similarity = float(detection.appearance @ query_vector)
                    if similarity < self._match_threshold:
                        continue
                    previous = merged.get(detection.object_id)
                    if previous is None or similarity > previous[0]:
                        merged[detection.object_id] = (similarity, detection)
            for similarity, detection in merged.values():
                results.append(
                    ObjectQueryResult(
                        frame_id=frame.frame_id,
                        video_id=frame.video_id,
                        box=detection.box,
                        score=similarity,
                        source=self.name,
                    )
                )
        results.sort(key=lambda result: result.score, reverse=True)
        return results[: max(top_n, 1) * 4]
