"""UMT-style end-to-end moment-retrieval baseline (paper §VII-A, [39]).

UMT retrieves *video moments* (temporal segments) rather than objects: videos
are split into clips, clip-level features are extracted once (cheap), and at
query time a multi-modal transformer jointly processes the query with every
clip (expensive — in the paper UMT's search time exceeds its processing
time).  Its answers are whole-frame moments, so object-level IoU matching
only succeeds when the target object dominates the frame, reproducing the
"struggles with small objects within frames" observation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.baselines.base import BaselineSystem
from repro.baselines.detectors import burn_model_compute
from repro.config import EncoderConfig
from repro.core.results import ObjectQueryResult
from repro.encoders.clip_global import GlobalFrameEncoder
from repro.encoders.text import ParsedQuery
from repro.encoders.vision import VisionEncoder
from repro.video.model import VideoDataset


@dataclass(frozen=True)
class _Clip:
    """A temporal segment with its mean frame embedding."""

    video_id: str
    frame_ids: tuple
    embedding: np.ndarray


class UMTBaseline(BaselineSystem):
    """End-to-end moment retrieval over clip-level features."""

    name = "UMT"

    def __init__(
        self,
        encoder_config: EncoderConfig | None = None,
        clip_length: int = 16,
        transformer_compute_units: int = 224,
    ) -> None:
        super().__init__(encoder_config)
        self._clip_length = clip_length
        self._transformer_units = transformer_compute_units
        self._global_encoder = GlobalFrameEncoder(
            self._space, class_embedding_dim=self._encoder_config.class_embedding_dim
        )
        self._vision_encoder = VisionEncoder(self._space, self._encoder_config)
        self._clips: List[_Clip] = []

    def _preprocess(self, dataset: VideoDataset) -> None:
        """Build clip-level features (lightweight compared to the query pass)."""
        self._clips = []
        for video in dataset.videos:
            for start in range(0, video.num_frames, self._clip_length):
                frames = video.frames[start:start + self._clip_length]
                if not frames:
                    continue
                # Sample a few frames per clip for the visual feature.
                sampled = frames[:: max(len(frames) // 4, 1)]
                embedding = self._global_encoder.encode_frames(sampled, scene=video.scene)
                self._clips.append(
                    _Clip(
                        video_id=video.video_id,
                        frame_ids=tuple(frame.frame_id for frame in frames),
                        embedding=embedding.mean(axis=0),
                    )
                )

    def _search(self, parsed: ParsedQuery, top_n: int) -> List[ObjectQueryResult]:
        if not self._clips:
            return []
        query_vector = self._text_encoder.encode_full(parsed)
        scores = []
        for clip in self._clips:
            # The joint multi-modal transformer pass over every clip is what
            # makes UMT's search phase its dominant cost.
            burn_model_compute(self._transformer_units, repeats=2)
            scores.append(float(clip.embedding @ query_vector))
        order = np.argsort(-np.asarray(scores))[: max(top_n // 4, 1)]

        results: List[ObjectQueryResult] = []
        for rank in order:
            clip = self._clips[int(rank)]
            # A moment covers several frames; UMT has no object decoder, so
            # localization falls back to the best-matching patch of a few
            # frames sampled from the retrieved moment.  Temporal (moment
            # level) ranking plus this coarse localization is why UMT lags on
            # small-object queries in the paper.
            for frame_id in clip.frame_ids[:: max(len(clip.frame_ids) // 4, 1)]:
                frame = self.frame(frame_id)
                encodings = self._vision_encoder.encode_frame(frame, scene=self.scene_of(frame))
                patch_scores = [float(e.class_embedding @ query_vector) for e in encodings]
                best = int(np.argmax(patch_scores))
                results.append(
                    ObjectQueryResult(
                        frame_id=frame_id,
                        video_id=frame.video_id,
                        box=encodings[best].box,
                        score=float(scores[rank]) + 0.01 * patch_scores[best],
                        source=self.name,
                    )
                )
        return results[: max(top_n, 1) * 4]
