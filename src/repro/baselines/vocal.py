"""VOCAL-style query-agnostic index baseline (paper §VII-A, [21][45][46]).

VOCAL/EQUI-VOCAL builds a spatio-temporal scene-graph index: objects of
*predefined classes* are detected on sampled frames, and simple pairwise
spatial relations (near / front-of) are materialised between them.  Queries
are answered purely from that index, which makes them very fast — but any
query that mentions an unseen class, a visual attribute, or a relation the
index does not materialise is simply unsupported, which is exactly the
behaviour the paper reports (VOCAL is "nearly unable to recognize most of the
queries").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.baselines.base import BaselineSystem
from repro.baselines.detectors import MSCOCO_CLASSES, DetectionModel
from repro.config import EncoderConfig
from repro.core.results import ObjectQueryResult
from repro.encoders.text import ParsedQuery
from repro.errors import UnsupportedQueryError
from repro.utils.geometry import BoundingBox, box_next_to
from repro.video.model import Frame, VideoDataset

#: Relations the scene-graph index materialises.  The paper's complex
#: relations ("side by side", "in the center") are not among them.
_SUPPORTED_RELATIONS: Tuple[str, ...] = ("next to",)


@dataclass(frozen=True)
class _IndexedObject:
    """One detection stored in the scene-graph index."""

    frame_id: str
    video_id: str
    category: str
    box: BoundingBox
    score: float
    neighbours: Tuple[str, ...]


class VOCALBaseline(BaselineSystem):
    """QA-index baseline: predefined-class scene-graph index."""

    name = "VOCAL"

    def __init__(
        self,
        encoder_config: EncoderConfig | None = None,
        sample_stride: int = 10,
        detector: DetectionModel | None = None,
    ) -> None:
        super().__init__(encoder_config)
        self._stride = sample_stride
        self._detector = detector or DetectionModel(name="vocal-detector")
        self._index: Dict[str, List[_IndexedObject]] = {}

    def _preprocess(self, dataset: VideoDataset) -> None:
        """Detect predefined classes on sampled frames and build the index."""
        self._index = {}
        for video in dataset.videos:
            for frame in video.frames:
                if frame.index % self._stride != 0:
                    continue
                self._index_frame(frame)

    def _index_frame(self, frame: Frame) -> None:
        detections = self._detector.detect(frame, self._space)
        for detection in detections:
            neighbours = tuple(
                other.category
                for other in detections
                if other.object_id != detection.object_id
                and box_next_to(detection.box, other.box)
            )
            entry = _IndexedObject(
                frame_id=frame.frame_id,
                video_id=frame.video_id,
                category=detection.category,
                box=detection.box,
                score=detection.score,
                neighbours=neighbours,
            )
            self._index.setdefault(detection.category, []).append(entry)

    #: Query tokens the scene-graph index can simply ignore (scene context and
    #: generic activities it does not distinguish anyway).  Visual attributes
    #: such as colours or garments cannot be ignored: the index has no way to
    #: answer them, so they make the query unsupported.
    _IGNORABLE_TOKENS = frozenset({
        "object", "vehicle", "road", "street", "sidewalk", "room", "outdoors",
        "meadow", "water", "beach", "driving", "walking", "standing", "parked",
        "sitting", "riding", "talking",
    })

    def _search(self, parsed: ParsedQuery, top_n: int) -> List[ObjectQueryResult]:
        """Answer from the index; raise for anything beyond predefined classes."""
        categories = [token for token in parsed.object_tokens if token in MSCOCO_CLASSES]
        attribute_tokens = [
            token for token in parsed.object_tokens
            if token not in MSCOCO_CLASSES and token not in self._IGNORABLE_TOKENS
        ]
        unsupported_relations = [
            relation for relation in parsed.relation_tokens
            if relation not in _SUPPORTED_RELATIONS
        ]
        if not categories:
            raise UnsupportedQueryError(
                f"VOCAL index has no entry for query classes in {parsed.text!r}"
            )
        if attribute_tokens or unsupported_relations or parsed.unknown_words:
            raise UnsupportedQueryError(
                "VOCAL cannot express attributes or novel relations: "
                f"{attribute_tokens + unsupported_relations + list(parsed.unknown_words)}"
            )

        entries = list(self._index.get(categories[0], []))
        if parsed.companion_tokens:
            companion_classes = [
                token for token in parsed.companion_tokens if token in MSCOCO_CLASSES
            ]
            if not companion_classes:
                raise UnsupportedQueryError(
                    "VOCAL scene graph has no node for the companion object"
                )
            entries = [
                entry for entry in entries if companion_classes[0] in entry.neighbours
            ]

        entries.sort(key=lambda entry: entry.score, reverse=True)
        return [
            ObjectQueryResult(
                frame_id=entry.frame_id,
                video_id=entry.video_id,
                box=entry.box,
                score=entry.score,
                source=self.name,
            )
            for entry in entries[:top_n]
        ]

    def index_size(self) -> int:
        """Number of indexed detections (diagnostics)."""
        return sum(len(entries) for entries in self._index.values())
