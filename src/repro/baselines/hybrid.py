"""Hybrid QA-index + QD-search baseline (paper §II, "Hybrid Methods").

The hybrid approach first consults a pre-built index (VOCAL-style); when the
index cannot express the query it falls back to a query-dependent full scan
(MIRIS-style).  The paper finds that the combination inherits the weaknesses
of both sides — index misses trigger expensive rescans — and excludes it from
the main comparison; it is reproduced here for the motivation experiment
(Fig. 2).
"""

from __future__ import annotations

from typing import List

from repro.baselines.base import BaselineSystem
from repro.baselines.miris import MIRISBaseline
from repro.baselines.vocal import VOCALBaseline
from repro.config import EncoderConfig
from repro.core.results import ObjectQueryResult
from repro.encoders.text import ParsedQuery
from repro.errors import UnsupportedQueryError
from repro.video.model import VideoDataset


class HybridBaseline(BaselineSystem):
    """Index first, fall back to query-dependent search when the index fails."""

    name = "Hybrid"

    def __init__(self, encoder_config: EncoderConfig | None = None) -> None:
        super().__init__(encoder_config)
        self._index_side = VOCALBaseline(encoder_config)
        self._search_side = MIRISBaseline(encoder_config)

    def _preprocess(self, dataset: VideoDataset) -> None:
        self._index_side.ingest(dataset)
        self._search_side.ingest(dataset)

    def _search(self, parsed: ParsedQuery, top_n: int) -> List[ObjectQueryResult]:
        try:
            return self._index_side._search(parsed, top_n)
        except UnsupportedQueryError:
            return self._search_side._search(parsed, top_n)
