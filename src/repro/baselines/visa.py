"""VISA-style video reasoning-segmentation baseline (paper §VII-A, [48]).

VISA couples a vision encoder with a large language model to reason about a
query and segment the referred object across frames.  Two properties drive
its behaviour in the paper's evaluation:

* **cost** — LLM token-by-token processing makes both its preprocessing and
  its per-query reasoning far slower than every other method (Table III);
* **domain bias** — it is trained on everyday-life footage with high-quality
  annotations, so it performs well on QVHighlights/ActivityNet-style scenes
  and poorly on traffic-camera scenes.

The reproduction models the cost with genuinely heavy per-frame matrix
workloads and the bias with an elevated miss rate for traffic categories.
"""

from __future__ import annotations

from typing import List

from repro.baselines.base import BaselineSystem
from repro.baselines.detectors import DetectionModel, burn_model_compute
from repro.config import EncoderConfig
from repro.core.results import ObjectQueryResult
from repro.encoders.text import ParsedQuery
from repro.video.model import VideoDataset

#: Additional miss probability on traffic categories, modelling VISA's
#: everyday-life training bias (it is "predominantly fine-tuned for moving
#: object segmentation" on daily-life footage, not traffic cameras).
_TRAFFIC_BIAS = {"car": 0.88, "bus": 0.9, "truck": 0.9, "cart": 0.9, "bicycle": 0.7}


class VISABaseline(BaselineSystem):
    """LLM-based reasoning segmentation baseline."""

    name = "VISA"

    def __init__(
        self,
        encoder_config: EncoderConfig | None = None,
        sample_stride: int = 8,
        llm_compute_units: int = 384,
        llm_reasoning_repeats: int = 4,
        match_threshold: float = 0.3,
    ) -> None:
        super().__init__(encoder_config)
        self._stride = sample_stride
        self._llm_units = llm_compute_units
        self._llm_repeats = llm_reasoning_repeats
        self._match_threshold = match_threshold
        self._segmenter = DetectionModel(
            name="visa-segmenter",
            classes=("person", "car", "bus", "truck", "bicycle", "dog", "woman", "man", "cart"),
            miss_rate=0.08,
            localization_noise=0.006,
            compute_units=160,
            domain_bias=dict(_TRAFFIC_BIAS),
        )
        self._sampled_frames: List[str] = []

    def _preprocess(self, dataset: VideoDataset) -> None:
        """Heavy vision-encoder pass over the sampled frames."""
        self._sampled_frames = []
        for video in dataset.videos:
            for frame in video.frames:
                if frame.index % self._stride != 0:
                    continue
                burn_model_compute(self._llm_units)
                self._sampled_frames.append(frame.frame_id)

    def _search(self, parsed: ParsedQuery, top_n: int) -> List[ObjectQueryResult]:
        query_vector = self._space.encode(parsed.all_tokens())
        results: List[ObjectQueryResult] = []
        for frame_id in self._sampled_frames:
            frame = self.frame(frame_id)
            # LLM reasoning over the frame's visual tokens: several heavy
            # sequential passes per frame (this is the dominant query cost).
            burn_model_compute(self._llm_units, repeats=self._llm_repeats)
            detections = self._segmenter.detect(frame, self._space)
            for detection in detections:
                similarity = float(detection.appearance @ query_vector)
                if similarity < self._match_threshold:
                    continue
                results.append(
                    ObjectQueryResult(
                        frame_id=frame_id,
                        video_id=frame.video_id,
                        box=detection.box,
                        score=similarity,
                        source=self.name,
                    )
                )
        results.sort(key=lambda result: result.score, reverse=True)
        return results[: max(top_n, 1) * 4]
