"""Simulated object-detection model zoo used by the baseline systems.

Baselines such as VOCAL, MIRIS and FiGO are built around conventional object
detectors trained on fixed label sets (MSCOCO), optionally ensembled at
different accuracy/cost trade-offs (FiGO).  Pretrained detector weights are
not available offline, so this module provides *simulated detectors* with the
properties that matter to the paper's comparison:

* a **closed label set** — objects outside the set are never detected, which
  is precisely why QA-index baselines cannot answer open-vocabulary queries;
* an **accuracy profile** — each model has a per-object miss probability and
  localization noise, larger/costlier models miss less;
* a **real compute cost** — every frame processed runs an actual matrix
  workload proportional to the model's size, so measured latencies reflect
  how often each baseline re-processes video, which is the quantity the
  paper's runtime figures compare.

Detections carry an appearance feature (the object's concept embedding plus
noise) so query-dependent baselines can score attribute matches the way their
real counterparts run attribute classifiers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.encoders.concepts import ConceptSpace
from repro.utils.geometry import BoundingBox
from repro.utils.rng import rng_from_tokens
from repro.video.model import Frame, ObjectAnnotation

#: The subset of MSCOCO classes relevant to the evaluation scenes.  "woman",
#: "man", "cart" and similar open-vocabulary labels are deliberately absent:
#: closed-set detectors map them to their nearest predefined class or miss
#: them entirely.
MSCOCO_CLASSES: Tuple[str, ...] = (
    "person", "car", "bus", "truck", "bicycle", "dog",
)

#: How non-COCO categories appear to a closed-set detector.
_CLASS_FALLBACK: Dict[str, str] = {
    "woman": "person",
    "man": "person",
    "cart": "car",
}


@dataclass(frozen=True)
class SimulatedDetection:
    """One detection produced by a simulated model."""

    category: str
    box: BoundingBox
    score: float
    appearance: np.ndarray
    object_id: str


@dataclass
class DetectionModel:
    """A closed-set detector with an accuracy/cost profile."""

    name: str
    classes: Tuple[str, ...] = MSCOCO_CLASSES
    miss_rate: float = 0.1
    localization_noise: float = 0.01
    compute_units: int = 96
    seed: int = 11
    #: Categories this model is systematically worse at (domain bias), mapped
    #: to an *additional* miss probability.
    domain_bias: Dict[str, float] = field(default_factory=dict)

    def detect(self, frame: Frame, concept_space: ConceptSpace) -> List[SimulatedDetection]:
        """Run the detector on one frame.

        The call performs a real matrix workload proportional to
        ``compute_units`` so that baselines that re-scan video per query pay a
        genuine, measurable cost.
        """
        _burn_compute(self.compute_units, frame.frame_id, self.name)
        rng = rng_from_tokens("detector", self.name, frame.frame_id, base_seed=self.seed)
        detections: List[SimulatedDetection] = []
        for annotation in frame.visible_objects():
            detected_class = self._map_category(annotation.category)
            if detected_class is None:
                continue
            miss = self.miss_rate + self.domain_bias.get(annotation.category, 0.0)
            if rng.random() < miss:
                continue
            box = self._jitter_box(annotation.box, rng)
            appearance = concept_space.encode(annotation.concept_tokens())
            direction = rng.normal(size=appearance.shape)
            direction /= max(np.linalg.norm(direction), 1e-9)
            appearance = appearance + 0.1 * direction
            appearance = appearance / max(np.linalg.norm(appearance), 1e-9)
            detections.append(
                SimulatedDetection(
                    category=detected_class,
                    box=box,
                    score=float(rng.uniform(0.6, 0.99)),
                    appearance=appearance,
                    object_id=annotation.object_id,
                )
            )
        return detections

    def supports_class(self, category: str) -> bool:
        """Whether the detector's label set covers ``category``."""
        return category in self.classes

    def _map_category(self, category: str) -> Optional[str]:
        if category in self.classes:
            return category
        fallback = _CLASS_FALLBACK.get(category)
        if fallback is not None and fallback in self.classes:
            return fallback
        return None

    def _jitter_box(self, box: BoundingBox, rng: np.random.Generator) -> BoundingBox:
        if self.localization_noise <= 0:
            return box.clipped()
        jitter = rng.normal(scale=self.localization_noise, size=4)
        return BoundingBox(
            box.x + jitter[0],
            box.y + jitter[1],
            max(box.w * (1.0 + jitter[2]), 1e-4),
            max(box.h * (1.0 + jitter[3]), 1e-4),
        ).clipped()


def model_zoo() -> Dict[str, DetectionModel]:
    """The detector ensemble used by the QD-search baselines.

    FiGO's core idea is a throughput/accuracy ensemble: a cheap model, a
    mid-sized model, and an expensive, accurate one.
    """
    return {
        "tiny": DetectionModel(name="tiny", miss_rate=0.35, localization_noise=0.03, compute_units=48),
        "base": DetectionModel(name="base", miss_rate=0.15, localization_noise=0.015, compute_units=96),
        "large": DetectionModel(name="large", miss_rate=0.05, localization_noise=0.008, compute_units=160),
    }


_COMPUTE_CACHE: Dict[int, Tuple[np.ndarray, np.ndarray]] = {}


def _burn_compute(units: int, *tokens: object) -> None:
    """Execute a deterministic matrix workload of size ``units``.

    This stands in for the GPU inference cost of the corresponding model: the
    wall-clock cost grows with the model size and with how many frames a
    baseline processes, which is exactly the scaling the paper's latency
    comparison measures.
    """
    if units <= 0:
        return
    if units not in _COMPUTE_CACHE:
        rng = np.random.default_rng(units)
        _COMPUTE_CACHE[units] = (
            rng.normal(size=(units, units)),
            rng.normal(size=(units, units)),
        )
    left, right = _COMPUTE_CACHE[units]
    np.tanh(left @ right).sum()


def burn_model_compute(units: int, repeats: int = 1) -> None:
    """Public wrapper for baselines that model multi-pass inference."""
    for _ in range(max(repeats, 0)):
        _burn_compute(units)


def detections_to_annotations(
    detections: Sequence[SimulatedDetection],
) -> List[ObjectAnnotation]:
    """View detections as annotations (used by scene-graph indexing in VOCAL)."""
    return [
        ObjectAnnotation(
            object_id=f"det-{index}",
            category=detection.category,
            attributes={},
            box=detection.box,
        )
        for index, detection in enumerate(detections)
    ]
