"""Baseline systems the paper compares against (paper §VII-A)."""

from repro.baselines.base import BaselineSystem
from repro.baselines.detectors import DetectionModel, MSCOCO_CLASSES, model_zoo
from repro.baselines.figo import FiGOBaseline
from repro.baselines.hybrid import HybridBaseline
from repro.baselines.miris import MIRISBaseline
from repro.baselines.umt import UMTBaseline
from repro.baselines.visa import VISABaseline
from repro.baselines.vocal import VOCALBaseline
from repro.baselines.zelda import ZELDABaseline

__all__ = [
    "BaselineSystem",
    "DetectionModel",
    "MSCOCO_CLASSES",
    "model_zoo",
    "VOCALBaseline",
    "MIRISBaseline",
    "FiGOBaseline",
    "ZELDABaseline",
    "UMTBaseline",
    "VISABaseline",
    "HybridBaseline",
]
