"""The LOVO system facade: ingest datasets once, answer queries with low latency.

Wires together the three modules of the paper — Video Summary (§IV), Database
Storage (§V), and the two-stage Query Strategy (§VI) — behind a small public
API:

>>> from repro import LOVO, LOVOConfig
>>> from repro.video import make_bellevue
>>> system = LOVO(LOVOConfig())
>>> system.ingest(make_bellevue(num_videos=1, frames_per_video=60))
>>> response = system.query("A red car driving in the center of the road")
>>> response.results[0].frame_id  # doctest: +SKIP
"""

from __future__ import annotations

from dataclasses import asdict
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from repro.config import LOVOConfig
from repro.core.query import (
    QueryOptions,
    QueryRequest,
    QueryStrategy,
    as_query_batch,
    as_query_request,
)
from repro.core.results import BatchQueryResponse, QueryResponse
from repro.core.storage import LOVOStorage
from repro.core.summary import SummaryOutput, VideoSummarizer
from repro.encoders.cross_modal import CrossModalityReranker, RerankerConfig
from repro.encoders.text import TextEncoder
from repro.errors import PersistenceError, SnapshotCorruptionError, SystemNotReadyError
from repro.obs.trace import Tracer
from repro.persist.manifest import SnapshotManifest
from repro.persist.snapshot import load_system, save_system
from repro.utils.timing import PhaseTimer
from repro.video.model import Frame, VideoDataset
from repro.utils.locking import create_lock


class LOVO:
    """Complex-object-query system over large-scale (synthetic) video data.

    Thread safety: once built (via :meth:`ingest` or :meth:`load`), the query
    path — :meth:`query` and :meth:`query_batch` — is safe to call from many
    threads at once; the shared pieces it touches (the text-encoder LRU
    caches, the lazily built reranker layers, the phase timer) synchronize
    internally, and everything else is read-only.  The serving subsystem
    (:mod:`repro.serve`) relies on this.  :meth:`ingest` itself is serialized
    by an internal lock, but running it *concurrently with* queries gives no
    atomicity guarantee about which queries see the newly ingested data.
    """

    def __init__(
        self,
        config: LOVOConfig | None = None,
        reranker_config: RerankerConfig | None = None,
    ) -> None:
        self._config = config or LOVOConfig()
        self._summarizer = VideoSummarizer(self._config)
        self._text_encoder = TextEncoder(
            self._summarizer.concept_space,
            class_embedding_dim=self._config.encoder.class_embedding_dim,
        )
        self._reranker = CrossModalityReranker(
            self._summarizer.concept_space,
            reranker_config or RerankerConfig(seed=self._config.encoder.seed),
        )
        self._storage: Optional[LOVOStorage] = None
        self._strategy: Optional[QueryStrategy] = None
        self._frame_registry: Dict[str, Frame] = {}
        self._frame_scene: Dict[str, str] = {}
        self._timer = PhaseTimer()
        self._tracer = Tracer(self._config.obs)
        self._summary: Optional[SummaryOutput] = None
        self._datasets: List[str] = []
        self._ingest_lock = create_lock("LOVO._ingest_lock")
        self._data_version = 0

    @property
    def config(self) -> LOVOConfig:
        """The system configuration."""
        return self._config

    @property
    def timer(self) -> PhaseTimer:
        """Accumulated phase timings (processing, indexing, fast search, rerank)."""
        return self._timer

    @property
    def tracer(self) -> Tracer:
        """The system's request tracer (shared with the serving engine).

        Owning the tracer here — rather than in the engine — keeps one trace
        store per system, so every frontend over the same data (an engine,
        direct ``query_batch`` callers) lands its traces in one place.
        """
        return self._tracer

    @property
    def summarizer(self) -> VideoSummarizer:
        """The video summary module."""
        return self._summarizer

    @property
    def text_encoder(self) -> TextEncoder:
        """The decoupled text encoder used for fast search."""
        return self._text_encoder

    @property
    def storage(self) -> LOVOStorage:
        """The database storage module; raises before :meth:`ingest`."""
        if self._storage is None:
            raise SystemNotReadyError("No dataset has been ingested yet")
        return self._storage

    @property
    def num_entities(self) -> int:
        """Number of stored patch vectors."""
        return 0 if self._storage is None else self._storage.num_entities

    @property
    def num_keyframes(self) -> int:
        """Number of key frames selected during ingestion."""
        return 0 if self._summary is None else self._summary.num_keyframes

    @property
    def ingested_datasets(self) -> List[str]:
        """Names of the datasets ingested so far."""
        return list(self._datasets)

    @property
    def data_version(self) -> int:
        """Monotonic counter bumped after every ingest (offline or streamed).

        Result caches fold this into their keys so entries computed before an
        ingest can never be served afterwards (they simply stop being looked
        up); the streaming ingestor exposes it as the consumers' freshness
        epoch.
        """
        return self._data_version

    def ensure_storage(self) -> LOVOStorage:
        """Create (empty) storage and a query strategy without ingesting.

        Lets a streaming deployment come up cold — ready to answer (empty)
        queries and to be snapshotted — before its first segment arrives.
        A subsequent :meth:`ingest` adopts the same storage.
        """
        with self._ingest_lock:
            if self._storage is None:
                self._storage = LOVOStorage(
                    dim=self._config.encoder.class_embedding_dim,
                    index_config=self._config.index,
                    shard_config=self._config.shard,
                )
                self._strategy = QueryStrategy(
                    text_encoder=self._text_encoder,
                    reranker=self._reranker,
                    summarizer=self._summarizer,
                    storage=self._storage,
                    frame_registry=self._frame_registry,
                    frame_scene=self._frame_scene,
                    config=self._config.query,
                )
            return self._storage

    def ingest(self, dataset: VideoDataset) -> SummaryOutput:
        """One-time video processing and indexing of a dataset.

        May be called several times to grow the index incrementally (new
        datasets are appended to the same collection).
        """
        with self._ingest_lock:
            processing_timer = PhaseTimer()
            summary = self._summarizer.summarize(dataset, timer=processing_timer)
            self._timer.add("processing", processing_timer.total("keyframes", "encoding"))
            return self._apply_summary_locked(dataset.name, summary)

    def ingest_summary(self, dataset_name: str, summary: SummaryOutput) -> SummaryOutput:
        """Index an already-summarized segment (the streaming ingest path).

        The streaming pipeline runs :class:`~repro.core.summary.
        VideoSummarizer` in its own encode stage so this indexing step — the
        part that must serialise against other ingests — stays as short as
        possible.  Applying the same summaries in the same order as
        :meth:`ingest` produces bit-identical index state, which is what the
        streamed-vs-offline parity tests assert.
        """
        with self._ingest_lock:
            return self._apply_summary_locked(dataset_name, summary)

    def _apply_summary_locked(self, dataset_name: str, summary: SummaryOutput) -> SummaryOutput:  # lovo: ignore[LOVO005] the frame registry IS the corpus; bounded by ingested data
        if self._storage is None:
            self._storage = LOVOStorage(
                dim=self._config.encoder.class_embedding_dim,
                index_config=self._config.index,
                shard_config=self._config.shard,
            )
        indexing_timer = PhaseTimer()
        self._storage.ingest(summary.keyframes, summary.encodings, timer=indexing_timer)
        self._timer.add("indexing", indexing_timer.total("indexing"))

        for frame in summary.keyframes:
            self._frame_registry[frame.frame_id] = frame
        self._frame_scene.update(summary.frame_scene)

        if self._summary is None:
            self._summary = summary
        else:
            self._summary.keyframes.extend(summary.keyframes)
            self._summary.encodings.extend(summary.encodings)
            self._summary.frame_scene.update(summary.frame_scene)
            self._summary.frames_processed += summary.frames_processed
            self._summary.total_frames += summary.total_frames
        self._datasets.append(dataset_name)

        self._strategy = QueryStrategy(
            text_encoder=self._text_encoder,
            reranker=self._reranker,
            summarizer=self._summarizer,
            storage=self._storage,
            frame_registry=self._frame_registry,
            frame_scene=self._frame_scene,
            config=self._config.query,
        )
        # Bumped last: by the time any cache observes the new epoch, the
        # strategy above is already serving the newly indexed data.
        self._data_version += 1
        return summary

    def query(
        self,
        request: str | QueryRequest,
        top_n: int | None = None,
        *,
        options: QueryOptions | None = None,
    ) -> QueryResponse:
        """Answer one complex object query (Algorithm 2).

        Accepts a query string or a canonical :class:`~repro.core.query.
        QueryRequest`.  The ``top_n`` keyword keeps working but is deprecated
        in favour of ``options=QueryOptions(top_n=...)``.
        """
        if self._strategy is None:
            raise SystemNotReadyError("Call ingest() before query()")
        coerced = as_query_request(request, top_n, options, caller="LOVO.query")
        response = self._strategy.query(coerced)
        for phase, seconds in response.timings.items():
            self._timer.add(phase, seconds)
        return response

    def query_batch(
        self,
        requests: Sequence[str | QueryRequest],
        top_n: int | None = None,
        *,
        options: QueryOptions | None = None,
    ) -> BatchQueryResponse:
        """Answer several complex object queries in one batched engine pass.

        Per query, the hits and scores match :meth:`query`; the batch path
        amortises text encoding, the ANN probes, and the re-encoding of
        candidate frames shared between queries, so throughput scales with
        query concurrency instead of paying the full pipeline per call.
        Requests may be strings or :class:`~repro.core.query.QueryRequest`
        objects sharing one :class:`~repro.core.query.QueryOptions`; the
        ``top_n`` keyword is a deprecated shim.
        """
        if self._strategy is None:
            raise SystemNotReadyError("Call ingest() before query_batch()")
        texts, batch_options = as_query_batch(
            requests, top_n, options, caller="LOVO.query_batch"
        )
        batch = self._strategy.query_batch(texts, options=batch_options)
        for phase, seconds in batch.timings.items():
            self._timer.add(phase, seconds)
        return batch

    def save(self, path: str | Path) -> SnapshotManifest:
        """Persist the entire built system to a snapshot directory.

        The snapshot captures the vector database (exact built index state
        for Flat, HNSW, and IVF-PQ), the relational metadata store, the
        key-frame registry with annotations, and the full configuration —
        everything :meth:`load` needs to answer queries bit-identically in a
        fresh process without re-running :meth:`ingest`.
        """
        if self._storage is None:
            raise PersistenceError(
                "Cannot snapshot a system with no storage: call ingest() first"
            )
        # A storage-bearing system with zero datasets (e.g. a streaming
        # deployment snapshotted before its first segment arrived) still
        # round-trips: the summary is simply absent and the counters zero.
        return save_system(
            path,
            config=self._config,
            storage=self._storage,
            keyframes=list(self._frame_registry.values()),
            frame_scene=self._frame_scene,
            datasets=self._datasets,
            frames_processed=0 if self._summary is None else self._summary.frames_processed,
            total_frames=0 if self._summary is None else self._summary.total_frames,
            reranker_config=asdict(self._reranker.config),
            info={"backend": self._storage.backend_status()},
        )

    @classmethod
    def load(
        cls, path: str | Path, reranker_config: RerankerConfig | None = None
    ) -> "LOVO":
        """Restore a system saved by :meth:`save`, ready to serve queries.

        The snapshot's manifest is validated (schema version, per-artifact
        checksums) before anything is deserialised.  The encoders and
        reranker are rebuilt from the stored configuration — they are
        deterministic given their seeds — and the warm-loaded system's
        ``query()`` / ``query_batch()`` results match the original exactly.
        Pass ``reranker_config`` only to deliberately override the snapshot's
        stored reranker configuration.  Further :meth:`ingest` calls keep
        working and grow the loaded index.
        """
        restored = load_system(path)
        if reranker_config is None and restored.reranker_config is not None:
            try:
                reranker_config = RerankerConfig(**restored.reranker_config)
            except TypeError as error:
                raise SnapshotCorruptionError(
                    f"Snapshot reranker configuration is malformed: {error}"
                ) from error
        system = cls(restored.config, reranker_config)
        system._storage = restored.storage
        system._data_version = len(restored.datasets)
        for frame in restored.keyframes:
            system._frame_registry[frame.frame_id] = frame
        system._frame_scene = dict(restored.frame_scene)
        system._datasets = list(restored.datasets)
        # Patch encodings are ingest-time intermediates (their vectors live
        # on in the collection), so the restored summary carries none.
        system._summary = SummaryOutput(
            keyframes=list(restored.keyframes),
            frame_scene=dict(restored.frame_scene),
            frames_processed=restored.frames_processed,
            total_frames=restored.total_frames,
        )
        system._strategy = QueryStrategy(
            text_encoder=system._text_encoder,
            reranker=system._reranker,
            summarizer=system._summarizer,
            storage=restored.storage,
            frame_registry=system._frame_registry,
            frame_scene=system._frame_scene,
            config=restored.config.query,
        )
        return system

    def time_distribution(self) -> Dict[str, float]:
        """The Fig. 9 breakdown: processing / rerank / indexing + fast search."""
        totals = self._timer.as_dict()
        return {
            "processing": totals.get("processing", 0.0),
            "rerank": totals.get("rerank", 0.0),
            "indexing_fast_search": totals.get("indexing", 0.0) + totals.get("fast_search", 0.0),
        }

    def storage_report(self) -> Dict[str, object]:
        """Storage statistics (entity counts, index type, approximate bytes)."""
        if self._storage is None:
            return {"num_entities": 0, "num_keyframes": 0}
        report = dict(self._storage.storage_report())
        report["num_keyframes"] = self.num_keyframes
        report["datasets"] = list(self._datasets)
        return report
