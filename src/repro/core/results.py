"""Result types returned by LOVO and the baseline systems."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping

from repro.utils.geometry import BoundingBox


@dataclass(frozen=True)
class ObjectQueryResult:
    """One retrieved object: a frame, a bounding box, and a relevance score."""

    frame_id: str
    video_id: str
    box: BoundingBox
    score: float
    patch_id: str = ""
    source: str = "lovo"

    def as_dict(self) -> Dict[str, object]:
        """Plain-dict view used by reports and serialisation."""
        return {
            "frame_id": self.frame_id,
            "video_id": self.video_id,
            "box": list(self.box.to_array()),
            "score": self.score,
            "patch_id": self.patch_id,
            "source": self.source,
        }


@dataclass
class QueryResponse:
    """Full response to one object query, including timing breakdowns."""

    query: str
    results: List[ObjectQueryResult] = field(default_factory=list)
    timings: Dict[str, float] = field(default_factory=dict)
    metadata: Dict[str, object] = field(default_factory=dict)

    @property
    def search_seconds(self) -> float:
        """Query-time seconds (everything except offline video processing)."""
        return sum(
            seconds for phase, seconds in self.timings.items()
            if phase not in {"processing", "indexing"}
        )

    def top(self, n: int) -> List[ObjectQueryResult]:
        """The ``n`` highest-scoring results."""
        ranked = sorted(self.results, key=lambda result: result.score, reverse=True)
        return ranked[:n]

    def frames(self) -> List[str]:
        """Distinct frame ids in rank order."""
        seen: Dict[str, None] = {}
        for result in sorted(self.results, key=lambda r: r.score, reverse=True):
            seen.setdefault(result.frame_id, None)
        return list(seen)


def merge_timings(target: Mapping[str, float], extra: Mapping[str, float]) -> Dict[str, float]:
    """Sum two timing dictionaries phase-by-phase."""
    merged = dict(target)
    for phase, seconds in extra.items():
        merged[phase] = merged.get(phase, 0.0) + seconds
    return merged
