"""Result types returned by LOVO and the baseline systems."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping

from repro.utils.geometry import BoundingBox

#: Phases that are offline/amortised work rather than per-query search time.
_OFFLINE_PHASES = frozenset({"processing", "indexing"})


@dataclass(frozen=True)
class ObjectQueryResult:
    """One retrieved object: a frame, a bounding box, and a relevance score."""

    frame_id: str
    video_id: str
    box: BoundingBox
    score: float
    patch_id: str = ""
    source: str = "lovo"

    def as_dict(self) -> Dict[str, object]:
        """Plain-dict view used by reports and serialisation."""
        return {
            "frame_id": self.frame_id,
            "video_id": self.video_id,
            "box": list(self.box.to_array()),
            "score": self.score,
            "patch_id": self.patch_id,
            "source": self.source,
        }


@dataclass
class QueryResponse:
    """Full response to one object query, including timing breakdowns."""

    query: str
    results: List[ObjectQueryResult] = field(default_factory=list)
    timings: Dict[str, float] = field(default_factory=dict)
    metadata: Dict[str, object] = field(default_factory=dict)

    @property
    def search_seconds(self) -> float:
        """Query-time seconds (everything except offline video processing)."""
        return sum(
            seconds for phase, seconds in self.timings.items()
            if phase not in _OFFLINE_PHASES
        )

    def top(self, n: int) -> List[ObjectQueryResult]:
        """The ``n`` highest-scoring results."""
        ranked = sorted(self.results, key=lambda result: result.score, reverse=True)
        return ranked[:n]

    def frames(self) -> List[str]:
        """Distinct frame ids in rank order."""
        seen: Dict[str, None] = {}
        for result in sorted(self.results, key=lambda r: r.score, reverse=True):
            seen.setdefault(result.frame_id, None)
        return list(seen)


@dataclass
class BatchQueryResponse:
    """Response to a batch of object queries answered in one engine pass.

    ``responses`` holds one :class:`QueryResponse` per input query, in input
    order, with per-query timings amortised (batch phase time divided by the
    batch size) so that summing them reproduces the batch totals recorded in
    :attr:`timings`.
    """

    queries: List[str] = field(default_factory=list)
    responses: List[QueryResponse] = field(default_factory=list)
    timings: Dict[str, float] = field(default_factory=dict)
    metadata: Dict[str, object] = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self.responses)

    def __iter__(self):
        return iter(self.responses)

    def __getitem__(self, index: int) -> QueryResponse:
        return self.responses[index]

    @property
    def batch_size(self) -> int:
        """Number of queries answered by this batch."""
        return len(self.queries)

    @property
    def search_seconds(self) -> float:
        """Batch query-time seconds (excludes offline processing phases)."""
        return sum(
            seconds for phase, seconds in self.timings.items()
            if phase not in _OFFLINE_PHASES
        )


def merge_timings(target: Mapping[str, float], extra: Mapping[str, float]) -> Dict[str, float]:
    """Sum two timing dictionaries phase-by-phase."""
    merged = dict(target)
    for phase, seconds in extra.items():
        merged[phase] = merged.get(phase, 0.0) + seconds
    return merged
