"""Two-stage query strategy (paper §VI, Algorithm 2).

Stage 1 — **fast search**: the query text is encoded into a single global
embedding (relations dropped), and an ANN search over the stored class
embeddings returns the top-``k`` candidate patches, which are grouped into
candidate key frames.

Stage 2 — **cross-modality rerank**: the candidate frames are re-encoded with
the full-dimensional visual encoder and scored by the cross-modality
transformer against the complete query (including relational tokens evaluated
over the predicted boxes).  The top-``n`` frames with their refined bounding
boxes are returned.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Sequence, Tuple

from repro.config import QueryConfig
from repro.core.results import BatchQueryResponse, ObjectQueryResult, QueryResponse
from repro.core.storage import LOVOStorage
from repro.core.summary import VideoSummarizer
from repro.encoders.cross_modal import (
    CandidatePatch,
    CrossModalityReranker,
    FrameCandidate,
    RerankResult,
)
from repro.encoders.text import ParsedQuery, TextEncoder
from repro.errors import QueryError
from repro.utils.timing import PhaseTimer
from repro.vectordb.collection import SearchHit
from repro.video.model import Frame


class QueryStrategy:
    """Implements Algorithm 2 over a populated :class:`LOVOStorage`."""

    def __init__(
        self,
        text_encoder: TextEncoder,
        reranker: CrossModalityReranker,
        summarizer: VideoSummarizer,
        storage: LOVOStorage,
        frame_registry: Mapping[str, Frame],
        frame_scene: Mapping[str, str],
        config: QueryConfig | None = None,
    ) -> None:
        self._text_encoder = text_encoder
        self._reranker = reranker
        self._summarizer = summarizer
        self._storage = storage
        self._frames = frame_registry
        self._frame_scene = frame_scene
        self._config = config or QueryConfig()

    @property
    def config(self) -> QueryConfig:
        """The query configuration (k, n, ablation switches)."""
        return self._config

    def query(self, text: str, top_n: int | None = None) -> QueryResponse:
        """Execute a complex object query end to end."""
        timer = PhaseTimer()
        parsed = self._text_encoder.parse(text)
        top_n = top_n or self._config.rerank_n

        with timer.phase("fast_search"):
            candidate_frames, patch_hits = self._fast_search(parsed)

        if self._config.rerank_enabled and candidate_frames:
            with timer.phase("rerank"):
                results = self._rerank(parsed, candidate_frames, top_n)
        else:
            results = self._results_from_fast_search(patch_hits, top_n)

        response = QueryResponse(query=text, results=results, timings=timer.as_dict())
        response.metadata["parsed"] = parsed
        response.metadata["num_candidates"] = len(candidate_frames)
        response.metadata["rerank_enabled"] = self._config.rerank_enabled
        response.metadata["ann_enabled"] = self._config.ann_enabled
        return response

    def query_batch(
        self, texts: Sequence[str], top_n: int | None = None
    ) -> BatchQueryResponse:
        """Execute ``m`` complex object queries in one engine pass.

        Stage 1 embeds every query with one vectorized text-encoder pass and
        runs one multi-query ANN search.  Stage 2 reranks over the *union* of
        the per-query candidate frames, so each distinct frame is re-encoded
        exactly once no matter how many queries retrieved it — that sharing is
        where the batch path beats ``m`` sequential :meth:`query` calls.  Each
        query's hits and scores are identical to what a sequential call would
        return.
        """
        timer = PhaseTimer()
        parsed_list = [self._text_encoder.parse(text) for text in texts]
        top_n = top_n or self._config.rerank_n
        num_queries = len(parsed_list)
        if num_queries == 0:
            return BatchQueryResponse(metadata={"batch_size": 0})

        # Duplicate query strings are answered once: the whole pipeline runs
        # over the *unique* parsed queries and results fan back out by
        # position.  Results are position-for-position identical to
        # sequential calls because the pipeline is deterministic per query.
        unique = list(dict.fromkeys(parsed_list))

        with timer.phase("fast_search"):
            query_matrix = self._text_encoder.encode_batch(unique)
            hit_lists = self._storage.search_batch(
                query_matrix, self._config.fast_search_k, use_ann=self._config.ann_enabled
            )
            grouped = {
                parsed: self._group_hits(hits)
                for parsed, hits in zip(unique, hit_lists)
            }

        results_by_query: Dict[ParsedQuery, List[ObjectQueryResult]] = {}
        union: Dict[str, None] = {}
        if self._config.rerank_enabled:
            with timer.phase("rerank"):
                for candidate_frames, _ in grouped.values():
                    for frame_id in candidate_frames:
                        union.setdefault(frame_id, None)
                # Each distinct candidate frame is re-encoded exactly once for
                # the whole batch, no matter how many queries retrieved it.
                shared = {
                    frame_id: self._frame_candidate(frame_id) for frame_id in union
                }
                for parsed in unique:
                    candidate_frames, patch_hits = grouped[parsed]
                    if not candidate_frames:
                        results_by_query[parsed] = self._results_from_fast_search(
                            patch_hits, top_n
                        )
                        continue
                    candidates = [shared[frame_id] for frame_id in candidate_frames]
                    reranked = self._reranker.rerank(parsed, candidates, top_n=top_n)
                    results_by_query[parsed] = self._results_from_rerank(reranked)
        else:
            for parsed in unique:
                _, patch_hits = grouped[parsed]
                results_by_query[parsed] = self._results_from_fast_search(patch_hits, top_n)

        batch_timings = timer.as_dict()
        share = {phase: seconds / num_queries for phase, seconds in batch_timings.items()}
        responses: List[QueryResponse] = []
        for text, parsed in zip(texts, parsed_list):
            candidate_frames, _ = grouped[parsed]
            response = QueryResponse(
                query=text,
                results=list(results_by_query[parsed]),
                timings=dict(share),
            )
            response.metadata["parsed"] = parsed
            response.metadata["num_candidates"] = len(candidate_frames)
            response.metadata["rerank_enabled"] = self._config.rerank_enabled
            response.metadata["ann_enabled"] = self._config.ann_enabled
            response.metadata["batched"] = True
            responses.append(response)
        return BatchQueryResponse(
            queries=list(texts),
            responses=responses,
            timings=batch_timings,
            metadata={
                "batch_size": num_queries,
                "num_unique_queries": len(unique),
                "num_unique_candidate_frames": len(union),
                "rerank_enabled": self._config.rerank_enabled,
                "ann_enabled": self._config.ann_enabled,
            },
        )

    def _fast_search(
        self, parsed: ParsedQuery
    ) -> Tuple[List[str], List[Tuple[str, float]]]:
        """Stage 1: ANN top-k patches, grouped into candidate frames."""
        query_vector = self._text_encoder.encode(parsed)
        hits = self._storage.search(
            query_vector, self._config.fast_search_k, use_ann=self._config.ann_enabled
        )
        return self._group_hits(hits)

    def _group_hits(
        self, hits: Sequence[SearchHit]
    ) -> Tuple[List[str], List[Tuple[str, float]]]:
        """Group patch hits into distinct candidate key frames.

        Each frame keeps its best-scoring patch position in the ordering, and
        the number of candidate frames handed to the rerank stage is capped so
        rerank cost stays bounded regardless of how large the indexed dataset
        is.
        """
        frame_order: Dict[str, float] = {}
        patch_hits: List[Tuple[str, float]] = []
        for hit in hits:
            patch_hits.append((hit.id, hit.score))
            frame_id = str(hit.metadata.get("frame_id", ""))
            if not frame_id:
                frame_id = self._storage.patch_record(hit.id).frame_id
            if frame_id not in frame_order:
                frame_order[frame_id] = hit.score
        candidate_frames = list(frame_order)[: self._config.max_candidate_frames]
        return candidate_frames, patch_hits

    def _frame_candidate(self, frame_id: str) -> FrameCandidate:
        """Re-encode one key frame into a rerank candidate (deterministic)."""
        frame = self._frames.get(frame_id)
        if frame is None:
            raise QueryError(f"Candidate frame {frame_id!r} is not registered")
        scene = self._frame_scene.get(frame_id, "generic")
        encodings = self._summarizer.encode_single_frame(frame, scene=scene)
        patches = tuple(
            CandidatePatch(
                patch_id=encoding.patch_id,
                embedding=encoding.embedding,
                box=encoding.box,
                objectness=encoding.objectness,
            )
            for encoding in encodings
        )
        return FrameCandidate(frame_id=frame_id, patches=patches)

    def _rerank(
        self, parsed: ParsedQuery, candidate_frames: List[str], top_n: int
    ) -> List[ObjectQueryResult]:
        """Stage 2: cross-modality rerank of the candidate frames."""
        candidates = [self._frame_candidate(frame_id) for frame_id in candidate_frames]
        reranked = self._reranker.rerank(parsed, candidates, top_n=top_n)
        return self._results_from_rerank(reranked)

    def _results_from_rerank(
        self, reranked: Sequence[RerankResult]
    ) -> List[ObjectQueryResult]:
        """Convert rerank outputs into flat object-query results."""
        results: List[ObjectQueryResult] = []
        for entry in reranked:
            frame = self._frames[entry.frame_id]
            detections = entry.detections or None
            if detections is None:
                results.append(
                    ObjectQueryResult(
                        frame_id=entry.frame_id,
                        video_id=frame.video_id,
                        box=entry.box,
                        score=entry.score,
                        patch_id=entry.patch_id,
                        source="lovo",
                    )
                )
                continue
            for detection in detections:
                results.append(
                    ObjectQueryResult(
                        frame_id=entry.frame_id,
                        video_id=frame.video_id,
                        box=detection.box,
                        score=detection.score,
                        patch_id=detection.patch_id,
                        source="lovo",
                    )
                )
        return results

    def _results_from_fast_search(
        self, patch_hits: List[Tuple[str, float]], top_n: int
    ) -> List[ObjectQueryResult]:
        """w/o-rerank path: return the fast-search patches with stored boxes."""
        results: List[ObjectQueryResult] = []
        seen_frames: Dict[str, None] = {}
        for patch_id, score in patch_hits:
            record = self._storage.patch_record(patch_id)
            if record.frame_id in seen_frames:
                continue
            seen_frames[record.frame_id] = None
            results.append(
                ObjectQueryResult(
                    frame_id=record.frame_id,
                    video_id=record.video_id,
                    box=record.box,
                    score=score,
                    patch_id=patch_id,
                    source="lovo-fast",
                )
            )
            if len(results) >= top_n:
                break
        return results
