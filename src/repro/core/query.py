"""Two-stage query strategy (paper §VI, Algorithm 2).

Stage 1 — **fast search**: the query text is encoded into a single global
embedding (relations dropped), and an ANN search over the stored class
embeddings returns the top-``k`` candidate patches, which are grouped into
candidate key frames.

Stage 2 — **cross-modality rerank**: the candidate frames are re-encoded with
the full-dimensional visual encoder and scored by the cross-modality
transformer against the complete query (including relational tokens evaluated
over the predicted boxes).  The top-``n`` frames with their refined bounding
boxes are returned.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field, replace
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

from repro.config import QueryConfig
from repro.core.results import BatchQueryResponse, ObjectQueryResult, QueryResponse
from repro.core.storage import LOVOStorage
from repro.core.summary import VideoSummarizer
from repro.encoders.cross_modal import (
    CandidatePatch,
    CrossModalityReranker,
    FrameCandidate,
    RerankResult,
)
from repro.encoders.text import ParsedQuery, TextEncoder
from repro.errors import QueryError
from repro.obs.trace import span as obs_span
from repro.utils.timing import PhaseTimer
from repro.vectordb.collection import SearchHit
from repro.video.model import Frame


@dataclass(frozen=True)
class QueryOptions:
    """Validated per-request knobs, shared by every query entry point.

    ``None`` means "use the system's :class:`~repro.config.QueryConfig`
    default" — :meth:`resolved` turns the options into the effective
    ``(fast_search_k, top_n)`` pair a request actually runs with.  The class
    is frozen and hashable so it can key caches and batch groups directly,
    and it is deliberately shard/replica-invariant: nothing in here depends
    on how the backend is partitioned.

    ``explain=True`` asks the serving layer for a per-query EXPLAIN report
    (stage costs, search parameters, per-shard candidate counts, score
    margins); it never changes the query's *answer*, but the serving engine
    bypasses its result cache for explain requests so the reported pass is
    the one that actually ran.
    """

    top_n: Optional[int] = None
    fast_search_k: Optional[int] = None
    explain: bool = False

    def __post_init__(self) -> None:
        for name in ("top_n", "fast_search_k"):
            value = getattr(self, name)
            if value is None:
                continue
            if isinstance(value, bool) or not isinstance(value, int) or value <= 0:
                raise QueryError(f"QueryOptions.{name} must be a positive integer or None")
        if not isinstance(self.explain, bool):
            raise QueryError("QueryOptions.explain must be a boolean")

    def resolved(self, config: QueryConfig) -> Tuple[int, int]:
        """The effective ``(fast_search_k, top_n)`` under a query config."""
        return (
            self.fast_search_k or config.fast_search_k,
            self.top_n or config.rerank_n,
        )

    def to_dict(self) -> Dict[str, object]:
        """JSON-able form; defaulted (``None``/``False``) fields are omitted."""
        payload: Dict[str, object] = {}
        if self.top_n is not None:
            payload["top_n"] = self.top_n
        if self.fast_search_k is not None:
            payload["fast_search_k"] = self.fast_search_k
        if self.explain:
            payload["explain"] = True
        return payload

    @classmethod
    def from_dict(cls, payload: Mapping[str, object] | None) -> "QueryOptions":
        """Parse options from JSON; unknown fields are a :class:`QueryError`."""
        if payload is None:
            return cls()
        if not isinstance(payload, Mapping):
            raise QueryError("Query options must be a JSON object")
        unknown = set(payload) - {"top_n", "fast_search_k", "explain"}
        if unknown:
            raise QueryError(f"Unknown query option(s): {sorted(unknown)}")
        explain = payload.get("explain", False)
        if not isinstance(explain, bool):
            raise QueryError("QueryOptions.explain must be a boolean")
        return cls(
            top_n=payload.get("top_n"),  # type: ignore[arg-type]
            fast_search_k=payload.get("fast_search_k"),  # type: ignore[arg-type]
            explain=explain,
        )


@dataclass(frozen=True)
class QueryRequest:
    """The canonical, validated form of one query.

    Every public entry point — ``LOVO.query``, ``LOVO.query_batch``,
    ``ServingEngine.submit``, and the ``/v1`` HTTP handlers — accepts or
    constructs one of these, so validation lives in exactly one place.
    """

    text: str
    options: QueryOptions = field(default_factory=QueryOptions)

    def __post_init__(self) -> None:
        if not isinstance(self.text, str) or not self.text.strip():
            raise QueryError("Query text must be non-empty")
        if not isinstance(self.options, QueryOptions):
            raise QueryError("QueryRequest.options must be a QueryOptions")

    def to_dict(self) -> Dict[str, object]:
        """JSON wire form: ``{"query": ..., "options": {...}?}``."""
        payload: Dict[str, object] = {"query": self.text}
        options = self.options.to_dict()
        if options:
            payload["options"] = options
        return payload

    @classmethod
    def from_dict(cls, payload: Mapping[str, object]) -> "QueryRequest":
        """Parse the wire form, accepting the legacy top-level ``top_n``."""
        if not isinstance(payload, Mapping):
            raise QueryError("Query request must be a JSON object")
        text = payload.get("query")
        if not isinstance(text, str):
            raise QueryError('Query request must contain a string "query" field')
        options = QueryOptions.from_dict(payload.get("options"))  # type: ignore[arg-type]
        legacy_top_n = payload.get("top_n")
        if legacy_top_n is not None:
            options = _merge_top_n(options, legacy_top_n)
        return cls(text=text, options=options)


#: How many fast-search patch hits ride along in each response's metadata.
#: Enough for shadow-recall estimation (recall@k at the configured k) and the
#: EXPLAIN score margins without bloating cached responses.
FAST_SEARCH_PROVENANCE_CAP = 64


def _fast_search_provenance(
    patch_hits: Sequence[Tuple[str, float]], fast_k: int
) -> Dict[str, object]:
    """Served fast-search ranking, capped, for the quality/EXPLAIN layers."""
    return {
        "k": fast_k,
        "num_hits": len(patch_hits),
        "hits": [
            (patch_id, float(score))
            for patch_id, score in patch_hits[:FAST_SEARCH_PROVENANCE_CAP]
        ],
    }


def _merge_top_n(options: QueryOptions, top_n: object) -> QueryOptions:
    """Fold a legacy ``top_n`` value into options, rejecting conflicts."""
    if isinstance(top_n, bool) or not isinstance(top_n, int) or top_n <= 0:
        raise QueryError('"top_n" must be a positive integer')
    if options.top_n is not None and options.top_n != top_n:
        raise QueryError(
            f"Conflicting top_n: options say {options.top_n}, legacy argument says {top_n}"
        )
    return replace(options, top_n=top_n)


def _warn_top_n(caller: str) -> None:
    warnings.warn(
        f"{caller}(top_n=...) is deprecated; pass options=QueryOptions(top_n=...) "
        "or a QueryRequest instead",
        DeprecationWarning,
        stacklevel=4,
    )


def as_query_request(
    request: Union[str, QueryRequest],
    top_n: int | None = None,
    options: QueryOptions | None = None,
    *,
    caller: str = "query",
) -> QueryRequest:
    """Coerce the public shim surface into one canonical :class:`QueryRequest`.

    Accepts a bare query string (first-class, no warning) or a ready
    :class:`QueryRequest`; the legacy ``top_n`` keyword keeps working but
    emits a :class:`DeprecationWarning`.
    """
    if top_n is not None:
        _warn_top_n(caller)
    if isinstance(request, QueryRequest):
        if options is not None:
            raise QueryError(
                f"{caller}() got both a QueryRequest and separate options; "
                "put the options inside the request"
            )
        if top_n is not None:
            request = replace(request, options=_merge_top_n(request.options, top_n))
        return request
    if not isinstance(request, str):
        raise QueryError(f"{caller}() expects a query string or QueryRequest")
    merged = options or QueryOptions()
    if top_n is not None:
        merged = _merge_top_n(merged, top_n)
    return QueryRequest(text=request, options=merged)


def as_query_batch(
    requests: Sequence[Union[str, QueryRequest]],
    top_n: int | None = None,
    options: QueryOptions | None = None,
    *,
    caller: str = "query_batch",
) -> Tuple[List[str], QueryOptions]:
    """Coerce a batch of queries into texts plus one shared :class:`QueryOptions`.

    A batch executes as one engine pass, so all requests must agree on their
    options: per-request options are allowed only when they are all equal
    (and consistent with the batch-level ``options``/legacy ``top_n``).
    """
    if isinstance(requests, (str, QueryRequest)):
        raise QueryError(f"{caller}() expects a sequence of queries, not a single one")
    if top_n is not None:
        _warn_top_n(caller)
    merged = options or QueryOptions()
    if top_n is not None:
        merged = _merge_top_n(merged, top_n)
    texts: List[str] = []
    explicit = merged != QueryOptions()
    for request in requests:
        coerced = as_query_request(request, caller=caller)
        if coerced.options != QueryOptions():
            if not explicit:
                merged, explicit = coerced.options, True
            elif coerced.options != merged:
                raise QueryError(
                    f"{caller}() requests must share one QueryOptions per batch"
                )
        texts.append(coerced.text)
    return texts, merged


class QueryStrategy:
    """Implements Algorithm 2 over a populated :class:`LOVOStorage`."""

    def __init__(
        self,
        text_encoder: TextEncoder,
        reranker: CrossModalityReranker,
        summarizer: VideoSummarizer,
        storage: LOVOStorage,
        frame_registry: Mapping[str, Frame],
        frame_scene: Mapping[str, str],
        config: QueryConfig | None = None,
    ) -> None:
        self._text_encoder = text_encoder
        self._reranker = reranker
        self._summarizer = summarizer
        self._storage = storage
        self._frames = frame_registry
        self._frame_scene = frame_scene
        self._config = config or QueryConfig()

    @property
    def config(self) -> QueryConfig:
        """The query configuration (k, n, ablation switches)."""
        return self._config

    def query(
        self,
        request: Union[str, QueryRequest],
        top_n: int | None = None,
        *,
        options: QueryOptions | None = None,
    ) -> QueryResponse:
        """Execute a complex object query end to end.

        Accepts a query string or a canonical :class:`QueryRequest`; the
        ``top_n`` keyword is a deprecated shim for ``options``.
        """
        coerced = as_query_request(request, top_n, options, caller="QueryStrategy.query")
        timer = PhaseTimer()
        text = coerced.text
        parsed = self._text_encoder.parse(text)
        fast_k, top_n = coerced.options.resolved(self._config)

        with timer.phase("fast_search"):
            candidate_frames, patch_hits = self._fast_search(parsed, fast_k)

        if self._config.rerank_enabled and candidate_frames:
            with timer.phase("rerank"), obs_span(
                "rerank", num_candidates=len(candidate_frames)
            ):
                results = self._rerank(parsed, candidate_frames, top_n)
        else:
            results = self._results_from_fast_search(patch_hits, top_n)

        response = QueryResponse(query=text, results=results, timings=timer.as_dict())
        response.metadata["parsed"] = parsed
        response.metadata["num_candidates"] = len(candidate_frames)
        response.metadata["rerank_enabled"] = self._config.rerank_enabled
        response.metadata["ann_enabled"] = self._config.ann_enabled
        response.metadata["fast_search"] = _fast_search_provenance(patch_hits, fast_k)
        return response

    def query_batch(
        self,
        requests: Sequence[Union[str, QueryRequest]],
        top_n: int | None = None,
        *,
        options: QueryOptions | None = None,
    ) -> BatchQueryResponse:
        """Execute ``m`` complex object queries in one engine pass.

        Stage 1 embeds every query with one vectorized text-encoder pass and
        runs one multi-query ANN search.  Stage 2 reranks over the *union* of
        the per-query candidate frames, so each distinct frame is re-encoded
        exactly once no matter how many queries retrieved it — that sharing is
        where the batch path beats ``m`` sequential :meth:`query` calls.  Each
        query's hits and scores are identical to what a sequential call would
        return.  Requests may be strings or :class:`QueryRequest` objects but
        must share one :class:`QueryOptions` (the batch runs as one pass).
        """
        texts, batch_options = as_query_batch(
            requests, top_n, options, caller="QueryStrategy.query_batch"
        )
        timer = PhaseTimer()
        parsed_list = [self._text_encoder.parse(text) for text in texts]
        fast_k, top_n = batch_options.resolved(self._config)
        num_queries = len(parsed_list)
        if num_queries == 0:
            return BatchQueryResponse(metadata={"batch_size": 0})

        # Duplicate query strings are answered once: the whole pipeline runs
        # over the *unique* parsed queries and results fan back out by
        # position.  Results are position-for-position identical to
        # sequential calls because the pipeline is deterministic per query.
        unique = list(dict.fromkeys(parsed_list))

        with timer.phase("fast_search"):
            with obs_span("encode", num_queries=len(unique)):
                query_matrix = self._text_encoder.encode_batch(unique)
            with obs_span("fast_search", k=fast_k, ann=self._config.ann_enabled):
                hit_lists = self._storage.search_batch(
                    query_matrix, fast_k, use_ann=self._config.ann_enabled
                )
            grouped = {
                parsed: self._group_hits(hits)
                for parsed, hits in zip(unique, hit_lists)
            }

        results_by_query: Dict[ParsedQuery, List[ObjectQueryResult]] = {}
        union: Dict[str, None] = {}
        if self._config.rerank_enabled:
            with timer.phase("rerank"), obs_span("rerank"):
                for candidate_frames, _ in grouped.values():
                    for frame_id in candidate_frames:
                        union.setdefault(frame_id, None)
                # Each distinct candidate frame is re-encoded exactly once for
                # the whole batch, no matter how many queries retrieved it.
                shared = {
                    frame_id: self._frame_candidate(frame_id) for frame_id in union
                }
                for parsed in unique:
                    candidate_frames, patch_hits = grouped[parsed]
                    if not candidate_frames:
                        results_by_query[parsed] = self._results_from_fast_search(
                            patch_hits, top_n
                        )
                        continue
                    candidates = [shared[frame_id] for frame_id in candidate_frames]
                    reranked = self._reranker.rerank(parsed, candidates, top_n=top_n)
                    results_by_query[parsed] = self._results_from_rerank(reranked)
        else:
            for parsed in unique:
                _, patch_hits = grouped[parsed]
                results_by_query[parsed] = self._results_from_fast_search(patch_hits, top_n)

        batch_timings = timer.as_dict()
        share = {phase: seconds / num_queries for phase, seconds in batch_timings.items()}
        responses: List[QueryResponse] = []
        for text, parsed in zip(texts, parsed_list):
            candidate_frames, patch_hits = grouped[parsed]
            response = QueryResponse(
                query=text,
                results=list(results_by_query[parsed]),
                timings=dict(share),
            )
            response.metadata["parsed"] = parsed
            response.metadata["num_candidates"] = len(candidate_frames)
            response.metadata["rerank_enabled"] = self._config.rerank_enabled
            response.metadata["ann_enabled"] = self._config.ann_enabled
            response.metadata["batched"] = True
            response.metadata["fast_search"] = _fast_search_provenance(patch_hits, fast_k)
            responses.append(response)
        return BatchQueryResponse(
            queries=list(texts),
            responses=responses,
            timings=batch_timings,
            metadata={
                "batch_size": num_queries,
                "num_unique_queries": len(unique),
                "num_unique_candidate_frames": len(union),
                "rerank_enabled": self._config.rerank_enabled,
                "ann_enabled": self._config.ann_enabled,
            },
        )

    def _fast_search(
        self, parsed: ParsedQuery, fast_k: int
    ) -> Tuple[List[str], List[Tuple[str, float]]]:
        """Stage 1: ANN top-k patches, grouped into candidate frames."""
        with obs_span("encode", num_queries=1):
            query_vector = self._text_encoder.encode(parsed)
        with obs_span("fast_search", k=fast_k, ann=self._config.ann_enabled):
            hits = self._storage.search(
                query_vector, fast_k, use_ann=self._config.ann_enabled
            )
        return self._group_hits(hits)

    def _group_hits(
        self, hits: Sequence[SearchHit]
    ) -> Tuple[List[str], List[Tuple[str, float]]]:
        """Group patch hits into distinct candidate key frames.

        Each frame keeps its best-scoring patch position in the ordering, and
        the number of candidate frames handed to the rerank stage is capped so
        rerank cost stays bounded regardless of how large the indexed dataset
        is.
        """
        frame_order: Dict[str, float] = {}
        patch_hits: List[Tuple[str, float]] = []
        for hit in hits:
            patch_hits.append((hit.id, hit.score))
            frame_id = str(hit.metadata.get("frame_id", ""))
            if not frame_id:
                frame_id = self._storage.patch_record(hit.id).frame_id
            if frame_id not in frame_order:
                frame_order[frame_id] = hit.score
        candidate_frames = list(frame_order)[: self._config.max_candidate_frames]
        return candidate_frames, patch_hits

    def _frame_candidate(self, frame_id: str) -> FrameCandidate:
        """Re-encode one key frame into a rerank candidate (deterministic)."""
        frame = self._frames.get(frame_id)
        if frame is None:
            raise QueryError(f"Candidate frame {frame_id!r} is not registered")
        scene = self._frame_scene.get(frame_id, "generic")
        encodings = self._summarizer.encode_single_frame(frame, scene=scene)
        patches = tuple(
            CandidatePatch(
                patch_id=encoding.patch_id,
                embedding=encoding.embedding,
                box=encoding.box,
                objectness=encoding.objectness,
            )
            for encoding in encodings
        )
        return FrameCandidate(frame_id=frame_id, patches=patches)

    def _rerank(
        self, parsed: ParsedQuery, candidate_frames: List[str], top_n: int
    ) -> List[ObjectQueryResult]:
        """Stage 2: cross-modality rerank of the candidate frames."""
        candidates = [self._frame_candidate(frame_id) for frame_id in candidate_frames]
        reranked = self._reranker.rerank(parsed, candidates, top_n=top_n)
        return self._results_from_rerank(reranked)

    def _results_from_rerank(
        self, reranked: Sequence[RerankResult]
    ) -> List[ObjectQueryResult]:
        """Convert rerank outputs into flat object-query results."""
        results: List[ObjectQueryResult] = []
        for entry in reranked:
            frame = self._frames[entry.frame_id]
            detections = entry.detections or None
            if detections is None:
                results.append(
                    ObjectQueryResult(
                        frame_id=entry.frame_id,
                        video_id=frame.video_id,
                        box=entry.box,
                        score=entry.score,
                        patch_id=entry.patch_id,
                        source="lovo",
                    )
                )
                continue
            for detection in detections:
                results.append(
                    ObjectQueryResult(
                        frame_id=entry.frame_id,
                        video_id=frame.video_id,
                        box=detection.box,
                        score=detection.score,
                        patch_id=detection.patch_id,
                        source="lovo",
                    )
                )
        return results

    def _results_from_fast_search(
        self, patch_hits: List[Tuple[str, float]], top_n: int
    ) -> List[ObjectQueryResult]:
        """w/o-rerank path: return the fast-search patches with stored boxes."""
        results: List[ObjectQueryResult] = []
        seen_frames: Dict[str, None] = {}
        for patch_id, score in patch_hits:
            record = self._storage.patch_record(patch_id)
            if record.frame_id in seen_frames:
                continue
            seen_frames[record.frame_id] = None
            results.append(
                ObjectQueryResult(
                    frame_id=record.frame_id,
                    video_id=record.video_id,
                    box=record.box,
                    score=score,
                    patch_id=patch_id,
                    source="lovo-fast",
                )
            )
            if len(results) >= top_n:
                break
        return results
