"""LOVO core: video summary, database storage, and the two-stage query strategy."""

from repro.core.query import QueryOptions, QueryRequest
from repro.core.results import BatchQueryResponse, ObjectQueryResult, QueryResponse
from repro.core.storage import LOVOStorage
from repro.core.summary import SummaryOutput, VideoSummarizer
from repro.core.system import LOVO

__all__ = [
    "LOVO",
    "VideoSummarizer",
    "SummaryOutput",
    "LOVOStorage",
    "QueryRequest",
    "QueryOptions",
    "ObjectQueryResult",
    "QueryResponse",
    "BatchQueryResponse",
]
