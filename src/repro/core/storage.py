"""Database Storage module (paper §V).

Stores the class embeddings produced by the video summary in a vector
collection (IVF-PQ by default) and the associated metadata — key-frame ids,
patch ids, bounding boxes — in the relational metadata store, linked by the
shared patch id.  Provides the lookups the query strategy needs: ANN search
over the embeddings, exhaustive search for the w/o-ANNS ablation, and
frame-level metadata retrieval for the rerank stage.
"""

from __future__ import annotations

from dataclasses import asdict
from pathlib import Path
from typing import Dict, List, Sequence, Union

import numpy as np

from repro.config import IndexConfig, ShardConfig
from repro.encoders.vision import PatchEncoding
from repro.errors import SnapshotCorruptionError, VectorDatabaseError
from repro.shard.database import ShardedCollection, ShardedDatabase
from repro.utils.serialization import load_json, save_json
from repro.utils.timing import PhaseTimer
from repro.vectordb.collection import SearchHit, VectorCollection
from repro.vectordb.database import VectorDatabase
from repro.vectordb.metadata import FrameRecord, MetadataStore, PatchRecord
from repro.video.model import Frame

#: Either vector-database backend: the classic single-process one or the
#: sharded scatter-gather one.  They expose the same API surface.
AnyVectorDatabase = Union[VectorDatabase, ShardedDatabase]
AnyVectorCollection = Union[VectorCollection, ShardedCollection]


class LOVOStorage:
    """Vector collection + relational metadata, linked by patch id.

    The vector side runs on either backend: a plain
    :class:`~repro.vectordb.database.VectorDatabase` or a
    :class:`~repro.shard.database.ShardedDatabase` (pass ``shard_config``
    with ``num_shards > 1``, or an explicit ``database``).  Everything above
    this class is backend-agnostic — the two expose the same API and return
    bit-identical results.
    """

    COLLECTION_NAME = "lovo_patches"

    def __init__(
        self,
        dim: int,
        index_config: IndexConfig | None = None,
        database: AnyVectorDatabase | None = None,
        metadata: MetadataStore | None = None,
        shard_config: ShardConfig | None = None,
    ) -> None:
        self._dim = dim
        self._index_config = index_config or IndexConfig()
        if database is None:
            if shard_config is not None and shard_config.num_shards > 1:
                database = ShardedDatabase(shard_config)
            else:
                database = VectorDatabase()
        self._database = database
        self._metadata = metadata or MetadataStore()
        # A database restored from a snapshot already carries the patch
        # collection; adopt it instead of creating a fresh (empty) one.
        if self._database.has_collection(self.COLLECTION_NAME):
            existing = self._database.get_collection(self.COLLECTION_NAME)
            if existing.dim != dim or existing.index_type != self._index_config.index_type:
                raise VectorDatabaseError(
                    f"Existing {self.COLLECTION_NAME!r} collection "
                    f"({existing.dim}-d, {existing.index_type}) does not match the "
                    f"requested storage ({dim}-d, {self._index_config.index_type})"
                )
            self._collection = existing
        else:
            self._collection = self._database.create_collection(
                self.COLLECTION_NAME, dim, self._index_config
            )

    @property
    def collection(self) -> AnyVectorCollection:
        """The underlying vector collection of class embeddings."""
        return self._collection

    @property
    def database(self) -> AnyVectorDatabase:
        """The vector-database backend (plain or sharded)."""
        return self._database

    @property
    def sharded(self) -> bool:
        """Whether the vector backend is a scatter-gather sharded database."""
        return isinstance(self._database, ShardedDatabase)

    def backend_status(self) -> Dict[str, object]:
        """Backend topology for health/stats endpoints and manifests.

        Always carries a ``"health"`` key: ``"ok"`` / ``"degraded"`` (some
        replicas down, every shard still answerable) / ``"unavailable"``
        (at least one shard has no healthy replica).  The unsharded backend
        has no replica topology and is always ``"ok"``.
        """
        if isinstance(self._database, ShardedDatabase):
            return {"sharded": True, **self._database.status()}
        return {"sharded": False, "num_shards": 1, "health": "ok"}

    @property
    def metadata(self) -> MetadataStore:
        """The relational metadata store."""
        return self._metadata

    @property
    def num_entities(self) -> int:
        """Number of stored patch vectors."""
        return self._collection.num_entities

    @property
    def index_type(self) -> str:
        """The ANN index family backing the collection."""
        return self._collection.index_type

    def ingest(
        self,
        keyframes: Sequence[Frame],
        encodings: Sequence[PatchEncoding],
        timer: PhaseTimer | None = None,
    ) -> None:
        """Insert key frames and patch encodings, then build the index."""
        timer = timer or PhaseTimer()
        if not encodings:
            raise VectorDatabaseError("Cannot ingest an empty set of patch encodings")
        with timer.phase("indexing"):
            self._metadata.add_frames(
                FrameRecord(
                    frame_id=frame.frame_id,
                    video_id=frame.video_id,
                    frame_index=frame.index,
                    timestamp=frame.timestamp,
                )
                for frame in keyframes
            )
            self._metadata.add_patches(
                PatchRecord(
                    patch_id=encoding.patch_id,
                    frame_id=encoding.frame_id,
                    video_id=encoding.video_id,
                    patch_index=encoding.patch_index,
                    box=encoding.box,
                    objectness=encoding.objectness,
                )
                for encoding in encodings
            )
            ids = [encoding.patch_id for encoding in encodings]
            vectors = np.stack([encoding.class_embedding for encoding in encodings])
            metadata = [
                {"frame_id": encoding.frame_id, "video_id": encoding.video_id}
                for encoding in encodings
            ]
            self._collection.insert(ids, vectors, metadata)
            self._collection.flush()

    def search(self, query_vector: np.ndarray, k: int, use_ann: bool = True) -> List[SearchHit]:
        """Top-``k`` patch search; exhaustive when ``use_ann`` is false."""
        if use_ann:
            return self._collection.search(query_vector, k)
        return self._collection.search_exhaustive(query_vector, k)

    def search_batch(
        self, query_vectors: np.ndarray, k: int, use_ann: bool = True
    ) -> List[List[SearchHit]]:
        """Top-``k`` patch search for ``m`` query vectors at once."""
        if use_ann:
            return self._collection.search_batch(query_vectors, k)
        return self._collection.search_exhaustive_batch(query_vectors, k)

    def patches_for_frame(self, frame_id: str) -> List[PatchRecord]:
        """All stored patch records of one key frame (for the rerank stage)."""
        return self._metadata.patches_for_frame(frame_id)

    def patch_record(self, patch_id: str) -> PatchRecord:
        """Relational record of one patch."""
        return self._metadata.get_patch(patch_id)

    def save(self, path: str | Path) -> None:
        """Persist the vector database and metadata store to a directory."""
        root = Path(path)
        root.mkdir(parents=True, exist_ok=True)
        save_json(
            root / "storage.json",
            {"dim": self._dim, "index_config": asdict(self._index_config)},
        )
        self._database.save(root / "vectordb")
        self._metadata.save(root / "metadata.npz")

    @classmethod
    def load(cls, path: str | Path) -> "LOVOStorage":
        """Restore storage saved by :meth:`save` without touching ingest."""
        root = Path(path)
        document = load_json(root / "storage.json")
        index_config = IndexConfig(**document["index_config"])
        # The sharded backend leaves a `sharded.json` marker at its root;
        # dispatch on it so one load path covers both snapshot layouts
        # (sharded loads fan the per-shard reads across a thread pool).
        database: AnyVectorDatabase
        if (root / "vectordb" / "sharded.json").exists():
            database = ShardedDatabase.load(root / "vectordb")
        else:
            database = VectorDatabase.load(root / "vectordb")
        if not database.has_collection(cls.COLLECTION_NAME):
            raise SnapshotCorruptionError(
                f"Storage snapshot has no {cls.COLLECTION_NAME!r} collection"
            )
        metadata = MetadataStore.load(root / "metadata.npz")
        return cls(
            dim=int(document["dim"]),
            index_config=index_config,
            database=database,
            metadata=metadata,
        )

    def storage_report(self) -> dict:
        """Summary of what is stored (used by reports and ablations)."""
        return {
            "num_entities": self.num_entities,
            "num_keyframes": self._metadata.count_frames(),
            "index_type": self.index_type,
            "vector_bytes": self._collection.storage_bytes(),
        }
