"""Video Summary module (paper §IV).

Transforms raw videos into the per-patch vector collection: key-frame
extraction (§IV-A), patch processing with the decoupled visual encoder
(§IV-B), object localization (§IV-C), and assembly of the collection records
(§IV-D).  This is the *one-time*, query-agnostic phase of LOVO — its cost is
reported as "Processing" throughout the evaluation and is amortised over all
future queries.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.config import LOVOConfig
from repro.encoders.concepts import ConceptSpace
from repro.encoders.vision import PatchEncoding, VisionEncoder
from repro.keyframes.base import KeyframeExtractor, make_extractor
from repro.utils.timing import PhaseTimer
from repro.video.model import Frame, VideoDataset


@dataclass
class SummaryOutput:
    """Everything the summary phase produces for one dataset."""

    keyframes: List[Frame] = field(default_factory=list)
    encodings: List[PatchEncoding] = field(default_factory=list)
    frame_scene: Dict[str, str] = field(default_factory=dict)
    frames_processed: int = 0
    total_frames: int = 0

    @property
    def num_keyframes(self) -> int:
        """Number of key frames selected."""
        return len(self.keyframes)

    @property
    def num_entities(self) -> int:
        """Number of patch records produced (one vector-database entity each)."""
        return len(self.encodings)


class VideoSummarizer:
    """Runs key-frame extraction and patch encoding over a dataset."""

    def __init__(
        self,
        config: LOVOConfig | None = None,
        concept_space: ConceptSpace | None = None,
        extractor: KeyframeExtractor | None = None,
        vision_encoder: VisionEncoder | None = None,
    ) -> None:
        self._config = config or LOVOConfig()
        self._space = concept_space or ConceptSpace(
            dim=self._config.encoder.embedding_dim, seed=self._config.encoder.seed
        )
        self._extractor = extractor or make_extractor(self._config.keyframes)
        self._encoder = vision_encoder or VisionEncoder(self._space, self._config.encoder)

    @property
    def concept_space(self) -> ConceptSpace:
        """The shared concept space (also used by the text encoder)."""
        return self._space

    @property
    def vision_encoder(self) -> VisionEncoder:
        """The decoupled patch encoder."""
        return self._encoder

    @property
    def extractor(self) -> KeyframeExtractor:
        """The configured key-frame extractor."""
        return self._extractor

    def summarize(self, dataset: VideoDataset, timer: PhaseTimer | None = None) -> SummaryOutput:
        """Summarise a dataset into key frames and patch encodings.

        Args:
            dataset: The annotated video dataset to process.
            timer: Optional phase timer; the work is recorded under
                ``"keyframes"`` and ``"encoding"`` (both part of the paper's
                "Processing" phase).

        Returns:
            A :class:`SummaryOutput` with key frames, patch encodings, and the
            scene label of every key frame (needed when re-encoding candidate
            frames during rerank).
        """
        timer = timer or PhaseTimer()
        output = SummaryOutput(total_frames=dataset.num_frames)
        for video in dataset.videos:
            with timer.phase("keyframes"):
                keyframes = self._extractor.extract(video)
            with timer.phase("encoding"):
                encodings = self._encoder.encode_frames(keyframes, scene=video.scene)
            output.keyframes.extend(keyframes)
            output.encodings.extend(encodings)
            output.frames_processed += video.num_frames
            for frame in keyframes:
                output.frame_scene[frame.frame_id] = video.scene
        return output

    def encode_single_frame(self, frame: Frame, scene: str = "generic") -> List[PatchEncoding]:
        """Encode one frame on demand (used by the rerank stage)."""
        return self._encoder.encode_frame(frame, scene=scene)
