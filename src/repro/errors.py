"""Exception hierarchy for the LOVO reproduction library.

All library-specific errors derive from :class:`ReproError` so that callers can
catch everything raised by the package with a single ``except`` clause while
still being able to discriminate between subsystems.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the ``repro`` package."""


class ConfigurationError(ReproError):
    """Raised when a configuration object contains inconsistent values."""


class VideoError(ReproError):
    """Raised for malformed video, frame, or dataset structures."""


class EncodingError(ReproError):
    """Raised when text or vision encoding receives invalid input."""


class VectorDatabaseError(ReproError):
    """Base class for vector-database errors."""


class CollectionNotFoundError(VectorDatabaseError):
    """Raised when a named collection does not exist in the database."""


class CollectionExistsError(VectorDatabaseError):
    """Raised when creating a collection whose name is already taken."""


class IndexNotBuiltError(VectorDatabaseError):
    """Raised when searching an index that has not been built or trained."""


class DimensionMismatchError(VectorDatabaseError):
    """Raised when a vector's dimensionality does not match the collection."""


class MetadataError(VectorDatabaseError):
    """Raised for relational metadata store failures."""


class QueryError(ReproError):
    """Raised when a query cannot be parsed or executed."""


class UnsupportedQueryError(QueryError):
    """Raised by baseline systems that cannot express a given query.

    The paper marks such cases as "Unsupported" (e.g. VOCAL on queries with
    unseen classes or novel spatial relations).
    """


class EvaluationError(ReproError):
    """Raised when an evaluation metric receives ill-formed input."""


class PersistenceError(ReproError):
    """Base class for snapshot save/load failures (missing files, bad state).

    The persistence subsystem never lets bare ``IOError``/``ValueError``
    escape: anything that goes wrong while writing or reading a snapshot is
    reported as a :class:`PersistenceError` (or one of its subclasses below).
    """


class SnapshotVersionError(PersistenceError):
    """Raised when a snapshot's schema version is not supported by this code."""


class SnapshotCorruptionError(PersistenceError):
    """Raised when a snapshot artifact fails checksum or structural validation."""
