"""Exception hierarchy for the LOVO reproduction library.

All library-specific errors derive from :class:`ReproError` so that callers can
catch everything raised by the package with a single ``except`` clause while
still being able to discriminate between subsystems.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the ``repro`` package."""


class ConfigurationError(ReproError):
    """Raised when a configuration object contains inconsistent values."""


class VideoError(ReproError):
    """Raised for malformed video, frame, or dataset structures."""


class EncodingError(ReproError):
    """Raised when text or vision encoding receives invalid input."""


class VectorDatabaseError(ReproError):
    """Base class for vector-database errors."""


class CollectionNotFoundError(VectorDatabaseError):
    """Raised when a named collection does not exist in the database."""


class CollectionExistsError(VectorDatabaseError):
    """Raised when creating a collection whose name is already taken."""


class IndexNotBuiltError(VectorDatabaseError):
    """Raised when searching an index that has not been built or trained."""


class DimensionMismatchError(VectorDatabaseError):
    """Raised when a vector's dimensionality does not match the collection."""


class MetadataError(VectorDatabaseError):
    """Raised for relational metadata store failures."""


class QueryError(ReproError):
    """Raised when a query cannot be parsed or executed."""


class SystemNotReadyError(QueryError):
    """Raised when querying a system that has not ingested (or loaded) data.

    Subclasses :class:`QueryError` for backwards compatibility, but exists as
    its own type so a serving frontend can map "nothing to query yet" to a
    clean *503 Service Unavailable* instead of a generic server error.
    """


class UnsupportedQueryError(QueryError):
    """Raised by baseline systems that cannot express a given query.

    The paper marks such cases as "Unsupported" (e.g. VOCAL on queries with
    unseen classes or novel spatial relations).
    """


class EvaluationError(ReproError):
    """Raised when an evaluation metric receives ill-formed input."""


class PersistenceError(ReproError):
    """Base class for snapshot save/load failures (missing files, bad state).

    The persistence subsystem never lets bare ``IOError``/``ValueError``
    escape: anything that goes wrong while writing or reading a snapshot is
    reported as a :class:`PersistenceError` (or one of its subclasses below).
    """


class SnapshotVersionError(PersistenceError):
    """Raised when a snapshot's schema version is not supported by this code."""


class SnapshotCorruptionError(PersistenceError):
    """Raised when a snapshot artifact fails checksum or structural validation."""


class ServingError(ReproError):
    """Base class for errors raised by the concurrent serving subsystem.

    Covers lifecycle misuse (submitting to a stopped engine, starting twice)
    and everything below; request-level errors keep their query-layer types
    (:class:`QueryError` and friends) so HTTP status mapping stays precise.
    """


class ServiceOverloadedError(ServingError):
    """Raised when the serving engine's admission queue is full.

    This is backpressure, not failure: the caller should retry after a short
    delay.  The HTTP frontend maps it to *503 Service Unavailable* with a
    ``Retry-After`` header.
    """
