"""Exception hierarchy for the LOVO reproduction library.

All library-specific errors derive from :class:`ReproError` so that callers can
catch everything raised by the package with a single ``except`` clause while
still being able to discriminate between subsystems.

Every error class also carries two class attributes used by the versioned
HTTP surface (:mod:`repro.serve.http`) to build its JSON error envelope:

* ``code`` — a stable machine-readable slug identifying the error kind;
* ``retryable`` — whether the same request may succeed if simply retried
  (backpressure, transient unavailability) as opposed to being permanently
  wrong (validation failures, corrupt snapshots).

The envelope is ``{"error": {"code", "message", "retryable"}}``; see
:func:`error_envelope`.
"""

from __future__ import annotations

from typing import Dict


class ReproError(Exception):
    """Base class for every error raised by the ``repro`` package."""

    code: str = "internal_error"
    retryable: bool = False


class ConfigurationError(ReproError):
    """Raised when a configuration object contains inconsistent values."""

    code = "invalid_configuration"


class VideoError(ReproError):
    """Raised for malformed video, frame, or dataset structures."""

    code = "invalid_video"


class EncodingError(ReproError):
    """Raised when text or vision encoding receives invalid input."""

    code = "encoding_failed"


class VectorDatabaseError(ReproError):
    """Base class for vector-database errors."""

    code = "vectordb_error"


class CollectionNotFoundError(VectorDatabaseError):
    """Raised when a named collection does not exist in the database."""

    code = "collection_not_found"


class CollectionExistsError(VectorDatabaseError):
    """Raised when creating a collection whose name is already taken."""

    code = "collection_exists"


class IndexNotBuiltError(VectorDatabaseError):
    """Raised when searching an index that has not been built or trained."""

    code = "index_not_built"


class DimensionMismatchError(VectorDatabaseError):
    """Raised when a vector's dimensionality does not match the collection."""

    code = "dimension_mismatch"


class MetadataError(VectorDatabaseError):
    """Raised for relational metadata store failures."""

    code = "metadata_error"


class ShardError(VectorDatabaseError):
    """Base class for errors raised by the sharded scatter-gather layer."""

    code = "shard_error"


class ShardUnavailableError(ShardError):
    """Raised when a shard has no healthy replica left to answer a query.

    This is an availability condition, not a validation failure: a replica
    may recover (or be re-added), so the request is worth retrying.  The HTTP
    frontend maps it to *503 Service Unavailable*.
    """

    code = "shard_unavailable"
    retryable = True


class QueryError(ReproError):
    """Raised when a query cannot be parsed or executed."""

    code = "invalid_query"


class SystemNotReadyError(QueryError):
    """Raised when querying a system that has not ingested (or loaded) data.

    Subclasses :class:`QueryError` for backwards compatibility, but exists as
    its own type so a serving frontend can map "nothing to query yet" to a
    clean *503 Service Unavailable* instead of a generic server error.
    """

    code = "not_ready"
    retryable = True


class UnsupportedQueryError(QueryError):
    """Raised by baseline systems that cannot express a given query.

    The paper marks such cases as "Unsupported" (e.g. VOCAL on queries with
    unseen classes or novel spatial relations).
    """

    code = "unsupported_query"


class EvaluationError(ReproError):
    """Raised when an evaluation metric receives ill-formed input."""

    code = "evaluation_error"


class PersistenceError(ReproError):
    """Base class for snapshot save/load failures (missing files, bad state).

    The persistence subsystem never lets bare ``IOError``/``ValueError``
    escape: anything that goes wrong while writing or reading a snapshot is
    reported as a :class:`PersistenceError` (or one of its subclasses below).
    """

    code = "persistence_error"


class SnapshotVersionError(PersistenceError):
    """Raised when a snapshot's schema version is not supported by this code."""

    code = "snapshot_version_skew"


class SnapshotCorruptionError(PersistenceError):
    """Raised when a snapshot artifact fails checksum or structural validation."""

    code = "snapshot_corrupt"


class ServingError(ReproError):
    """Base class for errors raised by the concurrent serving subsystem.

    Covers lifecycle misuse (submitting to a stopped engine, starting twice)
    and everything below; request-level errors keep their query-layer types
    (:class:`QueryError` and friends) so HTTP status mapping stays precise.
    """

    code = "service_unavailable"
    retryable = True


class ServiceOverloadedError(ServingError):
    """Raised when the serving engine's admission queue is full.

    This is backpressure, not failure: the caller should retry after a short
    delay.  The HTTP frontend maps it to *503 Service Unavailable* with a
    ``Retry-After`` header.
    """

    code = "overloaded"
    retryable = True


class StreamError(ServingError):
    """Base class for errors raised by the streaming ingest subsystem.

    Subclasses :class:`ServingError` because the streaming pipeline is part
    of the serving deployment: lifecycle misuse maps to the same 5xx family.
    """

    code = "stream_error"
    retryable = False


class StreamBackpressureError(StreamError):
    """Raised when the streaming ingest queue is full in ``reject`` mode.

    Like :class:`ServiceOverloadedError` this is backpressure, not failure —
    the producer should retry after the pipeline drains.
    """

    code = "stream_overloaded"
    retryable = True


class StreamClosedError(StreamError):
    """Raised when submitting a segment to a stopped streaming ingestor."""

    code = "stream_closed"
    retryable = False


class SubscriptionNotFoundError(StreamError):
    """Raised when a standing-query subscription id does not exist.

    A client-side addressing mistake, not a service condition: the HTTP
    frontend maps it to *404 Not Found*.
    """

    code = "subscription_not_found"
    retryable = False


class SubscriptionLimitError(StreamError):
    """Raised when registering more standing queries than the configured cap."""

    code = "subscription_limit"
    retryable = True


def error_envelope(
    error: BaseException, request_id: str | None = None
) -> Dict[str, object]:
    """The v1 JSON error envelope for any exception.

    Library errors contribute their ``code``/``retryable`` attributes;
    anything else is reported as a non-retryable ``internal_error``.  When
    the serving frontend knows the request's ``X-Request-ID`` it is included
    for log correlation.
    """
    if isinstance(error, ReproError):
        code, retryable = error.code, error.retryable
    else:
        code, retryable = "internal_error", False
    body: Dict[str, object] = {
        "code": code,
        "message": str(error) or type(error).__name__,
        "retryable": bool(retryable),
    }
    if request_id is not None:
        body["request_id"] = request_id
    return {"error": body}
