"""Decoupled ViT-style patch encoder (paper §IV-B, §IV-C).

Each key frame is divided into a regular grid of patches; every patch gets a
visual embedding in the concept space (dimension ``D``) plus a projected
class embedding (dimension ``D'``) and a predicted bounding box.  The encoder
is *query-agnostic*: it never sees the text query, so a frame is encoded
exactly once, which is the property LOVO's one-time indexing relies on.

The embedding of a patch is a mixture of the concept vectors of the objects
overlapping it (weighted by how much of the patch they cover), a background
component, and noise — the deterministic analogue of running a pretrained
ViT over the pixels.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.config import EncoderConfig
from repro.encoders.concepts import ConceptSpace
from repro.encoders.localization import SimulatedBoxHead
from repro.errors import EncodingError
from repro.utils.geometry import BoundingBox
from repro.utils.rng import rng_from_tokens
from repro.video.model import Frame, ObjectAnnotation


@dataclass(frozen=True)
class PatchGrid:
    """Regular patch grid over the unit frame."""

    grid_size: int

    def __post_init__(self) -> None:
        if self.grid_size <= 0:
            raise EncodingError("grid_size must be positive")

    @property
    def num_patches(self) -> int:
        """Total number of patches ``K = grid_size ** 2``."""
        return self.grid_size * self.grid_size

    def anchor(self, patch_index: int) -> BoundingBox:
        """Default (anchor) box of the ``patch_index``-th patch."""
        if not 0 <= patch_index < self.num_patches:
            raise EncodingError(
                f"patch_index must lie in [0, {self.num_patches}), got {patch_index}"
            )
        row, col = divmod(patch_index, self.grid_size)
        size = 1.0 / self.grid_size
        return BoundingBox(col * size, row * size, size, size)

    def anchors(self) -> List[BoundingBox]:
        """Anchor boxes for every patch in row-major order."""
        return [self.anchor(index) for index in range(self.num_patches)]


@dataclass(frozen=True)
class PatchEncoding:
    """Encoded representation of one patch of one key frame.

    This is exactly the per-patch record the paper stores in its vector
    collection (§IV-D): the class embedding that goes into the vector index,
    the predicted bounding box, and the identifiers linking back to the frame.
    """

    patch_id: str
    frame_id: str
    video_id: str
    patch_index: int
    embedding: np.ndarray
    class_embedding: np.ndarray
    box: BoundingBox
    objectness: float


class VisionEncoder:
    """Query-agnostic patch encoder producing :class:`PatchEncoding` records."""

    def __init__(
        self,
        concept_space: ConceptSpace,
        config: EncoderConfig | None = None,
        box_head: SimulatedBoxHead | None = None,
    ) -> None:
        self._space = concept_space
        self._config = config or EncoderConfig()
        if concept_space.dim != self._config.embedding_dim:
            raise EncodingError(
                "ConceptSpace dimension must match EncoderConfig.embedding_dim "
                f"({concept_space.dim} != {self._config.embedding_dim})"
            )
        self._grid = PatchGrid(self._config.patch_grid)
        self._projection = concept_space.projection_matrix(self._config.class_embedding_dim)
        self._box_head = box_head or SimulatedBoxHead(seed=self._config.seed)
        self._object_embedding_cache: Dict[Tuple[str, ...], np.ndarray] = {}

    @property
    def grid(self) -> PatchGrid:
        """The patch grid used for every frame."""
        return self._grid

    @property
    def config(self) -> EncoderConfig:
        """Encoder configuration."""
        return self._config

    @property
    def class_embedding_dim(self) -> int:
        """Dimensionality ``D'`` of the stored class embeddings."""
        return self._config.class_embedding_dim

    def encode_frame(self, frame: Frame, scene: str = "generic") -> List[PatchEncoding]:
        """Encode one key frame into per-patch records.

        The computation is independent of any query: it depends only on the
        frame content (object annotations stand in for pixels) and the fixed
        "pretrained" concept space.
        """
        anchors = self._grid.anchors()
        objects = frame.visible_objects()
        overlaps = self._overlap_matrix(anchors, objects)
        object_embeddings = self._object_embeddings(objects)
        background = self._space.vector(f"background:{scene}")
        rng = rng_from_tokens("vision", frame.frame_id, base_seed=self._config.seed)
        # Noise is applied as a *relative* perturbation: a random direction
        # whose magnitude is ``noise_scale`` times the signal magnitude, so
        # the encoder's imperfection is a fixed fraction of its output rather
        # than something that can swamp the semantic content.
        noise_directions = rng.normal(size=(len(anchors), self._config.embedding_dim))
        noise_directions /= np.linalg.norm(noise_directions, axis=1, keepdims=True)
        boxes = self._box_head.predict(frame.frame_id, anchors, [o.box for o in objects], overlaps)

        encodings: List[PatchEncoding] = []
        for patch_index, _anchor in enumerate(anchors):
            mixture = self._config.background_weight * background
            if objects:
                weights = overlaps[patch_index]
                if weights.sum() > 0:
                    mixture = mixture + weights @ object_embeddings
            signal_norm = np.linalg.norm(mixture)
            mixture = mixture + (
                self._config.noise_scale * signal_norm * noise_directions[patch_index]
            )
            norm = np.linalg.norm(mixture)
            if norm > 0:
                mixture = mixture / norm
            class_embedding = self._projection @ mixture
            class_norm = np.linalg.norm(class_embedding)
            if class_norm > 0:
                class_embedding = class_embedding / class_norm
            objectness = float(overlaps[patch_index].sum()) if objects else 0.0
            encodings.append(
                PatchEncoding(
                    patch_id=f"{frame.frame_id}/patch{patch_index:03d}",
                    frame_id=frame.frame_id,
                    video_id=frame.video_id,
                    patch_index=patch_index,
                    embedding=mixture,
                    class_embedding=class_embedding,
                    box=boxes[patch_index],
                    objectness=min(objectness, 1.0),
                )
            )
        return encodings

    def encode_frames(
        self, frames: Sequence[Frame], scene: str = "generic"
    ) -> List[PatchEncoding]:
        """Encode several frames and concatenate their patch records."""
        encodings: List[PatchEncoding] = []
        for frame in frames:
            encodings.extend(self.encode_frame(frame, scene=scene))
        return encodings

    #: Token-type weights mirroring the text encoder's head-noun-heavy
    #: weighting, so visual and textual mixtures stay aligned: the category
    #: dominates, visual attributes are prominent, context is a weak prior.
    _CATEGORY_WEIGHT = 1.6
    _ATTRIBUTE_WEIGHT = 1.1
    _CONTEXT_WEIGHT = 0.5
    _ACTIVITY_WEIGHT = 0.9

    def object_embedding(self, annotation: ObjectAnnotation) -> np.ndarray:
        """Full-dimensional concept embedding of a single annotated object."""
        tokens = tuple(annotation.concept_tokens())
        if tokens not in self._object_embedding_cache:
            weights = {annotation.category: self._CATEGORY_WEIGHT}
            for value in annotation.attributes.values():
                weights[value] = self._ATTRIBUTE_WEIGHT
            for context in annotation.context:
                weights[context] = self._CONTEXT_WEIGHT
            for activity in annotation.activity:
                weights[activity] = self._ACTIVITY_WEIGHT
            self._object_embedding_cache[tokens] = self._space.encode(
                list(tokens), weights=weights
            )
        return self._object_embedding_cache[tokens]

    def _object_embeddings(self, objects: Sequence[ObjectAnnotation]) -> np.ndarray:
        if not objects:
            return np.zeros((0, self._config.embedding_dim), dtype=np.float64)
        return np.stack([self.object_embedding(annotation) for annotation in objects])

    @staticmethod
    def _overlap_matrix(
        anchors: Sequence[BoundingBox], objects: Sequence[ObjectAnnotation]
    ) -> np.ndarray:
        """Fraction of each patch covered by each object, vectorised."""
        num_patches = len(anchors)
        num_objects = len(objects)
        if num_objects == 0:
            return np.zeros((num_patches, 0), dtype=np.float64)
        anchor_array = np.array([anchor.to_array() for anchor in anchors])
        object_array = np.array([obj.box.to_array() for obj in objects])
        ax1 = anchor_array[:, None, 0]
        ay1 = anchor_array[:, None, 1]
        ax2 = ax1 + anchor_array[:, None, 2]
        ay2 = ay1 + anchor_array[:, None, 3]
        ox1 = object_array[None, :, 0]
        oy1 = object_array[None, :, 1]
        ox2 = ox1 + object_array[None, :, 2]
        oy2 = oy1 + object_array[None, :, 3]
        inter_w = np.clip(np.minimum(ax2, ox2) - np.maximum(ax1, ox1), 0.0, None)
        inter_h = np.clip(np.minimum(ay2, oy2) - np.maximum(ay1, oy1), 0.0, None)
        patch_area = anchor_array[:, None, 2] * anchor_array[:, None, 3]
        with np.errstate(divide="ignore", invalid="ignore"):
            overlaps = np.where(patch_area > 0, inter_w * inter_h / patch_area, 0.0)
        return overlaps
