"""Deterministic shared concept vector space.

This module is the stand-in for the *alignment* that pretrained
vision-language models provide: both the text encoder and the vision encoder
express their outputs as mixtures of the same concept vectors, so a text
query about a red car lands near the visual embedding of patches containing a
red car.  Concept vectors are unit-norm pseudo-random directions derived from
the concept name (so they are stable across processes), and parent links from
the vocabulary blend a fraction of the parent direction into the child,
giving graded similarity between e.g. ``woman`` and ``person`` or ``street``
and ``road``.
"""

from __future__ import annotations

from typing import Dict, Iterable, Mapping, Sequence

import numpy as np

from repro.encoders.vocabulary import ConceptVocabulary, default_vocabulary
from repro.errors import EncodingError
from repro.utils.rng import rng_from_tokens


class ConceptSpace:
    """Maps concept tokens to unit vectors and mixes them into embeddings."""

    #: Weight of each parent direction blended into a child concept.
    PARENT_WEIGHT = 0.55

    def __init__(
        self,
        dim: int = 128,
        vocabulary: ConceptVocabulary | None = None,
        seed: int = 7,
    ) -> None:
        if dim <= 0:
            raise EncodingError("Concept space dimension must be positive")
        self._dim = dim
        self._seed = seed
        self._vocabulary = vocabulary or default_vocabulary()
        self._cache: Dict[str, np.ndarray] = {}

    @property
    def dim(self) -> int:
        """Dimensionality of the concept space."""
        return self._dim

    @property
    def vocabulary(self) -> ConceptVocabulary:
        """The vocabulary defining hierarchy and synonyms."""
        return self._vocabulary

    def vector(self, concept: str) -> np.ndarray:
        """Unit vector for a canonical concept (deterministic, cached).

        Unknown concepts still receive a stable direction so out-of-vocabulary
        words degrade gracefully instead of failing, mirroring how a real text
        encoder embeds any token.
        """
        if concept in self._cache:
            return self._cache[concept]
        base = self._raw_direction(concept)
        for parent in self._vocabulary.parents(concept):
            base = base + self.PARENT_WEIGHT * self.vector(parent)
        base = base / np.linalg.norm(base)
        self._cache[concept] = base
        return base

    def _raw_direction(self, concept: str) -> np.ndarray:
        rng = rng_from_tokens("concept", concept, base_seed=self._seed)
        direction = rng.normal(size=self._dim)
        return direction / np.linalg.norm(direction)

    def encode(
        self,
        concepts: Sequence[str],
        weights: Mapping[str, float] | None = None,
        normalize: bool = True,
    ) -> np.ndarray:
        """Embed a bag of concepts as a (weighted) mixture of their vectors.

        Args:
            concepts: Canonical concept tokens.
            weights: Optional per-concept weights; missing concepts get 1.0.
            normalize: Whether to L2-normalise the result (the paper stores
                unit-norm vectors so dot product equals cosine similarity).

        Returns:
            A vector of shape ``(dim,)``.  The zero vector is returned for an
            empty concept list.
        """
        accumulator = np.zeros(self._dim, dtype=np.float64)
        for concept in concepts:
            weight = 1.0 if weights is None else float(weights.get(concept, 1.0))
            accumulator += weight * self.vector(concept)
        if normalize:
            norm = np.linalg.norm(accumulator)
            if norm > 0:
                accumulator = accumulator / norm
        return accumulator

    def similarity(self, concepts_a: Sequence[str], concepts_b: Sequence[str]) -> float:
        """Cosine similarity between two concept bags."""
        return float(self.encode(concepts_a) @ self.encode(concepts_b))

    def projection_matrix(self, target_dim: int) -> np.ndarray:
        """Deterministic projection from the concept space to ``target_dim``.

        The paper projects patch embeddings from ``D`` to a smaller class
        embedding dimensionality ``D'`` (§IV-C); sharing one projection
        between the vision and text paths keeps them aligned after the
        projection, exactly as a jointly pretrained head would.
        The matrix has (approximately) orthonormal rows so dot products are
        preserved up to scale.
        """
        if target_dim <= 0 or target_dim > self._dim:
            raise EncodingError(
                f"target_dim must lie in [1, {self._dim}], got {target_dim}"
            )
        rng = rng_from_tokens("projection", self._dim, target_dim, base_seed=self._seed)
        matrix = rng.normal(size=(target_dim, self._dim))
        # Orthonormalise the rows so the projection preserves angles.
        q, _ = np.linalg.qr(matrix.T)
        return q[:, :target_dim].T

    def batch_vectors(self, concepts: Iterable[str]) -> np.ndarray:
        """Stack the vectors for several concepts into a matrix."""
        materialised = list(concepts)
        if not materialised:
            return np.zeros((0, self._dim), dtype=np.float64)
        return np.stack([self.vector(concept) for concept in materialised])
