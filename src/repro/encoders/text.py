"""Query parsing and the decoupled text encoder (paper §VI-A).

The fast-search text encoder turns the whole query sentence into a single
embedding, keeping the global object phrases ("a person in black suit",
"road") and deliberately discarding fine-grained relational structure
("walking on the road", "side by side") — those are evaluated later by the
cross-modality rerank.  The reproduction implements this with:

* a greedy longest-match tokenizer over the concept vocabulary, producing
  canonical concepts plus any out-of-vocabulary words;
* a split of the canonical concepts into *object tokens* and *relation
  tokens*;
* a concept-space mixture over the object tokens as the fast-search
  embedding, projected to the class-embedding dimensionality ``D'`` so it can
  be compared directly with the stored patch vectors.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.encoders.concepts import ConceptSpace
from repro.encoders.vocabulary import (
    ConceptVocabulary,
    split_object_and_relation_tokens,
)
from repro.errors import QueryError
from repro.utils.cache import LRUCache

#: Words carrying no semantic content for retrieval purposes.
_STOP_WORDS = {
    "a", "an", "the", "of", "in", "on", "at", "with", "and", "is", "are",
    "does", "do", "another", "both", "positioned", "while", "its", "his",
    "her", "to", "by", "that", "this", "it",
}

#: Token weights: the head noun (object category) dominates the embedding,
#: attributes contribute less, context least — mirroring how CLIP-style text
#: encoders weight the grammatical head of a phrase.
_CATEGORY_CONCEPTS = {
    "object", "vehicle", "car", "bus", "truck", "cart", "bicycle",
    "person", "woman", "man", "dog",
}
_CONTEXT_CONCEPTS = {
    "road", "street", "sidewalk", "car_interior", "room", "meadow",
    "outdoors", "water", "beach",
}


@dataclass(frozen=True)
class ParsedQuery:
    """Structured form of a natural-language object query.

    Attributes:
        text: The original query text.
        object_tokens: Canonical concepts describing the target object
            (category, attributes, activities, coarse context).
        relation_tokens: Canonical relational/positional concepts that the
            rerank stage evaluates geometrically.
        companion_tokens: Concepts describing a *second* object the target is
            related to (e.g. the "another car" in Q2.2 or the "woman wearing
            black clothes" in Q3.4).
        unknown_words: Query words not covered by the vocabulary.
    """

    text: str
    object_tokens: Tuple[str, ...] = ()
    relation_tokens: Tuple[str, ...] = ()
    companion_tokens: Tuple[str, ...] = ()
    unknown_words: Tuple[str, ...] = ()

    @property
    def complexity(self) -> str:
        """Rough complexity class used by the motivation experiment (Fig. 2).

        ``"simple"`` — a bare category; ``"normal"`` — category plus
        attributes; ``"complex"`` — anything involving relations or a
        companion object.
        """
        if self.relation_tokens or self.companion_tokens:
            return "complex"
        non_category = [t for t in self.object_tokens if t not in _CATEGORY_CONCEPTS]
        if non_category:
            return "normal"
        return "simple"

    def all_tokens(self) -> List[str]:
        """Every canonical concept mentioned by the query."""
        return list(self.object_tokens) + list(self.relation_tokens) + list(self.companion_tokens)


class QueryParser:
    """Greedy longest-match parser from query text to canonical concepts."""

    def __init__(self, vocabulary: ConceptVocabulary) -> None:
        self._vocabulary = vocabulary
        self._phrases = vocabulary.phrases()

    def parse(self, text: str) -> ParsedQuery:
        """Parse a natural-language query into a :class:`ParsedQuery`."""
        if not text or not text.strip():
            raise QueryError("Query text must be non-empty")
        normalised = re.sub(r"[^\w\s-]", " ", text.lower())
        words = normalised.split()
        concepts, unknown = self._match_phrases(words)
        object_tokens, relation_tokens = split_object_and_relation_tokens(
            self._vocabulary, concepts
        )
        primary, companion = self._split_companion(text.lower(), object_tokens)
        return ParsedQuery(
            text=text,
            object_tokens=tuple(primary),
            relation_tokens=tuple(dict.fromkeys(relation_tokens)),
            companion_tokens=tuple(companion),
            unknown_words=tuple(unknown),
        )

    def _match_phrases(self, words: List[str]) -> Tuple[List[str], List[str]]:
        """Greedy longest-match of vocabulary phrases over the word list."""
        concepts: List[str] = []
        unknown: List[str] = []
        position = 0
        max_phrase_words = max(len(phrase.split()) for phrase in self._phrases)
        while position < len(words):
            matched = False
            for span in range(min(max_phrase_words, len(words) - position), 0, -1):
                candidate = " ".join(words[position:position + span])
                canonical = self._vocabulary.canonicalize(candidate)
                if canonical:
                    concepts.extend(canonical)
                    position += span
                    matched = True
                    break
            if not matched:
                word = words[position]
                if word not in _STOP_WORDS:
                    unknown.append(word)
                position += 1
        # Preserve order but drop duplicates.
        return list(dict.fromkeys(concepts)), unknown

    def _split_companion(
        self, lowered_text: str, object_tokens: List[str]
    ) -> Tuple[List[str], List[str]]:
        """Separate concepts describing a second, related object.

        Queries such as "a red car side by side with *another car*" or
        "a white dog ... next to *a woman wearing black clothes*" describe two
        objects.  Everything mentioned after the relational connective is
        treated as describing the companion.
        """
        connectives = ["side by side with", "next to", "beside"]
        split_at = None
        for connective in connectives:
            index = lowered_text.find(connective)
            if index >= 0:
                split_at = index + len(connective)
                break
        if split_at is None:
            return object_tokens, []
        tail = lowered_text[split_at:]
        tail_words = re.sub(r"[^\w\s-]", " ", tail).split()
        tail_concepts, _ = self._match_phrases(tail_words)
        tail_objects = [
            concept for concept in tail_concepts
            if not self._vocabulary.is_relation(concept) and concept not in _CONTEXT_CONCEPTS
        ]
        primary = [token for token in object_tokens if token not in tail_objects]
        # The head object must keep at least its category; if the split removed
        # everything (e.g. "car ... with another car"), keep the original list.
        if not primary:
            primary = object_tokens
        return primary, tail_objects


class TextEncoder:
    """Decoupled text encoder producing fast-search query embeddings."""

    def __init__(
        self,
        concept_space: ConceptSpace,
        class_embedding_dim: int,
        parser: QueryParser | None = None,
        cache_size: int = 1024,
    ) -> None:
        self._space = concept_space
        self._parser = parser or QueryParser(concept_space.vocabulary)
        self._class_dim = class_embedding_dim
        self._projection = concept_space.projection_matrix(class_embedding_dim)
        # Repeated query strings are common in batched workloads; caching the
        # parse and the finished embedding makes them effectively free.
        self._parse_cache: LRUCache[str, ParsedQuery] = LRUCache(cache_size)
        self._embed_cache: LRUCache[ParsedQuery, np.ndarray] = LRUCache(cache_size)

    @property
    def parser(self) -> QueryParser:
        """The query parser used by this encoder."""
        return self._parser

    @property
    def class_embedding_dim(self) -> int:
        """Dimensionality of the produced query embeddings."""
        return self._class_dim

    def parse(self, text: str) -> ParsedQuery:
        """Parse without encoding (convenience passthrough, LRU-cached)."""
        cached = self._parse_cache.get(text)
        if cached is not None:
            return cached
        parsed = self._parser.parse(text)
        self._parse_cache.put(text, parsed)
        return parsed

    def encode(self, text: str | ParsedQuery) -> np.ndarray:
        """Encode a query for the fast-search stage.

        Only the object tokens contribute (relations are dropped, §VI-A); the
        result lives in the class-embedding space ``D'`` and is unit-norm.
        """
        return self.encode_batch([text])[0]

    def encode_batch(self, texts: Sequence[str | ParsedQuery]) -> np.ndarray:
        """Encode ``m`` queries in one vectorized pass; returns ``(m, D')``.

        All uncached queries are projected through a single matrix product
        instead of one matrix-vector product each, and finished embeddings
        are LRU-cached by parsed query so duplicate strings in a batch (or
        across batches) are embedded once.
        """
        parsed_list = [self._ensure_parsed(text) for text in texts]
        rows = [self._embed_cache.get(parsed) for parsed in parsed_list]
        missing = list(dict.fromkeys(
            parsed for parsed, row in zip(parsed_list, rows) if row is None
        ))
        if missing:
            mixtures = np.stack([
                self._space.encode(
                    list(parsed.object_tokens),
                    weights=self._token_weights(parsed.object_tokens),
                )
                for parsed in missing
            ])
            projected = mixtures @ self._projection.T
            norms = np.linalg.norm(projected, axis=1, keepdims=True)
            projected = projected / np.where(norms > 0, norms, 1.0)
            # Copy each row out of the batch matrix so a cached entry does not
            # pin the whole (m, D') buffer alive for its LRU lifetime.
            fresh = {parsed: projected[i].copy() for i, parsed in enumerate(missing)}
            for parsed, row in fresh.items():
                self._embed_cache.put(parsed, row)
            rows = [
                row if row is not None else fresh[parsed]
                for parsed, row in zip(parsed_list, rows)
            ]
        if not rows:
            return np.zeros((0, self._class_dim), dtype=np.float64)
        return np.stack(rows)

    def cache_info(self) -> Dict[str, int]:
        """Hit/miss counters of the parse and embedding caches."""
        return {
            "parse_hits": self._parse_cache.hits,
            "parse_misses": self._parse_cache.misses,
            "embed_hits": self._embed_cache.hits,
            "embed_misses": self._embed_cache.misses,
        }

    def encode_full(self, text: str | ParsedQuery) -> np.ndarray:
        """Encode a query including relational tokens (used by baselines that
        do not have a separate rerank stage)."""
        parsed = self._ensure_parsed(text)
        tokens = parsed.all_tokens()
        mixture = self._space.encode(tokens, weights=self._token_weights(tokens))
        projected = self._projection @ mixture
        norm = np.linalg.norm(projected)
        if norm > 0:
            projected = projected / norm
        return projected

    def token_vectors(self, tokens: Sequence[str]) -> np.ndarray:
        """Per-token concept vectors in the full concept space ``D``."""
        return self._space.batch_vectors(tokens)

    def _ensure_parsed(self, text: str | ParsedQuery) -> ParsedQuery:
        if isinstance(text, ParsedQuery):
            return text
        return self.parse(text)

    @staticmethod
    def _token_weights(tokens: Sequence[str]) -> Dict[str, float]:
        """Head-noun-heavy weighting of query tokens."""
        return query_token_weights(tokens)


def query_token_weights(tokens: Sequence[str]) -> Dict[str, float]:
    """Standard query-token weighting: head noun heavy, context light.

    Shared between the fast-search text encoder and the cross-modality rerank
    so both stages agree on what the query is mostly about.
    """
    weights: Dict[str, float] = {}
    for token in tokens:
        if token in _CATEGORY_CONCEPTS:
            weights[token] = 1.6
        elif token in _CONTEXT_CONCEPTS:
            weights[token] = 0.5
        else:
            weights[token] = 1.0
    return weights


def is_context_token(token: str) -> bool:
    """Whether a canonical concept denotes scene context rather than the object."""
    return token in _CONTEXT_CONCEPTS
