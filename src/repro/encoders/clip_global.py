"""Global (whole-frame) encoder used by the ZELDA and UMT baselines.

ZELDA embeds every frame with CLIP's *global* image embedding and compares it
against the query text embedding; UMT builds clip-level temporal features
from the same kind of global representation.  The simulated version mixes the
concept embeddings of every object in the frame — weighted by how much of the
frame the object occupies — with a background component, which preserves the
characteristic strengths and weaknesses the paper observes: global
descriptions of large, distinctive objects match well, while small objects
and fine-grained details are diluted by the rest of the scene.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.encoders.concepts import ConceptSpace
from repro.errors import EncodingError
from repro.utils.rng import rng_from_tokens
from repro.video.model import Frame


class GlobalFrameEncoder:
    """Whole-frame embedding in the shared class-embedding space ``D'``."""

    def __init__(
        self,
        concept_space: ConceptSpace,
        class_embedding_dim: int,
        background_weight: float = 0.5,
        noise_scale: float = 0.05,
        seed: int = 7,
    ) -> None:
        if class_embedding_dim <= 0:
            raise EncodingError("class_embedding_dim must be positive")
        self._space = concept_space
        self._projection = concept_space.projection_matrix(class_embedding_dim)
        self._background_weight = background_weight
        self._noise_scale = noise_scale
        self._seed = seed
        self._dim = class_embedding_dim

    @property
    def dim(self) -> int:
        """Dimensionality of the produced frame embeddings."""
        return self._dim

    def encode_frame(self, frame: Frame, scene: str = "generic") -> np.ndarray:
        """Global embedding of one frame."""
        mixture = self._background_weight * self._space.vector(f"background:{scene}")
        for annotation in frame.visible_objects():
            weight = max(annotation.box.clipped().area, 1e-4) ** 0.5
            mixture = mixture + weight * self._space.encode(annotation.concept_tokens())
        rng = rng_from_tokens("global", frame.frame_id, base_seed=self._seed)
        direction = rng.normal(size=mixture.shape)
        direction /= max(np.linalg.norm(direction), 1e-9)
        mixture = mixture + self._noise_scale * np.linalg.norm(mixture) * direction
        projected = self._projection @ mixture
        norm = np.linalg.norm(projected)
        if norm > 0:
            projected = projected / norm
        return projected

    def encode_frames(self, frames: Sequence[Frame], scene: str = "generic") -> np.ndarray:
        """Stack the global embeddings of several frames."""
        if not frames:
            return np.zeros((0, self._dim), dtype=np.float64)
        return np.stack([self.encode_frame(frame, scene=scene) for frame in frames])
