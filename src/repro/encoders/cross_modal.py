"""Cross-modality rerank model (paper §VI-B, Algorithm 2 stage 2).

The rerank model receives the query text and the top-k candidate frames from
fast search.  For each frame it:

1. builds *image tokens* from the frame's stored patch detections (full
   ``D``-dimensional embeddings plus box-position features);
2. builds *text tokens* from the parsed query (object, companion, and
   relation concepts);
3. runs a stack of feature-enhancer layers with image↔text cross-attention
   (see :mod:`repro.encoders.attention`);
4. scores the frame as the best image-token/text alignment
   (``ls = max_j (X_I X_T^T)_{j,-1}`` in Algorithm 2), augmented with a
   geometric evaluation of the relational tokens over the predicted boxes
   (the "box position embeddings" path of Fig. 3);
5. decodes the best-aligned token's box as the output localization.

The geometric relation check is how phrases such as "side by side" or "in the
center of the road", which the fast search deliberately ignores, change the
ranking — reproducing the accuracy gap between LOVO and its w/o-rerank
ablation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.encoders.attention import CrossModalLayer
from repro.encoders.concepts import ConceptSpace
from repro.encoders.text import ParsedQuery, is_context_token, query_token_weights
from repro.utils.geometry import (
    BoundingBox,
    box_in_center_region,
    box_next_to,
    boxes_side_by_side,
)
from repro.utils.locking import create_lock


@dataclass(frozen=True)
class CandidatePatch:
    """One stored patch detection of a candidate frame."""

    patch_id: str
    embedding: np.ndarray
    box: BoundingBox
    objectness: float = 1.0


@dataclass(frozen=True)
class FrameCandidate:
    """A candidate frame handed to the reranker.

    ``patches`` should contain *all* stored detections of the frame (not just
    the one that matched fast search) so relational predicates can look at
    neighbouring objects.
    """

    frame_id: str
    patches: Tuple[CandidatePatch, ...]
    fast_search_score: float = 0.0


@dataclass(frozen=True)
class RerankDetection:
    """One localized object produced by the rerank decoder for a frame."""

    box: BoundingBox
    patch_id: str
    score: float
    appearance_score: float
    relation_score: float


@dataclass(frozen=True)
class RerankResult:
    """Output of the rerank stage for one frame.

    ``box``/``patch_id``/scores describe the best detection; ``detections``
    lists every non-overlapping detection the decoder kept (up to
    ``max_boxes_per_frame``), so frames containing several matching objects
    contribute more than one localization.
    """

    frame_id: str
    score: float
    box: BoundingBox
    patch_id: str
    appearance_score: float
    relation_score: float
    detections: Tuple[RerankDetection, ...] = ()


@dataclass
class RerankerConfig:
    """Hyper-parameters of the cross-modality rerank model."""

    num_enhancer_layers: int = 3
    num_decoder_layers: int = 2
    hidden_dim: int = 256
    relation_bonus: float = 0.35
    relation_penalty: float = 0.20
    companion_similarity_threshold: float = 0.45
    min_objectness: float = 0.05
    max_boxes_per_frame: int = 3
    nms_iou_threshold: float = 0.45
    seed: int = 7
    extra_relation_checks: Dict[str, float] = field(default_factory=dict)


class CrossModalityReranker:
    """Re-scores candidate frames by fusing text and visual features."""

    def __init__(self, concept_space: ConceptSpace, config: RerankerConfig | None = None) -> None:
        self._space = concept_space
        self._config = config or RerankerConfig()
        # Layer weights (several QR factorizations) are built lazily on first
        # use: they dominate construction cost, and query-free paths — e.g.
        # warm-starting a system from a snapshot and serving only fast-search
        # queries — never need them.  The weights are deterministic given the
        # seed, so laziness cannot change any score; the lock only stops
        # concurrent serving workers from each paying the build cost.
        self._layers: tuple[List[CrossModalLayer], List[CrossModalLayer]] | None = None
        self._build_lock = create_lock("CrossModalReranker._build_lock")

    def _build_layers(self) -> tuple[List["CrossModalLayer"], List["CrossModalLayer"]]:
        if self._layers is None:
            with self._build_lock:
                if self._layers is None:
                    dim = self._space.dim
                    enhancers = [
                        CrossModalLayer(dim, self._config.hidden_dim, f"enhancer{i}", seed=self._config.seed)
                        for i in range(self._config.num_enhancer_layers)
                    ]
                    decoders = [
                        CrossModalLayer(dim, self._config.hidden_dim, f"decoder{i}", seed=self._config.seed)
                        for i in range(self._config.num_decoder_layers)
                    ]
                    self._layers = (enhancers, decoders)
        return self._layers

    @property
    def _enhancer_layers(self) -> List["CrossModalLayer"]:
        return self._build_layers()[0]

    @property
    def _decoder_layers(self) -> List["CrossModalLayer"]:
        return self._build_layers()[1]

    @property
    def config(self) -> RerankerConfig:
        """The reranker configuration."""
        return self._config

    def rerank(
        self,
        query: ParsedQuery,
        candidates: Sequence[FrameCandidate],
        top_n: int | None = None,
    ) -> List[RerankResult]:
        """Rerank candidate frames against the query (Algorithm 2, stage 2)."""
        results = [self.score_frame(query, candidate) for candidate in candidates]
        results = [result for result in results if result is not None]
        results.sort(key=lambda result: result.score, reverse=True)
        if top_n is not None:
            results = results[:top_n]
        return results

    def score_frame(
        self, query: ParsedQuery, candidate: FrameCandidate
    ) -> Optional[RerankResult]:
        """Score a single candidate frame; ``None`` when it has no detections."""
        patches = [
            patch for patch in candidate.patches
            if patch.objectness >= self._config.min_objectness
        ]
        if not patches:
            patches = list(candidate.patches)
        if not patches:
            return None

        image_tokens = np.stack([patch.embedding for patch in patches])
        text_tokens, token_kinds, token_names = self._text_tokens(query)
        if text_tokens.shape[0] == 0:
            return None

        enhanced_image, enhanced_text = image_tokens, text_tokens
        for layer in self._enhancer_layers:
            enhanced_image, enhanced_text = layer.apply(enhanced_image, enhanced_text)
        for layer in self._decoder_layers:
            enhanced_image, enhanced_text = layer.apply(enhanced_image, enhanced_text)

        # Appearance alignment has two parts, both computed per image token:
        #
        # * a *mixture* similarity against the whole query phrase (the same
        #   head-noun-heavy weighting the text encoder uses), blended between
        #   the raw tokens and their cross-modally enhanced versions; and
        # * a *conjunctive* term — the weakest alignment over the query's
        #   discriminative tokens (category, attributes, activity; context is
        #   excluded) — so a grey car cannot outrank a red car on the query
        #   "red car" just because both are cars.
        query_mixture = self._space.encode(
            list(query.object_tokens), weights=query_token_weights(query.object_tokens)
        )
        raw_mixture_similarity = self._normalised(image_tokens) @ query_mixture
        enhanced_mixture_similarity = self._normalised(enhanced_image) @ query_mixture
        mixture_similarity = 0.7 * raw_mixture_similarity + 0.3 * enhanced_mixture_similarity

        discriminative_mask = np.array(
            [kind == "object" and not is_context_token(token)
             for token, kind in zip(token_names, token_kinds)]
        )
        raw_similarity = self._normalised(image_tokens) @ self._normalised(text_tokens).T
        enhanced_similarity = self._normalised(enhanced_image) @ self._normalised(enhanced_text).T
        token_similarity = 0.7 * raw_similarity + 0.3 * enhanced_similarity
        if discriminative_mask.any():
            conjunctive = token_similarity[:, discriminative_mask].min(axis=1)
        else:
            conjunctive = token_similarity.min(axis=1)

        appearance = 0.6 * mixture_similarity + 0.4 * conjunctive

        relation = self._relation_scores(query, patches)
        combined = appearance + relation
        detections = self._decode_detections(patches, combined, appearance, relation)
        best = detections[0]
        return RerankResult(
            frame_id=candidate.frame_id,
            score=best.score,
            box=best.box,
            patch_id=best.patch_id,
            appearance_score=best.appearance_score,
            relation_score=best.relation_score,
            detections=tuple(detections),
        )

    def _decode_detections(
        self,
        patches: Sequence[CandidatePatch],
        combined: np.ndarray,
        appearance: np.ndarray,
        relation: np.ndarray,
    ) -> List[RerankDetection]:
        """Greedy non-maximum suppression over the per-patch scores.

        Keeps up to ``max_boxes_per_frame`` detections whose boxes do not
        substantially overlap, so a frame containing several matching objects
        yields one localization per object rather than only the single best.
        """
        order = np.argsort(-combined)
        kept: List[RerankDetection] = []
        for index in order:
            patch = patches[int(index)]
            if any(
                patch.box.iou(existing.box) >= self._config.nms_iou_threshold
                for existing in kept
            ):
                continue
            kept.append(
                RerankDetection(
                    box=patch.box,
                    patch_id=patch.patch_id,
                    score=float(combined[index]),
                    appearance_score=float(appearance[index]),
                    relation_score=float(relation[index]),
                )
            )
            if len(kept) >= self._config.max_boxes_per_frame:
                break
        return kept

    def _text_tokens(
        self, query: ParsedQuery
    ) -> Tuple[np.ndarray, List[str], List[str]]:
        """Build per-token text features; returns (matrix, kinds, names)."""
        tokens: List[np.ndarray] = []
        kinds: List[str] = []
        names: List[str] = []
        for concept in query.object_tokens:
            tokens.append(self._space.vector(concept))
            kinds.append("object")
            names.append(concept)
        for concept in query.companion_tokens:
            tokens.append(self._space.vector(concept))
            kinds.append("companion")
            names.append(concept)
        for concept in query.relation_tokens:
            tokens.append(self._space.vector(concept))
            kinds.append("relation")
            names.append(concept)
        if not tokens:
            return np.zeros((0, self._space.dim)), [], []
        return np.stack(tokens), kinds, names

    def _relation_scores(
        self, query: ParsedQuery, patches: Sequence[CandidatePatch]
    ) -> np.ndarray:
        """Geometric evaluation of relational tokens over predicted boxes."""
        scores = np.zeros(len(patches), dtype=np.float64)
        relations = set(query.relation_tokens)
        if not relations:
            return scores

        companion_vector = None
        if query.companion_tokens:
            companion_vector = self._space.encode(list(query.companion_tokens))

        for index, patch in enumerate(patches):
            total = 0.0
            if "center" in relations or "intersection" in relations:
                margin = 0.25 if "center" in relations else 0.15
                if box_in_center_region(patch.box, margin=margin):
                    total += self._config.relation_bonus
                else:
                    total -= self._config.relation_penalty
            if "side by side" in relations:
                if self._has_companion(patch, patches, companion_vector, mode="side_by_side"):
                    total += self._config.relation_bonus
                else:
                    total -= self._config.relation_penalty
            if "next to" in relations:
                if self._has_companion(patch, patches, companion_vector, mode="next_to"):
                    total += self._config.relation_bonus
                else:
                    total -= self._config.relation_penalty
            scores[index] = total
        return scores

    def _has_companion(
        self,
        patch: CandidatePatch,
        patches: Sequence[CandidatePatch],
        companion_vector: Optional[np.ndarray],
        mode: str,
    ) -> bool:
        """Whether another detection satisfies the pairwise relation."""
        for other in patches:
            if other.patch_id == patch.patch_id:
                continue
            if mode == "side_by_side":
                geometric = boxes_side_by_side(patch.box, other.box)
            else:
                geometric = box_next_to(patch.box, other.box)
            if not geometric:
                continue
            if companion_vector is None:
                return True
            other_norm = np.linalg.norm(other.embedding)
            if other_norm == 0:
                continue
            similarity = float(other.embedding @ companion_vector / other_norm)
            if similarity >= self._config.companion_similarity_threshold:
                return True
        return False

    @staticmethod
    def _normalised(matrix: np.ndarray) -> np.ndarray:
        norms = np.linalg.norm(matrix, axis=1, keepdims=True)
        norms = np.where(norms == 0, 1.0, norms)
        return matrix / norms
