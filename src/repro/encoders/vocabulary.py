"""Concept vocabulary shared by the simulated text and vision encoders.

The pretrained CLIP/Owl-ViT models the paper relies on embed images and text
into a *shared* semantic space in which "red car" is close to a picture of a
red car, "SUV" is close to "large car", and "street" is close to "road".  The
reproduction replaces those learned models with an explicit concept
vocabulary:

* every canonical concept (object class, colour, garment, context, activity,
  spatial relation) gets its own deterministic random direction;
* hierarchy/parent links make related concepts partially correlated (a
  ``woman`` embedding is close to ``person``; ``street`` is close to
  ``road``);
* a synonym table maps surface forms found in natural-language queries
  ("SUV", "inside a car", "automobile") onto canonical concepts.

This keeps the semantics of the original models that matter for the paper —
open-vocabulary matching with graded similarity — while being fully
deterministic and offline.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Sequence, Tuple

#: Concepts that describe *relations or positions* rather than object
#: appearance.  The fast-search text encoder drops them (paper §VI-A); the
#: cross-modality rerank evaluates them geometrically (paper §VI-B).
RELATION_CONCEPTS: Tuple[str, ...] = (
    "side by side",
    "next to",
    "center",
    "inside",
    "intersection",
)


@dataclass(frozen=True)
class ConceptVocabulary:
    """Canonical concepts, their parents, and surface-form synonyms.

    Attributes:
        concepts: Maps each canonical concept to its parent concepts (possibly
            empty).  Parents induce partial similarity in the concept space.
        synonyms: Maps a surface form (lower-case phrase) to one or more
            canonical concepts it expresses.
        relation_concepts: Concepts treated as spatial/relational.
    """

    concepts: Mapping[str, Tuple[str, ...]] = field(default_factory=dict)
    synonyms: Mapping[str, Tuple[str, ...]] = field(default_factory=dict)
    relation_concepts: Tuple[str, ...] = RELATION_CONCEPTS

    def known_concepts(self) -> List[str]:
        """All canonical concept names."""
        return list(self.concepts)

    def parents(self, concept: str) -> Tuple[str, ...]:
        """Parent concepts of ``concept`` (empty when unknown or a root)."""
        return tuple(self.concepts.get(concept, ()))

    def is_relation(self, concept: str) -> bool:
        """Whether ``concept`` is a spatial/relational concept."""
        return concept in self.relation_concepts

    def canonicalize(self, phrase: str) -> Tuple[str, ...]:
        """Map a surface phrase to canonical concepts.

        Returns an empty tuple when the phrase is not in the vocabulary; the
        caller decides whether to ignore it or treat it as out-of-vocabulary.
        """
        lowered = phrase.lower().strip()
        if lowered in self.synonyms:
            return tuple(self.synonyms[lowered])
        if lowered in self.concepts:
            return (lowered,)
        return ()

    def phrases(self) -> List[str]:
        """Every phrase (concept or synonym) the parser should match.

        Longer phrases first, so greedy longest-match tokenisation works.
        """
        forms = set(self.concepts) | set(self.synonyms)
        return sorted(forms, key=lambda form: (-len(form.split()), form))


def default_vocabulary() -> ConceptVocabulary:
    """The vocabulary covering the paper's datasets and queries (Table II/VI)."""
    concepts: Dict[str, Tuple[str, ...]] = {
        # Object categories (with a coarse hierarchy).
        "object": (),
        "vehicle": ("object",),
        "car": ("vehicle",),
        "bus": ("vehicle",),
        "truck": ("vehicle",),
        "cart": ("vehicle",),
        "bicycle": ("vehicle",),
        "person": ("object",),
        "woman": ("person",),
        "man": ("person",),
        "dog": ("object",),
        # Colours and sizes.
        "red": (), "black": (), "white": (), "green": (), "yellow-green": ("green",),
        "blue": (), "grey": (), "silver": ("grey",), "light": (), "dark": (),
        "brown": (), "orange": (),
        "large": (), "small": (),
        # Clothing / appearance attributes.
        "coat": (), "jacket": (), "shirt": (),
        "black t-shirt": ("black", "shirt"),
        "blue jeans": ("blue",),
        "white dress": ("white",),
        "black clothes": ("black",),
        "grey skirt": ("grey",),
        "red life jacket": ("red", "jacket"),
        "hat": (),
        "red hair": ("red",),
        "smiling": (),
        "dark bag": ("dark",),
        "white roof": ("white",),
        "cargo": (),
        # Scene context.
        "road": (), "street": ("road",), "sidewalk": ("road",),
        "car_interior": ("car",),
        "room": (), "meadow": ("outdoors",), "outdoors": (), "water": ("outdoors",),
        "beach": ("outdoors",),
        # Activities.
        "driving": (), "walking": (), "riding": (), "sitting": (), "standing": (),
        "parked": (), "holding": (), "dancing": (), "talking": (), "paddling": (),
        # Relations / positions (evaluated geometrically during rerank).
        "side by side": (), "next to": (), "center": (), "inside": (),
        "intersection": ("road",),
    }
    synonyms: Dict[str, Tuple[str, ...]] = {
        # Open-vocabulary classes outside the MSCOCO label set.
        "suv": ("car", "large"),
        "automobile": ("car",),
        "lady": ("woman",),
        "guy": ("man",),
        "puppy": ("dog",),
        "bike": ("bicycle",),
        "pickup": ("truck",),
        # Context phrasings.
        "inside a car": ("car_interior", "inside"),
        "inside car": ("car_interior", "inside"),
        "in the car": ("car_interior", "inside"),
        "in the center": ("center",),
        "in the center of the road": ("center", "road"),
        "center of the road": ("center", "road"),
        "in the intersection": ("intersection",),
        "intersection of the road": ("intersection", "road"),
        "on the road": ("road",),
        "in road": ("road",),
        "on the street": ("street",),
        "on the meadow": ("meadow",),
        "in the room": ("room",),
        "light-colored": ("light",),
        "light colored": ("light",),
        "dark-colored": ("dark",),
        "red-hair": ("red hair",),
        "red-haired": ("red hair",),
        "filled with cargo": ("cargo",),
        "with cargo": ("cargo",),
        "yellow green": ("yellow-green",),
        "life jacket": ("red life jacket",),
        "t-shirt": ("shirt",),
        "jeans": ("blue jeans",),
        "dress": ("white dress",),
        "skirt": ("grey skirt",),
        "side-by-side": ("side by side",),
        "beside": ("next to",),
        "wearing a hat": ("hat",),
        "with a hat": ("hat",),
        "holding": ("holding",),
    }
    return ConceptVocabulary(concepts=concepts, synonyms=synonyms)


def split_object_and_relation_tokens(
    vocabulary: ConceptVocabulary, concepts: Sequence[str]
) -> Tuple[List[str], List[str]]:
    """Partition canonical concepts into object-level and relational tokens."""
    object_tokens: List[str] = []
    relation_tokens: List[str] = []
    for concept in concepts:
        if vocabulary.is_relation(concept):
            relation_tokens.append(concept)
        else:
            object_tokens.append(concept)
    return object_tokens, relation_tokens
