"""Minimal NumPy transformer building blocks (attention, layer norm, MLP).

The cross-modality rerank model (paper §VI-B, Fig. 5) is a stack of feature
enhancer and decoder layers built around image↔text cross-attention.  These
primitives implement that machinery directly in NumPy.  The "pretrained"
projection matrices are deterministic orthonormal matrices shared between the
query and key paths, which preserves the dot-product structure of the shared
concept space — the NumPy analogue of a model whose modalities were aligned
during pretraining.
"""

from __future__ import annotations

import numpy as np

from repro.utils.rng import rng_from_tokens


def softmax(logits: np.ndarray, axis: int = -1) -> np.ndarray:
    """Numerically stable softmax."""
    shifted = logits - logits.max(axis=axis, keepdims=True)
    exp = np.exp(shifted)
    return exp / exp.sum(axis=axis, keepdims=True)


def layer_norm(x: np.ndarray, eps: float = 1e-6) -> np.ndarray:
    """Layer normalisation over the last dimension (no learned affine)."""
    mean = x.mean(axis=-1, keepdims=True)
    variance = x.var(axis=-1, keepdims=True)
    return (x - mean) / np.sqrt(variance + eps)


def orthonormal_matrix(dim: int, name: str, seed: int = 7) -> np.ndarray:
    """Deterministic orthonormal ``dim x dim`` matrix keyed by ``name``."""
    rng = rng_from_tokens("orthonormal", name, dim, base_seed=seed)
    matrix = rng.normal(size=(dim, dim))
    q, _ = np.linalg.qr(matrix)
    return q


class CrossAttention:
    """Single-head cross-attention with aligned (shared) Q/K projections.

    ``attend(queries, keys_values)`` returns, for each query token, a mixture
    of the value tokens weighted by softmax similarity.  Because the query and
    key projections are the same orthonormal matrix, similarity in the
    projected space equals similarity in the input space — the alignment a
    pretrained cross-modal model provides.
    """

    def __init__(self, dim: int, name: str, temperature: float | None = None, seed: int = 7) -> None:
        self._dim = dim
        self._shared_qk = orthonormal_matrix(dim, f"{name}/qk", seed=seed)
        self._value = orthonormal_matrix(dim, f"{name}/v", seed=seed)
        self._temperature = temperature if temperature is not None else float(np.sqrt(dim))

    def attend(self, queries: np.ndarray, keys_values: np.ndarray) -> np.ndarray:
        """Cross-attend ``queries`` over ``keys_values``.

        Args:
            queries: ``(num_queries, dim)`` tokens.
            keys_values: ``(num_keys, dim)`` tokens.

        Returns:
            ``(num_queries, dim)`` attended representations.  When there are
            no key tokens the queries are returned unchanged.
        """
        if keys_values.shape[0] == 0:
            return queries.copy()
        projected_q = queries @ self._shared_qk
        projected_k = keys_values @ self._shared_qk
        projected_v = keys_values @ self._value
        logits = projected_q @ projected_k.T / self._temperature
        weights = softmax(logits, axis=-1)
        attended = weights @ projected_v
        # Undo the value rotation so the output stays in the concept space.
        return attended @ self._value.T

    def attention_weights(self, queries: np.ndarray, keys_values: np.ndarray) -> np.ndarray:
        """The softmax attention matrix (used by tests and diagnostics)."""
        if keys_values.shape[0] == 0:
            return np.zeros((queries.shape[0], 0))
        projected_q = queries @ self._shared_qk
        projected_k = keys_values @ self._shared_qk
        logits = projected_q @ projected_k.T / self._temperature
        return softmax(logits, axis=-1)


class FeedForward:
    """Two-layer position-wise MLP with a GELU-like nonlinearity."""

    def __init__(self, dim: int, hidden_dim: int, name: str, seed: int = 7) -> None:
        rng = rng_from_tokens("ffn", name, dim, hidden_dim, base_seed=seed)
        scale_in = 1.0 / np.sqrt(dim)
        scale_out = 1.0 / np.sqrt(hidden_dim)
        self._w_in = rng.normal(scale=scale_in, size=(dim, hidden_dim))
        self._w_out = rng.normal(scale=scale_out, size=(hidden_dim, dim))

    def apply(self, x: np.ndarray) -> np.ndarray:
        """Apply the MLP token-wise."""
        hidden = x @ self._w_in
        activated = hidden * (1.0 / (1.0 + np.exp(-1.702 * hidden)))
        return activated @ self._w_out


class CrossModalLayer:
    """One feature-enhancer layer: bidirectional cross-attention + MLPs.

    The image-to-text attention injects query-relevant semantics into the
    image tokens; the text-to-image attention grounds the text tokens in what
    is visible (paper §VI-B).  Residual connections keep the original concept
    content so repeated layers refine rather than replace it.
    """

    def __init__(self, dim: int, hidden_dim: int, name: str, blend: float = 0.5, seed: int = 7) -> None:
        self._image_to_text = CrossAttention(dim, f"{name}/i2t", seed=seed)
        self._text_to_image = CrossAttention(dim, f"{name}/t2i", seed=seed)
        self._image_ffn = FeedForward(dim, hidden_dim, f"{name}/img_ffn", seed=seed)
        self._text_ffn = FeedForward(dim, hidden_dim, f"{name}/txt_ffn", seed=seed)
        self._blend = blend

    def apply(
        self, image_tokens: np.ndarray, text_tokens: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Run one enhancement round, returning updated (image, text) tokens."""
        enhanced_image = image_tokens + self._blend * self._image_to_text.attend(
            image_tokens, text_tokens
        )
        enhanced_text = text_tokens + self._blend * self._text_to_image.attend(
            text_tokens, image_tokens
        )
        enhanced_image = layer_norm(
            enhanced_image + 0.1 * self._image_ffn.apply(enhanced_image)
        )
        enhanced_text = layer_norm(
            enhanced_text + 0.1 * self._text_ffn.apply(enhanced_text)
        )
        return enhanced_image, enhanced_text
