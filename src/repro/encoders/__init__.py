"""Simulated pretrained encoders: concept space, text, vision, cross-modality."""

from repro.encoders.concepts import ConceptSpace
from repro.encoders.cross_modal import CrossModalityReranker, RerankDetection, RerankResult
from repro.encoders.text import ParsedQuery, QueryParser, TextEncoder
from repro.encoders.vision import PatchEncoding, PatchGrid, VisionEncoder
from repro.encoders.clip_global import GlobalFrameEncoder
from repro.encoders.vocabulary import ConceptVocabulary, default_vocabulary

__all__ = [
    "ConceptSpace",
    "ConceptVocabulary",
    "default_vocabulary",
    "QueryParser",
    "ParsedQuery",
    "TextEncoder",
    "PatchGrid",
    "PatchEncoding",
    "VisionEncoder",
    "CrossModalityReranker",
    "RerankResult",
    "RerankDetection",
    "GlobalFrameEncoder",
]
