"""Simulated object-localization head (paper §IV-C).

Owl-ViT attaches a small MLP to every output patch token that predicts an
offset from the patch's default (anchor) box to the object the token
represents.  Training such a head is out of scope offline, so the
reproduction substitutes a *simulated pretrained head*: the predicted box for
a patch is the overlap-weighted average of the boxes of the objects covering
that patch, pulled toward the anchor when the patch is mostly background, and
perturbed with noise.  This reproduces the two behaviours the paper depends
on — per-patch open-vocabulary localization, and the failure mode that large
objects spanning many patches yield fragmented, slightly-off boxes.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.utils.geometry import BoundingBox
from repro.utils.rng import rng_from_tokens


class SimulatedBoxHead:
    """Predicts per-patch bounding boxes from anchors and object overlaps."""

    def __init__(self, noise_scale: float = 0.01, seed: int = 7) -> None:
        self._noise_scale = noise_scale
        self._seed = seed

    def predict(
        self,
        frame_id: str,
        anchors: Sequence[BoundingBox],
        object_boxes: Sequence[BoundingBox],
        overlaps: np.ndarray,
    ) -> List[BoundingBox]:
        """Predict one box per patch.

        Args:
            frame_id: Used to derive the deterministic noise stream.
            anchors: Default box of each patch.
            object_boxes: Ground-truth-shaped boxes of the objects present in
                the frame (what a pretrained detector would localise).
            overlaps: ``(num_patches, num_objects)`` matrix with the fraction
                of each patch covered by each object.

        Returns:
            A predicted :class:`BoundingBox` per patch.
        """
        rng = rng_from_tokens("boxhead", frame_id, base_seed=self._seed)
        predictions: List[BoundingBox] = []
        num_objects = len(object_boxes)
        for patch_index, anchor in enumerate(anchors):
            if num_objects == 0:
                predictions.append(self._noisy(anchor, rng))
                continue
            weights = overlaps[patch_index]
            total = float(weights.sum())
            if total <= 1e-6:
                predictions.append(self._noisy(anchor, rng))
                continue
            blended = np.zeros(4, dtype=np.float64)
            for object_index, box in enumerate(object_boxes):
                blended += weights[object_index] * box.to_array()
            blended /= total
            # Mostly-background patches regress toward their anchor, the way a
            # real head's low-objectness predictions hug the default box; any
            # patch with a substantial object overlap localises the object.
            anchor_pull = max(0.0, 1.0 - min(total / 0.25, 1.0))
            blended = (1.0 - anchor_pull) * blended + anchor_pull * anchor.to_array()
            predictions.append(self._noisy(BoundingBox.from_array(blended), rng))
        return predictions

    def _noisy(self, box: BoundingBox, rng: np.random.Generator) -> BoundingBox:
        if self._noise_scale <= 0:
            return box.clipped()
        jitter = rng.normal(scale=self._noise_scale, size=4)
        perturbed = BoundingBox(
            box.x + jitter[0],
            box.y + jitter[1],
            max(box.w * (1.0 + jitter[2]), 1e-4),
            max(box.h * (1.0 + jitter[3]), 1e-4),
        )
        return perturbed.clipped()
