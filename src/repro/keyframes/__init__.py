"""Key-frame extraction strategies (paper §IV-A)."""

from repro.keyframes.base import KeyframeExtractor, make_extractor
from repro.keyframes.content import ContentDiffKeyframeExtractor
from repro.keyframes.mvmed import MVMedKeyframeExtractor
from repro.keyframes.uniform import AllFramesExtractor, UniformKeyframeExtractor

__all__ = [
    "KeyframeExtractor",
    "make_extractor",
    "UniformKeyframeExtractor",
    "AllFramesExtractor",
    "ContentDiffKeyframeExtractor",
    "MVMedKeyframeExtractor",
]
