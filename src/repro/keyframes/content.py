"""Content-difference key-frame extraction.

The content-based strategy of §IV-A targets frames whose appearance differs
notably from the previously selected key frame.  The implementation renders
each frame to a low-resolution luminance image and keeps a frame whenever the
mean absolute pixel difference against the last key frame exceeds a threshold.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.keyframes.base import KeyframeExtractor
from repro.video.model import Frame, Video
from repro.video.renderer import FrameRenderer


class ContentDiffKeyframeExtractor(KeyframeExtractor):
    """Keeps frames whose rendered content drifts past a threshold."""

    def __init__(
        self,
        threshold: float = 0.06,
        min_gap: int = 3,
        renderer: FrameRenderer | None = None,
    ) -> None:
        if threshold <= 0:
            raise ValueError("threshold must be positive")
        self._threshold = threshold
        self._min_gap = max(min_gap, 0)
        self._renderer = renderer or FrameRenderer()

    def extract(self, video: Video) -> List[Frame]:
        if not video.frames:
            return []
        keyframes: List[Frame] = [video.frames[0]]
        reference = self._renderer.render_grayscale(video.frames[0])
        last_index = video.frames[0].index
        for frame in video.frames[1:]:
            if frame.index - last_index < self._min_gap:
                continue
            luminance = self._renderer.render_grayscale(frame)
            difference = float(np.abs(luminance - reference).mean())
            if difference >= self._threshold:
                keyframes.append(frame)
                reference = luminance
                last_index = frame.index
        return keyframes
