"""Temporal key-frame strategies: fixed-stride sampling and keep-everything."""

from __future__ import annotations

from typing import List

from repro.keyframes.base import KeyframeExtractor
from repro.video.model import Frame, Video


class UniformKeyframeExtractor(KeyframeExtractor):
    """Selects every ``stride``-th frame (the paper's temporal strategy)."""

    def __init__(self, stride: int = 10) -> None:
        if stride <= 0:
            raise ValueError("stride must be positive")
        self._stride = stride

    @property
    def stride(self) -> int:
        """Sampling stride in frames."""
        return self._stride

    def extract(self, video: Video) -> List[Frame]:
        return [frame for frame in video.frames if frame.index % self._stride == 0]


class AllFramesExtractor(KeyframeExtractor):
    """Keeps every frame — the "w/o key frame" ablation of Table IV."""

    def extract(self, video: Video) -> List[Frame]:
        return list(video.frames)
