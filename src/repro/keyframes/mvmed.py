"""MVmed-style motion-vector key-frame extraction (paper §IV-A).

MVmed tracks objects in the compressed domain using codec motion vectors;
LOVO reuses the same signal to pick key frames: frames at which the aggregate
motion statistics change significantly indicate scene shifts or bursts of
activity and are ideal key-frame candidates.  The reproduction estimates the
motion field with block matching (see :mod:`repro.video.motion`) and marks a
key frame whenever the mean motion magnitude changes by more than
``motion_threshold`` relative to the running average, with a periodic
fallback so long static stretches are still represented.
"""

from __future__ import annotations

from typing import List

from repro.keyframes.base import KeyframeExtractor
from repro.video.model import Frame, Video
from repro.video.motion import estimate_motion
from repro.video.renderer import FrameRenderer


class MVMedKeyframeExtractor(KeyframeExtractor):
    """Selects key frames at motion-statistics change points."""

    def __init__(
        self,
        motion_threshold: float = 0.3,
        min_gap: int = 3,
        fallback_stride: int = 15,
        renderer: FrameRenderer | None = None,
        block_size: int = 8,
        search_radius: int = 2,
    ) -> None:
        if motion_threshold <= 0:
            raise ValueError("motion_threshold must be positive")
        if fallback_stride <= 0:
            raise ValueError("fallback_stride must be positive")
        self._motion_threshold = motion_threshold
        self._min_gap = max(min_gap, 0)
        self._fallback_stride = fallback_stride
        self._renderer = renderer or FrameRenderer()
        self._block_size = block_size
        self._search_radius = search_radius

    def extract(self, video: Video) -> List[Frame]:
        if not video.frames:
            return []
        keyframes: List[Frame] = [video.frames[0]]
        last_key_index = video.frames[0].index
        previous_luma = self._renderer.render_grayscale(video.frames[0])
        running_motion = 0.0
        observed = 0

        for frame in video.frames[1:]:
            luminance = self._renderer.render_grayscale(frame)
            field = estimate_motion(
                previous_luma,
                luminance,
                block_size=self._block_size,
                search_radius=self._search_radius,
            )
            previous_luma = luminance
            magnitude = field.mean_magnitude
            observed += 1
            if observed == 1:
                running_motion = magnitude
                continue

            change = abs(magnitude - running_motion) / max(running_motion, 1e-6)
            running_motion = 0.8 * running_motion + 0.2 * magnitude
            due_to_motion = change >= self._motion_threshold
            due_to_fallback = frame.index - last_key_index >= self._fallback_stride
            if (due_to_motion or due_to_fallback) and frame.index - last_key_index >= self._min_gap:
                keyframes.append(frame)
                last_key_index = frame.index
        return keyframes
