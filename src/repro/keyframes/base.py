"""Key-frame extractor interface and factory.

LOVO's design is orthogonal in its key-frame extraction algorithm (§IV-A):
any strategy that maps a video to a subset of its frames can be plugged in.
The paper's default combines a temporal strategy with a motion-vector-based
one (MVmed); the w/o-key-frame ablation keeps every frame.
"""

from __future__ import annotations

import abc
from typing import List

from repro.config import KeyframeConfig
from repro.video.model import Frame, Video


class KeyframeExtractor(abc.ABC):
    """Strategy interface: select a subset of a video's frames."""

    @abc.abstractmethod
    def extract(self, video: Video) -> List[Frame]:
        """Return the key frames of ``video`` in temporal order."""

    def extract_many(self, videos: List[Video]) -> List[Frame]:
        """Extract key frames from several videos and concatenate them."""
        frames: List[Frame] = []
        for video in videos:
            frames.extend(self.extract(video))
        return frames

    @property
    def name(self) -> str:
        """Short strategy name used in reports."""
        return type(self).__name__


def make_extractor(config: KeyframeConfig) -> KeyframeExtractor:
    """Build the extractor described by ``config``.

    The import is local to avoid a circular dependency between the concrete
    strategies and this factory.
    """
    from repro.keyframes.content import ContentDiffKeyframeExtractor
    from repro.keyframes.mvmed import MVMedKeyframeExtractor
    from repro.keyframes.uniform import AllFramesExtractor, UniformKeyframeExtractor

    if config.strategy == "uniform":
        return UniformKeyframeExtractor(stride=config.uniform_stride)
    if config.strategy == "content":
        return ContentDiffKeyframeExtractor(
            threshold=config.content_threshold, min_gap=config.min_gap
        )
    if config.strategy == "mvmed":
        return MVMedKeyframeExtractor(
            motion_threshold=config.motion_threshold,
            min_gap=config.min_gap,
            fallback_stride=config.uniform_stride,
        )
    return AllFramesExtractor()
