"""ByteTrack-style multi-object tracker.

The paper uses ByteTrack to label bounding boxes for ground-truth
construction and MIRIS-style baselines rely on per-query tracking.  This
implementation follows the core ByteTrack idea: associate high-confidence
detections to existing tracks first (by IoU, greedy matching), then try to
rescue unmatched tracks with the remaining low-confidence detections, and
finally spawn new tracks for whatever is left.  Track motion is propagated by
a constant-velocity Kalman filter between frames.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.utils.geometry import BoundingBox, iou
from repro.tracking.kalman import ConstantVelocityKalman


@dataclass(frozen=True)
class Detection:
    """One detection supplied to the tracker for a single frame."""

    box: BoundingBox
    score: float
    category: str = "object"
    metadata: dict = field(default_factory=dict)


@dataclass
class Track:
    """A tracked object across frames."""

    track_id: int
    category: str
    boxes: Dict[str, BoundingBox] = field(default_factory=dict)
    last_frame_id: Optional[str] = None
    misses: int = 0
    hits: int = 0

    def add(self, frame_id: str, box: BoundingBox) -> None:
        """Record the track position for a frame."""
        self.boxes[frame_id] = box
        self.last_frame_id = frame_id
        self.hits += 1
        self.misses = 0

    @property
    def length(self) -> int:
        """Number of frames the track covers."""
        return len(self.boxes)


class ByteTracker:
    """Greedy IoU tracker with two-stage (high/low confidence) association."""

    def __init__(
        self,
        high_threshold: float = 0.5,
        iou_threshold: float = 0.3,
        max_misses: int = 5,
    ) -> None:
        self._high_threshold = high_threshold
        self._iou_threshold = iou_threshold
        self._max_misses = max_misses
        self._next_id = 0
        self._active: List[Tuple[Track, ConstantVelocityKalman]] = []
        self._finished: List[Track] = []

    def step(self, frame_id: str, detections: Sequence[Detection]) -> List[Track]:
        """Process one frame of detections; returns the active tracks."""
        predictions = [(track, kalman, kalman.predict()) for track, kalman in self._active]
        high = [det for det in detections if det.score >= self._high_threshold]
        low = [det for det in detections if det.score < self._high_threshold]

        matched_tracks, remaining_high = self._associate(frame_id, predictions, high)
        unmatched = [entry for entry in predictions if entry[0].track_id not in matched_tracks]
        rescued_tracks, _remaining_low = self._associate(frame_id, unmatched, low)
        matched_tracks.update(rescued_tracks)

        for track, _kalman, _predicted in predictions:
            if track.track_id not in matched_tracks:
                track.misses += 1

        for detection in remaining_high:
            self._spawn(frame_id, detection)

        self._retire_stale()
        return [track for track, _ in self._active]

    def _associate(
        self,
        frame_id: str,
        predictions: List[Tuple[Track, ConstantVelocityKalman, BoundingBox]],
        detections: List[Detection],
    ) -> Tuple[set, List[Detection]]:
        """Greedy IoU association; returns matched track ids and leftovers."""
        matched_ids: set = set()
        used_detections: set = set()
        pairs: List[Tuple[float, int, int]] = []
        for t_index, (_track, _kalman, predicted) in enumerate(predictions):
            for d_index, detection in enumerate(detections):
                if detections[d_index].category != predictions[t_index][0].category:
                    continue
                overlap = iou(predicted, detection.box)
                if overlap >= self._iou_threshold:
                    pairs.append((overlap, t_index, d_index))
        pairs.sort(reverse=True)
        for _overlap, t_index, d_index in pairs:
            track, kalman, _predicted = predictions[t_index]
            if track.track_id in matched_ids or d_index in used_detections:
                continue
            corrected = kalman.update(detections[d_index].box)
            track.add(frame_id, corrected)
            matched_ids.add(track.track_id)
            used_detections.add(d_index)
        leftovers = [det for index, det in enumerate(detections) if index not in used_detections]
        return matched_ids, leftovers

    def _spawn(self, frame_id: str, detection: Detection) -> None:
        track = Track(track_id=self._next_id, category=detection.category)
        self._next_id += 1
        kalman = ConstantVelocityKalman(detection.box)
        track.add(frame_id, detection.box)
        self._active.append((track, kalman))

    def _retire_stale(self) -> None:
        survivors: List[Tuple[Track, ConstantVelocityKalman]] = []
        for track, kalman in self._active:
            if track.misses > self._max_misses:
                self._finished.append(track)
            else:
                survivors.append((track, kalman))
        self._active = survivors

    def finish(self) -> List[Track]:
        """Finalise tracking and return every track ever created."""
        tracks = [track for track, _ in self._active] + self._finished
        self._active = []
        self._finished = []
        return sorted(tracks, key=lambda track: track.track_id)
