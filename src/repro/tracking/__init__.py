"""Multi-object tracking used for ground-truth labelling (ByteTrack stand-in)."""

from repro.tracking.bytetrack import ByteTracker, Detection, Track
from repro.tracking.kalman import ConstantVelocityKalman

__all__ = ["ByteTracker", "Detection", "Track", "ConstantVelocityKalman"]
