"""Constant-velocity Kalman filter over bounding-box state.

The state is ``[cx, cy, w, h, vx, vy]`` — box centre, size, and centre
velocity.  ByteTrack uses a Kalman filter to propagate track positions between
frames; this minimal implementation provides the same predict/update cycle.
"""

from __future__ import annotations

import numpy as np

from repro.utils.geometry import BoundingBox


class ConstantVelocityKalman:
    """Kalman filter with a constant-velocity motion model for one track."""

    STATE_DIM = 6
    MEASUREMENT_DIM = 4

    def __init__(
        self,
        initial_box: BoundingBox,
        process_noise: float = 1e-3,
        measurement_noise: float = 1e-2,
    ) -> None:
        cx, cy = initial_box.center
        self.state = np.array([cx, cy, initial_box.w, initial_box.h, 0.0, 0.0], dtype=np.float64)
        self.covariance = np.eye(self.STATE_DIM) * 0.1
        self._transition = np.eye(self.STATE_DIM)
        self._transition[0, 4] = 1.0
        self._transition[1, 5] = 1.0
        self._observation = np.zeros((self.MEASUREMENT_DIM, self.STATE_DIM))
        self._observation[:4, :4] = np.eye(4)
        self._process_noise = np.eye(self.STATE_DIM) * process_noise
        self._measurement_noise = np.eye(self.MEASUREMENT_DIM) * measurement_noise

    def predict(self) -> BoundingBox:
        """Advance the state one frame and return the predicted box."""
        self.state = self._transition @ self.state
        self.covariance = (
            self._transition @ self.covariance @ self._transition.T + self._process_noise
        )
        return self.current_box()

    def update(self, measurement: BoundingBox) -> BoundingBox:
        """Fuse an observed box into the state and return the corrected box."""
        cx, cy = measurement.center
        observed = np.array([cx, cy, measurement.w, measurement.h], dtype=np.float64)
        innovation = observed - self._observation @ self.state
        innovation_cov = (
            self._observation @ self.covariance @ self._observation.T + self._measurement_noise
        )
        gain = self.covariance @ self._observation.T @ np.linalg.inv(innovation_cov)
        self.state = self.state + gain @ innovation
        identity = np.eye(self.STATE_DIM)
        self.covariance = (identity - gain @ self._observation) @ self.covariance
        return self.current_box()

    def current_box(self) -> BoundingBox:
        """The box implied by the current state estimate."""
        cx, cy, w, h = self.state[:4]
        return BoundingBox.from_center(float(cx), float(cy), max(float(w), 1e-6), max(float(h), 1e-6))
