"""Service-level metrics for the concurrent query-serving subsystem.

Tracks what an operator of a retrieval service actually watches: request and
completion counters, served QPS, a bounded reservoir of recent request
latencies for p50/p95/p99 estimates, the micro-batch size histogram (the
direct evidence that batching is happening under load), and admission-queue
rejections.  Result-cache effectiveness is *not* tracked here — the cache
counts its own hits/misses/expirations and the engine's ``stats()`` surfaces
them, keeping one source of truth.  Everything is guarded by one lock and
snapshotable as a plain JSON-serialisable dict for the ``/stats`` endpoint.
"""

from __future__ import annotations

import time
from collections import Counter, deque
from typing import Callable, Deque, Dict, Optional

# One percentile implementation for the whole package: the service metrics
# and the observability histograms must agree on rank selection.  Re-exported
# here because this was its historical import location.
from repro.obs.registry import percentile
from repro.utils.locking import create_lock

__all__ = ["ServiceMetrics", "percentile"]


class ServiceMetrics:
    """Thread-safe counters, latency percentiles, and batch-size histogram."""

    def __init__(
        self,
        latency_window: int = 2048,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if latency_window <= 0:
            raise ValueError("latency_window must be positive")
        self._clock = clock
        self._lock = create_lock("ServiceMetrics._lock")
        self._started_at = clock()
        self._requests = 0
        self._completed = 0
        self._rejected = 0
        self._errors = 0
        self._latencies: Deque[float] = deque(maxlen=latency_window)
        self._latency_sum = 0.0
        self._batch_sizes: Counter = Counter()

    def record_request(self) -> None:
        """Count one admitted-or-rejected submission attempt."""
        with self._lock:
            self._requests += 1

    def record_rejection(self) -> None:
        """Count one submission rejected by admission control (backpressure)."""
        with self._lock:
            self._rejected += 1

    def record_error(self) -> None:
        """Count one request that failed with an unexpected engine error."""
        with self._lock:
            self._errors += 1

    def record_completion(self, latency_seconds: float) -> None:
        """Count one completed request and record its end-to-end latency."""
        with self._lock:
            self._completed += 1
            self._latencies.append(latency_seconds)
            self._latency_sum += latency_seconds

    def record_batch(self, batch_size: int) -> None:
        """Record the size of one executed micro-batch."""
        with self._lock:
            # lovo: ignore[LOVO005] keys are batch sizes, bounded by max_batch_size
            self._batch_sizes[int(batch_size)] += 1

    @property
    def completed_total(self) -> int:
        """Number of requests completed so far."""
        with self._lock:
            return self._completed

    def snapshot(self, queue_depth: Optional[int] = None) -> Dict[str, object]:
        """A point-in-time, JSON-serialisable view of every metric."""
        with self._lock:
            uptime = max(self._clock() - self._started_at, 1e-9)
            latencies = sorted(self._latencies)
            num_batches = sum(self._batch_sizes.values())
            batched_queries = sum(
                size * count for size, count in self._batch_sizes.items()
            )
            snapshot: Dict[str, object] = {
                "uptime_seconds": uptime,
                "requests_total": self._requests,
                "completed_total": self._completed,
                "rejected_total": self._rejected,
                "errors_total": self._errors,
                "qps": self._completed / uptime,
                # Un-windowed latency total: the `_sum` of the Prometheus
                # latency summary (quantiles stay windowed).
                "latency_seconds_sum": self._latency_sum,
                "latency_ms": {
                    "p50": percentile(latencies, 0.50) * 1000.0,
                    "p95": percentile(latencies, 0.95) * 1000.0,
                    "p99": percentile(latencies, 0.99) * 1000.0,
                    "mean": (sum(latencies) / len(latencies) * 1000.0) if latencies else 0.0,
                    "window": len(latencies),
                },
                "batches": {
                    "executed": num_batches,
                    "mean_size": (batched_queries / num_batches) if num_batches else 0.0,
                    "histogram": {
                        str(size): count
                        for size, count in sorted(self._batch_sizes.items())
                    },
                },
            }
            if queue_depth is not None:
                snapshot["queue_depth"] = queue_depth
            return snapshot
