"""Stdlib-only HTTP frontend over the serving engine (versioned ``/v1`` API).

Built on :class:`http.server.ThreadingHTTPServer` — one handler thread per
connection feeding the shared :class:`~repro.serve.engine.ServingEngine`, so
concurrent HTTP clients are exactly the concurrent submitters the
micro-batcher coalesces.  No web framework, no new dependency.

Endpoints (all under ``/v1``):

* ``POST /v1/query`` — body is the :class:`~repro.core.query.QueryRequest`
  wire form ``{"query": str, "options": {"top_n": int?, "fast_search_k":
  int?}?}``; the legacy top-level ``"top_n"`` field is still accepted.
* ``POST /v1/query_batch`` — ``{"queries": [str, ...], "options": {...}?}``
  (legacy top-level ``"top_n"`` accepted).
* ``GET /v1/healthz`` — liveness/readiness (503 until data is ingested or
  loaded); includes backend topology (shard and replica health) when the
  system runs on the sharded scatter-gather database.  A backend with some
  replicas down but every shard still answerable reports ``"degraded"``
  (still 200); a shard with no healthy replica reports ``"unavailable"``
  (503).
* ``GET /v1/stats`` — the engine's full metrics snapshot.
* ``GET /v1/metrics`` — the unified metrics registry in Prometheus text
  exposition format (service counters, latency summary, micro-batch
  histogram, cache, per-shard replica health, shard call latencies, ingest
  phase totals).
* ``HEAD /v1/metrics`` — headers (content type/length) without the body,
  for scrapers probing the endpoint.
* ``GET /v1/metrics/history?limit=&prefix=`` — the bounded ring of windowed
  registry snapshots (``repro.obs.timeseries``).
* ``GET /v1/slo`` — the full multi-window SLO burn-rate evaluation
  (latency, availability, shadow recall); ``/v1/healthz`` carries the
  compact per-SLO status summary.
* ``GET /v1/explain/<trace_id>`` — the retained EXPLAIN report of a query
  served with ``options.explain=true`` (stage costs, search params,
  per-shard candidates, cache/epoch provenance, score margins).
* ``GET /v1/traces/<id>`` — one stored request trace (spans across queue
  wait, encode, per-shard search, merge, rerank).
* ``GET /v1/traces/slow`` — the slow-query log (full traces above the
  configured latency threshold).
* ``POST /v1/subscriptions`` — register a standing query:
  ``{"query": str, "threshold": float?}``; requires a streaming ingestor
  attached to the engine (503 ``stream_error`` otherwise).
* ``GET /v1/subscriptions`` / ``GET /v1/subscriptions/<id>`` — list / fetch
  registered standing queries with their delivery counters.
* ``DELETE /v1/subscriptions/<id>`` — unregister (404 for unknown ids).
* ``GET /v1/subscriptions/<id>/events?timeout=&max=`` — long-poll drain of
  the subscription's match buffer: blocks up to ``timeout`` seconds (the
  configured default when absent, clamped to the configured maximum) until
  at least one match pushed by live ingest is available, then returns up to
  ``max`` events.

Request correlation: every endpoint accepts an ``X-Request-ID`` header (one
is generated when absent), echoes it on the response, includes it in the
error envelope, and attaches it to the request's stored trace.  Query
responses carry the request's ``trace_id`` in the JSON body and the
``X-Trace-Id`` header.

The unversioned paths (``/query``, ``/query_batch``, ``/healthz``,
``/stats``) answer **308 Permanent Redirect** to their ``/v1`` equivalents
for one release and will then be removed; 308 preserves the method and body,
so a client that follows redirects keeps working unchanged.

Every error answers a consistent JSON envelope mapped from the typed error
hierarchy in :mod:`repro.errors`::

    {"error": {"code": "<stable slug>", "message": str, "retryable": bool}}

Status mapping: malformed requests → 400; overload (admission queue full),
not-ready systems, shard unavailability, and an engine that is not running
(starting up or shutting down) → 503 (overload and shutdown add
``Retry-After``); request timeout → 504; anything else → 500.
"""

from __future__ import annotations

import json
import uuid
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from concurrent.futures import CancelledError as FutureCancelledError
from concurrent.futures import TimeoutError as FutureTimeoutError
from typing import Dict, Optional, Tuple
from urllib.parse import parse_qs, urlsplit

from repro.core.query import QueryOptions, QueryRequest
from repro.core.results import QueryResponse
from repro.errors import (
    QueryError,
    ReproError,
    ServiceOverloadedError,
    ServingError,
    StreamError,
    SubscriptionNotFoundError,
    SystemNotReadyError,
    error_envelope,
)
from repro.obs.exposition import CONTENT_TYPE as METRICS_CONTENT_TYPE
from repro.obs.exposition import render
from repro.serve.engine import ServingEngine

#: Request bodies above this size are rejected outright (64 KiB is orders of
#: magnitude beyond any real query batch and bounds handler memory).
MAX_BODY_BYTES = 64 * 1024

#: Client-supplied ``X-Request-ID`` values longer than this are replaced with
#: a generated id (bounds log lines and trace attributes).
MAX_REQUEST_ID_CHARS = 128

#: Current (and only) API version prefix.
API_PREFIX = "/v1"

#: Unversioned paths kept as permanent redirects for one release.
LEGACY_REDIRECTS = {
    "/query": f"{API_PREFIX}/query",
    "/query_batch": f"{API_PREFIX}/query_batch",
    "/healthz": f"{API_PREFIX}/healthz",
    "/stats": f"{API_PREFIX}/stats",
}


def response_payload(response: QueryResponse) -> Dict[str, object]:
    """JSON-serialisable form of one query response."""
    payload: Dict[str, object] = {
        "query": response.query,
        "cache_hit": bool(response.metadata.get("cache_hit", False)),
        "trace_id": response.metadata.get("trace_id"),
        "num_results": len(response.results),
        "results": [result.as_dict() for result in response.results],
        "timings": dict(response.timings),
    }
    explain = response.metadata.get("explain")
    if explain is not None:
        payload["explain"] = explain
    return payload


class LOVORequestHandler(BaseHTTPRequestHandler):
    """Routes HTTP requests to the shared serving engine."""

    server: "LOVOHTTPServer"
    protocol_version = "HTTP/1.1"

    #: Correlation id of the request being handled (set at routing time).
    _request_id: Optional[str] = None

    # -- routing -----------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        self._request_id = self._resolve_request_id()
        parts = urlsplit(self.path)
        path = parts.path
        if path == f"{API_PREFIX}/healthz":
            self._handle_healthz()
        elif path == f"{API_PREFIX}/stats":
            self._send_json(200, self.server.engine.stats())
        elif path == f"{API_PREFIX}/metrics":
            self._guarded(self._handle_metrics)
        elif path == f"{API_PREFIX}/metrics/history":
            query = parse_qs(parts.query)
            self._guarded(lambda: self._handle_metrics_history(query))
        elif path == f"{API_PREFIX}/slo":
            self._guarded(self._handle_slo)
        elif path.startswith(f"{API_PREFIX}/explain/"):
            trace_id = path[len(f"{API_PREFIX}/explain/"):]
            self._guarded(lambda: self._handle_explain(trace_id))
        elif path == f"{API_PREFIX}/traces/slow":
            self._guarded(self._handle_slow_traces)
        elif path.startswith(f"{API_PREFIX}/traces/"):
            trace_id = path[len(f"{API_PREFIX}/traces/"):]
            self._guarded(lambda: self._handle_trace(trace_id))
        elif path == f"{API_PREFIX}/subscriptions":
            self._guarded(self._handle_subscriptions_list)
        elif path.startswith(f"{API_PREFIX}/subscriptions/"):
            tail = path[len(f"{API_PREFIX}/subscriptions/"):]
            query = parse_qs(parts.query)
            if tail.endswith("/events"):
                sub_id = tail[: -len("/events")]
                self._guarded(lambda: self._handle_subscription_events(sub_id, query))
            else:
                self._guarded(lambda: self._handle_subscription_get(tail))
        elif path in LEGACY_REDIRECTS:
            self._send_redirect(LEGACY_REDIRECTS[path])
        else:
            self._send_error(404, "not_found", f"Unknown path {self.path!r}")

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        self._request_id = self._resolve_request_id()
        if self.path == f"{API_PREFIX}/query":
            self._guarded(self._handle_query)
        elif self.path == f"{API_PREFIX}/query_batch":
            self._guarded(self._handle_query_batch)
        elif self.path == f"{API_PREFIX}/subscriptions":
            self._guarded(self._handle_subscription_create)
        elif self.path in LEGACY_REDIRECTS:
            self._send_redirect(LEGACY_REDIRECTS[self.path])
        else:
            self._send_error(404, "not_found", f"Unknown path {self.path!r}")

    def do_HEAD(self) -> None:  # noqa: N802 - http.server API
        self._request_id = self._resolve_request_id()
        path = urlsplit(self.path).path
        if path == f"{API_PREFIX}/metrics":
            self._guarded(lambda: self._handle_metrics(head=True))
        else:
            self._send_error(404, "not_found", f"Unknown path {self.path!r}")

    def do_DELETE(self) -> None:  # noqa: N802 - http.server API
        self._request_id = self._resolve_request_id()
        if self.path.startswith(f"{API_PREFIX}/subscriptions/"):
            sub_id = self.path[len(f"{API_PREFIX}/subscriptions/"):]
            self._guarded(lambda: self._handle_subscription_delete(sub_id))
        else:
            self._send_error(404, "not_found", f"Unknown path {self.path!r}")

    def _resolve_request_id(self) -> str:
        """The caller's ``X-Request-ID`` (when sane), else a generated one."""
        supplied = (self.headers.get("X-Request-ID") or "").strip()
        if supplied and len(supplied) <= MAX_REQUEST_ID_CHARS and supplied.isprintable():
            return supplied
        return uuid.uuid4().hex

    # -- endpoint bodies ---------------------------------------------------

    def _handle_healthz(self) -> None:
        system = self.server.engine.system
        if system.num_entities == 0:
            self._send_json(
                503,
                {
                    "status": "not_ready",
                    "reason": "no dataset ingested",
                    "api_version": "v1",
                },
            )
            return
        backend = system.storage.backend_status()
        health = str(backend.get("health", "ok"))
        # "degraded" (some replicas down, every shard still answerable) is
        # alive-but-wounded: still 200 so load balancers keep routing, with
        # the distinct status for operators.  "unavailable" (a shard with no
        # healthy replica) would fail queries, so it is a 503.
        status = 503 if health == "unavailable" else 200
        self._send_json(
            status,
            {
                "status": health,
                "api_version": "v1",
                "num_entities": system.num_entities,
                "num_keyframes": system.num_keyframes,
                "datasets": system.ingested_datasets,
                "index_type": system.storage.index_type,
                "backend": backend,
                "slo": self.server.engine.slo.summary(),
            },
        )

    def _handle_query(self) -> None:
        body = self._read_json_body()
        request = QueryRequest.from_dict(body)
        response = self.server.engine.query(request)
        trace_id = self._annotate_trace(response, "/v1/query")
        headers = {"X-Trace-Id": trace_id} if trace_id else None
        self._send_json(200, response_payload(response), headers=headers)

    def _handle_query_batch(self) -> None:
        body = self._read_json_body()
        texts = body.get("queries")
        if not isinstance(texts, list) or not all(
            isinstance(text, str) for text in texts
        ):
            raise _BadRequest('Body must contain a "queries" list of strings')
        options = QueryOptions.from_dict(body.get("options"))  # type: ignore[arg-type]
        legacy_top_n = body.get("top_n")
        requests = [
            QueryRequest.from_dict(
                {"query": text, "options": options.to_dict(), "top_n": legacy_top_n}
            )
            for text in texts
        ]
        responses = self.server.engine.query_many(requests)
        for response in responses:
            self._annotate_trace(response, "/v1/query_batch")
        self._send_json(
            200,
            {
                "batch_size": len(responses),
                "responses": [response_payload(response) for response in responses],
            },
        )

    def _handle_metrics(self, head: bool = False) -> None:
        text = render(self.server.engine.metric_families())
        encoded = text.encode("utf-8")
        self.send_response(200)
        self.send_header("Content-Type", METRICS_CONTENT_TYPE)
        self.send_header("Content-Length", str(len(encoded)))
        if self._request_id:
            self.send_header("X-Request-ID", self._request_id)
        self.end_headers()
        if not head:
            self.wfile.write(encoded)

    def _handle_metrics_history(self, query: Dict[str, list]) -> None:
        limit = None
        if "limit" in query:
            try:
                limit = int(query["limit"][0])
            except (ValueError, IndexError):
                raise _BadRequest('"limit" must be an integer') from None
        prefix = None
        if "prefix" in query:
            prefix = str(query["prefix"][0])
        history = self.server.engine.history
        points = history.points(limit=limit, prefix=prefix)
        self._send_json(
            200,
            {
                "interval_seconds": history.interval_seconds,
                "capacity": history.capacity,
                "num_points": len(points),
                "points": points,
            },
        )

    def _handle_slo(self) -> None:
        self._send_json(200, self.server.engine.slo.evaluate())

    def _handle_explain(self, trace_id: str) -> None:
        report = (
            self.server.engine.explain_store.get(trace_id) if trace_id else None
        )
        if report is None:
            self._send_error(
                404,
                "explain_not_found",
                f"No retained EXPLAIN report for trace {trace_id!r} "
                '(was the query served with options.explain=true?)',
            )
            return
        self._send_json(200, report)

    def _handle_trace(self, trace_id: str) -> None:
        tracer = self.server.engine.tracer
        trace = tracer.store.get(trace_id) if trace_id else None
        if trace is None:
            self._send_error(
                404, "trace_not_found", f"No stored trace with id {trace_id!r}"
            )
            return
        self._send_json(200, trace.as_dict())

    def _handle_slow_traces(self) -> None:
        tracer = self.server.engine.tracer
        slow = tracer.store.slow()
        self._send_json(
            200,
            {
                "slow_threshold_ms": tracer.store.slow_threshold_ms,
                "num_traces": len(slow),
                "traces": [trace.as_dict() for trace in slow],
            },
        )

    # -- standing-query endpoints -----------------------------------------

    def _subscriptions(self):
        """The attached ingestor's subscription manager, or a 503."""
        streaming = self.server.engine.streaming
        if streaming is None:
            raise StreamError(
                "No streaming ingestor attached; standing queries are unavailable"
            )
        return streaming.subscriptions

    def _handle_subscription_create(self) -> None:
        body = self._read_json_body()
        query = body.get("query")
        if not isinstance(query, str) or not query.strip():
            raise _BadRequest('Body must contain a non-empty "query" string')
        threshold = body.get("threshold", 0.0)
        if not isinstance(threshold, (int, float)) or isinstance(threshold, bool):
            raise _BadRequest('"threshold" must be a number')
        subscription = self._subscriptions().register(query, float(threshold))
        self._send_json(201, subscription.to_dict())

    def _handle_subscriptions_list(self) -> None:
        manager = self._subscriptions()
        self._send_json(200, {"subscriptions": manager.list()})

    def _handle_subscription_get(self, sub_id: str) -> None:
        subscription = self._subscriptions().get(sub_id)
        self._send_json(200, subscription.to_dict())

    def _handle_subscription_delete(self, sub_id: str) -> None:
        self._subscriptions().unregister(sub_id)
        self._send_json(200, {"deleted": sub_id})

    def _handle_subscription_events(self, sub_id: str, query: Dict[str, list]) -> None:
        manager = self._subscriptions()
        timeout = None
        if "timeout" in query:
            try:
                timeout = float(query["timeout"][0])
            except (ValueError, IndexError):
                raise _BadRequest('"timeout" must be a number of seconds') from None
        max_events = 64
        if "max" in query:
            try:
                max_events = int(query["max"][0])
            except (ValueError, IndexError):
                raise _BadRequest('"max" must be an integer') from None
        events = manager.poll(sub_id, timeout=timeout, max_events=max_events)
        self._send_json(
            200,
            {
                "subscription_id": sub_id,
                "num_events": len(events),
                "events": [event.to_dict() for event in events],
            },
        )

    def _annotate_trace(self, response: QueryResponse, endpoint: str) -> Optional[str]:
        """Attach request correlation to a response's stored trace."""
        trace_id = response.metadata.get("trace_id")
        if not isinstance(trace_id, str):
            return None
        self.server.engine.tracer.store.annotate(
            trace_id, request_id=self._request_id, endpoint=endpoint
        )
        return trace_id

    # -- plumbing ----------------------------------------------------------

    def _guarded(self, handler) -> None:
        """Run an endpoint body, mapping library errors to HTTP statuses."""
        try:
            handler()
        except ServiceOverloadedError as error:
            self._send_exception(503, error, headers={"Retry-After": "1"})
        except SubscriptionNotFoundError as error:
            # A client-side addressing mistake, not a service condition.
            self._send_exception(404, error)
        except SystemNotReadyError as error:
            self._send_exception(503, error)
        except QueryError as error:
            # Includes _BadRequest: malformed bodies and invalid queries are
            # both the caller's problem.
            self._send_exception(400, error)
        except FutureTimeoutError:
            self._send_error(504, "timeout", "Query timed out", retryable=True)
        except FutureCancelledError:
            # The engine is shutting down and dropped this request.
            self._send_error(
                503,
                "service_unavailable",
                "Service is shutting down",
                retryable=True,
                headers={"Retry-After": "1"},
            )
        except ServingError as error:
            # Engine not running (yet / anymore), or a shard with no healthy
            # replica: unavailable, not broken.
            self._send_exception(503, error, headers={"Retry-After": "1"})
        except ReproError as error:
            status = 503 if error.retryable else 500
            self._send_exception(status, error)
        except Exception:  # noqa: BLE001 - last-resort 500 instead of a dropped socket
            self._send_error(500, "internal_error", "Internal server error")

    def _read_json_body(self) -> Dict[str, object]:
        try:
            length = int(self.headers.get("Content-Length", 0) or 0)
        except ValueError:
            raise _BadRequest("Content-Length header must be an integer") from None
        if length <= 0:
            raise _BadRequest("Request body required")
        if length > MAX_BODY_BYTES:
            raise _BadRequest(f"Request body exceeds {MAX_BODY_BYTES} bytes")
        raw = self.rfile.read(length)
        try:
            body = json.loads(raw)
        except json.JSONDecodeError as error:
            raise _BadRequest(f"Request body is not valid JSON: {error}") from None
        if not isinstance(body, dict):
            raise _BadRequest("Request body must be a JSON object")
        return body

    def _send_json(
        self, status: int, payload: object, headers: Optional[Dict[str, str]] = None
    ) -> None:
        encoded = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(encoded)))
        if self._request_id:
            self.send_header("X-Request-ID", self._request_id)
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(encoded)

    def _send_redirect(self, location: str) -> None:
        """308 Permanent Redirect (method- and body-preserving) to ``/v1``."""
        # The request body (if any) is intentionally left unread; close the
        # connection so HTTP/1.1 keep-alive cannot desynchronise.
        self.close_connection = True
        payload = {"redirect": location, "deprecated": self.path}
        encoded = json.dumps(payload).encode("utf-8")
        self.send_response(308)
        self.send_header("Location", location)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(encoded)))
        if self._request_id:
            self.send_header("X-Request-ID", self._request_id)
        self.send_header("Connection", "close")
        self.end_headers()
        self.wfile.write(encoded)

    def _send_exception(
        self, status: int, error: BaseException, headers: Optional[Dict[str, str]] = None
    ) -> None:
        self._send_envelope(
            status, error_envelope(error, request_id=self._request_id), headers
        )

    def _send_error(
        self,
        status: int,
        code: str,
        message: str,
        retryable: bool = False,
        headers: Optional[Dict[str, str]] = None,
    ) -> None:
        body: Dict[str, object] = {
            "code": code,
            "message": message,
            "retryable": retryable,
        }
        if self._request_id is not None:
            body["request_id"] = self._request_id
        self._send_envelope(status, {"error": body}, headers)

    def _send_envelope(
        self, status: int, payload: Dict[str, object], headers: Optional[Dict[str, str]]
    ) -> None:
        # An errored request may leave an unread body on the socket (e.g. an
        # oversized or malformed one rejected before rfile was drained), which
        # would desynchronise HTTP/1.1 keep-alive; close the connection so the
        # client re-connects cleanly.
        self.close_connection = True
        merged = {"Connection": "close", **(headers or {})}
        self._send_json(status, payload, headers=merged)

    def log_message(self, format: str, *args: object) -> None:  # noqa: A002
        """Silence per-request stderr logging (metrics cover observability)."""


class _BadRequest(QueryError):
    """Internal marker for malformed request bodies (maps to HTTP 400)."""

    code = "bad_request"


class LOVOHTTPServer(ThreadingHTTPServer):
    """A threading HTTP server bound to one serving engine."""

    daemon_threads = True

    def __init__(self, engine: ServingEngine, address: Tuple[str, int]) -> None:
        self.engine = engine
        super().__init__(address, LOVORequestHandler)


def make_server(
    engine: ServingEngine, host: str | None = None, port: int | None = None
) -> LOVOHTTPServer:
    """Bind (but do not start) an HTTP frontend for ``engine``.

    Host and port default to the engine's :class:`~repro.config.ServeConfig`;
    port ``0`` binds an ephemeral port (see ``server.server_address``).
    """
    config = engine.config
    effective_host = host if host is not None else config.host
    effective_port = port if port is not None else config.port
    return LOVOHTTPServer(engine, (effective_host, effective_port))


def serve_forever(engine: ServingEngine, host: str | None = None,
                  port: int | None = None) -> None:
    """Start the engine and block serving HTTP until interrupted."""
    engine.start()
    server = make_server(engine, host, port)
    bound_host, bound_port = server.server_address[:2]
    print(f"Serving LOVO queries on http://{bound_host}:{bound_port}")
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print("Shutting down (draining in-flight requests)...")
    finally:
        server.shutdown()
        server.server_close()
        engine.stop()
