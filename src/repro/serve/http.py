"""Stdlib-only HTTP frontend over the serving engine.

Built on :class:`http.server.ThreadingHTTPServer` — one handler thread per
connection feeding the shared :class:`~repro.serve.engine.ServingEngine`, so
concurrent HTTP clients are exactly the concurrent submitters the
micro-batcher coalesces.  No web framework, no new dependency.

Endpoints:

* ``POST /query`` — body ``{"query": str, "top_n": int?}``; answers one query.
* ``POST /query_batch`` — body ``{"queries": [str, ...], "top_n": int?}``.
* ``GET /healthz`` — liveness/readiness (503 until data is ingested/loaded).
* ``GET /stats`` — the engine's full metrics snapshot.

Error mapping: malformed requests → 400; overload (admission queue full),
not-ready systems, and an engine that is not running (starting up or
shutting down) → 503 (overload and shutdown add ``Retry-After``); request
timeout → 504; anything else → 500.
"""

from __future__ import annotations

import json
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from concurrent.futures import CancelledError as FutureCancelledError
from concurrent.futures import TimeoutError as FutureTimeoutError
from typing import Dict, Optional, Tuple

from repro.core.results import QueryResponse
from repro.errors import (
    QueryError,
    ReproError,
    ServiceOverloadedError,
    ServingError,
    SystemNotReadyError,
)
from repro.serve.engine import ServingEngine

#: Request bodies above this size are rejected outright (64 KiB is orders of
#: magnitude beyond any real query batch and bounds handler memory).
MAX_BODY_BYTES = 64 * 1024


def response_payload(response: QueryResponse) -> Dict[str, object]:
    """JSON-serialisable form of one query response."""
    return {
        "query": response.query,
        "cache_hit": bool(response.metadata.get("cache_hit", False)),
        "num_results": len(response.results),
        "results": [result.as_dict() for result in response.results],
        "timings": dict(response.timings),
    }


class LOVORequestHandler(BaseHTTPRequestHandler):
    """Routes HTTP requests to the shared serving engine."""

    server: "LOVOHTTPServer"
    protocol_version = "HTTP/1.1"

    # -- routing -----------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        if self.path == "/healthz":
            self._handle_healthz()
        elif self.path == "/stats":
            self._send_json(200, self.server.engine.stats())
        else:
            self._send_error(404, f"Unknown path {self.path!r}")

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        if self.path == "/query":
            self._guarded(self._handle_query)
        elif self.path == "/query_batch":
            self._guarded(self._handle_query_batch)
        else:
            self._send_error(404, f"Unknown path {self.path!r}")

    # -- endpoint bodies ---------------------------------------------------

    def _handle_healthz(self) -> None:
        system = self.server.engine.system
        if system.num_entities == 0:
            self._send_json(
                503, {"status": "not_ready", "reason": "no dataset ingested"}
            )
            return
        self._send_json(
            200,
            {
                "status": "ok",
                "num_entities": system.num_entities,
                "num_keyframes": system.num_keyframes,
                "datasets": system.ingested_datasets,
                "index_type": system.storage.index_type,
            },
        )

    def _handle_query(self) -> None:
        body = self._read_json_body()
        text = body.get("query")
        if not isinstance(text, str):
            raise _BadRequest('Body must contain a string "query" field')
        top_n = _optional_depth(body.get("top_n"))
        response = self.server.engine.query(text, top_n=top_n)
        self._send_json(200, response_payload(response))

    def _handle_query_batch(self) -> None:
        body = self._read_json_body()
        texts = body.get("queries")
        if not isinstance(texts, list) or not all(
            isinstance(text, str) for text in texts
        ):
            raise _BadRequest('Body must contain a "queries" list of strings')
        top_n = _optional_depth(body.get("top_n"))
        responses = self.server.engine.query_many(texts, top_n=top_n)
        self._send_json(
            200,
            {
                "batch_size": len(responses),
                "responses": [response_payload(response) for response in responses],
            },
        )

    # -- plumbing ----------------------------------------------------------

    def _guarded(self, handler) -> None:
        """Run an endpoint body, mapping library errors to HTTP statuses."""
        try:
            handler()
        except _BadRequest as error:
            self._send_error(400, str(error))
        except ServiceOverloadedError as error:
            self._send_error(503, str(error), headers={"Retry-After": "1"})
        except SystemNotReadyError as error:
            self._send_error(503, str(error))
        except QueryError as error:
            self._send_error(400, str(error))
        except FutureTimeoutError:
            self._send_error(504, "Query timed out")
        except FutureCancelledError:
            # The engine is shutting down and dropped this request.
            self._send_error(503, "Service is shutting down", headers={"Retry-After": "1"})
        except ServingError as error:
            # Engine not running (yet / anymore): unavailable, not broken.
            self._send_error(503, str(error), headers={"Retry-After": "1"})
        except ReproError as error:
            self._send_error(500, str(error))
        except Exception:  # noqa: BLE001 - last-resort 500 instead of a dropped socket
            self._send_error(500, "Internal server error")

    def _read_json_body(self) -> Dict[str, object]:
        try:
            length = int(self.headers.get("Content-Length", 0) or 0)
        except ValueError:
            raise _BadRequest("Content-Length header must be an integer") from None
        if length <= 0:
            raise _BadRequest("Request body required")
        if length > MAX_BODY_BYTES:
            raise _BadRequest(f"Request body exceeds {MAX_BODY_BYTES} bytes")
        raw = self.rfile.read(length)
        try:
            body = json.loads(raw)
        except json.JSONDecodeError as error:
            raise _BadRequest(f"Request body is not valid JSON: {error}") from None
        if not isinstance(body, dict):
            raise _BadRequest("Request body must be a JSON object")
        return body

    def _send_json(
        self, status: int, payload: object, headers: Optional[Dict[str, str]] = None
    ) -> None:
        encoded = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(encoded)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(encoded)

    def _send_error(
        self, status: int, message: str, headers: Optional[Dict[str, str]] = None
    ) -> None:
        # An errored request may leave an unread body on the socket (e.g. an
        # oversized or malformed one rejected before rfile was drained), which
        # would desynchronise HTTP/1.1 keep-alive; close the connection so the
        # client re-connects cleanly.
        self.close_connection = True
        merged = {"Connection": "close", **(headers or {})}
        self._send_json(status, {"error": message, "status": status}, headers=merged)

    def log_message(self, format: str, *args: object) -> None:  # noqa: A002
        """Silence per-request stderr logging (metrics cover observability)."""


class _BadRequest(Exception):
    """Internal marker for malformed request bodies (maps to HTTP 400)."""


def _optional_depth(value: object) -> Optional[int]:
    """Validate an optional positive-integer ``top_n`` field."""
    if value is None:
        return None
    if isinstance(value, bool) or not isinstance(value, int) or value <= 0:
        raise _BadRequest('"top_n" must be a positive integer')
    return value


class LOVOHTTPServer(ThreadingHTTPServer):
    """A threading HTTP server bound to one serving engine."""

    daemon_threads = True

    def __init__(self, engine: ServingEngine, address: Tuple[str, int]) -> None:
        self.engine = engine
        super().__init__(address, LOVORequestHandler)


def make_server(
    engine: ServingEngine, host: str | None = None, port: int | None = None
) -> LOVOHTTPServer:
    """Bind (but do not start) an HTTP frontend for ``engine``.

    Host and port default to the engine's :class:`~repro.config.ServeConfig`;
    port ``0`` binds an ephemeral port (see ``server.server_address``).
    """
    config = engine.config
    effective_host = host if host is not None else config.host
    effective_port = port if port is not None else config.port
    return LOVOHTTPServer(engine, (effective_host, effective_port))


def serve_forever(engine: ServingEngine, host: str | None = None,
                  port: int | None = None) -> None:
    """Start the engine and block serving HTTP until interrupted."""
    engine.start()
    server = make_server(engine, host, port)
    bound_host, bound_port = server.server_address[:2]
    print(f"Serving LOVO queries on http://{bound_host}:{bound_port}")
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print("Shutting down (draining in-flight requests)...")
    finally:
        server.shutdown()
        server.server_close()
        engine.stop()
