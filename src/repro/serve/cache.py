"""TTL + LRU result cache for served queries.

Production query streams are heavily repetitive (the paper's motivating
workload is millions of users asking about the same handful of scenes), so a
response cache in front of the engine turns hot queries into dictionary
lookups.  Entries expire after a TTL so a long-running service eventually
reflects newly ingested data, and the LRU bound keeps memory flat.

:class:`TTLLRUCache` is the generic mechanism — a thread-safe extension of
:class:`repro.utils.cache.LRUCache` that stamps every entry with a deadline.
:class:`ResultCache` specialises it for query serving: keys are the
*normalized* query text, the retrieval depths ``(k, n)`` that shaped the
response, and the data **epoch** the response was computed against (the
system's ``data_version``), and hits are returned as fresh
:class:`~repro.core.results.QueryResponse` objects carrying the caller's
original text and a ``cache_hit`` marker.  The epoch component is what keeps
the cache honest under streaming ingest: every ingest bumps the version, so
entries produced before it simply stop being looked up — a TTL-sized window
of stale answers becomes impossible, not merely short.
"""

from __future__ import annotations

import time
from typing import Callable, Hashable, Optional, Tuple, TypeVar

from repro.config import QueryConfig
from repro.core.query import QueryOptions
from repro.core.results import QueryResponse
from repro.utils.cache import LRUCache

K = TypeVar("K", bound=Hashable)
V = TypeVar("V")

_MISSING = object()


def normalize_query_text(text: str) -> str:
    """Canonical cache form of a query string (case- and spacing-insensitive).

    The query parser lowercases and re-tokenizes its input, so two strings
    that normalize identically are guaranteed to produce identical results.
    """
    return " ".join(text.lower().split())


class TTLLRUCache(LRUCache[K, Tuple[V, float]]):
    """An :class:`LRUCache` whose entries also expire after a fixed TTL.

    Inherits the parent's re-entrant lock, so the expiry check in :meth:`get`
    is atomic with the recency update.  An expired entry counts as a miss
    (and is dropped eagerly); ``expirations`` counts how many hits were lost
    to the TTL rather than to capacity eviction.
    """

    def __init__(
        self,
        maxsize: int = 1024,
        ttl_seconds: float = 30.0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        super().__init__(maxsize)
        if ttl_seconds <= 0:
            raise ValueError("TTLLRUCache ttl_seconds must be positive")
        self._ttl = ttl_seconds
        self._clock = clock
        self.expirations = 0

    @property
    def ttl_seconds(self) -> float:
        """Seconds an entry stays valid after being written."""
        return self._ttl

    def get(self, key: K, default: Optional[V] = None) -> Optional[V]:  # type: ignore[override]
        """Return the live cached value, or ``default`` on miss/expiry."""
        with self._lock:
            entry = super().get(key, _MISSING)
            if entry is _MISSING:
                return default
            value, deadline = entry  # type: ignore[misc]
            if self._clock() >= deadline:
                super().pop(key)
                # Reclassify the parent's recency hit as a miss.
                self.hits -= 1
                self.misses += 1
                self.expirations += 1
                return default
            return value

    def put(self, key: K, value: V) -> None:  # type: ignore[override]
        """Insert or refresh an entry, restarting its TTL."""
        super().put(key, (value, self._clock() + self._ttl))

    def clear(self) -> None:
        """Drop every entry and reset all counters."""
        with self._lock:
            super().clear()
            self.expirations = 0


class ResultCache:
    """Query-response cache keyed on normalized text, depths, and data epoch."""

    def __init__(
        self,
        maxsize: int = 1024,
        ttl_seconds: float = 30.0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self._cache: TTLLRUCache[Tuple[str, int, int, int], QueryResponse] = TTLLRUCache(
            maxsize=maxsize, ttl_seconds=ttl_seconds, clock=clock
        )

    @staticmethod
    def make_key(
        text: str, fast_search_k: int, top_n: int, epoch: int = 0
    ) -> Tuple[str, int, int, int]:
        """The cache key of a query: normalized text, ``(k, n)``, and epoch."""
        return (normalize_query_text(text), int(fast_search_k), int(top_n), int(epoch))

    @staticmethod
    def key_for(
        text: str, options: QueryOptions, config: QueryConfig, epoch: int = 0
    ) -> Tuple[str, int, int, int]:
        """The cache key of a canonical request under a query config.

        Keyed on the *resolved* retrieval depths, so semantically identical
        requests collide regardless of which API shim produced them — an
        explicit ``QueryOptions(top_n=40)``, a legacy ``top_n=40`` kwarg,
        and a bare string under a config whose default is 40 all share one
        entry.  The key is also shard/replica-invariant by construction:
        backend topology never enters it.
        """
        fast_search_k, top_n = options.resolved(config)
        return ResultCache.make_key(text, fast_search_k, top_n, epoch)

    def get_for(
        self, text: str, options: QueryOptions, config: QueryConfig, epoch: int = 0
    ) -> Optional[QueryResponse]:
        """Options-aware :meth:`get` (see :meth:`key_for`)."""
        return self.get(text, *options.resolved(config), epoch=epoch)

    def put_for(
        self,
        text: str,
        options: QueryOptions,
        config: QueryConfig,
        response: QueryResponse,
        epoch: int = 0,
    ) -> None:
        """Options-aware :meth:`put` (see :meth:`key_for`)."""
        self.put(text, *options.resolved(config), response, epoch=epoch)

    def get(
        self, text: str, fast_search_k: int, top_n: int, epoch: int = 0
    ) -> Optional[QueryResponse]:
        """A fresh response object for a live cached result, else ``None``.

        The returned response shares the (immutable) result records with the
        cached entry but carries the caller's original query text and a
        ``cache_hit`` metadata marker, so callers can mutate their response
        without corrupting the cache.
        """
        cached = self._cache.get(self.make_key(text, fast_search_k, top_n, epoch))
        if cached is None:
            return None
        return QueryResponse(
            query=text,
            results=list(cached.results),
            timings=dict(cached.timings),
            metadata={**cached.metadata, "cache_hit": True},
        )

    def put(
        self,
        text: str,
        fast_search_k: int,
        top_n: int,
        response: QueryResponse,
        epoch: int = 0,
    ) -> None:
        """Cache a served response under its normalized key.

        A defensive copy is stored, so the caller that produced ``response``
        (the cache-miss path hands its object straight to the submitter) can
        mutate it freely without corrupting later hits.
        """
        entry = QueryResponse(
            query=response.query,
            results=list(response.results),
            timings=dict(response.timings),
            metadata=dict(response.metadata),
        )
        self._cache.put(self.make_key(text, fast_search_k, top_n, epoch), entry)

    def clear(self) -> None:
        """Drop every cached response."""
        self._cache.clear()

    def __len__(self) -> int:
        return len(self._cache)

    def stats(self) -> dict:
        """Hit/miss/expiry counters plus current size."""
        return {
            "size": len(self._cache),
            "maxsize": self._cache.maxsize,
            "ttl_seconds": self._cache.ttl_seconds,
            "hits": self._cache.hits,
            "misses": self._cache.misses,
            "expirations": self._cache.expirations,
        }
