"""The concurrent query-serving engine: worker pool over the batched LOVO core.

:class:`ServingEngine` turns one built :class:`~repro.core.system.LOVO`
system into a service that many callers can hit at once:

* **admission control** — submissions land on the micro-batcher's bounded
  queue; a full queue rejects with
  :class:`~repro.errors.ServiceOverloadedError` instead of growing without
  bound;
* **micro-batching** — worker threads pull *coalesced* batches and answer
  each with one ``query_batch`` engine pass, so served throughput gets the
  batched engine's amortisation under concurrent single-query load;
* **result caching** — a TTL+LRU cache keyed on normalized query text and
  retrieval depths answers repeated queries without touching the engine;
* **graceful lifecycle** — :meth:`stop` drains everything already admitted
  before the workers exit, so no accepted request is dropped.

Per-query results are bit-identical to calling ``LOVO.query`` serially: the
batched engine guarantees parity per query, and batch composition cannot
change any individual query's answer.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import Future
from pathlib import Path
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence

from repro.config import ObsConfig, ServeConfig
from repro.core.query import QueryOptions, QueryRequest, as_query_request
from repro.core.results import QueryResponse
from repro.core.system import LOVO
from repro.errors import (
    ServiceOverloadedError,
    ServingError,
    SystemNotReadyError,
)
from repro.obs.explain import ExplainStore, build_explain_report
from repro.obs.exposition import build_info_family, service_families
from repro.obs.quality import ShadowSampler
from repro.obs.registry import REGISTRY, MetricFamily, MetricsRegistry
from repro.obs.slo import SLOTracker
from repro.obs.timeseries import MetricsHistory
from repro.obs.trace import Tracer, activate
from repro.serve.batcher import MicroBatcher, PendingQuery
from repro.serve.cache import ResultCache
from repro.serve.metrics import ServiceMetrics
from repro.utils.locking import create_lock

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.stream.ingestor import StreamingIngestor


class ServingEngine:
    """Concurrent query service around one built LOVO system."""

    def __init__(self, system: LOVO, config: ServeConfig | None = None) -> None:
        self._system = system
        self._config = config or system.config.serve
        self._batcher = MicroBatcher(
            max_batch_size=self._config.max_batch_size,
            max_wait_ms=self._config.max_wait_ms,
            queue_size=self._config.queue_size,
        )
        self._cache: Optional[ResultCache] = None
        if self._config.cache_size > 0:
            self._cache = ResultCache(
                maxsize=self._config.cache_size,
                ttl_seconds=self._config.cache_ttl_seconds,
            )
        self._metrics = ServiceMetrics(latency_window=self._config.metrics_window)
        # Share the system's tracer when it has one (one trace store per
        # system), else build our own from the system's obs configuration;
        # duck-typed stand-in systems without either get a default Tracer.
        tracer = getattr(system, "tracer", None)
        if not isinstance(tracer, Tracer):
            obs_config = getattr(getattr(system, "config", None), "obs", None)
            tracer = Tracer(obs_config)
        self._tracer = tracer
        obs_config = getattr(getattr(system, "config", None), "obs", None)
        if not isinstance(obs_config, ObsConfig):
            obs_config = ObsConfig()
        self._obs_config = obs_config
        self._registry = MetricsRegistry()
        self._registry.register_collector(self._collect_service_families)
        # The answer-quality & cost layer: EXPLAIN retention, SLO burn rates,
        # metrics history, and (when configured) shadow-recall sampling.
        self._explain_store = ExplainStore()
        self._slo = SLOTracker(obs_config, registry=self._registry)
        self._history = MetricsHistory(
            self.metric_families,
            interval_seconds=obs_config.history_interval_seconds,
            capacity=obs_config.history_capacity,
        )
        # Burn-rate gauges refresh on the history's cadence.
        self._history.add_listener(self._slo.on_tick)
        self._sampler: Optional[ShadowSampler] = None
        if obs_config.shadow_sample_rate > 0.0:
            self._sampler = ShadowSampler(
                system,
                obs_config,
                registry=self._registry,
                on_sample=self._slo.record_recall,
            )
        self._workers: List[threading.Thread] = []
        self._lifecycle_lock = create_lock("ServingEngine._lifecycle_lock")
        self._running = False
        self._stopped = False
        self._streaming: "Optional[StreamingIngestor]" = None

    @classmethod
    def from_snapshot(
        cls, path: str | Path, config: ServeConfig | None = None
    ) -> "ServingEngine":
        """Warm-start an engine from a persisted snapshot (``LOVO.save``).

        The serving configuration defaults to the snapshot's stored ``serve``
        block; pass ``config`` to override it for this deployment.
        """
        return cls(LOVO.load(path), config)

    @property
    def system(self) -> LOVO:
        """The underlying LOVO system (treat as read-only while serving)."""
        return self._system

    @property
    def config(self) -> ServeConfig:
        """The serving configuration in effect."""
        return self._config

    @property
    def metrics(self) -> ServiceMetrics:
        """The live service metrics."""
        return self._metrics

    @property
    def tracer(self) -> Tracer:
        """The request tracer (and its bounded trace store)."""
        return self._tracer

    @property
    def registry(self) -> MetricsRegistry:
        """This engine's metrics registry (service families via collector)."""
        return self._registry

    @property
    def slo(self) -> SLOTracker:
        """The SLO tracker (latency/availability/recall burn rates)."""
        return self._slo

    @property
    def history(self) -> MetricsHistory:
        """The bounded metrics-history ring behind ``/v1/metrics/history``."""
        return self._history

    @property
    def explain_store(self) -> ExplainStore:
        """Retained EXPLAIN reports behind ``/v1/explain/<trace_id>``."""
        return self._explain_store

    @property
    def quality(self) -> Optional[ShadowSampler]:
        """The shadow-recall sampler (``None`` unless a rate is configured)."""
        return self._sampler

    def _data_epoch(self) -> int:
        """The system's current data version (0 for stand-ins without one)."""
        return int(getattr(self._system, "data_version", 0))

    def _collect_service_families(self) -> List[MetricFamily]:
        phase_totals = None
        timer = getattr(self._system, "timer", None)
        if timer is not None and hasattr(timer, "as_dict"):
            phase_totals = timer.as_dict()
        return service_families(self.stats(), phase_totals)

    def metric_families(self) -> List[MetricFamily]:
        """Everything ``GET /v1/metrics`` exposes in one snapshot.

        Merges this engine's registry (service metrics, cache, backend
        health, ingest phase totals, recall/SLO instruments) with the
        module-level registry the shard router records its per-replica call
        metrics into, plus the constant ``lovo_build_info`` gauge.
        """
        return (
            self._registry.collect() + REGISTRY.collect() + [build_info_family()]
        )

    @property
    def streaming(self) -> "Optional[StreamingIngestor]":
        """The attached streaming ingestor, if any."""
        return self._streaming

    def attach_streaming(
        self, ingestor: "Optional[StreamingIngestor]" = None
    ) -> "StreamingIngestor":
        """Attach (and start) a streaming ingestor over this engine's system.

        With no argument a default :class:`~repro.stream.ingestor.
        StreamingIngestor` is built from the system's ``stream`` config.  The
        ingestor's lifecycle is then tied to the engine: :meth:`stop` drains
        and stops it, and the HTTP frontend's subscription endpoints route to
        its :class:`~repro.stream.subscriptions.SubscriptionManager`.
        """
        # Guarded by the lifecycle lock: two concurrent attachers must agree
        # on one ingestor, not each start (and leak) their own.
        with self._lifecycle_lock:
            if self._streaming is not None:
                return self._streaming
            if ingestor is None:
                from repro.stream.ingestor import StreamingIngestor

                ingestor = StreamingIngestor(self._system)
            self._streaming = ingestor.start()
            return self._streaming

    @property
    def running(self) -> bool:
        """Whether the worker pool is accepting queries."""
        return self._running

    @property
    def queue_depth(self) -> int:
        """Number of admitted queries waiting for a micro-batch."""
        return self._batcher.depth

    def start(self) -> "ServingEngine":
        """Spin up the worker pool; idempotent until :meth:`stop`."""
        with self._lifecycle_lock:
            if self._stopped:
                raise ServingError("A stopped ServingEngine cannot be restarted")
            if self._running:
                return self
            for index in range(self._config.num_workers):
                worker = threading.Thread(
                    target=self._worker_loop,
                    name=f"lovo-serve-worker-{index}",
                    daemon=True,
                )
                worker.start()
                self._workers.append(worker)
            if self._obs_config.enabled:
                self._history.start()
            if self._sampler is not None:
                self._sampler.start()
            self._running = True
        return self

    def stop(self, drain: bool = True, timeout: float | None = None) -> None:
        """Shut the worker pool down; idempotent.

        With ``drain`` (the default), every already-admitted request is still
        answered before the workers exit — a graceful shutdown.  With
        ``drain=False``, queued requests that no worker has picked up are
        cancelled (their futures report cancellation); batches already
        executing always finish either way.
        """
        if self._streaming is not None:
            self._streaming.stop(drain=drain, timeout=timeout)
        # The shadow worker drains its queue on stop; the history ticker just
        # exits.  Both are idempotent and safe to stop before ever starting.
        if self._sampler is not None:
            self._sampler.stop(timeout=timeout)
        self._history.stop(timeout=timeout)
        with self._lifecycle_lock:
            if not self._running:
                self._stopped = True
                return
            self._batcher.close()
            if not drain:
                for pending in self._batcher.drain():
                    pending.future.cancel()
            workers = list(self._workers)
            self._workers.clear()
            self._running = False
            self._stopped = True
        # Joining under the lifecycle lock would hold it across worker
        # drain time (seconds, worst case), stalling every start()/stop()
        # caller; state is already flipped above, so the joins and the final
        # sweep run lock-free.
        for worker in workers:
            worker.join(timeout=timeout)
        # A submit() racing this shutdown may have enqueued after a worker
        # observed an (at that instant) empty queue and exited; close()
        # guarantees nothing lands after it returned, so one final sweep
        # here leaves no admitted request stranded with an unresolved
        # future.
        leftover = self._batcher.drain()
        if leftover:
            if drain:
                self._process_batch(leftover)
            else:
                for pending in leftover:
                    pending.future.cancel()

    def __enter__(self) -> "ServingEngine":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()

    def submit(
        self,
        request: "str | QueryRequest",
        top_n: int | None = None,
        *,
        options: QueryOptions | None = None,
    ) -> "Future[QueryResponse]":
        """Submit one query; returns a future resolving to its response.

        Accepts a query string or a canonical :class:`~repro.core.query.
        QueryRequest` (the ``top_n`` keyword is a deprecated shim).  Raises
        :class:`~repro.errors.ServiceOverloadedError` when the admission
        queue is full and :class:`~repro.errors.QueryError` for requests the
        engine could never answer (validated here so one bad query cannot
        fail the micro-batch it would have been coalesced into).
        """
        if not self._running:
            raise ServingError("ServingEngine is not running; call start() first")
        coerced = as_query_request(request, top_n, options, caller="ServingEngine.submit")
        text = coerced.text
        self._metrics.record_request()

        started = time.perf_counter()
        trace = self._tracer.start(query=text)
        # EXPLAIN requests bypass the cache entirely (get *and* put, below):
        # a cached response would carry the producing request's report, not
        # an account of a pass that actually ran for this request.
        if self._cache is not None and not coerced.options.explain:
            # Hit/miss accounting lives in the cache itself (the single
            # source of truth surfaced by stats()).  The lookup is pinned to
            # the system's current data epoch, so entries cached before an
            # ingest (offline or streamed) can never be served after it.
            cached = self._cache.get_for(
                text, coerced.options, self._system.config.query,
                epoch=self._data_epoch(),
            )
            if cached is not None:
                now = time.perf_counter()
                self._metrics.record_completion(now - started)
                if trace is not None:
                    trace.record("cache_lookup", started, now, hit=True)
                    # Overwrite the (stale) trace id the producing request
                    # stamped into the cached entry.
                    cached.metadata["trace_id"] = self._tracer.finish(
                        trace, cache_hit=True
                    )
                self._slo.record_request(
                    now - started, True,
                    trace_id=cached.metadata.get("trace_id"),
                )
                future: "Future[QueryResponse]" = Future()
                future.set_result(cached)
                return future

        pending = PendingQuery(
            text=text,
            top_n=coerced.options.top_n,
            enqueued_at=started,
            options=coerced.options,
            trace=trace,
        )
        try:
            self._batcher.submit(pending)
        except ServiceOverloadedError:
            # Only genuine backpressure counts as a rejection; a closed
            # batcher (shutdown race) propagates as a plain ServingError.
            self._metrics.record_rejection()
            self._tracer.finish(trace, outcome="rejected")
            self._slo.record_request(
                time.perf_counter() - started, False,
                trace_id=trace.trace_id if trace is not None else None,
                outcome="rejected",
            )
            raise
        except ServingError:
            self._tracer.finish(trace, outcome="closed")
            raise
        return pending.future

    def query(
        self,
        request: "str | QueryRequest",
        top_n: int | None = None,
        timeout: float | None = None,
        *,
        options: QueryOptions | None = None,
    ) -> QueryResponse:
        """Submit one query and block for its response (HTTP-path helper)."""
        effective_timeout = (
            timeout if timeout is not None else self._config.request_timeout_seconds
        )
        return self.submit(request, top_n=top_n, options=options).result(
            timeout=effective_timeout
        )

    def query_many(
        self,
        requests: Sequence["str | QueryRequest"],
        top_n: int | None = None,
        timeout: float | None = None,
        *,
        options: QueryOptions | None = None,
    ) -> List[QueryResponse]:
        """Submit several queries at once and block for all responses.

        Unlike ``LOVO.query_batch`` this goes through admission control and
        the shared micro-batcher, so the queries may be coalesced with other
        callers' — or rejected under overload like any other submission.
        """
        effective_timeout = (
            timeout if timeout is not None else self._config.request_timeout_seconds
        )
        # Validate everything before admitting anything, and on a mid-loop
        # rejection cancel what was already admitted — otherwise a failed
        # batch would still consume worker capacity (exactly when overloaded).
        coerced = [
            as_query_request(request, top_n, options, caller="ServingEngine.query_many")
            for request in requests
        ]
        futures: List["Future[QueryResponse]"] = []
        try:
            for request in coerced:
                futures.append(self.submit(request))
        except ServingError:
            for future in futures:
                future.cancel()
            raise
        # One deadline for the whole batch: the timeout bounds the caller's
        # total wait, not each future's individually.
        deadline = time.perf_counter() + effective_timeout
        return [
            future.result(timeout=max(deadline - time.perf_counter(), 0.0))
            for future in futures
        ]

    def stats(self) -> Dict[str, object]:
        """Service metrics plus queue, cache, and pool state for ``/stats``."""
        snapshot = self._metrics.snapshot(queue_depth=self._batcher.depth)
        snapshot["running"] = self._running
        snapshot["num_workers"] = self._config.num_workers
        snapshot["max_batch_size"] = self._config.max_batch_size
        snapshot["max_wait_ms"] = self._config.max_wait_ms
        snapshot["queue_capacity"] = self._config.queue_size
        backend = self._backend_status()
        snapshot["backend"] = backend
        # Overall health: the backend's replica-topology classification
        # ("ok" / "degraded" / "unavailable"), or "not_ready" before data.
        snapshot["health"] = (
            str(backend.get("health", "ok")) if backend.get("ready") else "not_ready"
        )
        if self._tracer.enabled:
            snapshot["traces"] = self._tracer.store.stats()
        if self._cache is not None:
            cache_stats = self._cache.stats()
            lookups = cache_stats["hits"] + cache_stats["misses"]
            snapshot["cache"] = {
                "enabled": True,
                **cache_stats,
                "hit_rate": (cache_stats["hits"] / lookups) if lookups else 0.0,
            }
        else:
            snapshot["cache"] = {"enabled": False}
        snapshot["data_epoch"] = self._data_epoch()
        if self._streaming is not None:
            snapshot["streaming"] = self._streaming.stats()
        snapshot["slo"] = self._slo.summary()
        snapshot["history"] = self._history.stats()
        snapshot["explain"] = self._explain_store.stats()
        if self._sampler is not None:
            snapshot["quality"] = self._sampler.stats()
        return snapshot

    def _backend_status(self) -> Dict[str, object]:
        """Backend topology (shard/replica health) for ``stats``/``healthz``."""
        # AttributeError covers duck-typed stand-in systems without storage.
        try:
            storage = self._system.storage
            status = storage.backend_status()
        except (SystemNotReadyError, AttributeError):
            return {"ready": False}
        return {"ready": True, **status}

    def _worker_loop(self) -> None:
        while True:
            batch = self._batcher.next_batch()
            if batch is None:
                return
            self._process_batch(batch)

    def _process_batch(self, batch: List[PendingQuery]) -> None:
        live = [
            pending for pending in batch
            if pending.future.set_running_or_notify_cancel()
        ]
        if not live:
            return
        # The queue-wait span: admission (stamped by the submitting thread)
        # to batch pickup, recorded here because only the worker knows when
        # the wait ended.
        picked_up = time.perf_counter()
        for pending in live:
            if pending.trace is not None:
                pending.trace.record(
                    "queue_wait", pending.enqueued_at, picked_up, batch_size=len(live)
                )
        # ``query_batch`` answers the whole batch under one QueryOptions, so
        # group by it; almost every real batch is a single group.
        groups: Dict[QueryOptions, List[PendingQuery]] = {}
        for pending in live:
            groups.setdefault(pending.effective_options(), []).append(pending)
        for group_options, group in groups.items():
            self._process_group(group_options, group)

    def _process_group(self, options: QueryOptions, group: List[PendingQuery]) -> None:
        # One histogram entry per actual engine pass (a coalesced batch with
        # mixed options executes as several passes).
        self._metrics.record_batch(len(group))
        # The engine pass is shared work: activating every member's trace
        # fans each span the pass records (encode, fast_search, per-shard
        # search, merge, rerank) out into all of them.
        traces = [pending.trace for pending in group if pending.trace is not None]
        # Captured *before* the engine pass: if an ingest lands mid-query the
        # response may or may not include the new data, and filing it under
        # the pre-query epoch means it is never served once the version moves
        # on (filing under the post-query epoch could serve a stale answer).
        epoch = self._data_epoch()
        try:
            with activate(traces):
                responses = self._system.query_batch(
                    [pending.text for pending in group], options=options
                ).responses
        except BaseException as error:  # noqa: BLE001 - forwarded to callers
            now = time.perf_counter()
            for pending in group:
                self._metrics.record_error()
                self._tracer.finish(
                    pending.trace, outcome="error", error=type(error).__name__
                )
                self._slo.record_request(
                    now - pending.enqueued_at, False,
                    trace_id=(
                        pending.trace.trace_id if pending.trace is not None else None
                    ),
                    outcome="error",
                )
                pending.future.set_exception(error)
            if not isinstance(error, Exception):
                # KeyboardInterrupt/SystemExit must still unwind the worker
                # after the callers have been told why their futures failed.
                raise
            return
        now = time.perf_counter()
        query_config = self._system.config.query
        explain_backend = self._backend_status() if options.explain else None
        for pending, response in zip(group, responses):
            trace_id = pending.trace.trace_id if pending.trace is not None else None
            if trace_id is not None:
                response.metadata["trace_id"] = trace_id
            if self._cache is not None and not options.explain:
                self._cache.put_for(
                    pending.text, options, query_config, response, epoch=epoch
                )
            latency = now - pending.enqueued_at
            self._metrics.record_completion(latency)
            self._tracer.finish(pending.trace)
            self._slo.record_request(latency, True, trace_id=trace_id)
            if self._sampler is not None:
                self._sampler.maybe_sample(
                    pending.text,
                    response.metadata.get("fast_search"),
                    epoch=epoch,
                    trace_id=trace_id,
                )
            if options.explain:
                # Built after tracer.finish so the trace's duration is set,
                # and before the future resolves so the caller sees it.
                report = build_explain_report(
                    response,
                    pending.trace,
                    options=options,
                    query_config=query_config,
                    index_config=self._system.config.index,
                    backend=explain_backend or {},
                    epoch=epoch,
                )
                response.metadata["explain"] = report
                if trace_id is not None:
                    self._explain_store.put(trace_id, report)
            pending.future.set_result(response)
