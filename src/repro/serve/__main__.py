"""Command-line entrypoint: serve a persisted LOVO snapshot over HTTP.

Usage::

    python -m repro.serve --snapshot snapshots/bellevue --port 8080

The snapshot is warm-loaded (no video processing), the serving configuration
defaults to the snapshot's stored ``serve`` block, and any flag given here
overrides that block for this deployment.
"""

from __future__ import annotations

import argparse
import dataclasses
import sys

from repro.config import ServeConfig
from repro.errors import ReproError
from repro.serve.engine import ServingEngine
from repro.serve.http import serve_forever


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve",
        description="Serve complex object queries from a persisted LOVO snapshot.",
    )
    parser.add_argument(
        "--snapshot", required=True,
        help="Snapshot directory written by LOVO.save()",
    )
    parser.add_argument("--host", help="Bind address (default: snapshot config)")
    parser.add_argument("--port", type=int, help="TCP port; 0 picks an ephemeral port")
    parser.add_argument("--workers", type=int, dest="num_workers",
                        help="Worker threads in the serving pool")
    parser.add_argument("--max-batch-size", type=int, dest="max_batch_size",
                        help="Micro-batch size cap")
    parser.add_argument("--max-wait-ms", type=float, dest="max_wait_ms",
                        help="Micro-batch coalescing window in milliseconds")
    parser.add_argument("--queue-size", type=int, dest="queue_size",
                        help="Admission queue capacity (backpressure bound)")
    parser.add_argument("--cache-size", type=int, dest="cache_size",
                        help="Result cache entries (0 disables caching)")
    parser.add_argument("--cache-ttl", type=float, dest="cache_ttl_seconds",
                        help="Result cache TTL in seconds")
    return parser


def serve_config_from_args(base: ServeConfig, args: argparse.Namespace) -> ServeConfig:
    """The snapshot's serve config with any CLI overrides applied."""
    overrides = {
        name: value
        for name, value in vars(args).items()
        if name != "snapshot" and value is not None
    }
    return dataclasses.replace(base, **overrides) if overrides else base


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        engine = ServingEngine.from_snapshot(args.snapshot)
    except ReproError as error:
        print(f"Failed to load snapshot {args.snapshot!r}: {error}", file=sys.stderr)
        return 1
    config = serve_config_from_args(engine.config, args)
    if config is not engine.config:
        engine = ServingEngine(engine.system, config)
    system = engine.system
    print(
        f"Loaded snapshot {args.snapshot!r}: {system.num_entities} vectors, "
        f"{system.num_keyframes} key frames, index={system.storage.index_type}"
    )
    serve_forever(engine)
    return 0


if __name__ == "__main__":
    sys.exit(main())
