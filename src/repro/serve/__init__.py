"""Concurrent query-serving subsystem.

Turns a built :class:`~repro.core.system.LOVO` system into a service: a
micro-batching scheduler coalesces concurrently submitted queries into
batched engine passes (:mod:`repro.serve.batcher`), a worker pool with
bounded-queue admission control executes them (:mod:`repro.serve.engine`), a
TTL+LRU cache answers repeated queries for free (:mod:`repro.serve.cache`),
service metrics expose QPS / latency percentiles / batch sizes
(:mod:`repro.serve.metrics`), and a stdlib-only HTTP frontend serves it all
over the wire (:mod:`repro.serve.http`).

Quick start (in-process)::

    from repro.serve import ServingEngine

    engine = ServingEngine.from_snapshot("snapshots/bellevue")
    with engine:
        response = engine.query("A red car driving in the center of the road")

Or over HTTP::

    python -m repro.serve --snapshot snapshots/bellevue --port 8080
"""

from repro.config import ServeConfig, StreamConfig
from repro.serve.batcher import MicroBatcher, PendingQuery
from repro.serve.cache import ResultCache, TTLLRUCache, normalize_query_text
from repro.serve.engine import ServingEngine
from repro.serve.http import LOVOHTTPServer, make_server, serve_forever
from repro.serve.metrics import ServiceMetrics

__all__ = [
    "ServeConfig",
    "StreamConfig",
    "ServingEngine",
    "MicroBatcher",
    "PendingQuery",
    "ResultCache",
    "TTLLRUCache",
    "normalize_query_text",
    "ServiceMetrics",
    "LOVOHTTPServer",
    "make_server",
    "serve_forever",
]
